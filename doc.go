// Package perftrack is a Go reproduction of PerfTrack, the performance
// experiment management tool of Karavanic et al. (SC|05): a DBMS-backed
// data store and interfaces for collecting, integrating, and comparing
// parallel performance data from heterogeneous tools.
//
// The implementation lives under internal/: reldb (embedded relational
// engine with in-memory and WAL-backed file storage), sqldb (SQL subset),
// core (the resource/context/pr-filter model of §2), ptdf (the PTdf data
// format of Figure 6), datastore (the Figure 1 schema and PTDataStore
// interface), query (the §3.2 GUI workflow), compare (§6 comparison
// operators), collect (build/run capture), irs/smg/mpip/pmapi/paradyn
// (tool-format generators and parsers), gen (machine catalog and study
// orchestration), chart (Figure 5 bar charts), and experiments (the
// Table 1 and figure regeneration harness). Executables are under cmd/
// and runnable walkthroughs under examples/.
//
// The benchmarks in bench_test.go regenerate the measurable artifacts of
// the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record.
package perftrack
