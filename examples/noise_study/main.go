// Noise study (§4.2): load SMG2000 data from two very different platforms
// — UV (benchmark output + PMAPI hardware counters + mpiP profiles) and
// BlueGene/L (raw benchmark output only) — into one store, and use the
// multi-resource-set contexts that mpiP's caller/callee breakdown
// required. Mirrors the paper's second case study.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

func main() {
	work, err := os.MkdirTemp("", "noise-study-*")
	check(err)
	defer os.RemoveAll(work)

	store, err := datastore.Open(reldb.NewMem())
	check(err)

	// Neither platform had previously been input into the database: add
	// descriptive data for UV and BG/L first, as the study did.
	for _, name := range []string{"UV", "BGL"} {
		m, err := gen.MachineByName(name)
		check(err)
		for _, rec := range m.ToPTdf(2) {
			check(store.LoadRecord(rec))
		}
		fmt.Printf("added platform %s\n", name)
	}

	// UV runs carry three data kinds; BG/L runs only the raw benchmark.
	var entries []gen.IndexEntry
	add := func(kind, machine string, count, np int) {
		for e := 0; e < count; e++ {
			execName := fmt.Sprintf("smg-%s-%03d", machine, e)
			dir := filepath.Join(work, execName)
			spec := gen.ExecSpec{
				Kind: kind, Execution: execName, App: "smg2000",
				Machine: machine, NProcs: np, Seed: int64(e + 1),
			}
			if _, err := gen.WriteExecution(dir, spec); err != nil {
				log.Fatal(err)
			}
			entries = append(entries, gen.IndexEntry{
				Execution: execName, App: "smg2000", Concurrency: "MPI",
				NProcs: np, NThreads: 1,
				BuildTime: "2005-05-01T00:00:00Z", RunTime: "2005-05-02T00:00:00Z",
				Kind: kind, Machine: machine, Dir: dir, Seed: int64(e + 1),
			})
		}
	}
	add(gen.KindSMGUV, "UV", 2, 32)
	add(gen.KindSMGBGL, "BGL", 4, 64)

	paths, err := gen.PTdfGen(entries, filepath.Join(work, "ptdf"))
	check(err)
	var total datastore.LoadStats
	for _, p := range paths {
		stats, err := store.LoadPTdfFile(p)
		check(err)
		total.Add(stats)
		fmt.Printf("loaded %s: %d results\n", filepath.Base(p), stats.Results)
	}
	st := store.Stats()
	fmt.Printf("store now holds %d executions, %d results, %d metrics, %d resources\n",
		st.Executions, st.Results, st.Metrics, st.Resources)

	// All three data kinds land in one queryable store.
	tools, err := store.Tools()
	check(err)
	fmt.Printf("tools represented: %v\n", tools)

	// The mpiP caller/callee breakdown: filter by one MPI function (a
	// "child" resource set) and see which application functions call it.
	callees, err := store.ResourcesOfType("environment/module/function")
	check(err)
	if len(callees) > 0 {
		callee := callees[0]
		fam := core.NewFamily(callee)
		tbl, err := query.Retrieve(store, core.PRFilter{Families: []core.Family{fam}})
		check(err)
		callers := map[core.ResourceName]bool{}
		for _, row := range tbl.Rows {
			for _, r := range row.Resources {
				tp, err := store.TypeOfResource(r)
				check(err)
				if tp == "build/module/function" {
					callers[r] = true
				}
			}
		}
		fmt.Printf("\n%s appears in %d results; called from %d distinct functions:\n",
			callee.BaseName(), len(tbl.Rows), len(callers))
		n := 0
		for c := range callers {
			fmt.Printf("  %s\n", c.BaseName())
			if n++; n >= 6 {
				break
			}
		}
	}

	// Cross-platform: SMG Solve wall time on both machines, per execution.
	appFam, err := store.ApplyFilter(core.ResourceFilter{Type: "application"})
	check(err)
	tbl, err := query.Retrieve(store, core.PRFilter{Families: []core.Family{appFam}})
	check(err)
	tbl.FilterMetric("SMG Solve wall clock time")
	check(tbl.AddColumn("grid/machine", false))
	check(tbl.AddColumn("execution", false))
	tbl.SortBy("value", false)
	fmt.Printf("\nSMG Solve wall clock time across platforms:\n")
	for _, row := range tbl.Rows {
		fmt.Printf("  %-6s %-14s %8.3f s\n",
			tbl.Cell(row, "grid/machine"), tbl.Cell(row, "execution"), row.Value)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
