// Quickstart: create an in-memory PerfTrack store, describe a small run,
// load performance results, and query them with a pr-filter — the minimal
// end-to-end tour of the public workflow.
package main

import (
	"fmt"
	"log"
	"os"

	"perftrack/internal/chart"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

func main() {
	// A store needs a storage engine: in-memory here, reldb.OpenFile for
	// durability. Opening bootstraps the Figure 1 schema and the base
	// resource types.
	store, err := datastore.Open(reldb.NewMem())
	if err != nil {
		log.Fatal(err)
	}

	// Describe the environment: an application, a machine, an execution.
	must(store.AddResource("/linpack", "application", ""))
	must(store.AddResource("/LabGrid/Hype/batch/n0/p0", "grid/machine/partition/node/processor", ""))
	check(store.SetResourceAttribute("/LabGrid/Hype", "vendor", "IBM"))
	if _, err := store.AddExecution("linpack-001", "linpack"); err != nil {
		log.Fatal(err)
	}
	must(store.AddResource("/linpack-001", "execution", "linpack-001"))
	check(store.SetResourceAttribute("/linpack-001", "nprocs", "4"))

	// Store performance results: a value, a metric, and a context (the set
	// of resources the measurement covers).
	for np, wall := range map[string]float64{"p0": 12.5, "p1": 13.1, "p2": 12.9, "p3": 14.0} {
		procRes := core.ResourceName("/linpack-001/" + np)
		must(store.AddResource(procRes, "execution/process", "linpack-001"))
		if _, err := store.AddPerfResult(&core.PerformanceResult{
			Execution: "linpack-001",
			Metric:    "wall time",
			Value:     wall,
			Units:     "seconds",
			Tool:      "quickstart",
			Contexts: []core.Context{core.NewContext(
				"/linpack", "/LabGrid/Hype", procRes)},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Build a pr-filter: one family per constraint. Choosing the machine
	// includes its descendants, like the GUI's default "D" flag.
	machineFam, err := store.ApplyFilter(core.ResourceFilter{
		Name: "/LabGrid/Hype", Include: core.IncludeDescendants,
	})
	check(err)
	appFam, err := store.ApplyFilter(core.ResourceFilter{Type: "application"})
	check(err)
	prf := core.PRFilter{Families: []core.Family{machineFam, appFam}}

	n, err := store.CountMatches(prf)
	check(err)
	fmt.Printf("pr-filter matches %d performance results\n", n)

	// Retrieve into a table, add a free-resource column, sort, chart.
	tbl, err := query.Retrieve(store, prf)
	check(err)
	check(tbl.AddColumn("execution/process", false))
	tbl.SortBy("value", false)
	for _, row := range tbl.Rows {
		fmt.Printf("  %-10s %-10s %6.2f %s\n",
			row.Metric, tbl.Cell(row, "execution/process"), row.Value, row.Units)
	}

	keys, vals, err := tbl.GroupBy("execution/process", "avg")
	check(err)
	c := &chart.BarChart{
		Title:      "wall time by process",
		YLabel:     "seconds",
		Categories: keys,
		Series:     []chart.Series{{Name: "wall", Values: vals}},
	}
	ascii, err := c.RenderASCII(40)
	check(err)
	fmt.Println(ascii)
}

func must(_ int64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
