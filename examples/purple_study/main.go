// Purple study (§4.1): collect, store, and navigate a full set of IRS
// benchmark data from two platforms — MCR (Linux) and Frost (AIX) — then
// compare the platforms function by function with the comparison
// operators. Mirrors the paper's first case study end to end: machine
// descriptions preloaded, raw benchmark files generated per execution,
// PTdf produced via the index-file workflow, loaded, then queried.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

func main() {
	work, err := os.MkdirTemp("", "purple-study-*")
	check(err)
	defer os.RemoveAll(work)

	store, err := datastore.Open(reldb.NewMem())
	check(err)

	// Machine descriptions were already in the store before the study.
	for _, name := range []string{"MCR", "Frost"} {
		m, err := gen.MachineByName(name)
		check(err)
		for _, rec := range m.ToPTdf(2) {
			check(store.LoadRecord(rec))
		}
	}

	// Generate raw IRS output for a few runs per platform, build the
	// PTdfGen index, convert, and load.
	var entries []gen.IndexEntry
	for _, machine := range []string{"MCR", "Frost"} {
		for e := 0; e < 3; e++ {
			execName := fmt.Sprintf("irs-%s-%03d", machine, e)
			dir := filepath.Join(work, execName)
			spec := gen.ExecSpec{
				Kind: gen.KindIRS, Execution: execName, App: "irs",
				Machine: machine, NProcs: 32, Seed: int64(e + 1),
			}
			if _, err := gen.WriteExecution(dir, spec); err != nil {
				log.Fatal(err)
			}
			entries = append(entries, gen.IndexEntry{
				Execution: execName, App: "irs", Concurrency: "MPI",
				NProcs: 32, NThreads: 1,
				BuildTime: "2005-03-01T00:00:00Z", RunTime: "2005-03-02T00:00:00Z",
				Kind: gen.KindIRS, Machine: machine, Dir: dir, Seed: int64(e + 1),
			})
		}
	}
	paths, err := gen.PTdfGen(entries, filepath.Join(work, "ptdf"))
	check(err)
	var total datastore.LoadStats
	for _, p := range paths {
		stats, err := store.LoadPTdfFile(p)
		check(err)
		total.Add(stats)
	}
	fmt.Printf("loaded %d executions: %d records, %d results, %d resources\n",
		len(paths), total.Records, total.Results, total.Resources)

	// Navigate: results for one function on Frost, with free-resource
	// columns added in a second step (the Figure 4 workflow).
	frostFam, err := store.ApplyFilter(core.ResourceFilter{
		Name: "/SingleMachineFrost/Frost", Include: core.IncludeDescendants,
	})
	check(err)
	fnFam, err := store.ApplyFilter(core.ResourceFilter{Name: "/irs-code/irs.c/radsolve"})
	check(err)
	tbl, err := query.Retrieve(store, core.PRFilter{Families: []core.Family{frostFam, fnFam}})
	check(err)
	tbl.FilterMetric("WallTime max")
	check(tbl.AddColumn("execution", false))
	tbl.SortBy("value", true)
	fmt.Printf("\nWallTime max of radsolve on Frost (%d rows):\n", len(tbl.Rows))
	for _, row := range tbl.Rows {
		fmt.Printf("  %-14s %8.3f s\n", tbl.Cell(row, "execution"), row.Value)
	}

	// Cross-platform comparison (the reason the study ran on both).
	cmp, err := compare.Executions(store, "irs-Frost-000", "irs-MCR-000")
	check(err)
	sum := cmp.Summarize()
	fmt.Printf("\nFrost vs MCR: %d aligned pairs, geometric-mean ratio %.3f (MCR/Frost)\n",
		sum.Paired, sum.GeoMeanRatio)
	imps := cmp.Improvements(0.5)
	fmt.Printf("functions at least 50%% faster on MCR: %d\n", len(imps))
	for i, imp := range imps {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(imps)-5)
			break
		}
		ctxName := "?"
		for _, r := range imp.Pair.Context {
			if r.Parent() != "" && r.Parent().BaseName() == "irs.c" {
				ctxName = r.BaseName()
			}
		}
		fmt.Printf("  %-24s %-18s %6.1f%% faster\n", ctxName, imp.Pair.Metric, imp.Percent)
	}

	// Export a dataset of interest for a spreadsheet, as in the study.
	csvPath := filepath.Join(work, "frost-radsolve.csv")
	f, err := os.Create(csvPath)
	check(err)
	check(tbl.WriteCSV(f))
	check(f.Close())
	st, err := os.Stat(csvPath)
	check(err)
	fmt.Printf("\nexported %s (%d bytes) for spreadsheet analysis\n", filepath.Base(csvPath), st.Size())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
