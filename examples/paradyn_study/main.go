// Paradyn study (§4.3): incorporate data exported by the Paradyn parallel
// performance tool into an existing PerfTrack data store. Paradyn uses
// dynamic instrumentation, so its histograms may not cover the whole
// execution ('nan' bins are skipped), and its resource hierarchy includes
// types PerfTrack lacks — handled by the Figure 11 mapping plus the type
// extension interface.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/paradyn"
	"perftrack/internal/ptdf"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

func main() {
	work, err := os.MkdirTemp("", "paradyn-study-*")
	check(err)
	defer os.RemoveAll(work)

	// An existing store: machine data and one prior IRS execution.
	store, err := datastore.Open(reldb.NewMem())
	check(err)
	m, err := gen.MachineByName("MCR")
	check(err)
	for _, rec := range m.ToPTdf(2) {
		check(store.LoadRecord(rec))
	}

	// Three Paradyn sessions of IRS on MCR, exported to disk as Paradyn
	// writes them: histogram files, index, resources, search history.
	for e := 0; e < 3; e++ {
		execName := fmt.Sprintf("irs-paradyn-%03d", e)
		dir := filepath.Join(work, execName)
		check(paradyn.GenerateBundle(dir, paradyn.Run{
			Execution: execName,
			NModules:  6, NFuncs: 20, NProcs: 4,
			NBins: 200, BinWidth: 0.2, NFoci: 3, NanFrac: 0.2,
			Seed: int64(e + 1),
		}))
		bundle, err := paradyn.LoadBundle(dir)
		check(err)
		recs, err := bundle.ToPTdf("irs", execName)
		check(err)
		results := 0
		for _, rec := range recs {
			check(store.LoadRecord(rec))
			if _, ok := rec.(ptdf.PerfResultRec); ok {
				results++
			}
		}
		fmt.Printf("imported %s: %d Paradyn resources, %d histograms, %d results (nan bins skipped)\n",
			execName, len(bundle.Resources), len(bundle.Histograms), results)
	}

	st := store.Stats()
	fmt.Printf("\nstore now holds %d resources, %d results, %d metrics\n",
		st.Resources, st.Results, st.Metrics)
	fmt.Printf("type system gained: syncObject hierarchy present = %v, bin level present = %v\n",
		store.Types().Has("syncObject/type/object"), store.Types().Has("time/interval/bin"))

	// Query across the imported data: cpu_inclusive over one execution's
	// time bins, showing when instrumentation produced data.
	execFam, err := store.ApplyFilter(core.ResourceFilter{Name: "/irs-paradyn-000", Include: core.IncludeDescendants})
	check(err)
	tbl, err := query.Retrieve(store, core.PRFilter{Families: []core.Family{execFam}})
	check(err)
	tbl.FilterMetric("cpu_inclusive")
	fmt.Printf("\ncpu_inclusive results in irs-paradyn-000: %d\n", len(tbl.Rows))

	// Time bins carry start/end attributes from the histogram headers.
	bins, err := store.Descendants("/irs-paradyn-000-time")
	check(err)
	if len(bins) > 0 {
		bin, err := store.ResourceByName(bins[0])
		check(err)
		fmt.Printf("first time bin %s: start=%s end=%s seconds\n",
			bin.Name.BaseName(), bin.Attributes["start time"], bin.Attributes["end time"])
	}

	// Paradyn's machine nodes became attributes of process resources.
	procs, err := store.ResourcesOfType("execution/process")
	check(err)
	for _, p := range procs[:min(3, len(procs))] {
		res, err := store.ResourceByName(p)
		check(err)
		fmt.Printf("process %s ran on node %s\n", res.Name.BaseName(), res.Attributes["node"])
	}

	// The Performance Consultant's conclusions are recorded with the run.
	exec, err := store.ResourceByName("/irs-paradyn-000")
	check(err)
	fmt.Println("\nPerformance Consultant findings:")
	for _, k := range exec.AttributeNames() {
		if len(k) > 2 && k[:2] == "PC" {
			fmt.Printf("  %s: %s\n", k, exec.Attributes[k])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
