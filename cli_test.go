package perftrack

// End-to-end test of the command-line tools: builds the binaries once and
// drives the full §3.3 workflow — init, generate, convert, load, query,
// interactive session, figure regeneration — exactly as a user would.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

type cli struct {
	t   *testing.T
	bin string
}

func (c cli) run(tool string, args ...string) string {
	c.t.Helper()
	cmd := exec.Command(filepath.Join(c.bin, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		c.t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
	}
	return string(out)
}

// runFail runs a tool expecting a non-zero exit, returning the combined
// output.
func (c cli) runFail(tool string, args ...string) string {
	c.t.Helper()
	cmd := exec.Command(filepath.Join(c.bin, tool), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		c.t.Fatalf("%s %s: expected failure, got success\n%s", tool, strings.Join(args, " "), out)
	}
	return string(out)
}

func (c cli) runStdin(stdin, tool string, args ...string) string {
	c.t.Helper()
	cmd := exec.Command(filepath.Join(c.bin, tool), args...)
	cmd.Stdin = strings.NewReader(stdin)
	out, err := cmd.CombinedOutput()
	if err != nil {
		c.t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all binaries")
	}
	c := cli{t: t, bin: buildTools(t)}
	work := t.TempDir()
	db := filepath.Join(work, "store")
	raw := filepath.Join(work, "raw")
	ptdfDir := filepath.Join(work, "ptdf")

	// 1. Initialize with machines.
	out := c.run("ptinit", "-db", db, "-machines", "-maxnodes", "2")
	if !strings.Contains(out, "initialized PerfTrack store") ||
		!strings.Contains(out, "loaded machine BGL") {
		t.Fatalf("ptinit:\n%s", out)
	}

	// 2. Generate a dataset with an index file.
	out = c.run("ptgen", "-kind", "smg-bgl", "-out", raw, "-execs", "3", "-np", "16", "-seed", "5")
	if !strings.Contains(out, "wrote index") {
		t.Fatalf("ptgen:\n%s", out)
	}

	// 3. Convert via the index workflow.
	out = c.run("ptdfgen", "-index", filepath.Join(raw, "index.txt"), "-out", ptdfDir)
	if !strings.Contains(out, "wrote 3 PTdf files") {
		t.Fatalf("ptdfgen:\n%s", out)
	}

	// 4. Load.
	files, err := filepath.Glob(filepath.Join(ptdfDir, "*.ptdf"))
	if err != nil || len(files) != 3 {
		t.Fatalf("ptdf files: %v %v", files, err)
	}
	out = c.run("ptload", append([]string{"-db", db}, files...)...)
	if !strings.Contains(out, "store now holds 3 executions, 24 results") {
		t.Fatalf("ptload:\n%s", out)
	}

	// 5. Build/run capture wrappers.
	makeLog := filepath.Join(work, "make.out")
	os.WriteFile(makeLog, []byte("mpicc -c -O2 x.c -o x.o\nmpicc -o x x.o -lmpi\n"), 0o644)
	out = c.run("ptbuild", "-name", "smg-build-1", "-app", "smg2000", "-log", makeLog, "-db", db)
	if !strings.Contains(out, "2 compiler invocations") {
		t.Fatalf("ptbuild:\n%s", out)
	}
	out = c.run("ptrun", "-exec", "smg-live-1", "-app", "smg2000", "-np", "4",
		"-build", "smg-build-1", "-db", db)
	if !strings.Contains(out, "MPI, 4 processes") {
		t.Fatalf("ptrun:\n%s", out)
	}

	// 6. Queries: counts, reports, details, SQL, CSV.
	out = c.run("ptquery", "-db", db, "-family", "type=application", "-count")
	if !strings.Contains(out, "pr-filter matches 24 performance results") {
		t.Fatalf("ptquery count:\n%s", out)
	}
	out = c.run("ptquery", "-db", db, "-report", "executions")
	if !strings.Contains(out, "smg-bgl-001") || !strings.Contains(out, "smg-live-1") {
		t.Fatalf("ptquery executions:\n%s", out)
	}
	out = c.run("ptquery", "-db", db, "-detail", "smg-bgl-000")
	if !strings.Contains(out, "results:     8") {
		t.Fatalf("ptquery detail:\n%s", out)
	}
	out = c.run("ptquery", "-db", db, "-sql",
		"SELECT COUNT(*) FROM performance_result")
	if !strings.Contains(out, "24") {
		t.Fatalf("ptquery sql:\n%s", out)
	}
	csvPath := filepath.Join(work, "out.csv")
	c.run("ptquery", "-db", db, "-family", "type=application",
		"-metric", "Iterations", "-csv", csvPath)
	data, err := os.ReadFile(csvPath)
	if err != nil || !strings.HasPrefix(string(data), "execution,metric,value") {
		t.Fatalf("csv export: %v\n%s", err, data)
	}

	// 7. Interactive session over stdin.
	out = c.runStdin("family type=application\nfetch\nmetric Iterations\ntable\nquit\n",
		"ptgui", "-db", db)
	if !strings.Contains(out, "retrieved 24 results") || !strings.Contains(out, "Iterations") {
		t.Fatalf("ptgui:\n%s", out)
	}

	// 8. Delete an execution and verify it is gone.
	c.run("ptquery", "-db", db, "-delete-exec", "smg-bgl-001")
	out = c.run("ptquery", "-db", db, "-report", "executions")
	if strings.Contains(out, "smg-bgl-001\n") {
		t.Fatalf("deleted execution still listed:\n%s", out)
	}

	// 9. Compare two executions (§6 operators).
	out = c.run("ptcompare", "-db", db, "-a", "smg-bgl-000", "-b", "smg-bgl-002")
	if !strings.Contains(out, "aligned pairs: 8") ||
		!strings.Contains(out, "geometric-mean ratio") {
		t.Fatalf("ptcompare:\n%s", out)
	}

	// 10. Figure regeneration (cheap ones).
	out = c.run("ptbench", "-schema", "-basetypes", "-fig10", "-fig11")
	for _, want := range []string{
		"CREATE TABLE resource_item",
		"grid / machine / partition / node / processor",
		"Paradyn resource type hierarchy",
		"build/module/function",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ptbench missing %q:\n%s", want, out)
		}
	}
	svg := filepath.Join(work, "fig5.svg")
	out = c.run("ptbench", "-fig5", "-svg", svg)
	if !strings.Contains(out, "Min/max running time") {
		t.Fatalf("ptbench fig5:\n%s", out)
	}
	if st, err := os.Stat(svg); err != nil || st.Size() == 0 {
		t.Fatalf("fig5 svg missing: %v", err)
	}
}

// TestCLIDiagnose drives ptdiagnose end to end against a hand-planted
// corpus: load executions whose only systematic difference is a compiler
// attribute, then recover it as the top-ranked explanation.
func TestCLIDiagnose(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all binaries")
	}
	c := cli{t: t, bin: buildTools(t)}
	work := t.TempDir()
	db := filepath.Join(work, "store")
	c.run("ptinit", "-db", db)

	var doc strings.Builder
	doc.WriteString("Application diagapp\nResource /diagapp application\n")
	diagArgs := []string{"-db", db}
	for i := 0; i < 8; i++ {
		name := "diag-" + string(rune('0'+i))
		compiler, value := "-O2", 100.0
		side := "-a"
		if i%2 == 1 {
			compiler, value, side = "-O0", 200.0, "-b"
		}
		fmt.Fprintf(&doc, "Execution %s diagapp\n", name)
		fmt.Fprintf(&doc, "Resource /%s execution %s\n", name, name)
		fmt.Fprintf(&doc, "ResourceAttribute /%s compiler %s string\n", name, compiler)
		fmt.Fprintf(&doc, "PerfResult %s /diagapp,/%s(primary) t \"wall clock time\" %g seconds\n",
			name, name, value)
		diagArgs = append(diagArgs, side, name)
	}
	docPath := filepath.Join(work, "fleet.ptdf")
	if err := os.WriteFile(docPath, []byte(doc.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	c.run("ptload", "-db", db, docPath)

	out := c.run("ptdiagnose", append(diagArgs, "-explain")...)
	if !strings.Contains(out, "compiler = -O0") || !strings.Contains(out, "ratio B/A 2.000") {
		t.Fatalf("ptdiagnose:\n%s", out)
	}
	if !strings.Contains(out, "search trace:") {
		t.Fatalf("ptdiagnose -explain printed no trace:\n%s", out)
	}

	// 1v1 mode aligns contexts.
	out = c.run("ptdiagnose", "-db", db, "-a", "diag-0", "-b", "diag-1")
	if !strings.Contains(out, "aligned contexts") {
		t.Fatalf("ptdiagnose 1v1:\n%s", out)
	}

	// Attribute listing.
	out = c.run("ptdiagnose", "-db", db, "-attrs")
	if !strings.Contains(out, "compiler") {
		t.Fatalf("ptdiagnose -attrs:\n%s", out)
	}

	// A missing execution is a one-line hint and a non-zero exit.
	out = c.runFail("ptdiagnose", "-db", db, "-a", "diag-0", "-b", "nope")
	if !strings.Contains(out, `execution "nope" not found (try 'ptquery -report executions'`) {
		t.Fatalf("ptdiagnose not-found UX:\n%s", out)
	}
	out = c.runFail("ptcompare", "-db", db, "-a", "diag-0", "-b", "nope")
	if !strings.Contains(out, `execution "nope" not found (try 'ptquery -report executions'`) {
		t.Fatalf("ptcompare not-found UX:\n%s", out)
	}
}
