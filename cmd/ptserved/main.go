// Command ptserved serves one PerfTrack data store over HTTP, turning
// the single-process tools into a shared experiment-management service:
// many ptload/ptquery clients (via -remote) or curl scripts can ingest
// PTdf data and run pr-filter queries concurrently against one store.
//
// Usage:
//
//	ptserved -db DIR [-addr :7075] [-readonly] [-max-inflight N]
//	         [-timeout 30s] [-auto-checkpoint N] [-sync] [-pprof addr]
//	         [-log-level info] [-slow-threshold 1s] [-trace-buffer 256]
//	         [-storage mem|wal|segment] [-segment-flush N]
//	         [-plan-cache-bytes N]
//
// On SIGINT/SIGTERM the server drains in-flight requests, checkpoints
// the store (snapshot + truncated WAL), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/obs"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

func main() {
	addr := flag.String("addr", ":7075", "listen address")
	dbDir := flag.String("db", "", "data store directory (required)")
	readOnly := flag.Bool("readonly", false, "reject PTdf ingest (/v1/load returns 403)")
	maxInFlight := flag.Int("max-inflight", 64, "maximum concurrently served API requests; excess is shed with 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout for API endpoints")
	autoCheckpoint := flag.Int64("auto-checkpoint", 50000, "snapshot after this many WAL records (0 disables)")
	syncWAL := flag.Bool("sync", false, "fsync the WAL on every mutation")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	slowThreshold := flag.Duration("slow-threshold", time.Second, "log requests at or over this duration and keep their traces in the slow ring (negative disables)")
	traceBuffer := flag.Int("trace-buffer", 256, "completed traces retained for /v1/debug/traces")
	storage := flag.String("storage", "", "storage engine: mem, wal, or segment (default: auto-detect; wal for a new store)")
	segmentFlush := flag.Int64("segment-flush", 0, "segment engine: compact a hot table once this many rows are pending (0 = engine default)")
	planCacheBytes := flag.Int64("plan-cache-bytes", 0, "byte bound for the /v1/sql result cache (0 = default 32MiB, negative disables)")
	queryLogBytes := flag.Int64("query-log-bytes", 0, "byte bound per ring of the /v1/debug/queries profile capture (0 = default 1MiB, negative disables)")
	selfMonInterval := flag.Duration("selfmon-interval", 0, "continuous self-diagnosis sampling period (0 = default 15s, negative disables)")
	selfMonWindow := flag.Int("selfmon-window", 0, "telemetry samples retained by the self-monitor (0 = default 64)")
	flag.Parse()

	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "ptserved: -db is required")
		flag.Usage()
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "ptserved: ", log.LstdFlags|log.Lmsgprefix)
	slog := obs.NewLogger(os.Stderr, level)

	eng, err := reldb.Open(*storage, *dbDir)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	var checkpointer server.Checkpointer
	if fe, ok := eng.(*reldb.FileEngine); ok {
		fe.AutoCheckpoint = *autoCheckpoint
		fe.SetSync(*syncWAL)
		if *segmentFlush > 0 {
			fe.SetSegmentFlushRows(*segmentFlush)
		}
		checkpointer = fe
	}
	store, err := datastore.Open(eng)
	if err != nil {
		fatal(err)
	}
	st := store.Stats()
	logger.Printf("opened %s (%s engine): %d executions, %d results, %d resources",
		*dbDir, eng.Kind(), st.Executions, st.Results, st.Resources)

	srv, err := server.New(server.Config{
		Store:                store,
		Checkpointer:         checkpointer,
		ReadOnly:             *readOnly,
		MaxInFlight:          *maxInFlight,
		RequestTimeout:       *timeout,
		Logger:               logger,
		Log:                  slog,
		TraceBuffer:          *traceBuffer,
		SlowRequestThreshold: *slowThreshold,
		PlanCacheBytes:       *planCacheBytes,
		QueryLogBytes:        *queryLogBytes,
		SelfMonInterval:      *selfMonInterval,
		SelfMonWindow:        *selfMonWindow,
	})
	if err != nil {
		fatal(err)
	}

	// The profiler listens separately from the API so it bypasses the
	// limiter and stays reachable while the service sheds load; bind it
	// to localhost in production.
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	// Serve until a termination signal, then drain and checkpoint.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	select {
	case sig := <-sigc:
		logger.Printf("received %s", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case err := <-serveErr:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptserved:", err)
	os.Exit(1)
}
