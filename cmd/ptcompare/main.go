// Command ptcompare runs the comparison operators of §6 between two
// executions in a PerfTrack data store: aligned pairs with
// difference/ratio/speedup, regression and improvement lists, bottleneck
// diagnosis, and a summary.
//
// Usage:
//
//	ptcompare -db DIR -a execA -b execB [-metric NAME] [-threshold 0.10]
//	          [-diagnose] [-top N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perftrack/internal/compare"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

func main() {
	dbDir := flag.String("db", "", "data store directory (required)")
	execA := flag.String("a", "", "baseline execution (required)")
	execB := flag.String("b", "", "comparison execution (required)")
	metric := flag.String("metric", "", "restrict to one metric")
	threshold := flag.Float64("threshold", 0.10, "regression/improvement threshold (fraction)")
	diagnose := flag.Bool("diagnose", false, "rank bottlenecks by contribution to total slowdown")
	top := flag.Int("top", 10, "rows to print per section")
	flag.Parse()
	if *dbDir == "" || *execA == "" || *execB == "" {
		fmt.Fprintln(os.Stderr, "ptcompare: -db, -a, and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	fe, err := reldb.OpenFile(*dbDir)
	if err != nil {
		fatal(err)
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	cmp, err := compare.Executions(store, *execA, *execB)
	if err != nil {
		fatal(err)
	}
	if *metric != "" {
		cmp = cmp.FilterMetric(*metric)
	}
	sum := cmp.Summarize()
	fmt.Printf("comparing %s (A) vs %s (B)\n", *execA, *execB)
	fmt.Printf("aligned pairs: %d   only in A: %d   only in B: %d\n",
		sum.Paired, sum.OnlyA, sum.OnlyB)
	fmt.Printf("geometric-mean ratio B/A: %.4f   mean difference: %+.4f\n\n",
		sum.GeoMeanRatio, sum.MeanDiff)

	if *diagnose {
		findings := cmp.DiagnoseBottlenecks(*metric, *top)
		if len(findings) == 0 {
			fmt.Println("no bottlenecks: B is not slower than A anywhere")
			return
		}
		fmt.Printf("bottlenecks (B slower than A), worst first:\n")
		fmt.Printf("%-40s %-24s %10s %8s\n", "context", "metric", "delta", "share")
		for _, f := range findings {
			fmt.Printf("%-40s %-24s %+10.4f %7.1f%%\n",
				contextLabel(f.Pair), f.Pair.Metric, f.Delta, f.Contribution*100)
		}
		return
	}

	regs := cmp.Regressions(*threshold)
	fmt.Printf("regressions beyond %.0f%%: %d\n", *threshold*100, len(regs))
	for i, r := range regs {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(regs)-*top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (+%.1f%%)\n",
			contextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
	imps := cmp.Improvements(*threshold)
	fmt.Printf("improvements beyond %.0f%%: %d\n", *threshold*100, len(imps))
	for i, r := range imps {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(imps)-*top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (-%.1f%%)\n",
			contextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
}

// contextLabel renders the portable context of a pair compactly.
func contextLabel(p compare.Pair) string {
	var parts []string
	for _, r := range p.Context {
		if r.Depth() > 1 { // skip bare applications; keep code/time paths
			parts = append(parts, r.BaseName())
		}
	}
	if len(parts) == 0 {
		for _, r := range p.Context {
			parts = append(parts, r.BaseName())
		}
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptcompare:", err)
	os.Exit(1)
}
