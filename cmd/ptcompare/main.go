// Command ptcompare runs the comparison operators of §6 between two
// executions in a PerfTrack data store: aligned pairs with
// difference/ratio/speedup, regression and improvement lists, bottleneck
// diagnosis, and a summary.
//
// Usage:
//
//	ptcompare -db DIR -a execA -b execB [-metric NAME] [-threshold 0.10]
//	          [-diagnose] [-top N]
//	ptcompare -remote http://host:7075 -a execA -b execB [...]
//
// With -remote the comparison runs server-side (GET /v1/compare on a
// ptserved instance) and prints the same sections.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"perftrack/internal/client"
	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

func main() {
	dbDir := flag.String("db", "", "data store directory")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	execA := flag.String("a", "", "baseline execution (required)")
	execB := flag.String("b", "", "comparison execution (required)")
	metric := flag.String("metric", "", "restrict to one metric")
	threshold := flag.Float64("threshold", 0.10, "regression/improvement threshold (fraction)")
	diagnose := flag.Bool("diagnose", false, "rank bottlenecks by contribution to total slowdown")
	top := flag.Int("top", 10, "rows to print per section")
	flag.Parse()
	if (*dbDir == "") == (*remote == "") || *execA == "" || *execB == "" {
		fmt.Fprintln(os.Stderr, "ptcompare: exactly one of -db or -remote, plus -a and -b, are required")
		flag.Usage()
		os.Exit(2)
	}
	if *remote != "" {
		compareRemote(*remote, *execA, *execB, *metric, *threshold, *diagnose, *top)
		return
	}
	fe, err := reldb.OpenFile(*dbDir)
	if err != nil {
		fatal(err)
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	cmp, err := compare.Executions(store, *execA, *execB)
	if err != nil {
		fatalExec(err, *execA, *execB)
	}
	if *metric != "" {
		cmp = cmp.FilterMetric(*metric)
	}
	sum := cmp.Summarize()
	fmt.Printf("comparing %s (A) vs %s (B)\n", *execA, *execB)
	fmt.Printf("aligned pairs: %d   only in A: %d   only in B: %d\n",
		sum.Paired, sum.OnlyA, sum.OnlyB)
	fmt.Printf("geometric-mean ratio B/A: %.4f   mean difference: %+.4f\n\n",
		sum.GeoMeanRatio, sum.MeanDiff)

	if *diagnose {
		findings := cmp.DiagnoseBottlenecks(*metric, *top)
		if len(findings) == 0 {
			fmt.Println("no bottlenecks: B is not slower than A anywhere")
			return
		}
		fmt.Printf("bottlenecks (B slower than A), worst first:\n")
		fmt.Printf("%-40s %-24s %10s %8s\n", "context", "metric", "delta", "share")
		for _, f := range findings {
			fmt.Printf("%-40s %-24s %+10.4f %7.1f%%\n",
				contextLabel(f.Pair), f.Pair.Metric, f.Delta, f.Contribution*100)
		}
		return
	}

	regs := cmp.Regressions(*threshold)
	fmt.Printf("regressions beyond %.0f%%: %d\n", *threshold*100, len(regs))
	for i, r := range regs {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(regs)-*top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (+%.1f%%)\n",
			contextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
	imps := cmp.Improvements(*threshold)
	fmt.Printf("improvements beyond %.0f%%: %d\n", *threshold*100, len(imps))
	for i, r := range imps {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(imps)-*top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (-%.1f%%)\n",
			contextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
}

// compareRemote prints the same sections from a server-side comparison.
// The server applies the metric filter and computes regressions,
// improvements, and bottlenecks with the given threshold and top.
func compareRemote(baseURL, execA, execB, metric string, threshold float64, diagnose bool, top int) {
	c := client.New(baseURL)
	resp, err := c.Compare(context.Background(), execA, execB, client.CompareOptions{
		Metric: metric, Threshold: threshold, Top: top,
	})
	if err != nil {
		fatalExec(err, execA, execB)
	}
	sum := resp.Summary
	fmt.Printf("comparing %s (A) vs %s (B)\n", execA, execB)
	fmt.Printf("aligned pairs: %d   only in A: %d   only in B: %d\n",
		sum.Paired, sum.OnlyA, sum.OnlyB)
	fmt.Printf("geometric-mean ratio B/A: %.4f   mean difference: %+.4f\n\n",
		sum.GeoMeanRatio, sum.MeanDiff)

	if diagnose {
		if len(resp.Bottlenecks) == 0 {
			fmt.Println("no bottlenecks: B is not slower than A anywhere")
			return
		}
		fmt.Printf("bottlenecks (B slower than A), worst first:\n")
		fmt.Printf("%-40s %-24s %10s %8s\n", "context", "metric", "delta", "share")
		for _, f := range resp.Bottlenecks {
			fmt.Printf("%-40s %-24s %+10.4f %7.1f%%\n",
				wireContextLabel(f.Pair), f.Pair.Metric, f.Delta, f.Contribution*100)
		}
		return
	}

	fmt.Printf("regressions beyond %.0f%%: %d\n", threshold*100, len(resp.Regressions))
	for i, r := range resp.Regressions {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(resp.Regressions)-top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (+%.1f%%)\n",
			wireContextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
	fmt.Printf("improvements beyond %.0f%%: %d\n", threshold*100, len(resp.Improvements))
	for i, r := range resp.Improvements {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(resp.Improvements)-top)
			break
		}
		fmt.Printf("  %-40s %-24s %8.3f -> %8.3f  (-%.1f%%)\n",
			wireContextLabel(r.Pair), r.Pair.Metric, r.Pair.A, r.Pair.B, r.Percent)
	}
}

// contextLabel renders the portable context of a pair compactly.
func contextLabel(p compare.Pair) string {
	return resourceLabel(p.Context)
}

// wireContextLabel is contextLabel for the wire form of a pair.
func wireContextLabel(p server.ComparePair) string {
	rs := make([]core.ResourceName, len(p.Context))
	for i, s := range p.Context {
		rs[i] = core.ResourceName(s)
	}
	return resourceLabel(rs)
}

func resourceLabel(ctx []core.ResourceName) string {
	var parts []string
	for _, r := range ctx {
		if r.Depth() > 1 { // skip bare applications; keep code/time paths
			parts = append(parts, r.BaseName())
		}
	}
	if len(parts) == 0 {
		for _, r := range ctx {
			parts = append(parts, r.BaseName())
		}
	}
	return strings.Join(parts, ",")
}

// fatalExec maps a missing execution onto a one-line hint naming the
// execution; anything else falls through to fatal.
func fatalExec(err error, execs ...string) {
	if errors.Is(err, datastore.ErrNotFound) {
		for _, e := range execs {
			if strings.Contains(err.Error(), strconv.Quote(e)) {
				fmt.Fprintf(os.Stderr,
					"ptcompare: execution %q not found (try 'ptquery -report executions' to list executions)\n", e)
				os.Exit(1)
			}
		}
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptcompare:", err)
	os.Exit(1)
}
