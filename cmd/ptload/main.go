// Command ptload loads PTdf files into a PerfTrack data store through the
// PTdataStore interface (§3.3).
//
// Usage:
//
//	ptload -db DIR file.ptdf [file.ptdf ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

func main() {
	dbDir := flag.String("db", "", "data store directory (required)")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the store after loading")
	flag.Parse()
	if *dbDir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ptload: -db and at least one PTdf file are required")
		flag.Usage()
		os.Exit(2)
	}
	fe, err := reldb.OpenFile(*dbDir)
	if err != nil {
		fatal(err)
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	var total datastore.LoadStats
	for _, path := range flag.Args() {
		stats, err := store.LoadPTdfFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d records (%d resources, %d attributes, %d results)\n",
			path, stats.Records, stats.Resources, stats.Attributes, stats.Results)
		total.Add(stats)
	}
	if *checkpoint {
		if err := fe.Checkpoint(); err != nil {
			fatal(err)
		}
	}
	st := store.Stats()
	size, err := fe.DiskSize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records total; store now holds %d executions, %d results, %d resources (%.1f MB on disk)\n",
		total.Records, st.Executions, st.Results, st.Resources, float64(size)/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptload:", err)
	os.Exit(1)
}
