// Command ptload loads PTdf files into a PerfTrack data store through the
// PTdataStore interface (§3.3), either directly against a store directory
// or over the network against a running ptserved instance.
//
// Usage:
//
//	ptload -db DIR [-j N] file.ptdf [file.ptdf ...]
//	ptload -remote http://host:7075 [-j N] file.ptdf [file.ptdf ...]
//
// Each file loads transactionally: a bad record rolls the whole file
// back, so a failed load never leaves a partial experiment behind. With
// -j N files decode on N parallel workers and commit in order through a
// single committer; a bad file fails alone and the rest still load.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"perftrack/internal/client"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

func main() {
	dbDir := flag.String("db", "", "data store directory")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the store after loading (direct -db mode only)")
	storage := flag.String("storage", "", "storage engine: wal or segment (default: auto-detect; wal for a new store)")
	workers := flag.Int("j", 1, "parallel decode workers (bulk mode when > 1)")
	verbose := flag.Bool("verbose", false, "print client instrumentation (requests, retries, backoff) after a -remote load")
	flag.Parse()
	if (*dbDir == "") == (*remote == "") || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ptload: exactly one of -db or -remote, and at least one PTdf file, are required")
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "ptload: -j must be at least 1")
		os.Exit(2)
	}
	if *remote != "" {
		loadRemote(*remote, flag.Args(), *workers, *verbose)
		return
	}
	eng, err := reldb.Open(*storage, *dbDir)
	if err != nil {
		fatal(err)
	}
	fe, ok := eng.(*reldb.FileEngine)
	if !ok {
		fatal(fmt.Errorf("storage engine %q is not durable; use wal or segment", eng.Kind()))
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	var total datastore.LoadStats
	failed := 0
	if *workers > 1 {
		for _, dr := range store.BulkLoadFiles(flag.Args(), *workers) {
			if dr.Err != nil {
				failed++
				fmt.Fprintln(os.Stderr, "ptload:", dr.Err)
				continue
			}
			printFileStats(dr.Name, dr.Stats)
			total.Add(dr.Stats)
		}
	} else {
		for _, path := range flag.Args() {
			stats, err := store.LoadPTdfFile(path)
			if err != nil {
				fatal(err)
			}
			printFileStats(path, stats)
			total.Add(stats)
		}
	}
	if *checkpoint {
		if err := fe.Checkpoint(); err != nil {
			fatal(err)
		}
	}
	st := store.Stats()
	size, err := fe.DiskSize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records total; store now holds %d executions, %d results, %d resources (%.1f MB on disk)\n",
		total.Records, st.Executions, st.Results, st.Resources, float64(size)/(1<<20))
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d files failed", failed, flag.NArg()))
	}
}

// loadRemote streams the files to a ptserved instance. Sequential mode
// posts one document per request with retry; bulk mode (-j > 1) posts
// all files as one multipart stream and reports each document's status
// line as the server commits it.
func loadRemote(baseURL string, paths []string, workers int, verbose bool) {
	c := client.New(baseURL)
	if verbose {
		// onFatal, not defer: fatal's os.Exit skips deferred calls, and the
		// retry counters matter most when a load fails.
		onFatal = func() { printClientCounters(c) }
		defer printClientCounters(c)
	}
	ctx := context.Background()
	var total datastore.LoadStats
	failed := 0
	if workers > 1 {
		docs := make([]client.BatchDoc, len(paths))
		files := make([]*os.File, len(paths))
		for i, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			files[i] = f
			docs[i] = client.BatchDoc{Name: path, R: f}
		}
		summary, err := c.LoadBatch(ctx, docs, workers, func(st server.LoadDocStatus) {
			if st.Error != "" {
				fmt.Fprintln(os.Stderr, "ptload:", st.Error)
				return
			}
			printFileStats(st.Doc, st.Stats)
		})
		for _, f := range files {
			f.Close()
		}
		if err != nil {
			fatal(err)
		}
		total = summary.Stats
		failed = summary.Failed
	} else {
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			resp, err := c.Load(ctx, f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			printFileStats(path, resp.Stats)
			total.Add(resp.Stats)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records total; store now holds %d executions, %d results, %d resources\n",
		total.Records, st.Store.Executions, st.Store.Results, st.Store.Resources)
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d files failed", failed, len(paths)))
	}
}

func printFileStats(path string, stats datastore.LoadStats) {
	fmt.Printf("%s: %d records (%d resources, %d attributes, %d results)\n",
		path, stats.Records, stats.Resources, stats.Attributes, stats.Results)
}

func printClientCounters(c *client.Client) {
	st := c.Counters()
	fmt.Fprintf(os.Stderr, "ptload: client: %d requests, %d retries, %d backoff sleeps (%s total), %d stream aborts\n",
		st.Requests, st.Retries, st.BackoffSleeps, st.BackoffTotal, st.StreamAborts)
}

// onFatal, when set, runs before fatal exits (used by -verbose to flush
// the client counters past os.Exit).
var onFatal func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptload:", err)
	if onFatal != nil {
		onFatal()
	}
	os.Exit(1)
}
