// Command ptload loads PTdf files into a PerfTrack data store through the
// PTdataStore interface (§3.3), either directly against a store directory
// or over the network against a running ptserved instance.
//
// Usage:
//
//	ptload -db DIR file.ptdf [file.ptdf ...]
//	ptload -remote http://host:7075 file.ptdf [file.ptdf ...]
//
// Each file loads transactionally: a bad record rolls the whole file
// back, so a failed load never leaves a partial experiment behind.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"perftrack/internal/client"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

func main() {
	dbDir := flag.String("db", "", "data store directory")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the store after loading (direct -db mode only)")
	flag.Parse()
	if (*dbDir == "") == (*remote == "") || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "ptload: exactly one of -db or -remote, and at least one PTdf file, are required")
		flag.Usage()
		os.Exit(2)
	}
	if *remote != "" {
		loadRemote(*remote, flag.Args())
		return
	}
	fe, err := reldb.OpenFile(*dbDir)
	if err != nil {
		fatal(err)
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	var total datastore.LoadStats
	for _, path := range flag.Args() {
		stats, err := store.LoadPTdfFile(path)
		if err != nil {
			fatal(err)
		}
		printFileStats(path, stats)
		total.Add(stats)
	}
	if *checkpoint {
		if err := fe.Checkpoint(); err != nil {
			fatal(err)
		}
	}
	st := store.Stats()
	size, err := fe.DiskSize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records total; store now holds %d executions, %d results, %d resources (%.1f MB on disk)\n",
		total.Records, st.Executions, st.Results, st.Resources, float64(size)/(1<<20))
}

// loadRemote streams each file to a ptserved instance. The client
// retries shed (429) and transient failures with backoff; the server
// rolls back any file that fails partway.
func loadRemote(baseURL string, paths []string) {
	c := client.New(baseURL)
	ctx := context.Background()
	var total datastore.LoadStats
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		resp, err := c.Load(ctx, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		printFileStats(path, resp.Stats)
		total.Add(resp.Stats)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records total; store now holds %d executions, %d results, %d resources\n",
		total.Records, st.Store.Executions, st.Store.Results, st.Store.Resources)
}

func printFileStats(path string, stats datastore.LoadStats) {
	fmt.Printf("%s: %d records (%d resources, %d attributes, %d results)\n",
		path, stats.Records, stats.Resources, stats.Attributes, stats.Results)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptload:", err)
	os.Exit(1)
}
