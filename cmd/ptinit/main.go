// Command ptinit creates and bootstraps a PerfTrack data store: it builds
// the Figure 1 schema, loads the Figure 2 base resource types, and can
// preload descriptive data for the case-study machine catalog.
//
// Usage:
//
//	ptinit -db DIR [-storage wal|segment] [-machines] [-maxnodes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/reldb"
)

func main() {
	dbDir := flag.String("db", "", "data store directory (required)")
	machines := flag.Bool("machines", false, "preload the MCR/Frost/UV/BG/L machine catalog")
	maxNodes := flag.Int("maxnodes", 8, "cap on nodes emitted per partition when preloading machines (0 = all)")
	storage := flag.String("storage", "", "storage engine: wal or segment (default: wal)")
	flag.Parse()
	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "ptinit: -db is required")
		flag.Usage()
		os.Exit(2)
	}
	eng, err := reldb.Open(*storage, *dbDir)
	if err != nil {
		fatal(err)
	}
	fe, ok := eng.(*reldb.FileEngine)
	if !ok {
		fatal(fmt.Errorf("storage engine %q is not durable; use wal or segment", eng.Kind()))
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("initialized PerfTrack store in %s (%s engine)\n", *dbDir, fe.Kind())
	fmt.Printf("tables: %d, base types: %d\n",
		len(fe.TableNames()), len(store.Types().All()))
	if *machines {
		for _, m := range gen.Catalog() {
			for _, rec := range m.ToPTdf(*maxNodes) {
				if err := store.LoadRecord(rec); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("loaded machine %s (%s)\n", m.Name, m.GridName)
		}
	}
	if err := fe.Checkpoint(); err != nil {
		fatal(err)
	}
	st := store.Stats()
	fmt.Printf("resources: %d, attributes: %d\n", st.Resources, st.Attributes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptinit:", err)
	os.Exit(1)
}
