// Command ptdfgen converts a directory full of performance-tool output
// files into PTdf, driven by an index file with one entry per execution
// (§3.3). Each index entry names the execution, application, concurrency
// model, process/thread counts, timestamps, and the location and kind of
// the raw files.
//
// Usage:
//
//	ptdfgen -index index.txt -out DIR
package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/gen"
)

func main() {
	index := flag.String("index", "", "index file (required)")
	out := flag.String("out", "", "output directory for PTdf files (required)")
	flag.Parse()
	if *index == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "ptdfgen: -index and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*index)
	if err != nil {
		fatal(err)
	}
	entries, err := gen.ParseIndex(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	paths, err := gen.PTdfGen(entries, *out)
	if err != nil {
		fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "ptdfgen: wrote %d PTdf files to %s\n", len(paths), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptdfgen:", err)
	os.Exit(1)
}
