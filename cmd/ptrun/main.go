// Command ptrun is the run-capture wrapper (§3.3): it records the runtime
// environment of one execution — environment variables, process and
// thread counts, concurrency model, input deck — and emits PTdf to a file
// or directly into a data store.
//
// Usage:
//
//	ptrun -exec irs-001 -app irs -np 64 [-nt 4] [-input zrad3d]
//	      [-build irs-build-1] [-o run.ptdf | -db DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/collect"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func main() {
	execName := flag.String("exec", "", "execution name (required)")
	app := flag.String("app", "", "application name (required)")
	np := flag.Int("np", 1, "number of processes")
	nt := flag.Int("nt", 1, "number of threads per process")
	input := flag.String("input", "", "input deck path")
	build := flag.String("build", "", "build name this run used")
	out := flag.String("o", "", "write PTdf to this file")
	dbDir := flag.String("db", "", "load directly into this data store")
	flag.Parse()
	if *execName == "" || *app == "" {
		fmt.Fprintln(os.Stderr, "ptrun: -exec and -app are required")
		flag.Usage()
		os.Exit(2)
	}
	info := collect.CaptureRun(*execName, *app, *np, *nt, *input)
	info.BuildName = *build
	recs, err := info.ToPTdf()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("captured run %s: %s, %d processes x %d threads, %d PTdf records\n",
		*execName, info.Concurrency, *np, *nt, len(recs))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		err = ptdf.WriteAll(f, recs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dbDir != "" {
		fe, err := reldb.OpenFile(*dbDir)
		if err != nil {
			fatal(err)
		}
		defer fe.Close()
		store, err := datastore.Open(fe)
		if err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			if err := store.LoadRecord(rec); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("loaded into %s\n", *dbDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptrun:", err)
	os.Exit(1)
}
