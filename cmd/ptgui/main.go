// Command ptgui is the terminal analog of the PerfTrack GUI (§3.2,
// Figures 3–5): an interactive session that builds queries from resource
// types, names, and attributes with live match counts; retrieves results
// into a table; adds free-resource columns in a second step; and sorts,
// filters, charts, and exports the data.
//
// Usage:
//
//	ptgui -db DIR
//
// Type "help" at the prompt for the command list.
package main

import (
	"flag"
	"fmt"
	"os"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
	"perftrack/internal/shell"
)

func main() {
	dbDir := flag.String("db", "", "data store directory (required)")
	flag.Parse()
	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "ptgui: -db is required")
		os.Exit(2)
	}
	fe, err := reldb.OpenFile(*dbDir)
	if err != nil {
		fatal(err)
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		fatal(err)
	}
	fmt.Println("PerfTrack interactive session. Type 'help' for commands.")
	if err := shell.New(store, os.Stdout).Run(os.Stdin, true); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgui:", err)
	os.Exit(1)
}
