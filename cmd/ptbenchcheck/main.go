// Command ptbenchcheck is the CI bench-regression smoke: it compares
// the speedup ratios in freshly generated `ptbench -benchjson`
// artifacts against checked-in baselines and fails when a gated ratio
// regressed by more than -max-regress (default 30%).
//
// Ratios, not absolute ns/op, are compared so the check survives
// hardware differences between the machine that produced the baseline
// and the CI runner. Two artifact files carry ratios:
//
//   - BENCH_sql.json: planned-vs-naive per engine (naive / planned)
//   - BENCH_scan.json: row-at-a-time vs vectorized segment scan
//     (scan-rowfold / scan-vectorized), plus the 1->4 worker pair
//
// Only ratios whose baseline is at least -min-ratio (default 5x) are
// gated: those are the order-of-magnitude claims the benchmarks exist
// to protect. Smaller ratios (engines within a few x of each other,
// worker scaling on single-core runners) are reported but not gated —
// at that scale run-to-run scheduling noise exceeds any real signal.
// Gated ratios are clipped to -cap-ratio (default 15x) before
// comparison: past that point the fast side of the ratio is a handful
// of microseconds and timer noise swings the raw quotient 2x between
// runs, so the gate asserts "still at least an order of magnitude",
// not "still exactly 200x".
//
// Usage:
//
//	ptbenchcheck -baseline bench/baseline -fresh bench-fresh
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"perftrack/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory holding the checked-in BENCH_*.json baselines")
	fresh := flag.String("fresh", ".", "directory holding the freshly generated BENCH_*.json artifacts")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum allowed fractional regression of a gated ratio")
	minRatio := flag.Float64("min-ratio", 5.0, "baseline speedup below which a ratio is reported but not gated")
	capRatio := flag.Float64("cap-ratio", 15.0, "clip gated ratios here before comparing, absorbing timer noise on very large speedups")
	flag.Parse()

	base, err := loadRatios(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := loadRatios(*fresh)
	if err != nil {
		fatal(err)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := false
	fmt.Printf("%-24s %10s %10s %8s  %s\n", "ratio", "baseline", "fresh", "change", "status")
	for _, k := range keys {
		b := base[k]
		f, ok := cur[k]
		if !ok {
			fmt.Printf("%-24s %9.1fx %10s %8s  FAIL (missing from fresh artifacts)\n", k, b, "-", "-")
			failed = true
			continue
		}
		change := (f - b) / b
		status := "ok"
		switch {
		case b < *minRatio:
			status = "ok (ungated: baseline below min-ratio)"
		case min(f, *capRatio) < min(b, *capRatio)*(1-*maxRegress):
			status = fmt.Sprintf("FAIL (regressed beyond %.0f%%)", *maxRegress*100)
			failed = true
		}
		fmt.Printf("%-24s %9.1fx %9.1fx %+7.1f%%  %s\n", k, b, f, change*100, status)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("%-24s %10s %9.1fx %8s  ok (no baseline yet)\n", k, "-", cur[k], "-")
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "ptbenchcheck: speedup regression detected")
		os.Exit(1)
	}
	fmt.Println("ptbenchcheck: all gated ratios within bounds")
}

// loadRatios derives every named speedup ratio from one artifact
// directory's BENCH_sql.json and BENCH_scan.json.
func loadRatios(dir string) (map[string]float64, error) {
	sql, err := loadBench(filepath.Join(dir, "BENCH_sql.json"))
	if err != nil {
		return nil, err
	}
	scan, err := loadBench(filepath.Join(dir, "BENCH_scan.json"))
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	byOp := func(rows []experiments.BenchResult, op, engine string) float64 {
		for _, r := range rows {
			if r.Op == op && (engine == "" || r.Engine == engine) {
				return r.NsPerOp
			}
		}
		return 0
	}
	for _, r := range sql {
		if r.Op != "sql-planned" {
			continue
		}
		if naive := byOp(sql, "sql-naive", r.Engine); naive > 0 && r.NsPerOp > 0 {
			out["sql-planned/"+r.Engine] = naive / r.NsPerOp
		}
	}
	if vec, fold := byOp(scan, "scan-vectorized", ""), byOp(scan, "scan-rowfold", ""); vec > 0 && fold > 0 {
		out["scan-vectorized"] = fold / vec
	}
	if w1, w4 := byOp(scan, "scan-vectorized-w1", ""), byOp(scan, "scan-vectorized-w4", ""); w1 > 0 && w4 > 0 {
		out["scan-worker-scaling"] = w1 / w4
	}
	return out, nil
}

func loadBench(path string) ([]experiments.BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []experiments.BenchResult
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptbenchcheck:", err)
	os.Exit(1)
}
