// Command ptdiagnose answers "why is execution (or set) B slower than
// (set) A?" against a PerfTrack data store: it aligns results, ranks
// bottleneck metrics, and searches the resource-attribute space for the
// predicates that best discriminate the slow side from the fast side.
//
// Usage:
//
//	ptdiagnose -db DIR -a execA -b execB [-metric NAME] [-top N]
//	           [-explain] [-min-coverage 0.25]
//	ptdiagnose -db DIR -a e1 -a e2 -b e3 -b e4        (set vs set)
//	ptdiagnose -db DIR -afamily 'attr=compiler=-O2' -bfamily 'attr=compiler=-O0'
//	ptdiagnose -remote http://host:7075 [...]          (server-side)
//	ptdiagnose -db DIR -attrs [-attr-prefix P]         (list attribute keys)
//
// Each side is exactly one of: a single -a/-b execution, repeated -a/-b
// executions, or repeated -afamily/-bfamily pr-filter specs (ptquery
// syntax). With -remote the diagnosis runs on a ptserved instance via
// POST /v1/diagnose; both modes print the same report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"perftrack/internal/client"
	"perftrack/internal/datastore"
	"perftrack/internal/diagnose"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	dbDir := flag.String("db", "", "data store directory")
	storage := flag.String("storage", "", "storage engine: wal or segment (default: auto-detect)")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	var execsA, execsB, famsA, famsB stringList
	flag.Var(&execsA, "a", "fast-side execution (repeatable)")
	flag.Var(&execsB, "b", "slow-side execution (repeatable)")
	flag.Var(&famsA, "afamily", "fast-side resource-filter spec (repeatable)")
	flag.Var(&famsB, "bfamily", "slow-side resource-filter spec (repeatable)")
	metric := flag.String("metric", "", "restrict the perf measure to one metric (default: time-like results)")
	top := flag.Int("top", diagnose.DefaultTop, "explanations/bottlenecks/contexts to print")
	minCoverage := flag.Float64("min-coverage", diagnose.DefaultMinCoverage,
		"skip attributes defined on less than this fraction of the selected executions")
	explain := flag.Bool("explain", false, "print the predicate search trace")
	workers := flag.Int("j", 0, "local diagnosis parallelism (0 = GOMAXPROCS)")
	attrs := flag.Bool("attrs", false, "list attribute keys and their value domains instead of diagnosing")
	attrPrefix := flag.String("attr-prefix", "", "with -attrs: only keys with this name prefix")
	flag.Parse()

	if (*dbDir == "") == (*remote == "") {
		fmt.Fprintln(os.Stderr, "ptdiagnose: exactly one of -db or -remote is required")
		flag.Usage()
		os.Exit(2)
	}
	if *attrs {
		runAttrs(*dbDir, *storage, *remote, *attrPrefix)
		return
	}

	req := server.DiagnoseRequest{
		Metric: *metric, Top: *top, MinCoverage: *minCoverage, Explain: *explain,
	}
	// One execution means the 1v1 mode (with context alignment); several
	// mean an explicit set.
	switch len(execsA) {
	case 0:
	case 1:
		req.ExecA = execsA[0]
	default:
		req.ExecsA = execsA
	}
	switch len(execsB) {
	case 0:
	case 1:
		req.ExecB = execsB[0]
	default:
		req.ExecsB = execsB
	}
	req.FamiliesA = famsA
	req.FamiliesB = famsB

	var resp server.DiagnoseResponse
	if *remote != "" {
		c := client.New(*remote)
		var err error
		resp, err = c.Diagnose(context.Background(), req)
		if err != nil {
			fatalExec(err, append(execsA, execsB...))
		}
	} else {
		spec, err := req.Spec()
		if err != nil {
			fatal(err)
		}
		spec.Workers = *workers
		eng, err := reldb.Open(*storage, *dbDir)
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		store, err := datastore.Open(eng)
		if err != nil {
			fatal(err)
		}
		res, err := diagnose.Run(context.Background(), store, spec)
		if err != nil {
			fatalExec(err, append(execsA, execsB...))
		}
		resp = server.NewDiagnoseResponse(res)
	}
	printDiagnosis(resp, *top)
}

// runAttrs lists attribute keys with their value domains.
func runAttrs(dbDir, storage, remote, prefix string) {
	var keys []server.AttributeKey
	if remote != "" {
		resp, err := client.New(remote).Attributes(context.Background(), prefix)
		if err != nil {
			fatal(err)
		}
		keys = resp.Keys
	} else {
		eng, err := reldb.Open(storage, dbDir)
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		store, err := datastore.Open(eng)
		if err != nil {
			fatal(err)
		}
		infos, err := store.AttributeKeys(prefix)
		if err != nil {
			fatal(err)
		}
		for _, k := range infos {
			ak := server.AttributeKey{
				Name: k.Name, Resources: k.Resources, Distinct: k.Distinct,
				Numeric: k.Numeric, Values: k.Values,
			}
			if k.Numeric {
				min, max := k.Min, k.Max
				ak.Min, ak.Max = &min, &max
			}
			keys = append(keys, ak)
		}
	}
	fmt.Printf("%-28s %10s %9s  %s\n", "attribute", "resources", "distinct", "domain")
	for _, k := range keys {
		domain := strings.Join(k.Values, ", ")
		if k.Numeric && k.Min != nil && k.Max != nil {
			domain = fmt.Sprintf("numeric [%g .. %g]", *k.Min, *k.Max)
		}
		if len(domain) > 60 {
			domain = domain[:57] + "..."
		}
		fmt.Printf("%-28s %10d %9d  %s\n", k.Name, k.Resources, k.Distinct, domain)
	}
}

// fv renders a possibly-null wire float.
func fv(p *float64, format string) string {
	if p == nil {
		return "n/a"
	}
	return fmt.Sprintf(format, *p)
}

func printDiagnosis(resp server.DiagnoseResponse, top int) {
	fmt.Printf("diagnosing %s (A, fast) vs %s (B, slow)\n",
		sideLabel(resp.SideA), sideLabel(resp.SideB))
	measure := "time-like results"
	if resp.Metric != "" {
		measure = fmt.Sprintf("metric %q", resp.Metric)
	}
	fmt.Printf("perf (%s): A %s   B %s   delta %s   ratio B/A %s\n\n",
		measure, fv(resp.PerfA, "%.4g"), fv(resp.PerfB, "%.4g"),
		fv(resp.Delta, "%+.4g"), fv(resp.Ratio, "%.3f"))

	if len(resp.Explanations) == 0 {
		fmt.Printf("no discriminating predicates found (%d attribute keys, %d candidates scored)\n",
			resp.Keys, resp.Candidates)
	} else {
		fmt.Printf("explanations (%d keys, %d candidates scored), best first:\n", resp.Keys, resp.Candidates)
		fmt.Printf("  %-34s %7s %7s %5s  %-13s %-13s %s\n",
			"predicate", "score", "effect", "cov", "slow matches", "fast matches", "perf hold vs not")
		for i, ex := range resp.Explanations {
			if i >= top && top > 0 {
				fmt.Printf("  ... %d more\n", len(resp.Explanations)-top)
				break
			}
			fmt.Printf("  %-34s %7.3f %7.3f %5.2f  %5d /%5d  %5d /%5d  %s vs %s (ratio %s)\n",
				ex.Predicate, ex.Score, ex.Effect, ex.Coverage,
				ex.MatchB, ex.DefinedB, ex.MatchA, ex.DefinedA,
				fv(ex.MeanHold, "%.4g"), fv(ex.MeanNot, "%.4g"), fv(ex.Ratio, "%.3f"))
		}
	}

	if len(resp.Bottlenecks) > 0 {
		fmt.Printf("\nbottleneck metrics (B slower than A), worst first:\n")
		fmt.Printf("  %-28s %12s %12s %12s %7s\n", "metric", "mean A", "mean B", "delta", "share")
		for _, b := range resp.Bottlenecks {
			fmt.Printf("  %-28s %12.4f %12.4f %+12.4f %6.1f%%\n",
				b.Metric, b.MeanA, b.MeanB, b.Delta, b.Contribution*100)
		}
	}

	if len(resp.Contexts) > 0 {
		fmt.Printf("\naligned contexts (%d pairs), largest slowdown first:\n", resp.AlignedPairs)
		fmt.Printf("  %-40s %-24s %12s %7s\n", "context", "metric", "delta", "share")
		for _, cf := range resp.Contexts {
			fmt.Printf("  %-40s %-24s %+12.4f %6.1f%%\n",
				strings.Join(cf.Context, ","), cf.Metric, cf.Delta, cf.Contribution*100)
		}
	}

	if len(resp.Trace) > 0 {
		fmt.Printf("\nsearch trace:\n")
		for _, line := range resp.Trace {
			fmt.Printf("  %s\n", line)
		}
	}
}

func sideLabel(execs []string) string {
	if len(execs) == 1 {
		return execs[0]
	}
	return fmt.Sprintf("%d executions", len(execs))
}

// fatalExec maps a missing execution to the one-line hint; anything else
// falls through to fatal.
func fatalExec(err error, execs []string) {
	if errors.Is(err, datastore.ErrNotFound) {
		for _, e := range execs {
			if strings.Contains(err.Error(), strconv.Quote(e)) {
				fmt.Fprintf(os.Stderr,
					"ptdiagnose: execution %q not found (try 'ptquery -report executions' to list executions)\n", e)
				os.Exit(1)
			}
		}
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptdiagnose:", err)
	os.Exit(1)
}
