// Command ptsql runs SQL SELECTs against a PerfTrack data store through
// the cost-based query planner (internal/planner). Queries see the
// virtual catalog — execution, resource, attribute, and
// performance_result tables keyed by names — plus the WHERE-only
// pseudo-columns "family" (a pr-filter spec) and "resource" on
// performance_result; anything the catalog cannot express falls back to
// the physical schema.
//
// Examples:
//
//	ptsql -db store 'SELECT metric, avg(value) FROM performance_result GROUP BY metric'
//	ptsql -db store -explain "SELECT count(*) FROM performance_result WHERE family = 'attr=clock>1000'"
//	ptsql -remote http://localhost:7075 'SELECT name, application FROM execution ORDER BY name'
//
// With -remote the statement runs on a ptserved instance via POST
// /v1/sql; -explain prints the chosen plan (with estimated vs. actual
// cardinalities) to stderr in both modes, through the same formatter
// ptquery uses. -analyze is the EXPLAIN ANALYZE form: the plan plus the
// execution profile — per-operator row counts, segment blocks scanned
// vs. zone-map-pruned, B-tree tail rows, kernel vs. merge wall time,
// per-worker row loads, and the planner's cardinality error. -naive
// disables the cost-based machinery locally, for A/B-ing plans.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"perftrack/internal/client"
	"perftrack/internal/datastore"
	"perftrack/internal/planner"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

func main() {
	dbDir := flag.String("db", "", "data store directory")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	storage := flag.String("storage", "", "storage engine: wal or segment (default: auto-detect)")
	explain := flag.Bool("explain", false, "print the chosen plan with estimated vs. actual cardinalities to stderr")
	analyze := flag.Bool("analyze", false, "like -explain, plus the execution profile (rows, blocks, kernel/merge time, workers)")
	limit := flag.Int("limit", 0, "maximum rows to return (0 = all)")
	naive := flag.Bool("naive", false, "disable the cost-based planner (local only; full scans, no pushdown)")
	flag.Parse()

	if (*dbDir == "") == (*remote == "") {
		fmt.Fprintln(os.Stderr, "ptsql: exactly one of -db or -remote is required")
		flag.Usage()
		os.Exit(2)
	}
	sqlText := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if sqlText == "" || sqlText == "-" {
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sqlText = strings.TrimSpace(string(raw))
	}
	if sqlText == "" {
		fatal(fmt.Errorf("no SQL given (pass the statement as arguments or on stdin)"))
	}

	if *remote != "" {
		if *naive {
			fatal(fmt.Errorf("-naive needs direct store access; use -db"))
		}
		runRemote(*remote, sqlText, *explain, *analyze, *limit)
		return
	}

	eng, err := reldb.Open(*storage, *dbDir)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	store, err := datastore.Open(eng)
	if err != nil {
		fatal(err)
	}
	p := planner.New(store)
	p.Naive = *naive
	res, plan, err := p.Query(context.Background(), sqlText)
	if err != nil {
		fatal(err)
	}
	if *limit > 0 && len(res.Rows) > *limit {
		res.Rows = res.Rows[:*limit]
	}
	fmt.Print(res.FormatTable())
	if *analyze {
		fmt.Fprint(os.Stderr, planner.Format(plan.WireAnalyze()))
	} else if *explain {
		fmt.Fprint(os.Stderr, planner.Format(plan.Wire()))
	}
}

// runRemote executes the statement on a ptserved instance via POST
// /v1/sql, rendering the rows tab-separated and the plan through the
// shared formatter.
func runRemote(baseURL, sqlText string, explain, analyze bool, limit int) {
	c := client.New(baseURL)
	resp, err := c.SQL(context.Background(), server.SQLRequest{
		SQL: sqlText, Explain: explain, Analyze: analyze, Limit: limit,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(strings.Join(resp.Columns, "\t"))
	for _, row := range resp.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	if resp.Truncated {
		fmt.Printf("... %d more rows\n", resp.RowCount-len(resp.Rows))
	}
	if explain || analyze {
		fmt.Fprint(os.Stderr, planner.Format(resp.Plan))
	}
}

// formatCell renders one JSON cell: null as NULL, numbers via %g so
// integers round-trip without a trailing ".0".
func formatCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case float64:
		return fmt.Sprintf("%g", x)
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	}
	return fmt.Sprintf("%v", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptsql:", err)
	os.Exit(1)
}
