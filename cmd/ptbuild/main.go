// Command ptbuild is the build-capture wrapper (§3.3): it runs (or reads)
// a make log, captures the build environment and compilation information
// — compilers, MPI wrapper scripts, flags, linked libraries — and emits
// PTdf, either to a file or directly into a data store.
//
// Usage:
//
//	ptbuild -name irs-build-1 -app irs -log make.out [-o build.ptdf | -db DIR]
//
// With -log - the make log is read from standard input, so the tool can
// wrap a live build: make | ptbuild -name ... -log -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"perftrack/internal/collect"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func main() {
	name := flag.String("name", "", "unique build name (required)")
	app := flag.String("app", "", "application name (required)")
	logPath := flag.String("log", "", "make log file, or - for stdin (required)")
	out := flag.String("o", "", "write PTdf to this file")
	dbDir := flag.String("db", "", "load directly into this data store")
	flag.Parse()
	if *name == "" || *app == "" || *logPath == "" {
		fmt.Fprintln(os.Stderr, "ptbuild: -name, -app, and -log are required")
		flag.Usage()
		os.Exit(2)
	}
	var logReader io.Reader = os.Stdin
	if *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logReader = f
	}
	info, err := collect.CaptureBuild(*name, *app, logReader)
	if err != nil {
		fatal(err)
	}
	recs := info.ToPTdf()
	fmt.Printf("captured build %s: %d compiler invocations, %d libraries, %d PTdf records\n",
		*name, len(info.Invocations), len(info.Libraries), len(recs))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		err = ptdf.WriteAll(f, recs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dbDir != "" {
		fe, err := reldb.OpenFile(*dbDir)
		if err != nil {
			fatal(err)
		}
		defer fe.Close()
		store, err := datastore.Open(fe)
		if err != nil {
			fatal(err)
		}
		for _, rec := range recs {
			if err := store.LoadRecord(rec); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("loaded into %s\n", *dbDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptbuild:", err)
	os.Exit(1)
}
