// Command ptquery is the scriptable query interface to a PerfTrack data
// store: it builds pr-filters from resource-filter specs, reports match
// counts (the Figure 3 live counts), retrieves results in tabular form
// (Figure 4), adds free-resource columns, sorts, exports CSV, renders bar
// charts (Figure 5), runs raw SQL, and prints simple reports.
//
// Filter specs (one per -family flag) are semicolon-separated key=value
// pairs:
//
//	type=grid/machine                 select by resource type
//	name=/MCRGrid/MCR                 select by full resource name
//	base=batch                        select by base name
//	attr=clock MHz>1000               attribute predicate (= != < <= > >= ~)
//	rel=D                             relatives: N, D (default), A, or B
//
// Examples:
//
//	ptquery -db store -family 'name=/MCRGrid/MCR;rel=D' -family 'type=application' -count
//	ptquery -db store -family 'type=application' -addattr execution.nprocs -sort value -csv out.csv
//	ptquery -db store -report metrics
//	ptquery -db store -sql 'SELECT name FROM metric ORDER BY name'
//
// With -remote http://host:7075 the same counts, result tables, and
// reports are answered by a running ptserved instance instead of a local
// store directory; -sql, -detail, -delete-exec, -chart, -csv, and
// -report free need direct store access and remain local-only.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"perftrack/internal/client"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/planner"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	dbDir := flag.String("db", "", "data store directory")
	remote := flag.String("remote", "", "ptserved base URL (e.g. http://localhost:7075) instead of -db")
	var families stringList
	flag.Var(&families, "family", "resource-filter spec (repeatable)")
	countOnly := flag.Bool("count", false, "print match counts only (Figure 3 live counts)")
	explain := flag.Bool("explain", false, "print the access-path plan and query-engine statistics to stderr")
	report := flag.String("report", "", "report: executions, metrics, applications, tools, stats, free")
	sqlQuery := flag.String("sql", "", "run a raw SQL query against the store")
	detail := flag.String("detail", "", "print the detail report for one execution")
	deleteExec := flag.String("delete-exec", "", "delete one execution and all data only it owns")
	var addCols stringList
	flag.Var(&addCols, "addcol", "add a free-resource column by type (repeatable)")
	var addAttrs stringList
	flag.Var(&addAttrs, "addattr", "add an attribute column: type.attribute (repeatable)")
	sortBy := flag.String("sort", "", "sort by column")
	desc := flag.Bool("desc", false, "sort descending")
	metricFilter := flag.String("metric", "", "keep only rows with this metric")
	csvOut := flag.String("csv", "", "export the table as CSV to this file")
	chartBy := flag.String("chart", "", "render an ASCII bar chart grouped by this column")
	reduce := flag.String("reduce", "avg", "chart reducer: min, max, avg, sum, count")
	limit := flag.Int("limit", 50, "maximum rows to print (0 = all)")
	stream := flag.Bool("stream", false, "with -remote: stream rows as NDJSON arrives (/v1/results?stream=1) instead of fetching the whole table")
	verbose := flag.Bool("verbose", false, "with -remote: print client instrumentation (requests, retries, backoff) to stderr")
	storage := flag.String("storage", "", "storage engine: wal or segment (default: auto-detect)")
	flag.Parse()

	if (*dbDir == "") == (*remote == "") {
		fmt.Fprintln(os.Stderr, "ptquery: exactly one of -db or -remote is required")
		flag.Usage()
		os.Exit(2)
	}
	if *remote != "" {
		for flagName, set := range map[string]bool{
			"-sql": *sqlQuery != "", "-detail": *detail != "", "-delete-exec": *deleteExec != "",
			"-chart": *chartBy != "", "-csv": *csvOut != "", "-report free": *report == "free",
		} {
			if set {
				fatal(fmt.Errorf("%s needs direct store access; use -db", flagName))
			}
		}
		runRemote(*remote, remoteQuery{
			families: families, countOnly: *countOnly, explain: *explain, report: *report,
			metric: *metricFilter, addCols: addCols, addAttrs: addAttrs,
			sortBy: *sortBy, desc: *desc, limit: *limit, stream: *stream, verbose: *verbose,
		})
		return
	}
	if *stream {
		fatal(fmt.Errorf("-stream needs -remote; local retrieval is already in-process"))
	}
	eng, err := reldb.Open(*storage, *dbDir)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	store, err := datastore.Open(eng)
	if err != nil {
		fatal(err)
	}

	if *sqlQuery != "" {
		res, err := store.SQL().Query(*sqlQuery)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.FormatTable())
		return
	}
	if *detail != "" {
		d, err := store.ExecutionDetail(*detail)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("execution:   %s\napplication: %s\nresults:     %d\nresources:   %d\nmetrics:     %d\ntools:       %s\n",
			d.Name, d.Application, d.Results, d.Resources, len(d.Metrics),
			strings.Join(d.Tools, ", "))
		for _, k := range sortedKeys(d.Attributes) {
			fmt.Printf("  %s = %s\n", k, d.Attributes[k])
		}
		return
	}
	if *deleteExec != "" {
		if err := store.DeleteExecution(*deleteExec); err != nil {
			fatal(err)
		}
		if fe, ok := eng.(*reldb.FileEngine); ok {
			if err := fe.Checkpoint(); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "deleted execution %s\n", *deleteExec)
		return
	}
	if *report != "" && *report != "free" {
		runReport(store, *report)
		return
	}

	// Build the pr-filter.
	prf := core.PRFilter{}
	for _, spec := range families {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			fatal(err)
		}
		fam, err := store.ApplyFilter(rf)
		if err != nil {
			fatal(err)
		}
		n, err := store.CountFamilyMatches(fam)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "family %q: %d resources, matches %d results alone\n",
			spec, fam.Size(), n)
		prf.Families = append(prf.Families, fam)
	}
	total, err := store.CountMatches(prf)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pr-filter matches %d performance results\n", total)
	if *explain {
		st := store.QueryEngineStats()
		fmt.Fprintf(os.Stderr, "query engine: generation %d, cache %d hits / %d misses, %d entries\n",
			st.Generation, st.CacheHits, st.CacheMisses, st.CacheEntries)
		fmt.Fprint(os.Stderr, planner.Format(planner.PRFilterPlan(store, nil, families, total)))
	}
	if *countOnly {
		return
	}

	tbl, err := query.Retrieve(store, prf)
	if err != nil {
		fatal(err)
	}
	if *report == "free" {
		free, err := tbl.FreeResources()
		if err != nil {
			fatal(err)
		}
		fmt.Println("free resources (types whose values differ across results):")
		for _, c := range free {
			fmt.Printf("  %-40s %4d distinct  attrs: %s\n",
				c.Type, c.Distinct, strings.Join(c.Attributes, ", "))
		}
		return
	}
	if *metricFilter != "" {
		tbl.FilterMetric(*metricFilter)
	}
	for _, col := range addCols {
		if err := tbl.AddColumn(core.TypePath(col), false); err != nil {
			fatal(err)
		}
	}
	for _, spec := range addAttrs {
		i := strings.LastIndexByte(spec, '.')
		if i <= 0 {
			fatal(fmt.Errorf("bad -addattr %q, want type.attribute", spec))
		}
		if err := tbl.AddAttributeColumn(core.TypePath(spec[:i]), spec[i+1:]); err != nil {
			fatal(err)
		}
	}
	if *sortBy != "" {
		tbl.SortBy(*sortBy, *desc)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		err = tbl.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", *csvOut, len(tbl.Rows))
		return
	}
	if *chartBy != "" {
		keys, vals, err := tbl.GroupBy(*chartBy, *reduce)
		if err != nil {
			fatal(err)
		}
		printChart(keys, vals, *chartBy, *reduce)
		return
	}
	printTable(tbl, *limit)
}

// remoteQuery bundles the flags forwarded to a ptserved instance.
type remoteQuery struct {
	families  []string
	countOnly bool
	explain   bool
	report    string
	metric    string
	addCols   []string
	addAttrs  []string
	sortBy    string
	desc      bool
	limit     int
	stream    bool
	verbose   bool
}

// runRemote answers counts, result tables, and reports from a ptserved
// instance over HTTP. The client retries shed and transient failures.
func runRemote(baseURL string, q remoteQuery) {
	c := client.New(baseURL)
	ctx := context.Background()
	if q.verbose {
		// onFatal, not defer: fatal's os.Exit skips deferred calls, and the
		// retry counters matter most when a call fails.
		onFatal = func() { printClientCounters(c) }
		defer printClientCounters(c)
	}

	if q.report == "stats" {
		st, err := c.Stats(ctx)
		if err != nil {
			fatal(err)
		}
		printStats(st.Store)
		return
	}
	if q.report != "" {
		rep, err := c.Report(ctx, q.report)
		if err != nil {
			fatal(err)
		}
		for _, item := range rep.Items {
			fmt.Println(item)
		}
		return
	}

	qr, err := c.QueryWith(ctx, server.QueryRequest{Families: q.families, Explain: q.explain})
	if err != nil {
		fatal(err)
	}
	for _, fam := range qr.Families {
		fmt.Fprintf(os.Stderr, "family %q: %d resources, matches %d results alone\n",
			fam.Spec, fam.Resources, fam.Matches)
	}
	fmt.Fprintf(os.Stderr, "pr-filter matches %d performance results\n", qr.Matches)
	if q.explain {
		fmt.Fprintf(os.Stderr, "query engine: generation %d, cache %d hits / %d misses\n",
			qr.Generation, qr.CacheHits, qr.CacheMisses)
		fmt.Fprint(os.Stderr, planner.Format(qr.Plan))
	}
	if q.countOnly {
		return
	}

	if q.stream {
		if len(q.addCols) > 0 || len(q.addAttrs) > 0 || q.sortBy != "" {
			fatal(fmt.Errorf("-stream supports -family, -metric, and -limit only (sorting and added columns need the full result set)"))
		}
		rows := 0
		summary, err := c.ResultsStream(ctx, server.ResultsRequest{
			Families: q.families, Metric: q.metric, Limit: q.limit,
		}, func(row server.ResultRow) {
			if rows == 0 {
				fmt.Println("execution\tmetric\tvalue\tunits\ttool\tresources")
			}
			rows++
			fmt.Printf("%s\t%s\t%g\t%s\t%s\t%s\n",
				row.Execution, row.Metric, row.Value, row.Units, row.Tool,
				strings.Join(row.Resources, ","))
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "streamed %d rows\n", summary.Rows)
		return
	}
	res, err := c.Results(ctx, server.ResultsRequest{
		Families:      q.families,
		Metric:        q.metric,
		AddColumns:    q.addCols,
		AddAttributes: q.addAttrs,
		SortBy:        q.sortBy,
		Descending:    q.desc,
		Limit:         q.limit,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	if res.Total > len(res.Rows) {
		fmt.Printf("... %d more rows\n", res.Total-len(res.Rows))
	}
}

func runReport(store *datastore.Store, report string) {
	list := func(items []string, err error) {
		if err != nil {
			fatal(err)
		}
		for _, it := range items {
			fmt.Println(it)
		}
	}
	switch report {
	case "executions":
		list(store.Executions())
	case "metrics":
		list(store.Metrics())
	case "applications":
		list(store.Applications())
	case "tools":
		list(store.Tools())
	case "stats":
		printStats(store.Stats())
	default:
		fatal(fmt.Errorf("unknown report %q", report))
	}
}

func printStats(st datastore.Stats) {
	fmt.Printf("applications: %d\nexecutions:   %d\nresources:    %d\nattributes:   %d\nresults:      %d\nmetrics:      %d\nfoci:         %d\ndata bytes:   %d\n",
		st.Applications, st.Executions, st.Resources, st.Attributes,
		st.Results, st.Metrics, st.Foci, st.DataBytes)
}

func printTable(tbl *query.Table, limit int) {
	cols := tbl.Columns()
	fmt.Println(strings.Join(cols, "\t"))
	for i, row := range tbl.Rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... %d more rows\n", len(tbl.Rows)-limit)
			break
		}
		cells := make([]string, len(cols))
		for j, c := range cols {
			cells[j] = tbl.Cell(row, c)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}

func printChart(keys []string, vals []float64, column, reduce string) {
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Printf("%s(value) by %s\n", reduce, column)
	for i, k := range keys {
		n := int(vals[i] / maxV * 50)
		fmt.Printf("%-20s |%s %g\n", k, strings.Repeat("#", n), vals[i])
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printClientCounters(c *client.Client) {
	st := c.Counters()
	fmt.Fprintf(os.Stderr, "ptquery: client: %d requests, %d retries, %d backoff sleeps (%s total), %d stream aborts\n",
		st.Requests, st.Retries, st.BackoffSleeps, st.BackoffTotal, st.StreamAborts)
}

// onFatal, when set, runs before fatal exits (used by -verbose to flush
// the client counters past os.Exit).
var onFatal func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptquery:", err)
	if onFatal != nil {
		onFatal()
	}
	os.Exit(1)
}
