// Command ptbench regenerates the paper's evaluation artifacts: Table 1's
// dataset statistics, the Figure 5 load-balance chart, the Figure 9 PTdf
// excerpt, the live database schema (Figure 1), the base resource types
// (Figure 2), and the Paradyn hierarchy and mapping (Figures 10–11).
//
// Usage:
//
//	ptbench -table1 [-full]     regenerate Table 1 (quick scale by default)
//	ptbench -fig5 [-svg f.svg]  regenerate Figure 5
//	ptbench -fig9               regenerate Figure 9
//	ptbench -schema             print the live Figure 1 schema
//	ptbench -basetypes          print the Figure 2 base types
//	ptbench -fig10 -fig11       print the Paradyn hierarchy and mapping
//	ptbench -benchjson [-bench-rows N] [-bench-execs N] [-bench-out DIR]
//	                            measure materialize, bulk-load, and
//	                            planned-vs-naive SQL per storage engine,
//	                            vectorized-vs-row-at-a-time segment scans,
//	                            plus serial/parallel diagnosis, writing
//	                            BENCH_materialize.json, BENCH_bulkload.json,
//	                            BENCH_sql.json, BENCH_scan.json, and
//	                            BENCH_diagnose.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perftrack/internal/datastore"
	"perftrack/internal/experiments"
	"perftrack/internal/reldb"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	full := flag.Bool("full", false, "use the paper's execution counts (62/35/60) for -table1")
	fig5 := flag.Bool("fig5", false, "regenerate Figure 5")
	svgOut := flag.String("svg", "", "also write the Figure 5 chart as SVG to this file")
	function := flag.String("function", "xdouble", "function charted by -fig5")
	fig9 := flag.Bool("fig9", false, "regenerate the Figure 9 PTdf excerpt")
	modelDemo := flag.Bool("model", false, "fit a scaling model to Fig5-style runs and compare against measurement (§6)")
	schema := flag.Bool("schema", false, "print the live database schema (Figure 1)")
	baseTypes := flag.Bool("basetypes", false, "print the base resource types (Figure 2)")
	fig10 := flag.Bool("fig10", false, "print Paradyn's resource hierarchy (Figure 10)")
	fig11 := flag.Bool("fig11", false, "print the Paradyn type mapping (Figure 11)")
	benchJSON := flag.Bool("benchjson", false, "benchmark each storage engine and write BENCH_*.json artifacts")
	benchRows := flag.Int("bench-rows", 100_000, "synthetic result rows for -benchjson")
	benchIters := flag.Int("bench-iters", 3, "timed materialize iterations per engine for -benchjson")
	benchExecs := flag.Int("bench-execs", 100, "synthetic fleet executions for the -benchjson diagnosis rows")
	benchOut := flag.String("bench-out", ".", "directory for the -benchjson artifacts")
	flag.Parse()

	any := false
	if *schema || *baseTypes {
		any = true
		s, err := datastore.Open(reldb.NewMem())
		if err != nil {
			fatal(err)
		}
		if *schema {
			fmt.Println("PerfTrack database schema (Figure 1)")
			fmt.Println()
			fmt.Println(s.SchemaDDL())
		}
		if *baseTypes {
			fmt.Println(experiments.Fig2BaseTypes(s))
		}
	}
	if *table1 {
		any = true
		work, err := os.MkdirTemp("", "perftrack-table1-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(work)
		cfg := experiments.QuickTable1Config(work)
		if *full {
			cfg = experiments.DefaultTable1Config(work)
		}
		fmt.Fprintf(os.Stderr, "ptbench: generating datasets (%d/%d/%d executions)...\n",
			cfg.IRSExecs, cfg.SMGUVExecs, cfg.SMGBGLExecs)
		rows, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *fig5 {
		any = true
		counts := []int{2, 4, 8, 16, 32, 64}
		s, err := experiments.Fig5Store(counts, 1)
		if err != nil {
			fatal(err)
		}
		c, err := experiments.Fig5(s, *function, counts)
		if err != nil {
			fatal(err)
		}
		out, err := c.RenderASCII(50)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		if *svgOut != "" {
			svg, err := c.RenderSVG(720, 400)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ptbench: wrote %s\n", *svgOut)
		}
	}
	if *modelDemo {
		any = true
		counts := []int{2, 4, 8, 16, 32, 64, 128}
		s, err := experiments.Fig5Store(counts[:6], 1)
		if err != nil {
			fatal(err)
		}
		out, err := experiments.ModelDemo(s, *function, counts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *fig9 {
		any = true
		work, err := os.MkdirTemp("", "perftrack-fig9-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(work)
		out, err := experiments.Fig9Sample(work, 40)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *fig10 {
		any = true
		fmt.Println(experiments.Fig10Hierarchy())
	}
	if *fig11 {
		any = true
		fmt.Println(experiments.Fig11Mapping())
	}
	if *benchJSON {
		any = true
		if err := runBenchJSON(*benchRows, *benchIters, *benchExecs, *benchOut); err != nil {
			fatal(err)
		}
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

// runBenchJSON measures MaterializeResults and bulk load on every
// storage engine over the synthetic corpus, planned-vs-naive SQL,
// vectorized-vs-row-at-a-time segment scans, plus serial-vs-parallel
// fleet diagnosis, and writes one JSON artifact per operation
// (BENCH_materialize.json, BENCH_bulkload.json, BENCH_sql.json,
// BENCH_scan.json, BENCH_diagnose.json).
func runBenchJSON(rows, iters, execs int, outDir string) error {
	engines := []string{reldb.KindMem, reldb.KindWAL, reldb.KindSegment}
	work, err := os.MkdirTemp("", "perftrack-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	var mat, bulk, sql []experiments.BenchResult
	for _, kind := range engines {
		fmt.Fprintf(os.Stderr, "ptbench: materialize on %s (%d rows)...\n", kind, rows)
		m, err := experiments.MaterializeBenchmark(kind, filepath.Join(work, "mat-"+kind), rows, iters)
		if err != nil {
			return fmt.Errorf("materialize on %s: %w", kind, err)
		}
		mat = append(mat, m)
		fmt.Fprintf(os.Stderr, "ptbench: bulk load on %s (%d rows)...\n", kind, rows)
		l, err := experiments.BulkLoadBenchmark(kind, filepath.Join(work, "bulk-"+kind), rows)
		if err != nil {
			return fmt.Errorf("bulk load on %s: %w", kind, err)
		}
		bulk = append(bulk, l)
		fmt.Fprintf(os.Stderr, "ptbench: sql planned vs naive on %s (%d rows)...\n", kind, rows)
		q, err := experiments.SQLBenchmark(kind, filepath.Join(work, "sql-"+kind), rows, iters)
		if err != nil {
			return fmt.Errorf("sql on %s: %w", kind, err)
		}
		sql = append(sql, q...)
	}
	if err := writeBenchArtifact(filepath.Join(outDir, "BENCH_materialize.json"), mat); err != nil {
		return err
	}
	if err := writeBenchArtifact(filepath.Join(outDir, "BENCH_bulkload.json"), bulk); err != nil {
		return err
	}
	if err := writeBenchArtifact(filepath.Join(outDir, "BENCH_sql.json"), sql); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: scan vectorized vs row-at-a-time on segment (%d rows)...\n", rows)
	scan, err := experiments.ScanBenchmark(filepath.Join(work, "scan-segment"), rows, iters)
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if err := writeBenchArtifact(filepath.Join(outDir, "BENCH_scan.json"), scan); err != nil {
		return err
	}
	var diag []experiments.BenchResult
	for _, workers := range []int{1, 0} {
		mode := "serial"
		if workers == 0 {
			mode = "parallel"
		}
		fmt.Fprintf(os.Stderr, "ptbench: diagnose %s (%d executions)...\n", mode, execs)
		d, err := experiments.DiagnoseBenchmark(execs, iters, workers)
		if err != nil {
			return fmt.Errorf("diagnose %s: %w", mode, err)
		}
		diag = append(diag, d)
	}
	if err := writeBenchArtifact(filepath.Join(outDir, "BENCH_diagnose.json"), diag); err != nil {
		return err
	}
	for _, r := range mat {
		fmt.Printf("materialize %-8s %8d rows  %12.0f ns/op  %8.1f MB/s\n",
			r.Engine, r.Rows, r.NsPerOp, r.MBPerSec)
	}
	for _, r := range bulk {
		fmt.Printf("bulkload    %-8s %8d rows  %12.0f ns/op  %8.1f MB/s\n",
			r.Engine, r.Rows, r.NsPerOp, r.MBPerSec)
	}
	for i := 0; i+1 < len(sql); i += 2 {
		speedup := 0.0
		if sql[i].NsPerOp > 0 {
			speedup = sql[i+1].NsPerOp / sql[i].NsPerOp
		}
		fmt.Printf("sql         %-8s %8d rows  %12.0f ns/op planned  %12.0f ns/op naive  %5.1fx\n",
			sql[i].Engine, sql[i].Rows, sql[i].NsPerOp, sql[i+1].NsPerOp, speedup)
	}
	scanNs := make(map[string]float64, len(scan))
	for _, r := range scan {
		fmt.Printf("scan        %-18s %8d rows  %12.0f ns/op\n", r.Op, r.Rows, r.NsPerOp)
		scanNs[r.Op] = r.NsPerOp
	}
	if vec := scanNs["scan-vectorized"]; vec > 0 {
		fmt.Printf("scan        vectorized speedup over row fold: %5.1fx\n", scanNs["scan-rowfold"]/vec)
	}
	if w4 := scanNs["scan-vectorized-w4"]; w4 > 0 {
		fmt.Printf("scan        1 -> 4 worker scaling:            %5.1fx\n", scanNs["scan-vectorized-w1"]/w4)
	}
	for _, r := range diag {
		fmt.Printf("diagnose    %-8s %8d execs %12.0f ns/op\n",
			r.Engine, r.Rows, r.NsPerOp)
	}
	return nil
}

func writeBenchArtifact(path string, results []experiments.BenchResult) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ptbench: wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptbench:", err)
	os.Exit(1)
}
