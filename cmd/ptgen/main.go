// Command ptgen emits synthetic tool-output datasets at case-study scales
// — the stand-in for the LLNL benchmark runs. It writes native-format
// files per execution plus a PTdfGen index file describing them.
//
// Usage:
//
//	ptgen -kind irs|smg-uv|smg-bgl|paradyn -out DIR [-execs N] [-np N] [-seed N]
//	ptgen -kind fleet -out DIR [-execs N] [-seed N]   # diagnosis fleet as PTdf
//	ptgen -kind smg -show        # print one sample file to stdout (Figure 7)
//	ptgen -kind mpip -show       # print one sample report (Figure 8)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perftrack/internal/gen"
	"perftrack/internal/mpip"
	"perftrack/internal/paradyn"
	"perftrack/internal/pmapi"
	"perftrack/internal/ptdf"
	"perftrack/internal/smg"
)

func main() {
	kind := flag.String("kind", "", "dataset kind: irs, smg-uv, smg-bgl, paradyn, fleet; with -show also smg, mpip, pmapi")
	out := flag.String("out", "", "output directory")
	execs := flag.Int("execs", 5, "number of executions")
	np := flag.Int("np", 64, "processes per execution")
	seed := flag.Int64("seed", 1, "random seed")
	show := flag.Bool("show", false, "print one sample file to stdout instead of writing a dataset")
	flag.Parse()

	if *show {
		if err := showSample(*kind, *np, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *kind == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "ptgen: -kind and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	switch *kind {
	case gen.KindIRS, gen.KindSMGUV, gen.KindSMGBGL:
		if err := writeStudy(*kind, *out, *execs, *np, *seed); err != nil {
			fatal(err)
		}
	case "fleet":
		if err := writeFleet(*out, *execs, *seed); err != nil {
			fatal(err)
		}
	case "paradyn":
		for e := 0; e < *execs; e++ {
			execName := fmt.Sprintf("irs-pd-%03d", e)
			dir := filepath.Join(*out, execName)
			err := paradyn.GenerateBundle(dir, paradyn.Run{
				Execution: execName, NModules: 40, NFuncs: 40, NProcs: *np,
				NBins: 1000, BinWidth: 0.2, NFoci: 4, NanFrac: 0.15,
				Seed: *seed + int64(e),
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote Paradyn export bundle %s\n", dir)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

// writeFleet emits a diagnosis fleet (execs runs spread over MCR and
// Frost with a planted compiler=-O0 2x slowdown on half) as one PTdf
// file — the corpus the ptdiagnose quickstart loads.
func writeFleet(out string, execs int, seed int64) error {
	fleet, err := gen.FleetRecords(gen.FleetSpec{Execs: execs, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(out, "fleet.ptdf")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = ptdf.WriteAll(f, fleet.Records)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d executions (%d fast compiler=-O2, %d slow compiler=-O0)\n",
		path, execs, len(fleet.Fast), len(fleet.Slow))
	return nil
}

func writeStudy(kind, out string, execs, np int, seed int64) error {
	app := "irs"
	machine := "MCR"
	switch kind {
	case gen.KindSMGUV:
		app, machine = "smg2000", "UV"
	case gen.KindSMGBGL:
		app, machine = "smg2000", "BGL"
	}
	var entries []gen.IndexEntry
	for e := 0; e < execs; e++ {
		execName := fmt.Sprintf("%s-%03d", kind, e)
		execDir := filepath.Join(out, execName)
		spec := gen.ExecSpec{
			Kind: kind, Execution: execName, App: app,
			Machine: machine, NProcs: np, Seed: seed + int64(e),
		}
		files, err := gen.WriteExecution(execDir, spec)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d files)\n", execDir, len(files))
		entries = append(entries, gen.IndexEntry{
			Execution: execName, App: app, Concurrency: "MPI",
			NProcs: np, NThreads: 1,
			BuildTime: "2005-04-01T00:00:00Z", RunTime: "2005-04-02T00:00:00Z",
			Kind: kind, Machine: machine, Dir: execDir, Seed: seed + int64(e),
		})
	}
	idxPath := filepath.Join(out, "index.txt")
	f, err := os.Create(idxPath)
	if err != nil {
		return err
	}
	err = gen.WriteIndex(f, entries)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote index %s (%d executions)\n", idxPath, len(entries))
	return nil
}

func showSample(kind string, np int, seed int64) error {
	switch kind {
	case "smg", gen.KindSMGBGL:
		return smg.Generate(os.Stdout, smg.Run{
			Execution: "sample", NProcs: np, Px: np, Py: 1, Pz: 1,
			Nx: 35, Ny: 35, Nz: 35, Seed: seed,
		})
	case "mpip":
		return mpip.Generate(os.Stdout, mpip.Run{
			Execution: "sample", Command: "./smg2000 -n 35 35 35",
			NProcs: np, Callsites: 12, Seed: seed,
		})
	case "pmapi":
		return pmapi.Generate(os.Stdout, pmapi.Run{
			Execution: "sample", NProcs: np, Seed: seed,
		})
	default:
		return fmt.Errorf("no sample for kind %q (try smg, mpip, pmapi)", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgen:", err)
	os.Exit(1)
}
