#!/bin/sh
# Bench-regression smoke: regenerate the -benchjson artifacts into a
# scratch directory (never overwriting the checked-in baselines) and
# compare their speedup ratios against bench/baseline with
# ptbenchcheck, failing on >30% regression of any gated ratio.
#
# Usage: scripts/benchcheck.sh [FRESH_DIR]
#   FRESH_DIR  where the fresh artifacts land (default: bench-fresh)
set -eu

fresh=${1:-bench-fresh}
rows=${PTBENCH_ROWS:-20000}
iters=${PTBENCH_ITERS:-3}

go build -o bin/ ./cmd/ptbench ./cmd/ptbenchcheck
mkdir -p "$fresh"
bin/ptbench -benchjson -bench-rows "$rows" -bench-iters "$iters" \
    -bench-execs 100 -bench-out "$fresh"
bin/ptbenchcheck -baseline bench/baseline -fresh "$fresh"
