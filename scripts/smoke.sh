#!/bin/sh
# Smoke test for the networked quickstart: build every command, start
# ptserved over a fresh store, then drive the full workflow remotely —
# generate data, ingest it over HTTP with ptload -remote, and query it
# back with ptquery -remote. Exercises startup, ingest, query, reports,
# health, metrics, remote and local ptdiagnose (including the not-found
# hint), and graceful SIGTERM shutdown (drain + checkpoint).
# A second pass boots the columnar segment engine, forces compaction,
# kills the server without a checkpoint, and verifies that recovery
# loses nothing.
set -eu

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# start_server LOGFILE ARGS... — boot ptserved in the background and wait
# for readiness; on timeout, fail fast with the server's log tail instead
# of leaving only a silent curl retry loop behind.
start_server() {
    log=$1
    shift
    bin/ptserved "$@" >"$log" 2>&1 &
    pid=$!
    for i in $(seq 1 50); do
        if bin/ptquery -remote "$base" -report stats >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "ptserved exited during startup; log tail:" >&2
            tail -n 20 "$log" >&2
            pid=""
            exit 1
        fi
        sleep 0.2
    done
    echo "ptserved did not become ready; log tail:" >&2
    tail -n 20 "$log" >&2
    exit 1
}

echo "== build all commands"
go build -o "$workdir/bin/" ./cmd/...

cd "$workdir"
addr=127.0.0.1:7075
base="http://$addr"

echo "== generate a small dataset"
bin/ptinit -db store -machines
bin/ptgen -kind smg-bgl -out raw -execs 2 -np 64
bin/ptdfgen -index raw/index.txt -out ptdf

echo "== start ptserved"
start_server served.log -db store -addr "$addr"

echo "== remote load"
bin/ptload -remote "$base" ptdf/*.ptdf

echo "== remote queries"
bin/ptquery -remote "$base" -family 'type=application' -count
count=$(bin/ptquery -remote "$base" -family 'type=application' -count 2>&1 |
    sed -n 's/^pr-filter matches \([0-9]*\) performance results$/\1/p')
[ "$count" -gt 0 ] || { echo "remote query matched nothing" >&2; exit 1; }
bin/ptquery -remote "$base" -family 'type=application' -sort value -limit 5
bin/ptquery -remote "$base" -report executions | grep -q smg-bgl-000
bin/ptquery -remote "$base" -report stats

echo "== remote SQL through the planner"
sqlcount=$(bin/ptsql -remote "$base" \
    "SELECT count(*) FROM performance_result WHERE family = 'type=application'" | sed -n 2p)
[ "$sqlcount" = "$count" ] || { echo "ptsql count $sqlcount != ptquery count $count" >&2; exit 1; }
bin/ptsql -remote "$base" -explain \
    "SELECT metric, avg(value) FROM performance_result GROUP BY metric" >/dev/null 2>sqlplan.txt
grep -q 'strategy=' sqlplan.txt

echo "== remote EXPLAIN ANALYZE carries the execution profile"
bin/ptsql -remote "$base" -analyze \
    "SELECT metric, avg(value) FROM performance_result GROUP BY metric" >/dev/null 2>sqlprofile.txt
grep -q 'profile:' sqlprofile.txt
grep -q 'scanned:' sqlprofile.txt

echo "== remote diagnosis"
bin/ptdiagnose -remote "$base" -a smg-bgl-000 -b smg-bgl-001 | grep -q 'diagnosing smg-bgl-000'
bin/ptdiagnose -remote "$base" -attrs | grep -q 'attribute'

echo "== health and metrics"
if command -v curl >/dev/null; then
    curl -fsS "$base/healthz" > health.json
    grep -q '"status": "ok"' health.json
    curl -fsS "$base/metrics" > metrics.txt
    grep -q ptserved_requests_total metrics.txt
    # Latency histograms and datastore counters ride the same exposition.
    grep -q 'ptserved_request_duration_seconds_bucket{route="/v1/query",le="+Inf"}' metrics.txt
    grep -q ptserved_store_batch_commits_total metrics.txt

    echo "== trace a request by ID and fetch its span tree"
    curl -fsS -H 'X-Request-Id: smoke-trace-1' \
        -d '{"families":["type=application"]}' "$base/v1/query" >/dev/null
    curl -fsS "$base/v1/debug/traces/smoke-trace-1" > trace.json
    grep -q '"datastore.prfilter"' trace.json
    curl -fsS "$base/v1/debug/traces" | grep -q '"smoke-trace-1"'

    echo "== self-profile round-trips as PTdf"
    curl -fsS "$base/v1/debug/selfptdf" > self.ptdf
    grep -q '^Application ptserved$' self.ptdf
    bin/ptinit -db selfstore
    bin/ptload -db selfstore self.ptdf >/dev/null
    bin/ptquery -db selfstore -report applications | grep -q '^ptserved$'

    echo "== slow-query capture holds the served SQL with its profile"
    curl -fsS "$base/v1/debug/queries" > queries.json
    grep -q '"sql"' queries.json
    grep -q '"profile"' queries.json
    grep -q '"rows_scanned"' queries.json

    echo "== query-profile telemetry and exemplars ride /metrics"
    curl -fsS "$base/metrics" > metrics2.txt
    grep -q 'ptserved_query_profile_' metrics2.txt
    grep -q 'ptserved_query_profiles_total' metrics2.txt
    # plain 0.0.4 scrapes must stay exemplar-free; the OpenMetrics
    # negotiation carries the exemplars and the # EOF terminator
    ! grep -q '# {trace_id=' metrics2.txt
    curl -fsS -H 'Accept: application/openmetrics-text' "$base/metrics" > metrics-om.txt
    grep -q '# {trace_id=' metrics-om.txt
    tail -1 metrics-om.txt | grep -q '^# EOF$'

    echo "== continuous self-diagnosis over forced telemetry samples"
    curl -fsS "$base/v1/debug/selfdiagnose?sample=1" >/dev/null
    bin/ptquery -remote "$base" -family 'type=application' -count >/dev/null
    curl -fsS "$base/v1/debug/selfdiagnose?sample=1" > selfdiag.json
    grep -q '"status": "ok"' selfdiag.json
    grep -q '"samples": 2' selfdiag.json
fi

echo "== graceful shutdown checkpoints the store"
kill -TERM "$pid"
wait "$pid"
pid=""
[ -s store/perftrack.snap ] || { echo "no snapshot after shutdown" >&2; exit 1; }
[ ! -s store/perftrack.wal ] || { echo "WAL not truncated after shutdown" >&2; exit 1; }

echo "== local ptquery sees the served store"
final=$(bin/ptquery -db store -family 'type=application' -count 2>&1 |
    sed -n 's/^pr-filter matches \([0-9]*\) performance results$/\1/p')
[ "$final" = "$count" ] || { echo "post-shutdown count $final != served count $count" >&2; exit 1; }

echo "== local ptsql: planned and naive answers agree"
sqlq="SELECT metric, count(*), avg(value) FROM performance_result GROUP BY metric ORDER BY metric"
bin/ptsql -db store "$sqlq" > sql_planned.txt
bin/ptsql -db store -naive "$sqlq" > sql_naive.txt
cmp sql_planned.txt sql_naive.txt || { echo "planned and naive SQL diverge" >&2; exit 1; }

echo "== local diagnosis and the not-found hint"
bin/ptdiagnose -db store -a smg-bgl-000 -b smg-bgl-001 >diag.txt
grep -q 'diagnosing smg-bgl-000' diag.txt
if bin/ptdiagnose -db store -a smg-bgl-000 -b nope >notfound.txt 2>&1; then
    echo "ptdiagnose with a bogus execution should exit non-zero" >&2
    exit 1
fi
grep -q 'execution "nope" not found' notfound.txt

echo "== segment engine: load, compact, crash, recover"
bin/ptinit -db segstore -storage segment -machines >/dev/null
start_server segserved.log -db segstore -addr "$addr" -storage segment -segment-flush 8

bin/ptload -remote "$base" ptdf/*.ptdf >/dev/null
segcount=$(bin/ptquery -remote "$base" -family 'type=application' -count 2>&1 |
    sed -n 's/^pr-filter matches \([0-9]*\) performance results$/\1/p')
[ "$segcount" = "$count" ] || { echo "segment store served $segcount != $count results" >&2; exit 1; }

if command -v curl >/dev/null; then
    echo "== /v1/stats reports segment storage"
    curl -fsS "$base/v1/stats" > segstats.json
    grep -q '"kind": "segment"' segstats.json
    grep -q '"segments"' segstats.json
fi

# Wait for the background compactor (flush threshold 64 rows) to flush
# the hot tables into columnar segments.
for i in $(seq 1 50); do
    if ls segstore/segments/seg-performance_result-*.seg >/dev/null 2>&1; then
        break
    fi
    [ "$i" -eq 50 ] && { echo "compactor wrote no segments" >&2; exit 1; }
    sleep 0.2
done

echo "== kill -9 between compaction and checkpoint"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
[ -s segstore/perftrack.wal ] || { echo "expected a live WAL after hard kill" >&2; exit 1; }

echo "== recovery serves every committed batch"
start_server segserved2.log -db segstore -addr "$addr" -storage segment
recovered=$(bin/ptquery -remote "$base" -family 'type=application' -count 2>&1 |
    sed -n 's/^pr-filter matches \([0-9]*\) performance results$/\1/p')
[ "$recovered" = "$count" ] || { echo "post-crash count $recovered != $count" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"
pid=""

echo "smoke test passed ($count results served, $recovered recovered on segment engine)"
