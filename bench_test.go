package perftrack

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// (or benchmark family) exists per table/figure, plus ablations for the
// design choices DESIGN.md calls out:
//
//	BenchmarkTable1Load/*        Table 1 — per-dataset load cost (the §4.2
//	                             "data load time" observation)
//	BenchmarkTable1PTdfGen/*     Table 1 — raw-data → PTdf conversion
//	BenchmarkFig3MatchCounts     Figure 3 — live per-family match counts
//	BenchmarkFig4TwoStepQuery    Figure 4 — retrieve + add columns
//	BenchmarkFig5Chart           Figure 5 — min/max load-balance chart
//	BenchmarkFig6PTdfParse       Figure 6 — PTdf parse throughput
//	BenchmarkParadynImport       §4.3 — Paradyn bundle → store
//	BenchmarkCompareExecutions   §6 operators on §4.1 data
//	BenchmarkDiagnose/*          automated diagnosis over a 100-exec fleet
//
// Ablations:
//
//	BenchmarkAncestryClosureVsWalk/*   closure tables vs parent-link walks
//	BenchmarkEngine/*                  memory vs file (WAL) engine loads
//	BenchmarkQuerySQLVsDirect/*        SQL layer vs direct relational API

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/diagnose"
	"perftrack/internal/experiments"
	"perftrack/internal/gen"
	"perftrack/internal/irs"
	"perftrack/internal/paradyn"
	"perftrack/internal/ptdf"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

// prepareExecutionRecords generates and converts one execution of the
// given dataset kind, returning its PTdf records.
func prepareExecutionRecords(b *testing.B, kind, machine string, nprocs int) []ptdf.Record {
	b.Helper()
	dir := b.TempDir()
	spec := gen.ExecSpec{
		Kind: kind, Execution: "bench-exec", App: "app",
		Machine: machine, NProcs: nprocs, Seed: 1,
	}
	if _, err := gen.WriteExecution(dir, spec); err != nil {
		b.Fatal(err)
	}
	recs, err := gen.ConvertExecution(dir, spec)
	if err != nil {
		b.Fatal(err)
	}
	return recs
}

func newBenchStore(b *testing.B, machine string) *datastore.Store {
	b.Helper()
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		b.Fatal(err)
	}
	m, err := gen.MachineByName(machine)
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range m.ToPTdf(2) {
		if err := s.LoadRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func loadRecords(b *testing.B, s *datastore.Store, recs []ptdf.Record) int {
	b.Helper()
	results := 0
	for _, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			b.Fatal(err)
		}
		if _, ok := rec.(ptdf.PerfResultRec); ok {
			results++
		}
	}
	return results
}

// BenchmarkTable1Load measures loading one execution of each Table 1
// dataset into a fresh store — the §4.2 load-time focus area.
func BenchmarkTable1Load(b *testing.B) {
	cases := []struct {
		name, kind, machine string
		nprocs              int
	}{
		{"IRS", gen.KindIRS, "MCR", 64},
		{"SMG-UV", gen.KindSMGUV, "UV", 64},
		{"SMG-BGL", gen.KindSMGBGL, "BGL", 32},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			recs := prepareExecutionRecords(b, c.kind, c.machine, c.nprocs)
			b.ResetTimer()
			results := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := newBenchStore(b, c.machine)
				b.StartTimer()
				results = loadRecords(b, s, recs)
			}
			b.ReportMetric(float64(results), "results/exec")
			b.ReportMetric(float64(results)*float64(b.N)/b.Elapsed().Seconds(), "results/s")
		})
	}
}

// BenchmarkTable1PTdfGen measures raw tool output → PTdf conversion.
func BenchmarkTable1PTdfGen(b *testing.B) {
	cases := []struct {
		name, kind, machine string
		nprocs              int
	}{
		{"IRS", gen.KindIRS, "MCR", 64},
		{"SMG-UV", gen.KindSMGUV, "UV", 64},
		{"SMG-BGL", gen.KindSMGBGL, "BGL", 32},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dir := b.TempDir()
			spec := gen.ExecSpec{
				Kind: c.kind, Execution: "bench-exec", App: "app",
				Machine: c.machine, NProcs: c.nprocs, Seed: 1,
			}
			if _, err := gen.WriteExecution(dir, spec); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.ConvertExecution(dir, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fig34Store loads a small IRS study used by the Figure 3/4 benchmarks.
func fig34Store(b *testing.B) *datastore.Store {
	b.Helper()
	s := newBenchStore(b, "MCR")
	recs := prepareExecutionRecords(b, gen.KindIRS, "MCR", 32)
	loadRecords(b, s, recs)
	return s
}

// BenchmarkFig3MatchCounts measures the GUI's live match counting as
// families are added to a pr-filter.
func BenchmarkFig3MatchCounts(b *testing.B) {
	s := fig34Store(b)
	machineFam, err := s.ApplyFilter(core.ResourceFilter{
		Name: "/MCRGrid/MCR", Include: core.IncludeDescendants,
	})
	if err != nil {
		b.Fatal(err)
	}
	appFam, err := s.ApplyFilter(core.ResourceFilter{Type: "application"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CountFamilyMatches(machineFam); err != nil {
			b.Fatal(err)
		}
		if _, err := s.CountMatches(core.PRFilter{Families: []core.Family{machineFam, appFam}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4TwoStepQuery measures retrieval plus the two-step Add
// Columns workflow.
func BenchmarkFig4TwoStepQuery(b *testing.B) {
	s := fig34Store(b)
	fam, err := s.ApplyFilter(core.ResourceFilter{Type: "application"})
	if err != nil {
		b.Fatal(err)
	}
	prf := core.PRFilter{Families: []core.Family{fam}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := query.Retrieve(s, prf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.FreeResources(); err != nil {
			b.Fatal(err)
		}
		if err := tbl.AddColumn("build/module/function", false); err != nil {
			b.Fatal(err)
		}
		tbl.SortBy("value", true)
	}
}

// BenchmarkFig5Chart measures building the Figure 5 chart from a loaded
// store.
func BenchmarkFig5Chart(b *testing.B) {
	counts := []int{2, 4, 8, 16, 32, 64}
	s, err := experiments.Fig5Store(counts, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := experiments.Fig5(s, "xdouble", counts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RenderASCII(50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PTdfParse measures PTdf parse throughput.
func BenchmarkFig6PTdfParse(b *testing.B) {
	var report bytes.Buffer
	if err := irs.Generate(&report, irs.Run{Execution: "e", NProcs: 64, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	rep, err := irs.Parse(&report)
	if err != nil {
		b.Fatal(err)
	}
	var doc bytes.Buffer
	if err := ptdf.WriteAll(&doc, rep.ToPTdf("irs", "/MCRGrid/MCR")); err != nil {
		b.Fatal(err)
	}
	data := doc.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ptdf.NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParadynImport measures mapping and loading one Paradyn export
// (§4.3 shape, reduced bins).
func BenchmarkParadynImport(b *testing.B) {
	bundle := paradyn.Synthesize(paradyn.Run{
		Execution: "e", NModules: 10, NFuncs: 20, NProcs: 8,
		NBins: 200, BinWidth: 0.2, NFoci: 3, NanFrac: 0.15, Seed: 1,
	})
	recs, err := bundle.ToPTdf("irs", "irs-pd-bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := datastore.Open(reldb.NewMem())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rec := range recs {
			if err := s.LoadRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompareExecutions measures the §6 comparison operators over
// two IRS executions.
func BenchmarkCompareExecutions(b *testing.B) {
	s := newBenchStore(b, "MCR")
	dir := b.TempDir()
	for e := 0; e < 2; e++ {
		spec := gen.ExecSpec{
			Kind: gen.KindIRS, Execution: fmt.Sprintf("cmp-%d", e), App: "irs",
			Machine: "MCR", NProcs: 16, Seed: int64(e + 1),
		}
		sub := filepath.Join(dir, spec.Execution)
		if _, err := gen.WriteExecution(sub, spec); err != nil {
			b.Fatal(err)
		}
		recs, err := gen.ConvertExecution(sub, spec)
		if err != nil {
			b.Fatal(err)
		}
		loadRecords(b, s, recs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := compare.Executions(s, "cmp-0", "cmp-1")
		if err != nil {
			b.Fatal(err)
		}
		if len(cmp.Pairs) == 0 {
			b.Fatal("no aligned pairs")
		}
	}
}

// BenchmarkParadynCompactVsPerBin is the §6 complex-results ablation:
// importing one Paradyn export with one scalar result per histogram bin
// (the prototype's approach) vs one histogram-valued result per
// metric-focus pair (the future-work extension).
func BenchmarkParadynCompactVsPerBin(b *testing.B) {
	bundle := paradyn.Synthesize(paradyn.Run{
		Execution: "e", NModules: 10, NFuncs: 20, NProcs: 8,
		NBins: 500, BinWidth: 0.2, NFoci: 3, NanFrac: 0.15, Seed: 1,
	})
	perBin, err := bundle.ToPTdf("irs", "irs-pd-bench")
	if err != nil {
		b.Fatal(err)
	}
	compact, err := bundle.ToPTdfCompact("irs", "irs-pd-bench")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		recs []ptdf.Record
	}{{"per-bin", perBin}, {"compact", compact}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(float64(len(c.recs)), "records")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := datastore.Open(reldb.NewMem())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, rec := range c.recs {
					if err := s.LoadRecord(rec); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- ablations ---

// BenchmarkAncestryClosureVsWalk compares the paper's closure tables
// (resource_has_ancestor/descendant, added "for performance reasons")
// against recomputing ancestry by walking parent links.
func BenchmarkAncestryClosureVsWalk(b *testing.B) {
	s := newBenchStore(b, "MCR")
	// A deep machine subtree.
	m, _ := gen.MachineByName("Frost")
	for _, rec := range m.ToPTdf(16) {
		if err := s.LoadRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	root := core.ResourceName("/SingleMachineFrost/Frost")
	leaf := core.ResourceName("/SingleMachineFrost/Frost/batch/frost0/p0")
	for _, useClosure := range []bool{true, false} {
		name := "closure"
		if !useClosure {
			name = "walk"
		}
		b.Run(name, func(b *testing.B) {
			s.UseClosureTables = useClosure
			for i := 0; i < b.N; i++ {
				if _, err := s.Descendants(root); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Ancestors(leaf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.UseClosureTables = true
}

// BenchmarkEngine compares loading one IRS execution into the in-memory
// engine vs the durable file engine (asynchronous WAL).
func BenchmarkEngine(b *testing.B) {
	recs := prepareExecutionRecords(b, gen.KindIRS, "MCR", 32)
	m, _ := gen.MachineByName("MCR")
	machineRecs := m.ToPTdf(2)
	run := func(b *testing.B, mkEngine func(i int) reldb.Engine) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mkEngine(i)
			s, err := datastore.Open(eng)
			if err != nil {
				b.Fatal(err)
			}
			for _, rec := range machineRecs {
				if err := s.LoadRecord(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			loadRecords(b, s, recs)
			b.StopTimer()
			eng.Close()
			b.StartTimer()
		}
	}
	b.Run("memory", func(b *testing.B) {
		run(b, func(int) reldb.Engine { return reldb.NewMem() })
	})
	b.Run("file-wal", func(b *testing.B) {
		dir := b.TempDir()
		run(b, func(i int) reldb.Engine {
			fe, err := reldb.OpenFile(filepath.Join(dir, fmt.Sprintf("db%d", i)))
			if err != nil {
				b.Fatal(err)
			}
			return fe
		})
	})
}

// BenchmarkQuerySQLVsDirect compares an aggregate over performance
// results through the SQL layer vs the direct relational API.
func BenchmarkQuerySQLVsDirect(b *testing.B) {
	s := fig34Store(b)
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := s.SQL().Query(
				"SELECT m.name, COUNT(*), AVG(pr.value) FROM performance_result pr " +
					"JOIN metric m ON pr.metric_id = m.id GROUP BY m.name")
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		prTab, _ := s.Engine().Table("performance_result")
		mTab, _ := s.Engine().Table("metric")
		for i := 0; i < b.N; i++ {
			type agg struct {
				n   int
				sum float64
			}
			groups := make(map[int64]*agg)
			prTab.Scan(func(_ int64, row reldb.Row) bool {
				mid := row[2].Int64()
				a := groups[mid]
				if a == nil {
					a = &agg{}
					groups[mid] = a
				}
				a.n++
				a.sum += row[5].Float64()
				return true
			})
			if len(groups) == 0 {
				b.Fatal("no groups")
			}
			for mid := range groups {
				if _, ok := mTab.Get(mid); !ok {
					b.Fatal("missing metric")
				}
			}
		}
	})
}

// prFilterEngineFamilies builds the four families the pr-filter engine
// benchmarks combine: a machine subtree, the applications, a code
// subtree, and the executions.
func prFilterEngineFamilies(b *testing.B, s *datastore.Store) []core.Family {
	b.Helper()
	specs := []core.ResourceFilter{
		{Name: "/MCRGrid/MCR", Include: core.IncludeDescendants},
		{Type: "application"},
		{Name: "/app-code/irs.c", Include: core.IncludeDescendants},
		{Type: "execution"},
	}
	fams := make([]core.Family, 0, len(specs))
	for _, rf := range specs {
		fam, err := s.ApplyFilter(rf)
		if err != nil {
			b.Fatal(err)
		}
		if fam.Size() == 0 {
			b.Fatalf("empty family for %+v", rf)
		}
		fams = append(fams, fam)
	}
	return fams
}

// BenchmarkPRFilterEngine measures the pr-filter fast path on the
// Figure 3/4 store: attribute filters answered from the resource_attribute
// (name, value) index, cold pr-filter evaluation over 1–4 families (the
// match cache is invalidated every iteration), and cached re-evaluation
// (the GUI's repeated live counts between writes).
func BenchmarkPRFilterEngine(b *testing.B) {
	s := fig34Store(b)
	fams := prFilterEngineFamilies(b, s)
	attrFilter := core.ResourceFilter{Attrs: []core.AttrPredicate{
		{Attr: "clock MHz", Cmp: core.CmpGt, Value: "1000"},
	}}
	b.Run("ApplyFilter/attr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fam, err := s.ApplyFilter(attrFilter)
			if err != nil {
				b.Fatal(err)
			}
			if fam.Size() == 0 {
				b.Fatal("no matches")
			}
		}
	})
	for n := 1; n <= len(fams); n++ {
		prf := core.PRFilter{Families: fams[:n]}
		b.Run(fmt.Sprintf("CountMatches/cold-%dfam", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.InvalidateQueryCache()
				if _, err := s.CountMatches(prf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CountMatches/cached-%dfam", n), func(b *testing.B) {
			if _, err := s.CountMatches(prf); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.CountMatches(prf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPRFilterScaling measures pr-filter evaluation as the store
// grows, the scalability concern Table 1 speaks to.
func BenchmarkPRFilterScaling(b *testing.B) {
	for _, execs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("execs-%d", execs), func(b *testing.B) {
			s := newBenchStore(b, "MCR")
			dir := b.TempDir()
			for e := 0; e < execs; e++ {
				spec := gen.ExecSpec{
					Kind: gen.KindIRS, Execution: fmt.Sprintf("scale-%03d", e),
					App: "irs", Machine: "MCR", NProcs: 16, Seed: int64(e + 1),
				}
				sub := filepath.Join(dir, spec.Execution)
				if _, err := gen.WriteExecution(sub, spec); err != nil {
					b.Fatal(err)
				}
				recs, err := gen.ConvertExecution(sub, spec)
				if err != nil {
					b.Fatal(err)
				}
				loadRecords(b, s, recs)
			}
			fam, err := s.ApplyFilter(core.ResourceFilter{
				Name: "/irs-code/irs.c/main", Include: core.IncludeDescendants,
			})
			if err != nil {
				b.Fatal(err)
			}
			prf := core.PRFilter{Families: []core.Family{fam}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := s.CountMatches(prf)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// TestBenchmarkHelpersSmoke keeps the helper path exercised by go test.
func TestBenchmarkHelpersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset")
	}
	out := experiments.FormatTable1(experiments.PaperTable1())
	if !strings.Contains(out, "IRS") {
		t.Error("FormatTable1 broken")
	}
}

// materializeBenchStore loads one SMG-UV execution at 64 processes
// (~10k performance results, the Table 1 heavyweight) and returns the
// store, the full matched ID set, and the pr-filter that selects it.
func materializeBenchStore(b *testing.B) (*datastore.Store, []int64, core.PRFilter) {
	b.Helper()
	s := newBenchStore(b, "UV")
	recs := prepareExecutionRecords(b, gen.KindSMGUV, "UV", 64)
	loadRecords(b, s, recs)
	fam, err := s.ApplyFilter(core.ResourceFilter{Type: "application"})
	if err != nil {
		b.Fatal(err)
	}
	prf := core.PRFilter{Families: []core.Family{fam}}
	ids, err := s.MatchingResultIDs(prf)
	if err != nil {
		b.Fatal(err)
	}
	if len(ids) < 10000 {
		b.Fatalf("only %d results; the materialization benchmark wants >= 10k", len(ids))
	}
	return s, ids, prf
}

// BenchmarkMaterialize measures bulk result materialization on a
// >= 10k-result retrieval — the §3.2/§3.3 read hot path behind
// /v1/results, ptcompare, and reports:
//
//	per-id      the N+1 baseline: one ResultByID per matched ID (4
//	            dictionary Gets plus 2+ PK scans per result, each its
//	            own engine lock round trip)
//	batch-w1    the batch engine, single worker: dictionary prefetch,
//	            grouped link scans, and a shared focus cache — the
//	            algorithmic win without parallelism
//	batch-wN    the batch engine fanned over GOMAXPROCS workers
//	stream      MaterializeStream in default-size chunks (the bounded-
//	            memory variant behind /v1/results?stream=1)
//	query-cold  QueryResults end to end with the match cache invalidated
//	            (pr-filter evaluation + batch materialization)
//	query-warm  QueryResults with a warm match cache — the interactive
//	            "get data" click after the live counts already ran
func BenchmarkMaterialize(b *testing.B) {
	s, ids, prf := materializeBenchStore(b)
	n := len(ids)
	report := func(b *testing.B) {
		b.ReportMetric(float64(n), "results")
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "results/s")
	}
	b.Run("per-id", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if _, err := s.ResultByID(id); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b)
	})
	b.Run("batch-w1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := s.MaterializeResultsOpts(ids, datastore.MaterializeOptions{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("materialized %d of %d", len(out), n)
			}
		}
		report(b)
	})
	b.Run(fmt.Sprintf("batch-wn%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := s.MaterializeResults(ids)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("materialized %d of %d", len(out), n)
			}
		}
		report(b)
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got := 0
			err := s.MaterializeStream(ids, datastore.MaterializeOptions{},
				func(batch []*core.PerformanceResult) error {
					got += len(batch)
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			if got != n {
				b.Fatalf("streamed %d of %d", got, n)
			}
		}
		report(b)
	})
	b.Run("query-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.InvalidateQueryCache()
			out, err := s.QueryResults(prf)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("materialized %d of %d", len(out), n)
			}
		}
		report(b)
	})
	b.Run("query-warm", func(b *testing.B) {
		if _, err := s.QueryResults(prf); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := s.QueryResults(prf)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != n {
				b.Fatalf("materialized %d of %d", len(out), n)
			}
		}
		report(b)
	})
}

// BenchmarkDiagnose measures the automated-diagnosis pipeline (§6
// extension) over a 100-execution synthetic fleet with a planted
// compiler=-O0 slowdown: side perf, bottleneck ranking, attribute
// feature extraction, and predicate enumeration/scoring. Serial pins
// one worker; Parallel fans out over GOMAXPROCS.
func BenchmarkDiagnose(b *testing.B) {
	s, fleet, err := experiments.SeedFleetStore(100, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		workers int
	}{{"Serial", 1}, {fmt.Sprintf("Parallel-w%d", runtime.GOMAXPROCS(0)), 0}} {
		b.Run(c.name, func(b *testing.B) {
			spec := diagnose.Spec{ExecsA: fleet.Fast, ExecsB: fleet.Slow, Workers: c.workers}
			for i := 0; i < b.N; i++ {
				res, err := diagnose.Run(context.Background(), s, spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Explanations) == 0 ||
					res.Explanations[0].Pred.String() != "compiler = -O0" {
					b.Fatalf("planted predicate not recovered: %+v", res.Explanations)
				}
			}
			b.ReportMetric(float64(len(fleet.Fast)+len(fleet.Slow)), "execs")
		})
	}
}

// prepareBulkFiles writes n generated IRS execution PTdf files to disk,
// one execution per file with distinct names, for the bulk-load
// benchmarks.
func prepareBulkFiles(b *testing.B, n int) []string {
	b.Helper()
	dir := b.TempDir()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		spec := gen.ExecSpec{
			Kind: gen.KindIRS, Execution: fmt.Sprintf("bulk-%02d", i),
			App: "irs", Machine: "MCR", NProcs: 32, Seed: int64(i + 1),
		}
		sub := filepath.Join(dir, spec.Execution)
		if _, err := gen.WriteExecution(sub, spec); err != nil {
			b.Fatal(err)
		}
		recs, err := gen.ConvertExecution(sub, spec)
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, spec.Execution+".ptdf")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		err = ptdf.WriteAll(f, recs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = path
	}
	return paths
}

// BenchmarkBulkLoad measures the batched write path over 8 generated
// execution files on the durable (WAL + fsync) engine, against the
// sequential pre-batch baseline. Three modes:
//
//	per-record  the old write API: one commit per record — every record
//	            pays a writer-lock round trip, a generation bump, and a
//	            WAL flush + fsync of its own
//	seq         the batched path, sequentially: each document stages
//	            outside the lock and commits as one batch — one
//	            generation bump and one WAL fsync per document
//	j4          the bulk pipeline: 4 decode workers feeding the single
//	            committer (adds decode/commit overlap on multi-core
//	            hosts and overlaps decode with the committer's fsync
//	            waits even on one core)
//
// The headline claim is j4 (or seq) vs per-record: batching turns
// thousands of per-record flushes into one per document.
func BenchmarkBulkLoad(b *testing.B) {
	const nFiles = 8
	paths := prepareBulkFiles(b, nFiles)

	newFileStore := func(b *testing.B, kind string) (*datastore.Store, func()) {
		b.Helper()
		dir, err := os.MkdirTemp("", "bulkbench")
		if err != nil {
			b.Fatal(err)
		}
		eng, err := reldb.Open(kind, dir)
		if err != nil {
			b.Fatal(err)
		}
		fe := eng.(*reldb.FileEngine)
		fe.SetSync(true)
		s, err := datastore.Open(fe)
		if err != nil {
			b.Fatal(err)
		}
		m, err := gen.MachineByName("MCR")
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range m.ToPTdf(2) {
			if err := s.LoadRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
		return s, func() { fe.Close(); os.RemoveAll(dir) }
	}

	run := func(kind string, load func(b *testing.B, s *datastore.Store)) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, cleanup := newFileStore(b, kind)
				b.StartTimer()
				load(b, s)
				b.StopTimer()
				cleanup()
				b.StartTimer()
			}
			b.ReportMetric(float64(nFiles)*float64(b.N)/b.Elapsed().Seconds(), "files/s")
		}
	}

	b.Run("per-record", run(reldb.KindWAL, func(b *testing.B, s *datastore.Store) {
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			r := ptdf.NewReader(f)
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := s.LoadRecord(rec); err != nil {
					b.Fatal(err)
				}
			}
			f.Close()
		}
	}))
	b.Run("seq", run(reldb.KindWAL, func(b *testing.B, s *datastore.Store) {
		for _, path := range paths {
			if _, err := s.LoadPTdfFile(path); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// Same batched sequential load on the segment engine: the front-end
	// write path is identical (WAL first), so this measures the cost of
	// running ingest with the background compactor live.
	b.Run("seq-segment", run(reldb.KindSegment, func(b *testing.B, s *datastore.Store) {
		for _, path := range paths {
			if _, err := s.LoadPTdfFile(path); err != nil {
				b.Fatal(err)
			}
		}
	}))
	b.Run("j4", run(reldb.KindWAL, func(b *testing.B, s *datastore.Store) {
		for _, dr := range s.BulkLoadFiles(paths, 4) {
			if dr.Err != nil {
				b.Fatal(dr.Err)
			}
		}
	}))
}

// benchResultRows is the synthetic corpus size for the engine-comparison
// benchmarks: 100k result rows by default, overridable through the
// PTBENCH_RESULT_ROWS environment variable (CI uses a small value).
func benchResultRows(b *testing.B) int {
	b.Helper()
	env := os.Getenv("PTBENCH_RESULT_ROWS")
	if env == "" {
		return 100_000
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		b.Fatalf("bad PTBENCH_RESULT_ROWS %q", env)
	}
	return n
}

// BenchmarkMaterializeEngines compares the full MaterializeResults fetch
// path across storage engines on the synthetic corpus (benchResultRows
// result rows, heavily shared foci). The segment engine is compacted
// before timing, so its runs take the zone-map-pruned columnar scan path
// while wal takes the same request through per-row B-tree lookups. The
// headline claim is segment vs wal: sequential column scans beat B-tree
// walks by >=3x at 100k rows.
func BenchmarkMaterializeEngines(b *testing.B) {
	rows := benchResultRows(b)
	recs := experiments.SynthResultRecords(rows)
	// Pin collector pacing for the comparison: every engine allocates the
	// same ~10 MB of output per op, and at default GOGC on a small host
	// the mark cost of the seeded store dominates both sides and buries
	// the fetch-path difference being measured.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	for _, kind := range []string{reldb.KindMem, reldb.KindWAL, reldb.KindSegment} {
		b.Run(kind, func(b *testing.B) {
			eng, err := reldb.Open(kind, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			s, ids, err := experiments.SeedSynthStore(eng, recs)
			if err != nil {
				b.Fatal(err)
			}
			if len(ids) != rows {
				b.Fatalf("seeded %d of %d results", len(ids), rows)
			}
			if kind == reldb.KindSegment {
				if err := eng.(*reldb.FileEngine).CompactSegments(); err != nil {
					b.Fatal(err)
				}
			}
			// One warm-up run fills the name caches, then a forced GC
			// clears seeding garbage so collector debt from the 100k-row
			// load doesn't land inside another engine's timed region.
			if _, err := s.MaterializeResults(ids[:100]); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := s.MaterializeResults(ids)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != rows {
					b.Fatalf("materialized %d of %d", len(out), rows)
				}
			}
			// Stop before the deferred Close: engine shutdown (WAL fsync,
			// compactor drain) is not part of the materialize cost.
			b.StopTimer()
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "results/s")
			if kind == reldb.KindSegment && s.Telemetry().SegmentScans == 0 {
				b.Fatal("segment run never took the columnar scan path")
			}
		})
	}
}
