package experiments

// SQL planner benchmark behind `ptbench -benchjson`'s BENCH_sql.json
// artifact: the acceptance aggregation (SELECT avg(value) ... GROUP BY
// metric) timed with the cost-based planner on ("sql-planned": pushed
// aggregation, no row materialization) and off ("sql-naive": full scan,
// every row built, aggregation above materialization). The ratio of the
// two rows is the planned-vs-naive speedup.

import (
	"context"
	"fmt"
	"time"

	"perftrack/internal/planner"
	"perftrack/internal/reldb"
)

// SQLBenchQuery is the aggregation the planner must answer without
// materializing result rows.
const SQLBenchQuery = "SELECT metric, avg(value) FROM performance_result GROUP BY metric ORDER BY metric"

// sqlBenchGroups is the expected group count: SynthResultRecords spreads
// results over 16 metrics.
const sqlBenchGroups = 16

// SQLBenchmark seeds the synthetic corpus on one engine kind and times
// SQLBenchQuery with the planner on and off, returning one BenchResult
// per mode ("sql-planned", then "sql-naive").
func SQLBenchmark(kind, dir string, rows, iters int) ([]BenchResult, error) {
	date := time.Now().UTC().Format("2006-01-02")
	eng, err := openBenchEngine(kind, dir)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	s, _, err := SeedSynthStore(eng, SynthResultRecords(rows))
	if err != nil {
		return nil, err
	}
	if fe, ok := eng.(*reldb.FileEngine); ok && kind == reldb.KindSegment {
		if err := fe.CompactSegments(); err != nil {
			return nil, err
		}
	}
	if iters < 1 {
		iters = 1
	}
	ctx := context.Background()
	out := make([]BenchResult, 0, 2)
	for _, mode := range []struct {
		op    string
		naive bool
	}{{"sql-planned", false}, {"sql-naive", true}} {
		p := planner.New(s)
		p.Naive = mode.naive
		// One warm-up run keeps dictionary maps and the page cache out of
		// the measured loop, matching MaterializeBenchmark.
		if _, _, err := p.Query(ctx, SQLBenchQuery); err != nil {
			return nil, fmt.Errorf("%s warm-up: %w", mode.op, err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, _, err := p.Query(ctx, SQLBenchQuery)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", mode.op, err)
			}
			if len(res.Rows) != sqlBenchGroups {
				return nil, fmt.Errorf("%s: %d groups, want %d", mode.op, len(res.Rows), sqlBenchGroups)
			}
		}
		out = append(out, BenchResult{
			Op: mode.op, Engine: kind, Rows: rows,
			NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(iters),
			Date:    date,
		})
	}
	return out, nil
}
