package experiments

// Vectorized-vs-row-at-a-time scan benchmark behind `ptbench -benchjson`'s
// BENCH_scan.json artifact. The grouped aggregate below runs on the
// segment engine four ways: through the batched column kernels at 1, 4,
// and all available workers, and through the row-at-a-time zone-map fold
// (planner.NoVector). The "scan-rowfold" / "scan-vectorized" ratio is the
// kernel speedup; the w1/w4 pair documents parallel scaling.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/planner"
	"perftrack/internal/reldb"
)

// seedSegmentedSynthStore loads the synthetic corpus in segments batch
// commits, compacting after each, so the result table lands in that many
// columnar segments instead of one (a single compaction pass flushes the
// whole tail into one segment file).
func seedSegmentedSynthStore(eng reldb.Engine, fe *reldb.FileEngine, rows, segments int) (*datastore.Store, error) {
	recs := SynthResultRecords(rows)
	s, err := datastore.Open(eng)
	if err != nil {
		return nil, err
	}
	nDims := len(recs) - rows // application, execution, and resource records lead the slice
	results := recs[nDims:]
	chunk := (len(results) + segments - 1) / segments
	if chunk < 1 {
		chunk = 1
	}
	for start := 0; start < len(recs); {
		end := start + chunk
		if start < nDims {
			end = nDims // dimensions commit in one leading batch
		}
		if end > len(recs) {
			end = len(recs)
		}
		batch := s.NewBatch()
		for _, rec := range recs[start:end] {
			batch.Stage(rec)
		}
		if _, err := batch.Commit(); err != nil {
			return nil, err
		}
		if start >= nDims {
			if err := fe.CompactSegments(); err != nil {
				return nil, err
			}
		}
		start = end
	}
	return s, nil
}

// ScanBenchQuery exercises every aggregate kernel (count, sum, min, max,
// avg) over one dictionary group-by column.
const ScanBenchQuery = "SELECT metric, count(*), sum(value), min(value), max(value), avg(value) " +
	"FROM performance_result GROUP BY metric ORDER BY metric"

// scanBenchGroups matches SynthResultRecords' 16 metrics.
const scanBenchGroups = 16

// scanBenchSegments is how many columnar segments the corpus is split
// into. Parallel fan-out partitions work at segment granularity, so a
// single 100k-row segment would leave extra workers idle; 16 segments
// give a 4-worker scan four balanced parts.
const scanBenchSegments = 16

// scanBenchMode is one timed configuration of the planner.
type scanBenchMode struct {
	op       string
	noVector bool
	workers  int // 0 = GOMAXPROCS
}

// ScanBenchmark seeds the synthetic corpus on the segment engine,
// compacts it into columnar segments, and times ScanBenchQuery in each
// mode, returning one BenchResult per mode. Every vectorized mode must
// actually take the kernel path (plan.Vectorized); a silent fallback to
// the row fold is reported as an error rather than a bogus 1.0x ratio.
func ScanBenchmark(dir string, rows, iters int) ([]BenchResult, error) {
	date := time.Now().UTC().Format("2006-01-02")
	eng, err := openBenchEngine(reldb.KindSegment, dir)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	fe, ok := eng.(*reldb.FileEngine)
	if !ok {
		return nil, fmt.Errorf("scan benchmark: segment engine is %T, want *reldb.FileEngine", eng)
	}
	s, err := seedSegmentedSynthStore(eng, fe, rows, scanBenchSegments)
	if err != nil {
		return nil, err
	}
	if iters < 1 {
		iters = 1
	}
	// Same collector pacing as MaterializeBenchmark, and a settled heap
	// before the first mode so seeding garbage isn't collected mid-loop.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	runtime.GC()
	ctx := context.Background()
	modes := []scanBenchMode{
		{op: "scan-vectorized", workers: 0},
		{op: "scan-rowfold", noVector: true},
		{op: "scan-vectorized-w1", workers: 1},
		{op: "scan-vectorized-w4", workers: 4},
	}
	out := make([]BenchResult, 0, len(modes))
	for _, mode := range modes {
		p := planner.New(s)
		p.NoVector = mode.noVector
		p.Workers = mode.workers
		// Warm-up keeps segment reads and dictionary maps out of the
		// timed loop, and verifies the mode runs the intended path.
		res, plan, err := p.Query(ctx, ScanBenchQuery)
		if err != nil {
			return nil, fmt.Errorf("%s warm-up: %w", mode.op, err)
		}
		if len(res.Rows) != scanBenchGroups {
			return nil, fmt.Errorf("%s: %d groups, want %d", mode.op, len(res.Rows), scanBenchGroups)
		}
		if !mode.noVector && !plan.Vectorized {
			return nil, fmt.Errorf("%s: query fell back to the row-at-a-time path", mode.op)
		}
		if mode.noVector && plan.Vectorized {
			return nil, fmt.Errorf("%s: NoVector planner still took the kernel path", mode.op)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, _, err := p.Query(ctx, ScanBenchQuery)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", mode.op, err)
			}
			if len(res.Rows) != scanBenchGroups {
				return nil, fmt.Errorf("%s: %d groups, want %d", mode.op, len(res.Rows), scanBenchGroups)
			}
		}
		out = append(out, BenchResult{
			Op: mode.op, Engine: reldb.KindSegment, Rows: rows,
			NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(iters),
			Date:    date,
		})
	}
	return out, nil
}
