package experiments

// Integration test for the paper's central claim (§1): performance data
// collected by different tools, in different formats, on different
// machines can be integrated, stored, and used in a single performance
// analysis session.

import (
	"fmt"
	"path/filepath"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/paradyn"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

func TestSingleSessionIntegratesAllToolsAndMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("loads five datasets")
	}
	dir := t.TempDir()
	fe, err := reldb.OpenFile(filepath.Join(dir, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	s, err := datastore.Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	// All four machines.
	for _, m := range gen.Catalog() {
		for _, rec := range m.ToPTdf(2) {
			if err := s.LoadRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
	}

	// One execution of each Table 1 dataset kind...
	specs := []gen.ExecSpec{
		{Kind: gen.KindIRS, Execution: "irs-mcr-0", App: "irs", Machine: "MCR", NProcs: 16, Seed: 1},
		{Kind: gen.KindIRS, Execution: "irs-frost-0", App: "irs", Machine: "Frost", NProcs: 16, Seed: 2},
		{Kind: gen.KindSMGUV, Execution: "smg-uv-0", App: "smg2000", Machine: "UV", NProcs: 8, Seed: 3},
		{Kind: gen.KindSMGBGL, Execution: "smg-bgl-0", App: "smg2000", Machine: "BGL", NProcs: 64, Seed: 4},
	}
	for _, spec := range specs {
		sub := filepath.Join(dir, spec.Execution)
		if _, err := gen.WriteExecution(sub, spec); err != nil {
			t.Fatal(err)
		}
		recs, err := gen.ConvertExecution(sub, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := s.LoadRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	// ... plus a Paradyn import (a fifth tool, different structure).
	bundle := paradyn.Synthesize(paradyn.Run{
		Execution: "irs-pd-0", NModules: 3, NFuncs: 8, NProcs: 4,
		NBins: 60, BinWidth: 0.2, NFoci: 2, NanFrac: 0.1, Seed: 5,
	})
	recs, err := bundle.ToPTdf("irs", "irs-pd-0")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatal(err)
		}
	}

	// Five tools, one store.
	tools, err := s.Tools()
	if err != nil {
		t.Fatal(err)
	}
	wantTools := map[string]bool{"IRS": true, "SMG2000": true, "mpiP": true,
		"PMAPI": true, "Paradyn": true}
	for _, tool := range tools {
		delete(wantTools, tool)
	}
	if len(wantTools) != 0 {
		t.Errorf("missing tools %v in %v", wantTools, tools)
	}

	// Two applications, five executions.
	if apps, err := s.Applications(); err != nil || len(apps) != 2 {
		t.Errorf("applications = %v, %v", apps, err)
	}
	if execs, err := s.Executions(); err != nil || len(execs) != 5 {
		t.Errorf("executions = %v, %v", execs, err)
	}

	// A single pr-filter spans tools: everything measured on the irs
	// application regardless of origin (IRS benchmark + Paradyn).
	appFam, err := s.ApplyFilter(core.ResourceFilter{Name: "/irs"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := query.Retrieve(s, core.PRFilter{Families: []core.Family{appFam}})
	if err != nil {
		t.Fatal(err)
	}
	toolsSeen := map[string]bool{}
	for _, row := range tbl.Rows {
		toolsSeen[row.Tool] = true
	}
	if !toolsSeen["IRS"] || !toolsSeen["Paradyn"] {
		t.Errorf("cross-tool query saw tools %v", toolsSeen)
	}

	// Free-resource analysis spans machines: grid/machine is offered
	// because the results come from different platforms.
	allTbl, err := query.Retrieve(s, core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := allTbl.FreeResources()
	if err != nil {
		t.Fatal(err)
	}
	foundMachine := false
	for _, c := range free {
		if c.Type == "grid/machine" && c.Distinct >= 4 {
			foundMachine = true
		}
	}
	if !foundMachine {
		t.Errorf("free resources did not span machines: %+v", free)
	}

	// SQL over the merged store: result counts per tool.
	res, err := s.SQL().Query(`SELECT pt.name, COUNT(*) FROM performance_result pr
		JOIN performance_tool pt ON pr.performance_tool_id = pt.id
		GROUP BY pt.name ORDER BY pt.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("per-tool groups = %d", len(res.Rows))
	}

	// Everything survives a restart.
	if err := fe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	fe2, err := reldb.OpenFile(filepath.Join(dir, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := datastore.Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if execs, err := s2.Executions(); err != nil || len(execs) != 5 {
		t.Errorf("executions after restart = %v, %v", execs, err)
	}
	n, err := s2.CountMatches(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no results after restart")
	}
	fmt.Printf("integrated store: %d results from 5 tools on 4 machines\n", n)
}
