package experiments

// Timing harness behind BenchmarkDiagnose and `ptbench -benchjson`'s
// BENCH_diagnose.json artifact: a synthetic fleet with one planted
// discriminating attribute, diagnosed end to end (side selection,
// feature extraction, predicate enumeration, scoring).

import (
	"context"
	"fmt"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/diagnose"
	"perftrack/internal/gen"
	"perftrack/internal/reldb"
)

// SeedFleetStore builds the standard diagnosis fleet (execs executions,
// planted compiler=-O0 2x slowdown) in a fresh in-memory store.
func SeedFleetStore(execs int, seed int64) (*datastore.Store, *gen.Fleet, error) {
	fleet, err := gen.FleetRecords(gen.FleetSpec{Execs: execs, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		return nil, nil, err
	}
	batch := s.NewBatch()
	for _, rec := range fleet.Records {
		batch.Stage(rec)
	}
	if _, err := batch.Commit(); err != nil {
		return nil, nil, err
	}
	return s, fleet, nil
}

// DiagnoseBenchmark times a full set-vs-set diagnosis over a synthetic
// fleet, averaging iters runs. workers=1 is the serial path; workers=0
// lets the diagnoser fan out over GOMAXPROCS. The Engine column carries
// the mode so serial and parallel rows are comparable in one artifact;
// Rows is the fleet size.
func DiagnoseBenchmark(execs, iters, workers int) (BenchResult, error) {
	mode := "parallel"
	if workers == 1 {
		mode = "serial"
	}
	res := BenchResult{Op: "diagnose", Engine: mode, Rows: execs,
		Date: time.Now().UTC().Format("2006-01-02")}
	s, fleet, err := SeedFleetStore(execs, 7)
	if err != nil {
		return res, err
	}
	spec := diagnose.Spec{ExecsA: fleet.Fast, ExecsB: fleet.Slow, Workers: workers}
	// Warm-up run, also validating the planted predicate is recovered so
	// the timing numbers describe a working diagnosis.
	out, err := diagnose.Run(context.Background(), s, spec)
	if err != nil {
		return res, err
	}
	if len(out.Explanations) == 0 || out.Explanations[0].Pred.String() != "compiler = -O0" {
		return res, fmt.Errorf("diagnosis missed the planted predicate: %+v", out.Explanations)
	}
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := diagnose.Run(context.Background(), s, spec); err != nil {
			return res, err
		}
	}
	res.NsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
	return res, nil
}
