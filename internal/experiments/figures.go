package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"perftrack/internal/chart"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/irs"
	"perftrack/internal/model"
	"perftrack/internal/paradyn"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

// Fig5Store builds the store behind Figure 5: IRS runs at increasing
// process counts on one machine, so min/max per-function wall time across
// processors can be charted as a load-balance indicator.
func Fig5Store(processCounts []int, seed int64) (*datastore.Store, error) {
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		return nil, err
	}
	m, err := gen.MachineByName("Frost")
	if err != nil {
		return nil, err
	}
	for _, rec := range m.ToPTdf(2) {
		if err := s.LoadRecord(rec); err != nil {
			return nil, err
		}
	}
	for i, np := range processCounts {
		execName := fmt.Sprintf("irs-np%03d", np)
		rep, err := generateIRSReport(irs.Run{Execution: execName, NProcs: np, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		for _, rec := range rep.ToPTdf("irs", m.Res()) {
			if err := s.LoadRecord(rec); err != nil {
				return nil, err
			}
		}
		execRes := core.ResourceName("/" + execName)
		if err := s.SetResourceAttribute(execRes, "nprocs", fmt.Sprintf("%d", np)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func generateIRSReport(run irs.Run) (*irs.Report, error) {
	var b strings.Builder
	if err := irs.Generate(&b, run); err != nil {
		return nil, err
	}
	return irs.Parse(strings.NewReader(b.String()))
}

// Fig5 regenerates Figure 5: the minimum and maximum running time of one
// function across all processors, for different process counts.
func Fig5(s *datastore.Store, function string, processCounts []int) (*chart.BarChart, error) {
	fnFam, err := s.ApplyFilter(core.ResourceFilter{
		Name: core.ResourceName("/irs-code/irs.c/" + function),
	})
	if err != nil {
		return nil, err
	}
	if fnFam.Size() == 0 {
		return nil, fmt.Errorf("experiments: no resource for function %q", function)
	}
	tbl, err := query.Retrieve(s, core.PRFilter{Families: []core.Family{fnFam}})
	if err != nil {
		return nil, err
	}
	if err := tbl.AddAttributeColumn("execution", "nprocs"); err != nil {
		return nil, err
	}
	c := &chart.BarChart{
		Title:  fmt.Sprintf("Min/max running time of %s across processors", function),
		XLabel: "process count",
		YLabel: "seconds",
	}
	for _, np := range processCounts {
		c.Categories = append(c.Categories, fmt.Sprintf("%d", np))
	}
	for _, metric := range []string{"WallTime min", "WallTime max"} {
		sub := *tbl
		sub.Rows = append([]*query.Row{}, tbl.Rows...)
		sub.FilterMetric(metric)
		keys, vals, err := sub.GroupBy("execution.nprocs", "avg")
		if err != nil {
			return nil, err
		}
		byNP := make(map[string]float64, len(keys))
		for i, k := range keys {
			byNP[k] = vals[i]
		}
		series := chart.Series{Name: strings.TrimPrefix(metric, "WallTime ")}
		for _, cat := range c.Categories {
			series.Values = append(series.Values, byNP[cat])
		}
		c.Series = append(c.Series, series)
	}
	return c, nil
}

// ModelDemo exercises the §6 prediction workflow end to end against a
// Fig5-style store: fit a scaling model to a function's measured average
// wall times across process counts, store its predictions as tool
// "model" results, and report fit quality plus per-count model-vs-actual
// ratios.
func ModelDemo(s *datastore.Store, function string, processCounts []int) (string, error) {
	fnRes := core.ResourceName("/irs-code/irs.c/" + function)
	fnFam, err := s.ApplyFilter(core.ResourceFilter{Name: fnRes})
	if err != nil {
		return "", err
	}
	if fnFam.Size() == 0 {
		return "", fmt.Errorf("experiments: no resource for function %q", function)
	}
	tbl, err := query.Retrieve(s, core.PRFilter{Families: []core.Family{fnFam}})
	if err != nil {
		return "", err
	}
	tbl.FilterMetric("WallTime average")
	if err := tbl.AddAttributeColumn("execution", "nprocs"); err != nil {
		return "", err
	}
	keys, vals, err := tbl.GroupBy("execution.nprocs", "avg")
	if err != nil {
		return "", err
	}
	var points []model.Point
	actual := map[int]float64{}
	for i, k := range keys {
		np, err := strconv.Atoi(k)
		if err != nil {
			continue
		}
		points = append(points, model.Point{Procs: np, Value: vals[i]})
		actual[np] = vals[i]
	}
	m, err := model.FitScaling(points)
	if err != nil {
		return "", err
	}
	// Store the predictions so the comparison operators can see them.
	preds := m.PredictRange(processCounts)
	recs := model.ToPTdf("irs", "model-"+function, "WallTime average", "seconds",
		[]core.ResourceName{fnRes}, preds)
	for _, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling model for %s (WallTime average):\n  %s\n  R^2 = %.4f on %d points\n\n",
		function, m, m.R2(points), len(points))
	fmt.Fprintf(&b, "%8s %12s %12s %8s\n", "procs", "actual", "model", "ratio")
	for _, pr := range preds {
		a, ok := actual[pr.Procs]
		ratio := "-"
		actStr := "-"
		if ok {
			actStr = fmt.Sprintf("%.4f", a)
			if a != 0 {
				ratio = fmt.Sprintf("%.3f", pr.Value/a)
			}
		}
		fmt.Fprintf(&b, "%8d %12s %12.4f %8s\n", pr.Procs, actStr, pr.Value, ratio)
	}
	return b.String(), nil
}

// Fig2BaseTypes renders the Figure 2 base resource types as loaded in a
// live store.
func Fig2BaseTypes(s *datastore.Store) string {
	ts := s.Types()
	var b strings.Builder
	b.WriteString("PerfTrack base resource types (Figure 2)\n\n")
	b.WriteString("Hierarchical:\n")
	var flats []core.TypePath
	for _, root := range ts.Roots() {
		kids := ts.Children(root)
		if len(kids) == 0 {
			flats = append(flats, root)
			continue
		}
		path := root
		chain := []string{string(root)}
		for len(kids) > 0 {
			path = kids[0]
			chain = append(chain, path.Leaf())
			kids = ts.Children(path)
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(chain, " / "))
	}
	b.WriteString("Non-hierarchical:\n")
	for _, f := range flats {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// Fig10Hierarchy renders Paradyn's resource type hierarchy.
func Fig10Hierarchy() string {
	h := paradyn.Hierarchy()
	roots := make([]string, 0, len(h))
	for r := range h {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	var b strings.Builder
	b.WriteString("Paradyn resource type hierarchy (Figure 10)\n\n")
	for _, r := range roots {
		fmt.Fprintf(&b, "  %s / %s\n", r, strings.Join(h[r], " / "))
	}
	return b.String()
}

// Fig11Mapping renders the Paradyn-to-PerfTrack type mapping with worked
// examples.
func Fig11Mapping() string {
	examples := []string{
		"/Code/irs.c",
		"/Code/irs.c/main",
		"/Code/irs.c/main/loop1",
		"/Code/DEFAULT_MODULE/__builtin_memcpy",
		"/Machine/mcr123/irs{1234}",
		"/Machine/mcr123/irs{1234}/thr_1",
		"/SyncObject/Message",
		"/SyncObject/Message/MPI_COMM_WORLD",
	}
	var b strings.Builder
	b.WriteString("Integration of Paradyn data into the PerfTrack type hierarchy (Figure 11)\n\n")
	fmt.Fprintf(&b, "New PerfTrack types added: ")
	var names []string
	for _, t := range paradyn.NewTypes() {
		names = append(names, string(t))
	}
	fmt.Fprintf(&b, "%s\n\n", strings.Join(names, ", "))
	fmt.Fprintf(&b, "%-44s %-36s %s\n", "Paradyn resource", "PerfTrack resource", "PerfTrack type")
	for _, pd := range examples {
		m, err := paradyn.MapResource(pd, "irs-001")
		if err != nil {
			fmt.Fprintf(&b, "%-44s ERROR: %v\n", pd, err)
			continue
		}
		extra := ""
		if len(m.Attributes) > 0 {
			var parts []string
			for k, v := range m.Attributes {
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			extra = "  [" + strings.Join(parts, " ") + "]"
		}
		fmt.Fprintf(&b, "%-44s %-36s %s%s\n", pd, m.Name, m.Type, extra)
	}
	return b.String()
}
