package experiments

import (
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

func TestTable1QuickShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and loads three datasets")
	}
	rows, err := Table1(QuickTable1Config(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	irsRow := byName["IRS"]
	// Per-execution file counts match Table 1 exactly.
	if irsRow.FilesPerExec != 6 || byName["SMG-UV"].FilesPerExec != 2 || byName["SMG-BG/L"].FilesPerExec != 1 {
		t.Errorf("files per exec: %d/%d/%d",
			irsRow.FilesPerExec, byName["SMG-UV"].FilesPerExec, byName["SMG-BG/L"].FilesPerExec)
	}
	// Raw bytes per execution in the same order of magnitude as the paper
	// (61 KB / 191 KB / 1 KB).
	if irsRow.RawBytesPerExec < 20_000 || irsRow.RawBytesPerExec > 300_000 {
		t.Errorf("IRS raw bytes = %d", irsRow.RawBytesPerExec)
	}
	uv := byName["SMG-UV"]
	bgl := byName["SMG-BG/L"]
	if uv.RawBytesPerExec <= irsRow.RawBytesPerExec {
		t.Errorf("SMG-UV (%d) should be the largest raw dataset (IRS %d)",
			uv.RawBytesPerExec, irsRow.RawBytesPerExec)
	}
	if bgl.RawBytesPerExec > 5_000 {
		t.Errorf("SMG-BG/L raw bytes = %d, want ~1 KB", bgl.RawBytesPerExec)
	}
	// Results per execution: ~1,500 (IRS, paper 1,514), thousands
	// (SMG-UV, paper 9,777), exactly 8 (BG/L).
	if irsRow.ResultsPerExec < 1200 || irsRow.ResultsPerExec > 1700 {
		t.Errorf("IRS results/exec = %d, want ~1514", irsRow.ResultsPerExec)
	}
	// Per-execution resources: IRS ~280 in the paper (functions +
	// processes + processors); ours lands in the same range.
	if irsRow.ResourcesPerExec < 150 || irsRow.ResourcesPerExec > 450 {
		t.Errorf("IRS resources/exec = %d, want ~280", irsRow.ResourcesPerExec)
	}
	// SMG-BG/L at 512 ranks declares ~1k run resources (paper: 522).
	if bglR := byName["SMG-BG/L"].ResourcesPerExec; bglR < 400 {
		t.Errorf("SMG-BG/L resources/exec = %d, want hundreds", bglR)
	}
	if bgl.ResultsPerExec != 8 || bgl.MetricsPerExec != 8 {
		t.Errorf("BG/L results/metrics = %d/%d, want 8/8", bgl.ResultsPerExec, bgl.MetricsPerExec)
	}
	if uv.ResultsPerExec < 5000 {
		t.Errorf("SMG-UV results/exec = %d, want thousands", uv.ResultsPerExec)
	}
	// DB growth ranking matches the paper: SMG-UV > BG/L-vs-IRS depends on
	// exec count; at equal quick scale UV must dominate IRS per exec.
	if uv.DBSizeIncrease <= irsRow.DBSizeIncrease*int64(irsRow.ExecsLoaded)/int64(uv.ExecsLoaded)/4 {
		t.Errorf("SMG-UV DB growth (%d) unexpectedly small vs IRS (%d)",
			uv.DBSizeIncrease, irsRow.DBSizeIncrease)
	}
	out := FormatTable1(rows)
	for _, want := range []string{"IRS", "SMG-UV", "SMG-BG/L", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestFig5ChartShape(t *testing.T) {
	counts := []int{2, 4, 8, 16}
	s, err := Fig5Store(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig5(s, "xdouble", counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Categories) != 4 || len(c.Series) != 2 {
		t.Fatalf("chart shape = %d cats, %d series", len(c.Categories), len(c.Series))
	}
	// min <= max for every process count.
	for i := range c.Categories {
		if c.Series[0].Values[i] > c.Series[1].Values[i] {
			t.Errorf("np=%s: min %v > max %v", c.Categories[i],
				c.Series[0].Values[i], c.Series[1].Values[i])
		}
		if c.Series[1].Values[i] <= 0 {
			t.Errorf("np=%s: max is %v", c.Categories[i], c.Series[1].Values[i])
		}
	}
	// Renderable both ways.
	if _, err := c.RenderASCII(40); err != nil {
		t.Error(err)
	}
	if _, err := c.RenderSVG(640, 360); err != nil {
		t.Error(err)
	}
}

func TestFig5UnknownFunction(t *testing.T) {
	s, err := Fig5Store([]int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig5(s, "nosuchfunction", []int{2}); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestFig9SampleShowsRecords(t *testing.T) {
	out, err := Fig9Sample(t.TempDir(), 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Application smg2000", "Execution", "PerfResult", "more records"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 sample missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Fig10Fig11Render(t *testing.T) {
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	f2 := Fig2BaseTypes(s)
	for _, want := range []string{"grid / machine / partition / node / processor",
		"build / module / function / codeBlock", "application", "metric"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Fig2 missing %q:\n%s", want, f2)
		}
	}
	f10 := Fig10Hierarchy()
	for _, want := range []string{"Code", "Machine", "SyncObject"} {
		if !strings.Contains(f10, want) {
			t.Errorf("Fig10 missing %q", want)
		}
	}
	f11 := Fig11Mapping()
	for _, want := range []string{
		"/Code/irs.c/main", "build/module/function",
		"/Machine/mcr123/irs{1234}", "execution/process", "node=mcr123",
		"syncObject/type/object",
	} {
		if !strings.Contains(f11, want) {
			t.Errorf("Fig11 missing %q:\n%s", want, f11)
		}
	}
}

func TestModelDemoEndToEnd(t *testing.T) {
	counts := []int{2, 4, 8, 16}
	s, err := Fig5Store(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ModelDemo(s, "xdouble", append(counts, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scaling model for xdouble", "R^2", "procs", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("model demo missing %q:\n%s", want, out)
		}
	}
	// Predictions were stored as tool "model" results.
	tools, err := s.Tools()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tool := range tools {
		if tool == "model" {
			found = true
		}
	}
	if !found {
		t.Errorf("model predictions not stored; tools = %v", tools)
	}
	if _, err := ModelDemo(s, "nosuchfn", counts); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestPaperTable1Reference(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 3 || rows[0].ResultsPerExec != 1514 || rows[1].MetricsPerExec != 259 {
		t.Errorf("paper reference = %+v", rows)
	}
}
