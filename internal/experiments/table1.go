// Package experiments regenerates every table and figure in the paper's
// evaluation: Table 1's data-volume statistics for the three case-study
// datasets, the Figure 5 load-balance bar chart, the Figure 9 PTdf
// excerpt, the schema and base-type listings of Figures 1 and 2, and the
// Paradyn hierarchy and mapping of Figures 10 and 11. The same entry
// points back cmd/ptbench and the repository benchmarks.
package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// Table1Row is one dataset row of Table 1.
type Table1Row struct {
	Name string

	// Original data set, per execution.
	FilesPerExec     int
	RawBytesPerExec  int64
	ResourcesPerExec int
	MetricsPerExec   int
	ResultsPerExec   int

	// PTdf: total files, lines per execution.
	PTdfFiles int
	PTdfLines int

	// PerfTrack store totals.
	ExecsLoaded    int
	DBSizeIncrease int64
}

// PaperTable1 returns the numbers printed in the paper for comparison.
// PTdfFiles is the total file count; PTdfLines is per execution (IRS
// 2,298 and SMG-UV 16,056 lines per execution ≈ results + resources +
// attributes). The SMG-BG/L row is special: the paper generated ONE PTdf
// file of 156,274 lines for all 60 executions, evidently including the
// 16k-node BlueGene/L machine description; our pipeline emits one file
// per execution with the machine preloaded separately, so the measured
// per-execution line count is small.
func PaperTable1() []Table1Row {
	return []Table1Row{
		{Name: "IRS", FilesPerExec: 6, RawBytesPerExec: 61100,
			ResourcesPerExec: 280, MetricsPerExec: 25, ResultsPerExec: 1514,
			PTdfFiles: 62, PTdfLines: 2298, ExecsLoaded: 62,
			DBSizeIncrease: 12 << 20},
		{Name: "SMG-UV", FilesPerExec: 2, RawBytesPerExec: 190800,
			ResourcesPerExec: 5657, MetricsPerExec: 259, ResultsPerExec: 9777,
			PTdfFiles: 247, PTdfLines: 16056, ExecsLoaded: 35,
			DBSizeIncrease: 89 << 20},
		{Name: "SMG-BG/L", FilesPerExec: 1, RawBytesPerExec: 1000,
			ResourcesPerExec: 522, MetricsPerExec: 8, ResultsPerExec: 8,
			PTdfFiles: 1, PTdfLines: 156274, ExecsLoaded: 60,
			DBSizeIncrease: 27 << 20},
	}
}

// Table1Config scales the regeneration. Paper scale is 62/35/60
// executions; smaller counts keep test runs fast while preserving the
// per-execution shape.
type Table1Config struct {
	WorkDir     string // scratch directory; caller owns cleanup
	IRSExecs    int
	IRSProcs    int
	SMGUVExecs  int
	SMGUVProcs  int
	SMGBGLExecs int
	SMGBGLProcs int
	Seed        int64
}

// DefaultTable1Config returns the paper-scale configuration.
func DefaultTable1Config(workDir string) Table1Config {
	return Table1Config{
		WorkDir:  workDir,
		IRSExecs: 62, IRSProcs: 64,
		SMGUVExecs: 35, SMGUVProcs: 64,
		SMGBGLExecs: 60, SMGBGLProcs: 512,
		Seed: 1,
	}
}

// QuickTable1Config returns a reduced-execution-count configuration with
// the same per-execution shape.
func QuickTable1Config(workDir string) Table1Config {
	return Table1Config{
		WorkDir:  workDir,
		IRSExecs: 4, IRSProcs: 64,
		SMGUVExecs: 3, SMGUVProcs: 64,
		SMGBGLExecs: 4, SMGBGLProcs: 512,
		Seed: 1,
	}
}

type dataset struct {
	name    string
	kind    string
	app     string
	machine string
	execs   int
	nprocs  int
}

// Table1 regenerates the three dataset rows: it writes raw tool output
// for every execution, converts it to PTdf via the index-file workflow,
// loads each dataset into a fresh file-engine store, and measures what
// the paper measured.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	datasets := []dataset{
		{name: "IRS", kind: gen.KindIRS, app: "irs", machine: "MCR",
			execs: cfg.IRSExecs, nprocs: cfg.IRSProcs},
		{name: "SMG-UV", kind: gen.KindSMGUV, app: "smg2000", machine: "UV",
			execs: cfg.SMGUVExecs, nprocs: cfg.SMGUVProcs},
		{name: "SMG-BG/L", kind: gen.KindSMGBGL, app: "smg2000", machine: "BGL",
			execs: cfg.SMGBGLExecs, nprocs: cfg.SMGBGLProcs},
	}
	var rows []Table1Row
	for di, ds := range datasets {
		row, err := runDataset(cfg, ds, cfg.Seed+int64(di)*1000)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ds.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runDataset(cfg Table1Config, ds dataset, seed int64) (Table1Row, error) {
	row := Table1Row{Name: ds.name}
	rawDir := filepath.Join(cfg.WorkDir, ds.name+"-raw")
	ptdfDir := filepath.Join(cfg.WorkDir, ds.name+"-ptdf")
	dbDir := filepath.Join(cfg.WorkDir, ds.name+"-db")

	// 1. Generate raw tool output per execution.
	var entries []gen.IndexEntry
	for e := 0; e < ds.execs; e++ {
		execName := fmt.Sprintf("%s-%03d", strings.ToLower(strings.ReplaceAll(ds.name, "/", "")), e)
		execDir := filepath.Join(rawDir, execName)
		spec := gen.ExecSpec{
			Kind: ds.kind, Execution: execName, App: ds.app,
			Machine: ds.machine, NProcs: ds.nprocs, Seed: seed + int64(e),
		}
		files, err := gen.WriteExecution(execDir, spec)
		if err != nil {
			return row, err
		}
		if e == 0 {
			row.FilesPerExec = len(files)
			for _, f := range files {
				st, err := os.Stat(filepath.Join(execDir, f))
				if err != nil {
					return row, err
				}
				row.RawBytesPerExec += st.Size()
			}
		}
		entries = append(entries, gen.IndexEntry{
			Execution: execName, App: ds.app, Concurrency: "MPI",
			NProcs: ds.nprocs, NThreads: 1,
			BuildTime: "2005-04-01T00:00:00Z", RunTime: "2005-04-02T00:00:00Z",
			Kind: ds.kind, Machine: ds.machine, Dir: execDir, Seed: seed + int64(e),
		})
	}

	// 2. Convert to PTdf via the PTdfGen workflow.
	paths, err := gen.PTdfGen(entries, ptdfDir)
	if err != nil {
		return row, err
	}
	row.PTdfFiles = len(paths)
	totalLines := 0
	for _, p := range paths {
		n, err := countLines(p)
		if err != nil {
			return row, err
		}
		totalLines += n
	}
	if len(paths) > 0 {
		row.PTdfLines = totalLines / len(paths)
	}

	// Per-execution "Original Data Set" columns, measured on the first
	// execution's PTdf: declared resources, distinct metrics, results.
	if len(paths) > 0 {
		f, err := os.Open(paths[0])
		if err != nil {
			return row, err
		}
		recs, err := ptdf.ReadAll(f)
		f.Close()
		if err != nil {
			return row, err
		}
		metricSet := make(map[string]bool)
		resourceSet := make(map[string]bool)
		for _, rec := range recs {
			switch r := rec.(type) {
			case ptdf.ResourceRec:
				resourceSet[string(r.Name)] = true
			case ptdf.PerfResultRec:
				metricSet[r.Metric] = true
				row.ResultsPerExec++
			}
		}
		row.ResourcesPerExec = len(resourceSet)
		row.MetricsPerExec = len(metricSet)
	}

	// 3. Load into a fresh durable store, measuring DB size growth.
	fe, err := reldb.OpenFile(dbDir)
	if err != nil {
		return row, err
	}
	defer fe.Close()
	store, err := datastore.Open(fe)
	if err != nil {
		return row, err
	}
	// Machine description is preloaded, as in §4.1 ("a full set of
	// descriptive machine data was already in our PerfTrack system").
	m, err := gen.MachineByName(ds.machine)
	if err != nil {
		return row, err
	}
	for _, rec := range m.ToPTdf(8) {
		if err := store.LoadRecord(rec); err != nil {
			return row, err
		}
	}
	if err := fe.Checkpoint(); err != nil {
		return row, err
	}
	size0, err := fe.DiskSize()
	if err != nil {
		return row, err
	}
	for _, p := range paths {
		if _, err := store.LoadPTdfFile(p); err != nil {
			return row, err
		}
		row.ExecsLoaded++
	}
	if err := fe.Checkpoint(); err != nil {
		return row, err
	}
	size1, err := fe.DiskSize()
	if err != nil {
		return row, err
	}
	row.DBSizeIncrease = size1 - size0
	return row, nil
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}

// FormatTable1 renders measured rows next to the paper's, Table 1 style.
func FormatTable1(measured []Table1Row) string {
	paper := PaperTable1()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: statistics for raw data, PTdf, and data store (measured vs paper)\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %10s %12s %10s %8s %10s %10s %10s %8s %12s\n",
		"Name", "source", "Files/ex", "RawB/ex", "Res/ex", "Metrics",
		"Results/ex", "PTdfFiles", "Lines/ex", "Execs", "DBgrowth")
	for i, row := range measured {
		fmt.Fprintf(&b, "%-10s %-8s %10d %12d %10d %8d %10d %10d %10d %8d %12s\n",
			row.Name, "measured", row.FilesPerExec, row.RawBytesPerExec,
			row.ResourcesPerExec, row.MetricsPerExec, row.ResultsPerExec,
			row.PTdfFiles, row.PTdfLines, row.ExecsLoaded, humanBytes(row.DBSizeIncrease))
		if i < len(paper) {
			p := paper[i]
			fmt.Fprintf(&b, "%-10s %-8s %10d %12d %10d %8d %10d %10d %10d %8d %12s\n",
				p.Name, "paper", p.FilesPerExec, p.RawBytesPerExec,
				p.ResourcesPerExec, p.MetricsPerExec, p.ResultsPerExec,
				p.PTdfFiles, p.PTdfLines, p.ExecsLoaded, humanBytes(p.DBSizeIncrease))
		}
	}
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Fig9Sample regenerates Figure 9: the PTdf produced for one SMG
// application run, returning the first maxLines lines.
func Fig9Sample(workDir string, maxLines int) (string, error) {
	execDir := filepath.Join(workDir, "fig9-raw")
	spec := gen.ExecSpec{
		Kind: gen.KindSMGUV, Execution: "smg-uv-000", App: "smg2000",
		Machine: "UV", NProcs: 8, Seed: 9,
	}
	if _, err := gen.WriteExecution(execDir, spec); err != nil {
		return "", err
	}
	recs, err := gen.ConvertExecution(execDir, spec)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("# PTdf generated for the SMG application (Figure 9)\n")
	for i, rec := range recs {
		if i >= maxLines {
			fmt.Fprintf(&b, "# ... %d more records\n", len(recs)-maxLines)
			break
		}
		b.WriteString(ptdf.FormatRecord(rec))
		b.WriteByte('\n')
	}
	return b.String(), nil
}
