package experiments

// Synthetic 100k-row corpus and timing harness behind the storage-engine
// benchmarks: BenchmarkMaterializeEngines / BenchmarkBulkLoad in the repo
// root and `ptbench -benchjson`, which emits the BENCH_materialize.json /
// BENCH_bulkload.json artifacts consumed by CI.

import (
	"fmt"
	"runtime/debug"
	"time"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// synthProcs is the processor fan-out of the synthetic corpus; foci are
// shared heavily across results, as in the real SMG-UV dataset.
const synthProcs = 64

func synthProcName(i int) core.ResourceName {
	return core.ResourceName(fmt.Sprintf("/SG/SM/batch/n%d/p%d", (i%synthProcs)/8, i%8))
}

// SynthResultRecords builds a deterministic synthetic corpus: one
// application and execution, 64 processor resources, and n performance
// results over 16 metrics, each with one primary context. It scales the
// Table 1 workload shape to arbitrary row counts without paying raw-data
// generation and parsing.
func SynthResultRecords(n int) []ptdf.Record {
	recs := make([]ptdf.Record, 0, n+synthProcs+3)
	recs = append(recs,
		ptdf.ApplicationRec{Name: "synth"},
		ptdf.ExecutionRec{Name: "synth-exec", App: "synth"},
		ptdf.ResourceRec{Name: "/synth", Type: "application"},
	)
	for p := 0; p < synthProcs; p++ {
		recs = append(recs, ptdf.ResourceRec{
			Name: synthProcName(p),
			Type: "grid/machine/partition/node/processor",
		})
	}
	for i := 0; i < n; i++ {
		recs = append(recs, ptdf.PerfResultRec{
			Exec: "synth-exec",
			Sets: []ptdf.ResourceSet{{
				Names: []core.ResourceName{"/synth", synthProcName(i)},
				Type:  core.FocusPrimary,
			}},
			Tool: "synth", Metric: fmt.Sprintf("metric-%02d", i%16),
			Value: float64(i) * 0.25, Units: "seconds",
		})
	}
	return recs
}

// SeedSynthStore opens a store over eng and loads recs in one batch
// commit, returning the store and the full matched result-ID set.
func SeedSynthStore(eng reldb.Engine, recs []ptdf.Record) (*datastore.Store, []int64, error) {
	s, err := datastore.Open(eng)
	if err != nil {
		return nil, nil, err
	}
	batch := s.NewBatch()
	for _, rec := range recs {
		batch.Stage(rec)
	}
	if _, err := batch.Commit(); err != nil {
		return nil, nil, err
	}
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		return nil, nil, err
	}
	return s, ids, nil
}

// BenchResult is one measurement row in the BENCH_*.json artifacts.
type BenchResult struct {
	Op       string  `json:"op"`     // materialize or bulkload
	Engine   string  `json:"engine"` // mem, wal, segment
	Rows     int     `json:"rows"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerSec float64 `json:"mb_per_sec"`
	Date     string  `json:"date"` // UTC, YYYY-MM-DD
}

// openBenchEngine opens a fresh engine of the given kind under dir.
func openBenchEngine(kind, dir string) (reldb.Engine, error) {
	return reldb.Open(kind, dir)
}

// MaterializeBenchmark times MaterializeResults over the full synthetic
// ID set on one engine kind, averaging iters runs. The reported MB/s is
// row payload bytes materialized per second.
func MaterializeBenchmark(kind, dir string, rows, iters int) (BenchResult, error) {
	res := BenchResult{Op: "materialize", Engine: kind, Rows: rows,
		Date: time.Now().UTC().Format("2006-01-02")}
	// Same collector pacing as BenchmarkMaterializeEngines, so the JSON
	// artifact and the go-test numbers are comparable.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	eng, err := openBenchEngine(kind, dir)
	if err != nil {
		return res, err
	}
	defer eng.Close()
	s, ids, err := SeedSynthStore(eng, SynthResultRecords(rows))
	if err != nil {
		return res, err
	}
	if fe, ok := eng.(*reldb.FileEngine); ok && kind == reldb.KindSegment {
		if err := fe.CompactSegments(); err != nil {
			return res, err
		}
	}
	dataBytes := eng.Stats().PerTable["performance_result"].DataBytes
	// One warm-up run keeps dictionary maps and the page cache out of
	// the measured loop.
	if _, err := s.MaterializeResults(ids); err != nil {
		return res, err
	}
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		out, err := s.MaterializeResults(ids)
		if err != nil {
			return res, err
		}
		if len(out) != len(ids) {
			return res, fmt.Errorf("materialized %d of %d", len(out), len(ids))
		}
	}
	elapsed := time.Since(start)
	res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	res.MBPerSec = float64(dataBytes) * float64(iters) / elapsed.Seconds() / (1 << 20)
	return res, nil
}

// BulkLoadBenchmark times one batch commit of the synthetic corpus into
// a fresh store on the given engine kind. MB/s is resident row payload
// bytes written per second.
func BulkLoadBenchmark(kind, dir string, rows int) (BenchResult, error) {
	res := BenchResult{Op: "bulkload", Engine: kind, Rows: rows,
		Date: time.Now().UTC().Format("2006-01-02")}
	recs := SynthResultRecords(rows)
	eng, err := openBenchEngine(kind, dir)
	if err != nil {
		return res, err
	}
	defer eng.Close()
	start := time.Now()
	if _, _, err := SeedSynthStore(eng, recs); err != nil {
		return res, err
	}
	elapsed := time.Since(start)
	res.NsPerOp = float64(elapsed.Nanoseconds())
	res.MBPerSec = float64(eng.Stats().DataBytes) / elapsed.Seconds() / (1 << 20)
	return res, nil
}
