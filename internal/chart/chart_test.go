package chart

import (
	"math"
	"strings"
	"testing"
)

func fig5Chart() *BarChart {
	return &BarChart{
		Title:      "Load balance of function xdouble across process counts",
		XLabel:     "process count",
		YLabel:     "seconds",
		Categories: []string{"2", "4", "8", "16"},
		Series: []Series{
			{Name: "min", Values: []float64{10, 6, 3.5, 2}},
			{Name: "max", Values: []float64{12, 9, 6, 5}},
		},
	}
}

func TestValidate(t *testing.T) {
	c := fig5Chart()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*BarChart{
		{},
		{Categories: []string{"a"}},
		{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad chart %d accepted", i)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	out, err := fig5Chart().RenderASCII(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Load balance", "2 min", "16 max", "#", "x: process count", "(seconds)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// The largest value draws the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > longest {
			longest = n
			longestLine = l
		}
	}
	if !strings.Contains(longestLine, "2 max") {
		t.Errorf("longest bar on %q, want '2 max'", longestLine)
	}
}

func TestRenderASCIITinyWidthClamped(t *testing.T) {
	if _, err := fig5Chart().RenderASCII(1); err != nil {
		t.Fatal(err)
	}
}

func TestRenderASCIIZeroAndNaNValues(t *testing.T) {
	c := &BarChart{
		Categories: []string{"a", "b"},
		Series:     []Series{{Name: "s", Values: []float64{0, math.NaN()}}},
	}
	out, err := c.RenderASCII(20)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Errorf("zero/NaN values should draw no bar:\n%s", out)
	}
}

func TestRenderSVG(t *testing.T) {
	svg, err := fig5Chart().RenderSVG(640, 360)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "min", "max",
		"Load balance of function xdouble",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 4 categories x 2 series bars + background + legend swatches.
	if n := strings.Count(svg, "<rect"); n < 8 {
		t.Errorf("only %d rects", n)
	}
}

func TestRenderSVGEscapesXML(t *testing.T) {
	c := fig5Chart()
	c.Title = `a < b & "c"`
	svg, err := c.RenderSVG(400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a < b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp; &quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestRenderSVGMinimumSizeClamped(t *testing.T) {
	if _, err := fig5Chart().RenderSVG(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if out != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", out)
	}
	// NaN bins render as spaces.
	out = Sparkline([]float64{math.NaN(), 5, math.NaN()})
	if out[0] != ' ' {
		t.Errorf("NaN rendering = %q", out)
	}
	// Constant series renders at the bottom level.
	out = Sparkline([]float64{3, 3, 3})
	if out != "▁▁▁" {
		t.Errorf("constant = %q", out)
	}
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	if got := Sparkline([]float64{math.NaN(), math.NaN()}); got != "  " {
		t.Errorf("all-NaN = %q", got)
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1: 1, 1.2: 2, 3: 5, 7: 10, 12: 20, 99: 100, 101: 200,
		0: 1, -5: 1,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestManySeriesCyclePalette(t *testing.T) {
	c := &BarChart{Categories: []string{"x"}}
	for i := 0; i < 12; i++ {
		c.Series = append(c.Series, Series{Name: strings.Repeat("s", i+1), Values: []float64{float64(i)}})
	}
	if _, err := c.RenderSVG(800, 400); err != nil {
		t.Fatal(err)
	}
}
