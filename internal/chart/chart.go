// Package chart renders grouped bar charts like the PerfTrack GUI's plot
// window (Figure 5: multiple series of values on one chart, e.g. min and
// max running time of a function across processors for different process
// counts). Output targets are plain text for terminals and SVG for
// documents; the original barchart widget was written from scratch for the
// same reason this one is — third-party charting dependencies are avoided.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of values, one per category.
type Series struct {
	Name   string
	Values []float64
}

// BarChart is a grouped bar chart.
type BarChart struct {
	Title      string
	XLabel     string
	YLabel     string
	Categories []string
	Series     []Series
}

// Validate checks that every series covers every category.
func (c *BarChart) Validate() error {
	if len(c.Categories) == 0 {
		return fmt.Errorf("chart: no categories")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("chart: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("chart: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
	}
	return nil
}

func (c *BarChart) maxValue() float64 {
	m := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > m {
				m = v
			}
		}
	}
	return m
}

// RenderASCII draws the chart as text with horizontal bars, one row per
// (category, series) pair, bars scaled to width characters.
func (c *BarChart) RenderASCII(width int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 10 {
		width = 10
	}
	maxV := c.maxValue()
	if maxV == 0 {
		maxV = 1
	}
	labelW := 0
	for _, cat := range c.Categories {
		for _, s := range c.Series {
			l := len(cat) + 1 + len(s.Name)
			if l > labelW {
				labelW = l
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
		b.WriteString(strings.Repeat("=", len(c.Title)))
		b.WriteByte('\n')
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "(%s)\n", c.YLabel)
	}
	for ci, cat := range c.Categories {
		for _, s := range c.Series {
			v := s.Values[ci]
			n := 0
			if !math.IsNaN(v) && v > 0 {
				n = int(math.Round(v / maxV * float64(width)))
			}
			label := cat + " " + s.Name
			fmt.Fprintf(&b, "%-*s |%s %g\n", labelW, label, strings.Repeat("#", n), v)
		}
		if ci < len(c.Categories)-1 {
			b.WriteByte('\n')
		}
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, "x: %s\n", c.XLabel)
	}
	return b.String(), nil
}

// svgPalette cycles per series.
var svgPalette = []string{
	"#4878a8", "#e49444", "#5aa469", "#d1605e", "#857aab",
	"#937860", "#dc7ec0", "#797979",
}

// RenderSVG draws the chart as a standalone SVG document with grouped
// vertical bars, a value axis, and a legend.
func (c *BarChart) RenderSVG(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const (
		marginLeft   = 70
		marginRight  = 20
		marginTop    = 40
		marginBottom = 60
	)
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)
	maxV := c.maxValue()
	if maxV == 0 {
		maxV = 1
	}
	// Round the axis max up to a tidy value.
	axisMax := niceCeil(maxV)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			width/2, xmlEscape(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+int(plotH))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop+int(plotH), marginLeft+int(plotW), marginTop+int(plotH))
	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := axisMax * float64(i) / 4
		y := float64(marginTop) + plotH - v/axisMax*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginLeft, y, marginLeft+int(plotW), y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, trimFloat(v))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			marginTop+int(plotH)/2, marginTop+int(plotH)/2, xmlEscape(c.YLabel))
	}
	// Bars.
	nCat := len(c.Categories)
	nSer := len(c.Series)
	groupW := plotW / float64(nCat)
	barW := groupW * 0.8 / float64(nSer)
	for ci, cat := range c.Categories {
		gx := float64(marginLeft) + groupW*float64(ci) + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[ci]
			if math.IsNaN(v) || v < 0 {
				v = 0
			}
			h := v / axisMax * plotH
			x := gx + barW*float64(si)
			y := float64(marginTop) + plotH - h
			color := svgPalette[si%len(svgPalette)]
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %g</title></rect>`+"\n",
				x, y, barW, h, color, xmlEscape(cat), xmlEscape(s.Name), s.Values[ci])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW*0.4, marginTop+int(plotH)+16, xmlEscape(cat))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW)/2, height-8, xmlEscape(c.XLabel))
	}
	// Legend.
	lx := marginLeft + 8
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		y := marginTop + 4 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, y, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+14, y+9, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// sparkLevels are the eighth-block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a one-line unicode sparkline,
// used to view histogram-valued performance results (Paradyn time
// series). NaN values (bins with no data) render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values)) // all NaN
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// niceCeil rounds up to 1, 2, or 5 times a power of ten.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
