package paradyn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func TestHistogramRoundTrip(t *testing.T) {
	h := &Histogram{
		Metric:   "cpu_inclusive",
		Focus:    []string{"/Code/irs.c/main", "/Machine/mcr123/irs{1234}"},
		Phase:    "global",
		NumBins:  5,
		BinWidth: 0.2,
		Values:   []float64{math.NaN(), 1.5, 2.25, math.NaN(), 0},
	}
	var buf bytes.Buffer
	if err := WriteHistogram(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ParseHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metric != h.Metric || len(got.Focus) != 2 || got.BinWidth != 0.2 {
		t.Errorf("header = %+v", got)
	}
	if len(got.Values) != 5 || !math.IsNaN(got.Values[0]) || got.Values[2] != 2.25 {
		t.Errorf("values = %v", got.Values)
	}
}

func TestParseHistogramErrors(t *testing.T) {
	bad := []string{
		"", // no metric
		"metric: m\nnumBins: 3\nbinWidth: 1\n1\n", // bin count mismatch
		"metric: m\nbinWidth: 0\n",                // bad width
		"metric: m\nbinWidth: 1\nnotanumber\n",    // bad value
		"metric: m\nnumBins: x\n",                 // bad numBins
	}
	for _, doc := range bad {
		if _, err := ParseHistogram(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseHistogram(%q) should fail", doc)
		}
	}
}

func TestIndexAndResourcesAndSHGRoundTrip(t *testing.T) {
	entries := []IndexEntry{
		{File: "h0.hist", Metric: "cpu", Focus: []string{"/Code/a.c/f"}},
		{File: "h1.hist", Metric: "io_wait", Focus: []string{"/Code/a.c/g", "/Machine/n/p{1}"}},
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ParseIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Metric != "io_wait" || len(got[1].Focus) != 2 {
		t.Errorf("index = %+v", got)
	}

	res, err := ParseResources(strings.NewReader("# header\n/Code/a.c\n/Machine/n\n"))
	if err != nil || len(res) != 2 {
		t.Errorf("resources = %v, %v", res, err)
	}
	if _, err := ParseResources(strings.NewReader("not-absolute\n")); err == nil {
		t.Error("relative resource accepted")
	}

	nodes := []SHGNode{{ID: 1, Hypothesis: "CPUBound", Focus: []string{"/Code/a.c"}, Truth: "true"}}
	buf.Reset()
	if err := WriteSearchHistory(&buf, nodes); err != nil {
		t.Fatal(err)
	}
	shg, err := ParseSearchHistory(&buf)
	if err != nil || len(shg) != 1 || shg[0].Truth != "true" {
		t.Errorf("shg = %+v, %v", shg, err)
	}
}

func TestMapResourceFigure11(t *testing.T) {
	cases := []struct {
		pd       string
		wantName core.ResourceName
		wantType core.TypePath
	}{
		{"/Code", "/e1-code", "build"},
		{"/Code/irs.c", "/e1-code/irs.c", "build/module"},
		{"/Code/irs.c/main", "/e1-code/irs.c/main", "build/module/function"},
		{"/Code/irs.c/main/loop1", "/e1-code/irs.c/main/loop1", "build/module/function/codeBlock"},
		{"/Code/DEFAULT_MODULE/__memcpy", "/e1-code/DEFAULT_MODULE/__memcpy", "build/module/function"},
		{"/Machine/mcr9/irs{42}", "/e1/irs_42", "execution/process"},
		{"/Machine/mcr9/irs{42}/thr_1", "/e1/irs_42/thr_1", "execution/process/thread"},
		{"/SyncObject/Message", "/e1-sync/Message", "syncObject/type"},
		{"/SyncObject/Message/MPI_COMM_WORLD", "/e1-sync/Message/MPI_COMM_WORLD", "syncObject/type/object"},
	}
	for _, c := range cases {
		m, err := MapResource(c.pd, "e1")
		if err != nil {
			t.Fatalf("MapResource(%q): %v", c.pd, err)
		}
		if m.Name != c.wantName || m.Type != c.wantType {
			t.Errorf("MapResource(%q) = %q (%q), want %q (%q)",
				c.pd, m.Name, m.Type, c.wantName, c.wantType)
		}
	}
	// The machine node becomes an attribute of the process (Figure 11).
	m, _ := MapResource("/Machine/mcr9/irs{42}", "e1")
	if m.Attributes["node"] != "mcr9" {
		t.Errorf("node attribute = %v", m.Attributes)
	}
}

func TestMapResourceErrors(t *testing.T) {
	for _, pd := range []string{"relative", "/Unknown/x", "/Code/a/b/c/d", "/Machine/a/b/c/d/e"} {
		if _, err := MapResource(pd, "e1"); err == nil {
			t.Errorf("MapResource(%q) should fail", pd)
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	run := Run{
		Execution: "e1", NModules: 4, NFuncs: 10, NProcs: 4,
		NBins: 100, BinWidth: 0.2, NFoci: 3, NanFrac: 0.2, Seed: 1,
	}
	b := Synthesize(run)
	// 4 modules + 40 funcs + DEFAULT_MODULE pair + 2 sync + 8 machine.
	if len(b.Resources) != 4+40+2+2+8 {
		t.Errorf("resources = %d", len(b.Resources))
	}
	if len(b.Histograms) != len(DefaultMetrics)*3 {
		t.Errorf("histograms = %d", len(b.Histograms))
	}
	nan := 0
	for _, h := range b.Histograms {
		if len(h.Values) != 100 {
			t.Fatalf("bins = %d", len(h.Values))
		}
		for _, v := range h.Values {
			if math.IsNaN(v) {
				nan++
			}
		}
	}
	if nan == 0 {
		t.Error("expected some nan bins")
	}
	if len(b.SHG) != 3 {
		t.Errorf("SHG nodes = %d", len(b.SHG))
	}
}

func TestGenerateAndLoadBundle(t *testing.T) {
	dir := t.TempDir()
	run := Run{
		Execution: "irs-pd-001", NModules: 2, NFuncs: 5, NProcs: 2,
		NBins: 50, BinWidth: 0.2, NFoci: 2, NanFrac: 0.1, Seed: 2,
	}
	if err := GenerateBundle(dir, run); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Histograms) != len(DefaultMetrics)*2 {
		t.Errorf("histograms = %d", len(b.Histograms))
	}
	if len(b.Resources) == 0 || len(b.SHG) == 0 {
		t.Error("bundle incomplete")
	}
}

func TestBundleToPTdfLoadsAndSkipsNan(t *testing.T) {
	run := Run{
		Execution: "irs-pd-001", NModules: 2, NFuncs: 5, NProcs: 2,
		NBins: 40, BinWidth: 0.2, NFoci: 2, NanFrac: 0.25, Seed: 3,
	}
	b := Synthesize(run)
	recs, err := b.ToPTdf("irs", "irs-pd-001")
	if err != nil {
		t.Fatal(err)
	}
	nonNan := 0
	for _, h := range b.Histograms {
		for _, v := range h.Values {
			if !math.IsNaN(v) {
				nonNan++
			}
		}
	}
	results := 0
	for _, rec := range recs {
		if _, ok := rec.(ptdf.PerfResultRec); ok {
			results++
		}
	}
	if results != nonNan {
		t.Errorf("results = %d, non-nan bins = %d (nan bins must not be recorded)", results, nonNan)
	}

	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d (%s): %v", i, ptdf.FormatRecord(rec), err)
		}
	}
	// Type extensions landed.
	if !s.Types().Has("syncObject/type/object") || !s.Types().Has("time/interval/bin") {
		t.Error("type extensions missing")
	}
	// Bin resources carry start/end attributes.
	bins, err := s.Descendants("/irs-pd-001-time")
	if err != nil || len(bins) == 0 {
		t.Fatalf("time bins = %v, %v", bins, err)
	}
	bin, err := s.ResourceByName(bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if bin.Attributes["start time"] == "" || bin.Attributes["end time"] == "" {
		t.Errorf("bin attrs = %v", bin.Attributes)
	}
	// Process resources carry the machine node as an attribute.
	procs, err := s.ResourcesOfType("execution/process")
	if err != nil || len(procs) == 0 {
		t.Fatalf("processes = %v, %v", procs, err)
	}
	proc, _ := s.ResourceByName(procs[0])
	if proc.Attributes["node"] == "" {
		t.Errorf("process attrs = %v", proc.Attributes)
	}
	// The Performance Consultant's findings are recorded.
	exec, _ := s.ResourceByName("/irs-pd-001")
	foundPC := false
	for k := range exec.Attributes {
		if strings.HasPrefix(k, "PC hypothesis") {
			foundPC = true
		}
	}
	if !foundPC {
		t.Error("search history graph not recorded")
	}
}

func TestHierarchyFigure10(t *testing.T) {
	h := Hierarchy()
	if len(h) != 3 {
		t.Errorf("hierarchy roots = %d", len(h))
	}
	for _, root := range []string{"Code", "Machine", "SyncObject"} {
		if len(h[root]) == 0 {
			t.Errorf("root %q has no levels", root)
		}
	}
}
