package paradyn

import (
	"fmt"
	"math"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// MappedResource is the PerfTrack view of one Paradyn resource after
// applying the Figure 11 type mapping.
type MappedResource struct {
	Name core.ResourceName
	Type core.TypePath
	// Attributes carries extra data that does not map structurally — e.g.
	// the machine node of a process.
	Attributes map[string]string
}

// NewTypes are the PerfTrack type extensions required before loading
// Paradyn data: the syncObject hierarchy mirroring Paradyn's (§4.3), and
// a bin level under time/interval for histogram bins.
func NewTypes() []core.TypePath {
	return []core.TypePath{
		"syncObject", "syncObject/type", "syncObject/type/object",
		"time/interval/bin",
	}
}

// MapResource translates one Paradyn resource name into PerfTrack terms.
// The prefix is prepended to names to keep executions distinct (Paradyn
// names like /Code/irs.c/main would otherwise collide across runs).
func MapResource(pdName, prefix string) (*MappedResource, error) {
	if !strings.HasPrefix(pdName, "/") {
		return nil, fmt.Errorf("paradyn: resource %q is not absolute", pdName)
	}
	segs := strings.Split(strings.TrimPrefix(pdName, "/"), "/")
	if len(segs) == 0 || segs[0] == "" {
		return nil, fmt.Errorf("paradyn: empty resource %q", pdName)
	}
	root, rest := segs[0], segs[1:]
	switch root {
	case "Code":
		// /Code/<module>/<function>[/<loop>] → build hierarchy. Loops map
		// to codeBlock. Dynamic vs static cannot always be determined, so
		// build (static) is the default, including DEFAULT_MODULE.
		types := []core.TypePath{"build", "build/module", "build/module/function",
			"build/module/function/codeBlock"}
		if len(rest) > 3 {
			return nil, fmt.Errorf("paradyn: Code resource %q too deep", pdName)
		}
		name := core.ResourceName("/" + prefix + "-code")
		for _, s := range rest {
			name = name.Child(s)
		}
		return &MappedResource{Name: name, Type: types[len(rest)]}, nil
	case "Machine":
		// /Machine/<node>/<process>[/<thread>] → execution hierarchy; the
		// node becomes an attribute of the process resource.
		switch len(rest) {
		case 0:
			return &MappedResource{
				Name: core.ResourceName("/" + prefix),
				Type: "execution",
			}, nil
		case 1:
			// A bare node has no execution-hierarchy analogue; it is
			// recorded as an attribute carrier on the execution itself.
			return &MappedResource{
				Name:       core.ResourceName("/" + prefix),
				Type:       "execution",
				Attributes: map[string]string{"node": rest[0]},
			}, nil
		case 2, 3:
			name := core.ResourceName("/" + prefix).Child(sanitizeProcess(rest[1]))
			typ := core.TypePath("execution/process")
			attrs := map[string]string{"node": rest[0]}
			if len(rest) == 3 {
				name = name.Child(rest[2])
				typ = "execution/process/thread"
			}
			return &MappedResource{Name: name, Type: typ, Attributes: attrs}, nil
		default:
			return nil, fmt.Errorf("paradyn: Machine resource %q too deep", pdName)
		}
	case "SyncObject":
		// /SyncObject/<type>[/<object>] → the new syncObject hierarchy.
		types := []core.TypePath{"syncObject", "syncObject/type", "syncObject/type/object"}
		if len(rest) > 2 {
			return nil, fmt.Errorf("paradyn: SyncObject resource %q too deep", pdName)
		}
		name := core.ResourceName("/" + prefix + "-sync")
		for _, s := range rest {
			name = name.Child(s)
		}
		return &MappedResource{Name: name, Type: types[len(rest)]}, nil
	default:
		return nil, fmt.Errorf("paradyn: unknown hierarchy root %q in %q", root, pdName)
	}
}

// sanitizeProcess rewrites Paradyn process names like "irs{12345}" into
// path-safe components.
func sanitizeProcess(s string) string {
	s = strings.ReplaceAll(s, "{", "_")
	s = strings.ReplaceAll(s, "}", "")
	return s
}

// Bundle is a full parsed Paradyn export for one execution.
type Bundle struct {
	Resources  []string
	Histograms []*Histogram
	SHG        []SHGNode
}

// ToPTdf converts a bundle into PTdf records. Every Paradyn resource maps
// per Figure 11; the time hierarchy gains a global phase with one bin
// resource per histogram bin (start/end attributes); each non-nan bin
// value becomes a performance result whose context joins the mapped focus
// resources and the bin. 'nan' bins — where dynamic instrumentation was
// not yet inserted — are not recorded (§4.3).
func (b *Bundle) ToPTdf(app, execName string) ([]ptdf.Record, error) {
	var recs []ptdf.Record
	for _, t := range NewTypes() {
		recs = append(recs, ptdf.ResourceTypeRec{Type: t})
	}
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: execName, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})

	emitted := make(map[core.ResourceName]bool)
	emit := func(m *MappedResource) {
		if !emitted[m.Name] {
			emitted[m.Name] = true
			exec := ""
			if m.Type.Root() == "execution" || m.Type.Root() == "time" {
				exec = execName
			}
			recs = append(recs, ptdf.ResourceRec{Name: m.Name, Type: m.Type, Exec: exec})
		}
		for k, v := range m.Attributes {
			recs = append(recs, ptdf.ResourceAttributeRec{
				Resource: m.Name, Attr: k, Value: v, AttrType: "string",
			})
		}
	}
	// The execution resource itself anchors the Machine mapping.
	emit(&MappedResource{Name: core.ResourceName("/" + execName), Type: "execution"})

	// Declare every exported resource.
	for _, pd := range b.Resources {
		m, err := MapResource(pd, execName)
		if err != nil {
			return nil, err
		}
		emit(m)
	}

	// Global phase at the top of the time hierarchy.
	globalPhase := core.ResourceName("/" + execName + "-time")
	recs = append(recs, ptdf.ResourceRec{Name: globalPhase, Type: "time", Exec: execName})
	recs = append(recs, ptdf.ResourceAttributeRec{
		Resource: globalPhase, Attr: "phase", Value: "global", AttrType: "string",
	})

	phaseRes := make(map[string]core.ResourceName) // local phase -> resource
	binRes := make(map[string]bool)

	for _, h := range b.Histograms {
		// Map the focus.
		var focusNames []core.ResourceName
		for _, f := range h.Focus {
			m, err := MapResource(f, execName)
			if err != nil {
				return nil, err
			}
			emit(m)
			focusNames = append(focusNames, m.Name)
		}
		// Phase container: global phase children are bins or local phases;
		// local phases also have bins as children (§4.3).
		parent := globalPhase
		if h.Phase != "" && h.Phase != "global" {
			pr, ok := phaseRes[h.Phase]
			if !ok {
				pr = globalPhase.Child(h.Phase)
				phaseRes[h.Phase] = pr
				recs = append(recs, ptdf.ResourceRec{Name: pr, Type: "time/interval", Exec: execName})
				recs = append(recs, ptdf.ResourceAttributeRec{
					Resource: pr, Attr: "phase", Value: h.Phase, AttrType: "string",
				})
			}
			parent = pr
		}
		for i, v := range h.Values {
			if math.IsNaN(v) {
				continue // no data: instrumentation not yet inserted
			}
			var bin core.ResourceName
			if parent == globalPhase {
				bin = parent.Child(fmt.Sprintf("bin%d", i))
			} else {
				bin = parent.Child(fmt.Sprintf("bin%d", i))
			}
			key := string(bin)
			if !binRes[key] {
				binRes[key] = true
				binType := core.TypePath("time/interval")
				if parent != globalPhase {
					binType = "time/interval/bin"
				}
				recs = append(recs, ptdf.ResourceRec{Name: bin, Type: binType, Exec: execName})
				start := float64(i) * h.BinWidth
				recs = append(recs,
					ptdf.ResourceAttributeRec{Resource: bin, Attr: "start time",
						Value: fmt.Sprintf("%g", start), AttrType: "string"},
					ptdf.ResourceAttributeRec{Resource: bin, Attr: "end time",
						Value: fmt.Sprintf("%g", start+h.BinWidth), AttrType: "string"},
				)
			}
			ctx := append([]core.ResourceName{appRes, core.ResourceName("/" + execName), bin}, focusNames...)
			recs = append(recs, ptdf.PerfResultRec{
				Exec:   execName,
				Sets:   []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
				Tool:   "Paradyn",
				Metric: h.Metric,
				Value:  v,
				Units:  "units/second",
			})
		}
	}

	// Search history graph: record the Performance Consultant's findings
	// as attributes of the execution.
	recs = append(recs, b.shgRecords(execName)...)
	return recs, nil
}

func (b *Bundle) shgRecords(execName string) []ptdf.Record {
	execRes := core.ResourceName("/" + execName)
	var recs []ptdf.Record
	for _, n := range b.SHG {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: execRes,
			Attr:     fmt.Sprintf("PC hypothesis %d", n.ID),
			Value:    fmt.Sprintf("%s @ %s = %s", n.Hypothesis, strings.Join(n.Focus, ","), n.Truth),
			AttrType: "string",
		})
	}
	return recs
}

// ToPTdfCompact converts a bundle using complex (histogram-valued)
// performance results: one PerfHistogram record per metric-focus pair
// instead of one scalar result per bin, realizing the §6 future-work
// item. Resource mapping is identical to ToPTdf, but no per-bin time
// resources are created — the bins live inside the result.
func (b *Bundle) ToPTdfCompact(app, execName string) ([]ptdf.Record, error) {
	var recs []ptdf.Record
	for _, t := range NewTypes() {
		recs = append(recs, ptdf.ResourceTypeRec{Type: t})
	}
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: execName, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})

	emitted := make(map[core.ResourceName]bool)
	emit := func(m *MappedResource) {
		if !emitted[m.Name] {
			emitted[m.Name] = true
			exec := ""
			if m.Type.Root() == "execution" || m.Type.Root() == "time" {
				exec = execName
			}
			recs = append(recs, ptdf.ResourceRec{Name: m.Name, Type: m.Type, Exec: exec})
		}
		for k, v := range m.Attributes {
			recs = append(recs, ptdf.ResourceAttributeRec{
				Resource: m.Name, Attr: k, Value: v, AttrType: "string",
			})
		}
	}
	emit(&MappedResource{Name: core.ResourceName("/" + execName), Type: "execution"})
	for _, pd := range b.Resources {
		m, err := MapResource(pd, execName)
		if err != nil {
			return nil, err
		}
		emit(m)
	}
	for _, h := range b.Histograms {
		var focusNames []core.ResourceName
		for _, f := range h.Focus {
			m, err := MapResource(f, execName)
			if err != nil {
				return nil, err
			}
			emit(m)
			focusNames = append(focusNames, m.Name)
		}
		hasData := false
		for _, v := range h.Values {
			if !math.IsNaN(v) {
				hasData = true
				break
			}
		}
		if !hasData {
			continue
		}
		ctx := append([]core.ResourceName{appRes, core.ResourceName("/" + execName)}, focusNames...)
		recs = append(recs, ptdf.PerfHistogramRec{
			Exec:     execName,
			Sets:     []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
			Tool:     "Paradyn",
			Metric:   h.Metric,
			BinWidth: h.BinWidth,
			Units:    "units/second",
			Values:   h.Values,
		})
	}
	recs = append(recs, b.shgRecords(execName)...)
	return recs, nil
}
