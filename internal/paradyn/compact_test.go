package paradyn

import (
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func TestToPTdfCompactEmitsOneRecordPerHistogram(t *testing.T) {
	run := Run{
		Execution: "e1", NModules: 2, NFuncs: 5, NProcs: 2,
		NBins: 100, BinWidth: 0.2, NFoci: 2, NanFrac: 0.1, Seed: 4,
	}
	b := Synthesize(run)
	recs, err := b.ToPTdfCompact("irs", "e1")
	if err != nil {
		t.Fatal(err)
	}
	histRecs := 0
	scalarRecs := 0
	for _, rec := range recs {
		switch rec.(type) {
		case ptdf.PerfHistogramRec:
			histRecs++
		case ptdf.PerfResultRec:
			scalarRecs++
		}
	}
	if histRecs != len(b.Histograms) {
		t.Errorf("histogram records = %d, histograms = %d", histRecs, len(b.Histograms))
	}
	if scalarRecs != 0 {
		t.Errorf("compact form emitted %d scalar results", scalarRecs)
	}
	// Compact is dramatically smaller than per-bin.
	perBin, err := b.ToPTdf("irs", "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs)*5 > len(perBin) {
		t.Errorf("compact %d records vs per-bin %d: expected >5x reduction",
			len(recs), len(perBin))
	}
}

func TestCompactLoadsAndPreservesBins(t *testing.T) {
	run := Run{
		Execution: "e1", NModules: 2, NFuncs: 4, NProcs: 2,
		NBins: 50, BinWidth: 0.2, NFoci: 1, NanFrac: 0.2, Seed: 5,
	}
	b := Synthesize(run)
	recs, err := b.ToPTdfCompact("irs", "e1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d (%s): %v", i, ptdf.FormatRecord(rec), err)
		}
	}
	if got := s.HistogramCount(); got != int64(len(b.Histograms)) {
		t.Errorf("stored histograms = %d, want %d", got, len(b.Histograms))
	}
	// The bins survive with full granularity.
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(b.Histograms) {
		t.Fatalf("results = %d", len(ids))
	}
	bw, bins, ok, err := s.HistogramOf(ids[0])
	if err != nil || !ok {
		t.Fatalf("HistogramOf: %v ok=%v", err, ok)
	}
	if bw != 0.2 || len(bins) != 50 {
		t.Errorf("bw=%v bins=%d", bw, len(bins))
	}
}
