package paradyn

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
)

// Run parameterizes a generated Paradyn export bundle. The §4.3 study
// imported three IRS executions with roughly 17,000 resources, 8 metrics,
// and 25,000 performance results each; GenerateBundle reproduces that
// shape at a configurable scale (resource counts are dominated by code
// resources and histogram-bin time resources).
type Run struct {
	Execution string
	NModules  int // code modules
	NFuncs    int // functions per module
	NProcs    int
	NBins     int     // bins per histogram
	BinWidth  float64 // seconds per bin
	Metrics   []string
	NFoci     int     // histograms per metric
	NanFrac   float64 // fraction of leading bins with no data
	Seed      int64
}

// DefaultMetrics are Paradyn's usual time-based metrics (8, as in §4.3).
var DefaultMetrics = []string{
	"cpu", "cpu_inclusive", "exec_time", "sync_wait",
	"msg_bytes_sent", "msg_bytes_recv", "io_wait", "procedure_calls",
}

// Synthesize builds an in-memory bundle.
func Synthesize(run Run) *Bundle {
	rng := rand.New(rand.NewSource(run.Seed))
	if len(run.Metrics) == 0 {
		run.Metrics = DefaultMetrics
	}
	b := &Bundle{}
	// Resources: machine/process/thread plus code modules and functions.
	node := fmt.Sprintf("mcr%d.llnl.gov", 100+rng.Intn(100))
	for p := 0; p < run.NProcs; p++ {
		proc := fmt.Sprintf("/Machine/%s/irs{%d}", node, 10000+p)
		b.Resources = append(b.Resources, proc, proc+"/thr_0")
	}
	var functions []string
	for m := 0; m < run.NModules; m++ {
		mod := fmt.Sprintf("/Code/irs_%02d.c", m)
		b.Resources = append(b.Resources, mod)
		for f := 0; f < run.NFuncs; f++ {
			fn := fmt.Sprintf("%s/func_%02d_%03d", mod, m, f)
			b.Resources = append(b.Resources, fn)
			functions = append(functions, fn)
		}
	}
	// DEFAULT_MODULE holds functions Paradyn could not place (§4.3).
	b.Resources = append(b.Resources,
		"/Code/DEFAULT_MODULE", "/Code/DEFAULT_MODULE/__builtin_memcpy")
	functions = append(functions, "/Code/DEFAULT_MODULE/__builtin_memcpy")
	// SyncObjects.
	b.Resources = append(b.Resources,
		"/SyncObject/Message", "/SyncObject/Message/MPI_COMM_WORLD")

	// Histograms: per metric, NFoci foci drawn from functions/processes.
	for _, metric := range run.Metrics {
		for i := 0; i < run.NFoci; i++ {
			focus := []string{functions[rng.Intn(len(functions))]}
			if rng.Float64() < 0.5 && run.NProcs > 0 {
				focus = append(focus, fmt.Sprintf("/Machine/%s/irs{%d}", node, 10000+rng.Intn(run.NProcs)))
			}
			h := &Histogram{
				Metric:   metric,
				Focus:    focus,
				Phase:    "global",
				NumBins:  run.NBins,
				BinWidth: run.BinWidth,
			}
			// Leading bins are nan: dynamic instrumentation was inserted
			// some time after the program started (§4.3).
			nanLead := int(run.NanFrac * float64(run.NBins) * (0.5 + rng.Float64()))
			if nanLead > run.NBins {
				nanLead = run.NBins
			}
			level := rng.Float64() * 10
			for bin := 0; bin < run.NBins; bin++ {
				if bin < nanLead {
					h.Values = append(h.Values, math.NaN())
					continue
				}
				level = math.Max(0, level+rng.NormFloat64()*0.5)
				h.Values = append(h.Values, level)
			}
			b.Histograms = append(b.Histograms, h)
		}
	}

	// A small search history graph.
	hyps := []string{"ExcessiveSyncWaitingTime", "CPUBound", "ExcessiveIOBlockingTime"}
	for i, hy := range hyps {
		truth := "false"
		if i == rng.Intn(len(hyps)) {
			truth = "true"
		}
		b.SHG = append(b.SHG, SHGNode{
			ID: i + 1, Hypothesis: hy,
			Focus: []string{functions[rng.Intn(len(functions))]},
			Truth: truth,
		})
	}
	return b
}

// GenerateBundle writes a bundle to dir as the set of files Paradyn's
// Export button produces: histogram_NNN.hist files, index.txt,
// resources.txt, and shg.txt.
func GenerateBundle(dir string, run Run) error {
	b := Synthesize(run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var index []IndexEntry
	for i, h := range b.Histograms {
		name := fmt.Sprintf("histogram_%03d.hist", i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := WriteHistogram(f, h); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		index = append(index, IndexEntry{File: name, Metric: h.Metric, Focus: h.Focus})
	}
	writeFile := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile("index.txt", func(f *os.File) error {
		return WriteIndex(f, index)
	}); err != nil {
		return err
	}
	if err := writeFile("resources.txt", func(f *os.File) error {
		bw := f
		for _, r := range b.Resources {
			if _, err := fmt.Fprintln(bw, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return writeFile("shg.txt", func(f *os.File) error {
		return WriteSearchHistory(f, b.SHG)
	})
}

// LoadBundle reads an exported bundle from dir.
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{}
	rf, err := os.Open(filepath.Join(dir, "resources.txt"))
	if err != nil {
		return nil, err
	}
	b.Resources, err = ParseResources(rf)
	rf.Close()
	if err != nil {
		return nil, err
	}
	idxF, err := os.Open(filepath.Join(dir, "index.txt"))
	if err != nil {
		return nil, err
	}
	index, err := ParseIndex(idxF)
	idxF.Close()
	if err != nil {
		return nil, err
	}
	for _, e := range index {
		hf, err := os.Open(filepath.Join(dir, e.File))
		if err != nil {
			return nil, err
		}
		h, err := ParseHistogram(hf)
		hf.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.File, err)
		}
		b.Histograms = append(b.Histograms, h)
	}
	if shgF, err := os.Open(filepath.Join(dir, "shg.txt")); err == nil {
		b.SHG, err = ParseSearchHistory(shgF)
		shgF.Close()
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}
