// Package paradyn parses and generates Paradyn performance-data exports
// and maps them into the PerfTrack model, reproducing the §4.3 case
// study. Paradyn's "Export" button emits several text files: histogram
// files (one per metric-focus pair, with a header and one value per time
// bin, 'nan' for bins with no data), an index file describing the
// histogram files, a resources file listing every Paradyn resource, and a
// search history graph from the Performance Consultant.
//
// Paradyn's resource hierarchy (Figure 10) has three main types — Code
// (modules, functions, loops), Machine (nodes, processes, threads), and
// SyncObject — and is mapped onto PerfTrack types per Figure 11:
//
//   - /Code/<module>/<function> → PerfTrack build (static) hierarchy by
//     default, since dynamic/static cannot always be distinguished
//     (DEFAULT_MODULE resources always go to build);
//   - /Machine/<node>/<process>/<thread> → execution hierarchy, with the
//     machine node recorded as a resource attribute of the process;
//   - /SyncObject/... → a new top-level PerfTrack hierarchy that exactly
//     mirrors Paradyn's syncObject hierarchy;
//   - Paradyn's global phase → the top of PerfTrack's time hierarchy,
//     with histogram bins (and local phases) as children carrying start
//     and end attributes.
package paradyn

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Histogram is one exported metric-focus data array.
type Histogram struct {
	Metric   string
	Focus    []string // Paradyn resource names making up the focus
	Phase    string   // "global" or a local phase name
	NumBins  int
	BinWidth float64   // seconds per bin
	Values   []float64 // NaN marks bins with no data
}

// WriteHistogram emits a histogram file in export format.
func WriteHistogram(w io.Writer, h *Histogram) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Paradyn histogram export\n")
	fmt.Fprintf(bw, "metric: %s\n", h.Metric)
	fmt.Fprintf(bw, "focus: %s\n", strings.Join(h.Focus, ","))
	fmt.Fprintf(bw, "phase: %s\n", h.Phase)
	fmt.Fprintf(bw, "numBins: %d\n", h.NumBins)
	fmt.Fprintf(bw, "binWidth: %g\n", h.BinWidth)
	for _, v := range h.Values {
		if math.IsNaN(v) {
			fmt.Fprintf(bw, "nan\n")
		} else {
			fmt.Fprintf(bw, "%g\n", v)
		}
	}
	return bw.Flush()
}

// ParseHistogram reads a histogram export file.
func ParseHistogram(r io.Reader) (*Histogram, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	h := &Histogram{NumBins: -1, Phase: "global"}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "metric:"):
			h.Metric = strings.TrimSpace(strings.TrimPrefix(text, "metric:"))
		case strings.HasPrefix(text, "focus:"):
			for _, f := range strings.Split(strings.TrimPrefix(text, "focus:"), ",") {
				f = strings.TrimSpace(f)
				if f != "" {
					h.Focus = append(h.Focus, f)
				}
			}
		case strings.HasPrefix(text, "phase:"):
			h.Phase = strings.TrimSpace(strings.TrimPrefix(text, "phase:"))
		case strings.HasPrefix(text, "numBins:"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "numBins:")))
			if err != nil {
				return nil, fmt.Errorf("paradyn: line %d: %w", line, err)
			}
			h.NumBins = n
		case strings.HasPrefix(text, "binWidth:"):
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(text, "binWidth:")), 64)
			if err != nil {
				return nil, fmt.Errorf("paradyn: line %d: %w", line, err)
			}
			h.BinWidth = v
		default:
			if text == "nan" {
				h.Values = append(h.Values, math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("paradyn: line %d: bad bin value %q", line, text)
			}
			h.Values = append(h.Values, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if h.Metric == "" {
		return nil, fmt.Errorf("paradyn: histogram has no metric")
	}
	if h.NumBins >= 0 && h.NumBins != len(h.Values) {
		return nil, fmt.Errorf("paradyn: header says %d bins, file has %d", h.NumBins, len(h.Values))
	}
	if h.BinWidth <= 0 {
		return nil, fmt.Errorf("paradyn: non-positive bin width")
	}
	return h, nil
}

// IndexEntry describes one histogram file in the export index.
type IndexEntry struct {
	File   string
	Metric string
	Focus  []string
}

// WriteIndex emits the index file.
func WriteIndex(w io.Writer, entries []IndexEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Paradyn export index: file metric focus\n")
	for _, e := range entries {
		fmt.Fprintf(bw, "%s\t%s\t%s\n", e.File, e.Metric, strings.Join(e.Focus, ","))
	}
	return bw.Flush()
}

// ParseIndex reads the index file.
func ParseIndex(r io.Reader) ([]IndexEntry, error) {
	sc := bufio.NewScanner(r)
	var out []IndexEntry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("paradyn: index line %d: expected 3 tab-separated fields", line)
		}
		e := IndexEntry{File: parts[0], Metric: parts[1]}
		for _, f := range strings.Split(parts[2], ",") {
			f = strings.TrimSpace(f)
			if f != "" {
				e.Focus = append(e.Focus, f)
			}
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ParseResources reads the exported resources file: one Paradyn resource
// name per line.
func ParseResources(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !strings.HasPrefix(text, "/") {
			return nil, fmt.Errorf("paradyn: resources line %d: %q is not a resource path", line, text)
		}
		out = append(out, text)
	}
	return out, sc.Err()
}

// SHGNode is one node of the Performance Consultant's search history
// graph: a hypothesis tested at a focus.
type SHGNode struct {
	ID         int
	Hypothesis string
	Focus      []string
	Truth      string // "true", "false", or "unknown"
}

// WriteSearchHistory emits a search history graph file.
func WriteSearchHistory(w io.Writer, nodes []SHGNode) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Paradyn search history graph: id hypothesis focus truth\n")
	for _, n := range nodes {
		fmt.Fprintf(bw, "%d\t%s\t%s\t%s\n", n.ID, n.Hypothesis, strings.Join(n.Focus, ","), n.Truth)
	}
	return bw.Flush()
}

// ParseSearchHistory reads a search history graph file.
func ParseSearchHistory(r io.Reader) ([]SHGNode, error) {
	sc := bufio.NewScanner(r)
	var out []SHGNode
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("paradyn: SHG line %d: expected 4 fields", line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("paradyn: SHG line %d: bad id", line)
		}
		n := SHGNode{ID: id, Hypothesis: parts[1], Truth: parts[3]}
		for _, f := range strings.Split(parts[2], ",") {
			f = strings.TrimSpace(f)
			if f != "" {
				n.Focus = append(n.Focus, f)
			}
		}
		out = append(out, n)
	}
	return out, sc.Err()
}

// Hierarchy returns Paradyn's own resource type hierarchy (Figure 10).
func Hierarchy() map[string][]string {
	return map[string][]string{
		"Code":       {"module", "function", "loop"},
		"Machine":    {"node", "process", "thread"},
		"SyncObject": {"type", "object"},
	}
}
