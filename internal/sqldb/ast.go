package sqldb

import "perftrack/internal/reldb"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Schema *reldb.Schema
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Table string
	Spec  reldb.IndexSpec
}

// DropIndexStmt is DROP INDEX name ON table.
type DropIndexStmt struct {
	Table string
	Index string
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table   string
	Columns []string // empty means full-row positional
	Rows    [][]Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr // nil means all rows
}

// Assignment is one SET column = expr clause.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM ... [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is SELECT with optional JOINs, WHERE, GROUP BY, ORDER BY,
// LIMIT/OFFSET.
type SelectStmt struct {
	Items    []SelectItem
	Distinct bool
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr // group filter; may contain aggregates
	OrderBy  []OrderItem
	Limit    int // -1 means no limit
	Offset   int
}

// SelectItem is one output column: an expression with an optional alias,
// or a star.
type SelectItem struct {
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

func (t TableRef) name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one JOIN ... ON clause. Only inner and left joins are
// supported.
type JoinClause struct {
	Left  bool
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a SQL expression tree node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct {
	Value reldb.Value
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string
	Column string
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string // =, !=, <, <=, >, >=, AND, OR, LIKE, +, -, *, /
	L, R Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	X  Expr
}

// InExpr is expr [NOT] IN (list).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Lo, Hi Expr
	Not    bool
}

// FuncExpr is an aggregate call: COUNT/SUM/AVG/MIN/MAX. Star is COUNT(*).
type FuncExpr struct {
	Name     string // upper case
	Star     bool
	Distinct bool
	Arg      Expr
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*FuncExpr) expr()    {}
