package sqldb

import (
	"testing"

	"perftrack/internal/reldb"
)

// FuzzParse checks that arbitrary input never panics the SQL lexer or
// parser.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, COUNT(*) FROM t JOIN u ON t.id = u.tid WHERE a > 5 GROUP BY a HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 3 OFFSET 1",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, TRUE)",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10) NOT NULL, FOREIGN KEY (v) REFERENCES u (w))",
		"CREATE UNIQUE INDEX i ON t (a, b)",
		"UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2",
		"DELETE FROM t WHERE a NOT IN (1, 2) OR b IS NOT NULL",
		"DROP TABLE IF EXISTS t;",
		"SELECT -1.5e3, \"quoted ident\" FROM t -- comment",
		"SELECT a FROM t WHERE s LIKE '%x_'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatal("nil statement without error")
		}
	})
}

// FuzzQueryExecution runs fuzzed SELECTs against a small fixed database:
// execution must never panic, only return errors.
func FuzzQueryExecution(f *testing.F) {
	seeds := []string{
		"SELECT * FROM emp",
		"SELECT dept, AVG(salary) FROM emp GROUP BY dept",
		"SELECT e.name FROM emp e JOIN emp b ON e.boss = b.id",
		"SELECT name FROM emp WHERE salary / 0 IS NULL",
		"SELECT COUNT(DISTINCT dept) FROM emp ORDER BY 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, query string) {
		res, err := db.Query(query)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
	})
}

func fuzzDB() *DB {
	db := Open(reldb.NewMem())
	db.Exec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL,
		dept TEXT, salary REAL, boss INTEGER)`)
	db.Exec("CREATE INDEX emp_dept ON emp (dept)")
	db.Exec(`INSERT INTO emp VALUES (1,'ada','eng',120.0,NULL),(2,'bob','eng',100.0,1),
		(3,'carol','ops',90.0,1),(4,'dave',NULL,80.0,3)`)
	return db
}
