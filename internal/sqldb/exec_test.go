package sqldb

import (
	"fmt"
	"strings"
	"testing"

	"perftrack/internal/reldb"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open(reldb.NewMem())
	mustExec(t, db, `CREATE TABLE emp (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		dept TEXT,
		salary REAL,
		boss INTEGER
	)`)
	mustExec(t, db, "CREATE INDEX emp_dept ON emp (dept)")
	mustExec(t, db, `INSERT INTO emp (id, name, dept, salary, boss) VALUES
		(1, 'ada', 'eng', 120.0, NULL),
		(2, 'bob', 'eng', 100.0, 1),
		(3, 'carol', 'ops', 90.0, 1),
		(4, 'dave', 'ops', 80.0, 3),
		(5, 'eve', NULL, 70.0, 3)`)
	return db
}

func mustExec(t *testing.T, db *DB, q string) int64 {
	t.Helper()
	n, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return r
}

func rowStrings(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestSelectAll(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT * FROM emp")
	if len(r.Rows) != 5 || len(r.Columns) != 5 {
		t.Fatalf("rows=%d cols=%v", len(r.Rows), r.Columns)
	}
	if r.Columns[1] != "name" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestSelectWherePKUsesPointLookup(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM emp WHERE id = 3")
	if len(r.Rows) != 1 || r.Rows[0][0].Text() != "carol" {
		t.Fatalf("got %v", rowStrings(r))
	}
	// Missing PK yields zero rows.
	r = mustQuery(t, db, "SELECT name FROM emp WHERE id = 99")
	if len(r.Rows) != 0 {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestSelectWhereIndexedColumn(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM emp WHERE dept = 'eng' ORDER BY name")
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "ada" || got[1] != "bob" {
		t.Fatalf("got %v", got)
	}
}

func TestSelectComparisonsAndLogic(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM emp WHERE salary >= 90 AND salary < 120 ORDER BY name")
	got := rowStrings(r)
	if strings.Join(got, ",") != "bob,carol" {
		t.Errorf("got %v", got)
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE dept = 'ops' OR salary > 110 ORDER BY id")
	if strings.Join(rowStrings(r), ",") != "ada,carol,dave" {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestSelectNullSemantics(t *testing.T) {
	db := testDB(t)
	// dept = NULL never matches; IS NULL does.
	r := mustQuery(t, db, "SELECT name FROM emp WHERE dept = NULL")
	if len(r.Rows) != 0 {
		t.Errorf("= NULL matched %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE dept IS NULL")
	if len(r.Rows) != 1 || r.Rows[0][0].Text() != "eve" {
		t.Errorf("IS NULL got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE dept IS NOT NULL")
	if len(r.Rows) != 4 {
		t.Errorf("IS NOT NULL got %v", rowStrings(r))
	}
	// NOT (NULL comparison) is still unknown, not true.
	r = mustQuery(t, db, "SELECT name FROM emp WHERE NOT (dept = 'eng')")
	if len(r.Rows) != 2 { // carol, dave; eve's dept is NULL -> unknown
		t.Errorf("NOT over NULL got %v", rowStrings(r))
	}
}

func TestSelectInBetweenLike(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name FROM emp WHERE id IN (1, 3, 5) ORDER BY id")
	if strings.Join(rowStrings(r), ",") != "ada,carol,eve" {
		t.Errorf("IN got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE salary BETWEEN 80 AND 100 ORDER BY id")
	if strings.Join(rowStrings(r), ",") != "bob,carol,dave" {
		t.Errorf("BETWEEN got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY id")
	if strings.Join(rowStrings(r), ",") != "ada,carol,dave" {
		t.Errorf("LIKE got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name FROM emp WHERE id NOT IN (1, 2, 3, 4)")
	if strings.Join(rowStrings(r), ",") != "eve" {
		t.Errorf("NOT IN got %v", rowStrings(r))
	}
}

func TestSelectArithmetic(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT salary * 2 + 1 FROM emp WHERE id = 4")
	if r.Rows[0][0].Float64() != 161 {
		t.Errorf("got %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT salary / 0 FROM emp WHERE id = 1")
	if !r.Rows[0][0].IsNull() {
		t.Errorf("division by zero = %v, want NULL", r.Rows[0][0])
	}
	r = mustQuery(t, db, "SELECT 7 / 2 FROM emp WHERE id = 1")
	if r.Rows[0][0].Float64() != 3.5 {
		t.Errorf("7/2 = %v", r.Rows[0][0])
	}
}

func TestSelectOrderByMulti(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT dept, name FROM emp WHERE dept IS NOT NULL ORDER BY dept DESC, name ASC")
	got := rowStrings(r)
	want := []string{"ops|carol", "ops|dave", "eng|ada", "eng|bob"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestSelectOrderByPositionAndAlias(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT name AS n, salary FROM emp ORDER BY 2 DESC LIMIT 1")
	if r.Rows[0][0].Text() != "ada" {
		t.Errorf("got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT name AS n FROM emp ORDER BY n DESC LIMIT 1")
	if r.Rows[0][0].Text() != "eve" {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestSelectLimitOffset(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")
	if strings.Join(rowStrings(r), ",") != "3,4" {
		t.Errorf("got %v", rowStrings(r))
	}
	r = mustQuery(t, db, "SELECT id FROM emp ORDER BY id OFFSET 10")
	if len(r.Rows) != 0 {
		t.Errorf("offset past end got %v", rowStrings(r))
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept")
	if strings.Join(rowStrings(r), ",") != "eng,ops" {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT COUNT(*), COUNT(dept), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp")
	row := r.Rows[0]
	if row[0].Int64() != 5 || row[1].Int64() != 4 {
		t.Errorf("counts = %v, %v", row[0], row[1])
	}
	if row[2].Float64() != 460 || row[3].Float64() != 92 {
		t.Errorf("sum/avg = %v, %v", row[2], row[3])
	}
	if row[4].Float64() != 70 || row[5].Float64() != 120 {
		t.Errorf("min/max = %v, %v", row[4], row[5])
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DELETE FROM emp")
	r := mustQuery(t, db, "SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp")
	row := r.Rows[0]
	if row[0].Int64() != 0 {
		t.Errorf("COUNT(*) on empty = %v", row[0])
	}
	if !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("SUM/MIN on empty = %v, %v", row[1], row[2])
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal
		FROM emp WHERE dept IS NOT NULL
		GROUP BY dept ORDER BY dept`)
	got := rowStrings(r)
	want := []string{"eng|2|110", "ops|2|85"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestGroupByOrderByAggregate(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT dept, SUM(salary) FROM emp WHERE dept IS NOT NULL
		GROUP BY dept ORDER BY SUM(salary) DESC`)
	if r.Rows[0][0].Text() != "eng" {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT dept, COUNT(*) FROM emp WHERE dept IS NOT NULL
		GROUP BY dept HAVING AVG(salary) > 100 ORDER BY dept`)
	if len(r.Rows) != 1 || r.Rows[0][0].Text() != "eng" {
		t.Errorf("got %v", rowStrings(r))
	}
	// HAVING on a grouping column works too.
	r = mustQuery(t, db, `SELECT dept, SUM(salary) FROM emp WHERE dept IS NOT NULL
		GROUP BY dept HAVING dept = 'ops'`)
	if len(r.Rows) != 1 || r.Rows[0][1].Float64() != 170 {
		t.Errorf("got %v", rowStrings(r))
	}
	// HAVING excluding every group yields zero rows.
	r = mustQuery(t, db, "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 10")
	if len(r.Rows) != 0 {
		t.Errorf("got %v", rowStrings(r))
	}
	// HAVING without GROUP BY is rejected.
	if _, err := db.Query("SELECT COUNT(*) FROM emp HAVING COUNT(*) > 1"); err == nil {
		t.Error("HAVING without GROUP BY accepted")
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT COUNT(DISTINCT dept) FROM emp")
	if r.Rows[0][0].Int64() != 2 {
		t.Errorf("COUNT(DISTINCT dept) = %v", r.Rows[0][0])
	}
}

func TestAggregateArithmetic(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT MAX(salary) - MIN(salary) FROM emp")
	if r.Rows[0][0].Float64() != 50 {
		t.Errorf("range = %v", r.Rows[0][0])
	}
}

func TestInnerJoin(t *testing.T) {
	db := testDB(t)
	// Self join: employee with boss name.
	r := mustQuery(t, db, `SELECT e.name, b.name FROM emp e
		JOIN emp b ON e.boss = b.id ORDER BY e.id`)
	got := rowStrings(r)
	want := []string{"bob|ada", "carol|ada", "dave|carol", "eve|carol"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT e.name, b.name FROM emp e
		LEFT JOIN emp b ON e.boss = b.id ORDER BY e.id`)
	if len(r.Rows) != 5 {
		t.Fatalf("left join rows = %d", len(r.Rows))
	}
	if !r.Rows[0][1].IsNull() {
		t.Errorf("ada's boss should be NULL, got %v", r.Rows[0][1])
	}
}

func TestJoinSecondTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE dept (code TEXT PRIMARY KEY, title TEXT)")
	mustExec(t, db, "INSERT INTO dept VALUES ('eng', 'Engineering'), ('ops', 'Operations')")
	r := mustQuery(t, db, `SELECT e.name, d.title FROM emp e
		JOIN dept d ON e.dept = d.code WHERE e.salary > 95 ORDER BY e.id`)
	got := rowStrings(r)
	want := []string{"ada|Engineering", "bob|Engineering"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE dept (code TEXT PRIMARY KEY, title TEXT)")
	mustExec(t, db, "INSERT INTO dept VALUES ('eng', 'Engineering'), ('ops', 'Operations')")
	r := mustQuery(t, db, `SELECT e.name, b.name, d.title FROM emp e
		JOIN emp b ON e.boss = b.id
		JOIN dept d ON e.dept = d.code
		ORDER BY e.id`)
	if len(r.Rows) != 3 { // eve's dept is NULL, so she drops out
		t.Fatalf("got %v", rowStrings(r))
	}
	if r.Rows[0][2].Text() != "Engineering" {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestJoinGroupBy(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT b.name, COUNT(*) FROM emp e
		JOIN emp b ON e.boss = b.id GROUP BY b.name ORDER BY b.name`)
	got := rowStrings(r)
	want := []string{"ada|2", "carol|2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestUpdateRows(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, "UPDATE emp SET salary = salary + 10 WHERE dept = 'ops'")
	if n != 2 {
		t.Fatalf("updated %d, want 2", n)
	}
	r := mustQuery(t, db, "SELECT salary FROM emp WHERE id = 3")
	if r.Rows[0][0].Float64() != 100 {
		t.Errorf("salary = %v", r.Rows[0][0])
	}
}

func TestUpdateAllRows(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, "UPDATE emp SET dept = 'all'")
	if n != 5 {
		t.Errorf("updated %d, want 5", n)
	}
}

func TestDeleteRows(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, "DELETE FROM emp WHERE salary < 90")
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	r := mustQuery(t, db, "SELECT COUNT(*) FROM emp")
	if r.Rows[0][0].Int64() != 3 {
		t.Errorf("remaining = %v", r.Rows[0][0])
	}
}

func TestInsertNamedColumnsDefaultsNull(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "INSERT INTO emp (id, name) VALUES (10, 'zed')")
	r := mustQuery(t, db, "SELECT dept, salary FROM emp WHERE id = 10")
	if !r.Rows[0][0].IsNull() || !r.Rows[0][1].IsNull() {
		t.Errorf("unnamed columns should be NULL: %v", rowStrings(r))
	}
}

func TestInsertErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO emp VALUES (1, 'x')",              // arity
		"INSERT INTO emp (id, nosuch) VALUES (1, 'x')", // bad column
		"INSERT INTO emp (id, name) VALUES (1, 'dup')", // PK collision
		"INSERT INTO emp (id) VALUES (100)",            // name NOT NULL
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT nosuch FROM emp",
		"SELECT name FROM missing",
		"SELECT x.name FROM emp",
		"SELECT * FROM emp GROUP BY dept",
		"SELECT name FROM emp WHERE name + 1 = 2", // arithmetic on string
		"SELECT name FROM emp JOIN missing ON 1 = 1",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
	if _, err := db.Query("UPDATE emp SET dept = 'x'"); err == nil {
		t.Error("Query on UPDATE should fail")
	}
	if _, err := db.Exec("SELECT * FROM emp"); err == nil {
		t.Error("Exec on SELECT should fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("SELECT name FROM emp e JOIN emp b ON e.boss = b.id"); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestQueryScalar(t *testing.T) {
	db := testDB(t)
	v, err := db.QueryScalar("SELECT COUNT(*) FROM emp")
	if err != nil || v.Int64() != 5 {
		t.Errorf("scalar = %v, %v", v, err)
	}
	if _, err := db.QueryScalar("SELECT id FROM emp"); err == nil {
		t.Error("multi-row scalar should fail")
	}
}

func TestDropIndexStatement(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DROP INDEX emp_dept ON emp")
	tab, _ := db.Engine().Table("emp")
	if tab.HasIndex("emp_dept") {
		t.Error("index survives DROP INDEX")
	}
	// Queries on the column still work via full scan.
	r := mustQuery(t, db, "SELECT name FROM emp WHERE dept = 'eng' ORDER BY name")
	if len(r.Rows) != 2 {
		t.Errorf("got %v", rowStrings(r))
	}
	if _, err := db.Exec("DROP INDEX emp_dept ON emp"); err == nil {
		t.Error("double DROP INDEX accepted")
	}
	if _, err := db.Exec("DROP INDEX x ON missing"); err == nil {
		t.Error("DROP INDEX on missing table accepted")
	}
}

func TestDropIfExists(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "DROP TABLE IF EXISTS nosuch")
	if _, err := db.Exec("DROP TABLE nosuch"); err == nil {
		t.Error("DROP of missing table should fail without IF EXISTS")
	}
}

func TestFormatTable(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT id, name FROM emp WHERE id <= 2 ORDER BY id")
	out := r.FormatTable()
	if !strings.Contains(out, "id") || !strings.Contains(out, "ada") || !strings.Contains(out, "---") {
		t.Errorf("FormatTable output:\n%s", out)
	}
}

func TestSQLOnFileEngine(t *testing.T) {
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(fe)
	mustExec(t, db, "CREATE TABLE kv (k TEXT PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO kv VALUES ('a', 1), ('b', 2)")
	fe.Close()

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	db2 := Open(fe2)
	r := mustQuery(t, db2, "SELECT v FROM kv WHERE k = 'b'")
	if r.Rows[0][0].Int64() != 2 {
		t.Errorf("got %v", rowStrings(r))
	}
}

func TestSelectTableStarInJoin(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, "SELECT e.* FROM emp e JOIN emp b ON e.boss = b.id WHERE e.id = 2")
	if len(r.Columns) != 5 || r.Rows[0][1].Text() != "bob" {
		t.Errorf("got cols=%v rows=%v", r.Columns, rowStrings(r))
	}
}

func TestLargeScanAndAggregate(t *testing.T) {
	db := Open(reldb.NewMem())
	mustExec(t, db, "CREATE TABLE big (id INTEGER PRIMARY KEY, grp INTEGER, v REAL)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.5)", i, i%10, i)
	}
	mustExec(t, db, sb.String())
	r := mustQuery(t, db, "SELECT grp, COUNT(*) FROM big GROUP BY grp ORDER BY grp")
	if len(r.Rows) != 10 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1].Int64() != 100 {
			t.Errorf("group %v count %v", row[0], row[1])
		}
	}
}
