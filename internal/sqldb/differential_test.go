package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"perftrack/internal/reldb"
)

// TestDifferentialSelectAgainstOracle loads random rows and checks that
// randomized WHERE clauses return exactly the rows a direct in-memory
// evaluation returns — a differential test of lexer, parser, planner
// (index selection), and evaluator together.
func TestDifferentialSelectAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := Open(reldb.NewMem())
	mustExec(t, db, `CREATE TABLE d (
		id INTEGER PRIMARY KEY,
		num INTEGER,
		val REAL,
		tag TEXT
	)`)
	mustExec(t, db, "CREATE INDEX d_num ON d (num)")
	mustExec(t, db, "CREATE INDEX d_tag ON d (tag)")

	type rec struct {
		id  int64
		num *int64 // nil = NULL
		val *float64
		tag *string
	}
	var rows []rec
	var inserts []string
	for i := 0; i < 400; i++ {
		r := rec{id: int64(i)}
		numLit, valLit, tagLit := "NULL", "NULL", "NULL"
		if rng.Intn(10) > 0 {
			n := int64(rng.Intn(20))
			r.num = &n
			numLit = fmt.Sprintf("%d", n)
		}
		if rng.Intn(10) > 0 {
			v := float64(rng.Intn(1000)) / 10
			r.val = &v
			valLit = fmt.Sprintf("%g", v)
		}
		if rng.Intn(10) > 0 {
			s := fmt.Sprintf("tag%d", rng.Intn(6))
			r.tag = &s
			tagLit = "'" + s + "'"
		}
		rows = append(rows, r)
		inserts = append(inserts, fmt.Sprintf("(%d, %s, %s, %s)", r.id, numLit, valLit, tagLit))
	}
	mustExec(t, db, "INSERT INTO d VALUES "+strings.Join(inserts, ", "))

	type pred struct {
		sql    string
		oracle func(rec) bool
	}
	mkPreds := func() []pred {
		n := int64(rng.Intn(20))
		v := float64(rng.Intn(1000)) / 10
		tag := fmt.Sprintf("tag%d", rng.Intn(6))
		return []pred{
			{fmt.Sprintf("num = %d", n), func(r rec) bool { return r.num != nil && *r.num == n }},
			{fmt.Sprintf("num != %d", n), func(r rec) bool { return r.num != nil && *r.num != n }},
			{fmt.Sprintf("num < %d", n), func(r rec) bool { return r.num != nil && *r.num < n }},
			{fmt.Sprintf("val >= %g", v), func(r rec) bool { return r.val != nil && *r.val >= v }},
			{fmt.Sprintf("tag = '%s'", tag), func(r rec) bool { return r.tag != nil && *r.tag == tag }},
			{"num IS NULL", func(r rec) bool { return r.num == nil }},
			{"tag IS NOT NULL", func(r rec) bool { return r.tag != nil }},
			{fmt.Sprintf("num BETWEEN %d AND %d", n, n+5),
				func(r rec) bool { return r.num != nil && *r.num >= n && *r.num <= n+5 }},
			{fmt.Sprintf("num IN (%d, %d)", n, n+1),
				func(r rec) bool { return r.num != nil && (*r.num == n || *r.num == n+1) }},
			{"tag LIKE 'tag%'", func(r rec) bool { return r.tag != nil }},
			{"tag LIKE '%3'", func(r rec) bool { return r.tag != nil && strings.HasSuffix(*r.tag, "3") }},
		}
	}

	for trial := 0; trial < 200; trial++ {
		preds := mkPreds()
		p1 := preds[rng.Intn(len(preds))]
		p2 := preds[rng.Intn(len(preds))]
		var where string
		var oracle func(rec) bool
		switch rng.Intn(4) {
		case 0:
			where = p1.sql
			oracle = p1.oracle
		case 1:
			where = p1.sql + " AND " + p2.sql
			oracle = func(r rec) bool { return p1.oracle(r) && p2.oracle(r) }
		case 2:
			where = p1.sql + " OR " + p2.sql
			oracle = func(r rec) bool { return p1.oracle(r) || p2.oracle(r) }
		case 3:
			where = "NOT (" + p1.sql + ")"
			// NOT of NULL-involving predicates: the oracles above already
			// return false for NULL (SQL unknown), and NOT(unknown) is
			// still unknown, so rows where the inner predicate involves
			// NULL stay excluded. Model that per predicate column.
			inner := p1
			oracle = func(r rec) bool {
				// Determine whether the inner predicate evaluated to a
				// definite boolean: for IS NULL forms it always does;
				// otherwise NULL operands make it unknown.
				definite := true
				if strings.Contains(inner.sql, "IS") {
					definite = true
				} else if strings.HasPrefix(inner.sql, "num") && r.num == nil {
					definite = false
				} else if strings.HasPrefix(inner.sql, "val") && r.val == nil {
					definite = false
				} else if strings.HasPrefix(inner.sql, "tag") && r.tag == nil {
					definite = false
				}
				return definite && !inner.oracle(r)
			}
		}
		q := "SELECT id FROM d WHERE " + where + " ORDER BY id"
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, q, err)
		}
		var got []int64
		for _, row := range res.Rows {
			got = append(got, row[0].Int64())
		}
		var want []int64
		for _, r := range rows {
			if oracle(r) {
				want = append(want, r.id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s\ngot %d rows, want %d", trial, q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: %s\nrow %d: got id %d, want %d", trial, q, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialAggregates cross-checks GROUP BY aggregates against a
// direct computation.
func TestDifferentialAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	db := Open(reldb.NewMem())
	mustExec(t, db, "CREATE TABLE g (id INTEGER PRIMARY KEY, grp INTEGER, v REAL)")
	sums := map[int64]float64{}
	counts := map[int64]int64{}
	mins := map[int64]float64{}
	var inserts []string
	for i := 0; i < 500; i++ {
		grp := int64(rng.Intn(7))
		v := float64(rng.Intn(10000)) / 100
		inserts = append(inserts, fmt.Sprintf("(%d, %d, %g)", i, grp, v))
		sums[grp] += v
		counts[grp]++
		if m, ok := mins[grp]; !ok || v < m {
			mins[grp] = v
		}
	}
	mustExec(t, db, "INSERT INTO g VALUES "+strings.Join(inserts, ", "))
	res := mustQuery(t, db, "SELECT grp, COUNT(*), SUM(v), MIN(v), AVG(v) FROM g GROUP BY grp ORDER BY grp")
	if len(res.Rows) != len(sums) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(sums))
	}
	for _, row := range res.Rows {
		grp := row[0].Int64()
		if row[1].Int64() != counts[grp] {
			t.Errorf("grp %d count = %v, want %d", grp, row[1], counts[grp])
		}
		if diff := row[2].Float64() - sums[grp]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("grp %d sum = %v, want %v", grp, row[2], sums[grp])
		}
		if row[3].Float64() != mins[grp] {
			t.Errorf("grp %d min = %v, want %v", grp, row[3], mins[grp])
		}
		wantAvg := sums[grp] / float64(counts[grp])
		if diff := row[4].Float64() - wantAvg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("grp %d avg = %v, want %v", grp, row[4], wantAvg)
		}
	}
}
