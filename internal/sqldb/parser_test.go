package sqldb

import (
	"strings"
	"testing"

	"perftrack/internal/reldb"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s', 3.5e2 FROM t -- comment\nWHERE x <= 10;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "3.5e2", "FROM", "t", "WHERE", "x", "<=", "10", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("lex = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, q := range []string{"'unterminated", `"unterminated`, "a ` b"} {
		if _, err := lex(q); err == nil {
			t.Errorf("lex(%q) should fail", q)
		}
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks, err := lex(`SELECT "order" FROM "select"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokIdent || toks[1].text != "order" {
		t.Errorf("quoted ident = %+v", toks[1])
	}
	if toks[3].kind != tokIdent || toks[3].text != "select" {
		t.Errorf("quoted keyword ident = %+v", toks[3])
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE resource_item (
		id INTEGER NOT NULL,
		name TEXT NOT NULL,
		parent_id INTEGER,
		weight REAL,
		active BOOLEAN,
		PRIMARY KEY (id),
		FOREIGN KEY (parent_id) REFERENCES resource_item (id)
	)`).(*CreateTableStmt)
	sch := s.Schema
	if sch.Name != "resource_item" || len(sch.Columns) != 5 {
		t.Fatalf("schema = %+v", sch)
	}
	if sch.Columns[0].Nullable || !sch.Columns[2].Nullable {
		t.Error("nullability wrong")
	}
	if sch.Columns[3].Type != reldb.KindFloat || sch.Columns[4].Type != reldb.KindBool {
		t.Error("types wrong")
	}
	if len(sch.PrimaryKey) != 1 || sch.PrimaryKey[0] != "id" {
		t.Errorf("PK = %v", sch.PrimaryKey)
	}
	if len(sch.ForeignKeys) != 1 || sch.ForeignKeys[0].RefTable != "resource_item" {
		t.Errorf("FK = %v", sch.ForeignKeys)
	}
}

func TestParseInlinePrimaryKey(t *testing.T) {
	s := mustParse(t, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").(*CreateTableStmt)
	if len(s.Schema.PrimaryKey) != 1 || s.Schema.PrimaryKey[0] != "id" {
		t.Errorf("PK = %v", s.Schema.PrimaryKey)
	}
	if s.Schema.Columns[0].Nullable {
		t.Error("inline PK column must be NOT NULL")
	}
}

func TestParseVarcharLength(t *testing.T) {
	s := mustParse(t, "CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(255))").(*CreateTableStmt)
	if s.Schema.Columns[1].Type != reldb.KindString {
		t.Error("VARCHAR should map to TEXT")
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := mustParse(t, "CREATE UNIQUE INDEX ix ON t (a, b)").(*CreateIndexStmt)
	if s.Table != "t" || !s.Spec.Unique || len(s.Spec.Columns) != 2 {
		t.Errorf("stmt = %+v", s)
	}
}

func TestParseDrop(t *testing.T) {
	s := mustParse(t, "DROP TABLE IF EXISTS t").(*DropTableStmt)
	if !s.IfExists || s.Table != "t" {
		t.Errorf("stmt = %+v", s)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").(*InsertStmt)
	if s.Table != "t" || len(s.Columns) != 2 || len(s.Rows) != 2 {
		t.Fatalf("stmt = %+v", s)
	}
	lit := s.Rows[1][1].(*Literal)
	if !lit.Value.IsNull() {
		t.Error("NULL literal not parsed")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").(*UpdateStmt)
	if len(u.Set) != 2 || u.Where == nil {
		t.Errorf("update = %+v", u)
	}
	d := mustParse(t, "DELETE FROM t WHERE a IN (1, 2, 3)").(*DeleteStmt)
	if d.Where == nil {
		t.Error("delete WHERE missing")
	}
}

func TestParseSelectFull(t *testing.T) {
	s := mustParse(t, `SELECT t.a, COUNT(*) AS n, SUM(u.v)
		FROM t
		JOIN u ON t.id = u.tid
		LEFT JOIN w ON u.id = w.uid
		WHERE t.a > 5 AND u.name LIKE 'x%'
		GROUP BY t.a
		ORDER BY n DESC, 1 ASC
		LIMIT 10 OFFSET 5`).(*SelectStmt)
	if len(s.Items) != 3 || len(s.Joins) != 2 || !s.Joins[1].Left {
		t.Fatalf("select = %+v", s)
	}
	if s.Limit != 10 || s.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", s.Limit, s.Offset)
	}
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 2 || !s.OrderBy[0].Desc {
		t.Errorf("group/order = %+v", s)
	}
	if s.Items[1].Alias != "n" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
}

func TestParseSelectStarForms(t *testing.T) {
	s := mustParse(t, "SELECT *, t.* FROM t").(*SelectStmt)
	if !s.Items[0].Star || s.Items[0].Table != "" {
		t.Errorf("item 0 = %+v", s.Items[0])
	}
	if !s.Items[1].Star || s.Items[1].Table != "t" {
		t.Errorf("item 1 = %+v", s.Items[1])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or, ok := s.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top is %+v, want OR", s.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Errorf("AND should bind tighter than OR")
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a + b * c FROM t").(*SelectStmt)
	add := s.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top = %q", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Error("* should bind tighter than +")
	}
}

func TestParseNotVariants(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t WHERE a NOT IN (1,2)",
		"SELECT a FROM t WHERE a NOT LIKE 'x%'",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE NOT a = 1",
		"SELECT a FROM t WHERE a IS NOT NULL",
	} {
		mustParse(t, q)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := mustParse(t, "SELECT -3, -2.5 FROM t").(*SelectStmt)
	if lit := s.Items[0].Expr.(*Literal); lit.Value.Int64() != -3 {
		t.Errorf("got %v", lit.Value)
	}
	if lit := s.Items[1].Expr.(*Literal); lit.Value.Float64() != -2.5 {
		t.Errorf("got %v", lit.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"CREATE UNIQUE TABLE t (a INT)",
		"CREATE TABLE t (a FROB)",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t extra garbage here",
		"DELETE FROM t WHERE a NOT 5",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseTableAlias(t *testing.T) {
	s := mustParse(t, "SELECT x.a FROM t AS x JOIN u y ON x.id = y.id").(*SelectStmt)
	if s.From.Alias != "x" || s.Joins[0].Table.Alias != "y" {
		t.Errorf("aliases = %q, %q", s.From.Alias, s.Joins[0].Table.Alias)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"%%", "anything", true},
		{"_", "", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "aXXcYYb", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}
