package sqldb

import (
	"fmt"
	"strings"

	"perftrack/internal/reldb"
)

// colBinding names one column of an execution row: the table alias it came
// from and its column name.
type colBinding struct {
	table  string
	column string
}

// frame resolves column references against the bound row layout.
type frame struct {
	cols []colBinding
}

// resolve returns the position of a column reference, or an error if the
// reference is missing or ambiguous.
func (f *frame) resolve(ref *ColumnRef) (int, error) {
	found := -1
	for i, b := range f.cols {
		if ref.Table != "" && b.table != ref.Table {
			continue
		}
		if b.column != ref.Column {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", ref.Column)
		}
		found = i
	}
	if found < 0 {
		if ref.Table != "" {
			return 0, fmt.Errorf("sql: no column %s.%s", ref.Table, ref.Column)
		}
		return 0, fmt.Errorf("sql: no column %q", ref.Column)
	}
	return found, nil
}

// eval evaluates a non-aggregate expression against a row. SQL three-valued
// logic applies: comparisons with NULL yield NULL, AND/OR propagate
// unknowns, and WHERE keeps only rows whose predicate is exactly true.
func eval(e Expr, f *frame, row reldb.Row) (reldb.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *ColumnRef:
		i, err := f.resolve(x)
		if err != nil {
			return reldb.Null(), err
		}
		return row[i], nil
	case *UnaryExpr:
		v, err := eval(x.X, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return reldb.Null(), nil
			}
			if v.Kind() != reldb.KindBool {
				return reldb.Null(), fmt.Errorf("sql: NOT applied to %v", v.Kind())
			}
			return reldb.Bool(!v.Truth()), nil
		case "-":
			switch v.Kind() {
			case reldb.KindNull:
				return reldb.Null(), nil
			case reldb.KindInt:
				return reldb.Int(-v.Int64()), nil
			case reldb.KindFloat:
				return reldb.Float(-v.Float64()), nil
			default:
				return reldb.Null(), fmt.Errorf("sql: unary minus applied to %v", v.Kind())
			}
		}
		return reldb.Null(), fmt.Errorf("sql: unknown unary op %q", x.Op)
	case *BinaryExpr:
		return evalBinary(x, f, row)
	case *IsNullExpr:
		v, err := eval(x.X, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return reldb.Bool(res), nil
	case *InExpr:
		v, err := eval(x.X, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		if v.IsNull() {
			return reldb.Null(), nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := eval(item, f, row)
			if err != nil {
				return reldb.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if reldb.Equal(v, iv) {
				return reldb.Bool(!x.Not), nil
			}
		}
		if sawNull {
			return reldb.Null(), nil
		}
		return reldb.Bool(x.Not), nil
	case *BetweenExpr:
		v, err := eval(x.X, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		lo, err := eval(x.Lo, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		hi, err := eval(x.Hi, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return reldb.Null(), nil
		}
		in := reldb.Compare(v, lo) >= 0 && reldb.Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return reldb.Bool(in), nil
	case *FuncExpr:
		return reldb.Null(), fmt.Errorf("sql: aggregate %s used outside GROUP BY context", x.Name)
	default:
		return reldb.Null(), fmt.Errorf("sql: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, f *frame, row reldb.Row) (reldb.Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := eval(x.L, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		// Short-circuit where three-valued logic allows.
		if x.Op == "AND" && l.Kind() == reldb.KindBool && !l.Truth() {
			return reldb.Bool(false), nil
		}
		if x.Op == "OR" && l.Kind() == reldb.KindBool && l.Truth() {
			return reldb.Bool(true), nil
		}
		r, err := eval(x.R, f, row)
		if err != nil {
			return reldb.Null(), err
		}
		return evalLogic(x.Op, l, r)
	}
	l, err := eval(x.L, f, row)
	if err != nil {
		return reldb.Null(), err
	}
	r, err := eval(x.R, f, row)
	if err != nil {
		return reldb.Null(), err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return reldb.Null(), nil
		}
		c := reldb.Compare(l, r)
		var res bool
		switch x.Op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return reldb.Bool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return reldb.Null(), nil
		}
		if l.Kind() != reldb.KindString || r.Kind() != reldb.KindString {
			return reldb.Null(), fmt.Errorf("sql: LIKE requires strings")
		}
		return reldb.Bool(likeMatch(r.Text(), l.Text())), nil
	case "+", "-", "*", "/":
		return evalArith(x.Op, l, r)
	}
	return reldb.Null(), fmt.Errorf("sql: unknown operator %q", x.Op)
}

func evalLogic(op string, l, r reldb.Value) (reldb.Value, error) {
	toBool := func(v reldb.Value) (bool, bool, error) { // value, isNull, err
		if v.IsNull() {
			return false, true, nil
		}
		if v.Kind() != reldb.KindBool {
			return false, false, fmt.Errorf("sql: %s applied to %v", op, v.Kind())
		}
		return v.Truth(), false, nil
	}
	lb, ln, err := toBool(l)
	if err != nil {
		return reldb.Null(), err
	}
	rb, rn, err := toBool(r)
	if err != nil {
		return reldb.Null(), err
	}
	if op == "AND" {
		switch {
		case !ln && !lb, !rn && !rb:
			return reldb.Bool(false), nil
		case ln || rn:
			return reldb.Null(), nil
		default:
			return reldb.Bool(true), nil
		}
	}
	// OR
	switch {
	case !ln && lb, !rn && rb:
		return reldb.Bool(true), nil
	case ln || rn:
		return reldb.Null(), nil
	default:
		return reldb.Bool(false), nil
	}
}

func evalArith(op string, l, r reldb.Value) (reldb.Value, error) {
	if l.IsNull() || r.IsNull() {
		return reldb.Null(), nil
	}
	intOp := l.Kind() == reldb.KindInt && r.Kind() == reldb.KindInt
	numeric := func(v reldb.Value) bool {
		return v.Kind() == reldb.KindInt || v.Kind() == reldb.KindFloat
	}
	if !numeric(l) || !numeric(r) {
		return reldb.Null(), fmt.Errorf("sql: arithmetic on non-numeric values")
	}
	if op == "/" {
		// Division always yields a float; dividing by zero yields NULL.
		if r.Float64() == 0 {
			return reldb.Null(), nil
		}
		return reldb.Float(l.Float64() / r.Float64()), nil
	}
	if intOp {
		a, b := l.Int64(), r.Int64()
		switch op {
		case "+":
			return reldb.Int(a + b), nil
		case "-":
			return reldb.Int(a - b), nil
		case "*":
			return reldb.Int(a * b), nil
		}
	}
	a, b := l.Float64(), r.Float64()
	switch op {
	case "+":
		return reldb.Float(a + b), nil
	case "-":
		return reldb.Float(a - b), nil
	case "*":
		return reldb.Float(a * b), nil
	}
	return reldb.Null(), fmt.Errorf("sql: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE: % matches any run, _ matches one
// character. Matching is case-sensitive, as in PostgreSQL.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// hasAggregate reports whether the expression tree contains an aggregate
// function call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		return true
	case *BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnaryExpr:
		return hasAggregate(x.X)
	case *InExpr:
		if hasAggregate(x.X) {
			return true
		}
		for _, item := range x.List {
			if hasAggregate(item) {
				return true
			}
		}
	case *IsNullExpr:
		return hasAggregate(x.X)
	case *BetweenExpr:
		return hasAggregate(x.X) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	}
	return false
}

// exprName derives a display name for an output column.
func exprName(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		return x.Column
	case *FuncExpr:
		if x.Star {
			return strings.ToLower(x.Name) + "(*)"
		}
		return strings.ToLower(x.Name) + "(" + exprName(x.Arg) + ")"
	case *Literal:
		return x.Value.String()
	case *BinaryExpr:
		return exprName(x.L) + x.Op + exprName(x.R)
	default:
		return "expr"
	}
}
