package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"perftrack/internal/reldb"
)

// parser consumes a token stream produced by lex.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement. A trailing semicolon is permitted.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

// identOrKeyword accepts an identifier; aggregate keywords are allowed as
// identifiers in column positions (e.g. a column named "count").
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	default:
		return nil, p.errorf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errorf("UNIQUE applies to indexes only")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseColumnType() (reldb.Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected column type, got %q", t.text)
	}
	p.next()
	switch t.text {
	case "INTEGER", "INT":
		return reldb.KindInt, nil
	case "REAL", "FLOAT":
		return reldb.KindFloat, nil
	case "TEXT":
		return reldb.KindString, nil
	case "VARCHAR":
		// Accept VARCHAR(n); the length is advisory.
		if p.acceptSymbol("(") {
			if p.peek().kind != tokNumber {
				return 0, p.errorf("expected length in VARCHAR(n)")
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
		return reldb.KindString, nil
	case "BOOLEAN", "BOOL":
		return reldb.KindBool, nil
	default:
		return 0, p.errorf("unsupported type %q", t.text)
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	schema := &reldb.Schema{Name: name}
	for {
		t := p.peek()
		switch {
		case t.kind == tokKeyword && t.text == "PRIMARY":
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			schema.PrimaryKey = cols
		case t.kind == tokKeyword && t.text == "FOREIGN":
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if len(cols) != 1 {
				return nil, p.errorf("foreign keys must name exactly one column")
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			refTable, err := p.ident()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if len(refCols) != 1 {
				return nil, p.errorf("foreign key references must name exactly one column")
			}
			schema.ForeignKeys = append(schema.ForeignKeys, reldb.ForeignKey{
				Column: cols[0], RefTable: refTable, RefColumn: refCols[0],
			})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			col := reldb.Column{Name: colName, Type: kind, Nullable: true}
			for {
				if p.acceptKeyword("NOT") {
					if err := p.expectKeyword("NULL"); err != nil {
						return nil, err
					}
					col.Nullable = false
					continue
				}
				if p.acceptKeyword("PRIMARY") {
					if err := p.expectKeyword("KEY"); err != nil {
						return nil, err
					}
					col.Nullable = false
					schema.PrimaryKey = append(schema.PrimaryKey, col.Name)
					continue
				}
				break
			}
			schema.Columns = append(schema.Columns, col)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Schema: schema}, nil
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseParenIdentList()
	if err != nil {
		return nil, err
	}
	return &CreateIndexStmt{
		Table: table,
		Spec:  reldb.IndexSpec{Name: name, Columns: cols, Unique: unique},
	}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if p.acceptKeyword("INDEX") {
		index, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Table: table, Index: index}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: val})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		left := false
		if p.acceptKeyword("LEFT") {
			left = true
		} else if p.acceptKeyword("INNER") {
			// fallthrough to JOIN
		} else if p.peek().kind != tokKeyword || p.peek().text != "JOIN" {
			break
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Left: left, Table: ref, On: on})
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		if len(stmt.GroupBy) == 0 {
			return nil, p.errorf("HAVING requires GROUP BY")
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected integer, got %q", t.text)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.peek().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		table := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((=|!=|<>|<|<=|>|>=|LIKE) addExpr
//	           | IS [NOT] NULL | [NOT] IN (list) | [NOT] BETWEEN a AND b)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | funcCall | columnRef | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			op := p.next().text
			if op == "<>" {
				op = "!="
			}
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "LIKE":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: "LIKE", L: l, R: r}, nil
		case "IS":
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{X: l, Not: not}, nil
		case "IN":
			p.next()
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &InExpr{X: l, List: list}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
		case "NOT":
			// expr NOT IN (...), expr NOT LIKE ..., expr NOT BETWEEN ...
			p.next()
			switch {
			case p.acceptKeyword("IN"):
				list, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				return &InExpr{X: l, List: list, Not: true}, nil
			case p.acceptKeyword("LIKE"):
				r, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				return &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "LIKE", L: l, R: r}}, nil
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: true}, nil
			default:
				return nil, p.errorf("expected IN, LIKE, or BETWEEN after NOT")
			}
		}
	}
	return l, nil
}

func (p *parser) parseExprList() ([]Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			op := p.next().text
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			op := p.next().text
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Kind() {
			case reldb.KindInt:
				return &Literal{Value: reldb.Int(-lit.Value.Int64())}, nil
			case reldb.KindFloat:
				return &Literal{Value: reldb.Float(-lit.Value.Float64())}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Value: reldb.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &Literal{Value: reldb.Int(n)}, nil
	case tokString:
		p.next()
		return &Literal{Value: reldb.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: reldb.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: reldb.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: reldb.Bool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			name := p.next().text
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			fe := &FuncExpr{Name: name}
			if p.acceptSymbol("*") {
				if name != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", name)
				}
				fe.Star = true
			} else {
				fe.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fe.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fe, nil
		default:
			return nil, p.errorf("unexpected keyword %q in expression", t.text)
		}
	case tokIdent:
		p.next()
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}
