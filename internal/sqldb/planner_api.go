package sqldb

// Exported execution hooks for the cost-based planner (internal/planner).
// The planner materializes virtual-table rows (or pre-aggregated groups)
// from the datastore's access paths and hands them here so SQL semantics —
// projection, HAVING, ORDER BY, DISTINCT, LIMIT — stay in one place.

import (
	"fmt"

	"perftrack/internal/reldb"
)

// frameFor binds the given column names under the FROM clause's alias so
// qualified and unqualified references both resolve.
func frameFor(s *SelectStmt, columns []string) *frame {
	alias := s.From.name()
	f := &frame{}
	for _, c := range columns {
		f.cols = append(f.cols, colBinding{table: alias, column: c})
	}
	return f
}

// HasAggregates reports whether a SELECT must run through the grouped
// executor: an explicit GROUP BY, or an aggregate call in the select list.
func HasAggregates(s *SelectStmt) bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, item := range s.Items {
		if item.Expr != nil && hasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

// ExecuteSelect runs an already-parsed single-table SELECT against
// caller-supplied rows instead of a storage engine. columns names the
// virtual table's columns in row order. The statement's WHERE (after any
// planner rewrite of pushed-down conjuncts) is re-applied here, so callers
// may pass a superset of the matching rows.
func ExecuteSelect(s *SelectStmt, columns []string, rows []reldb.Row) (*Result, error) {
	if len(s.Joins) > 0 {
		return nil, fmt.Errorf("sql: ExecuteSelect does not support joins")
	}
	f := frameFor(s, columns)
	if s.Where != nil {
		kept := make([]reldb.Row, 0, len(rows))
		for _, row := range rows {
			v, err := eval(s.Where, f, row)
			if err != nil {
				return nil, err
			}
			if v.Kind() == reldb.KindBool && v.Truth() {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	if HasAggregates(s) {
		return execGrouped(s, rows, f)
	}
	return execPlain(s, rows, f)
}

// Aggregator accumulates one aggregate function's state for one group. It
// implements the same COUNT/SUM/AVG/MIN/MAX (and DISTINCT) semantics the
// in-executor grouping path uses, so a planner that feeds scan values
// directly produces bit-identical results.
type Aggregator struct {
	st *aggState
}

// NewAggregator builds an accumulator for one aggregate call node.
func NewAggregator(fe *FuncExpr) *Aggregator {
	return &Aggregator{st: newAggState(fe)}
}

// Add folds one input value into the aggregate. COUNT(*) accumulators
// count every call regardless of the value; pass reldb.Null() for them.
func (a *Aggregator) Add(v reldb.Value) { a.st.add(v) }

// Result finalizes the aggregate's value.
func (a *Aggregator) Result() reldb.Value { return a.st.result() }

// NewFinishedAggregator builds an already-accumulated aggregate from the
// merged partial state a vectorized kernel produces, bypassing per-value
// Add calls. The parts mirror aggState exactly so results stay
// bit-identical to the row-at-a-time path: count is the number of
// accumulated values (rows for COUNT(*), non-null inputs otherwise), sum
// and sumInt the float and integer running sums, allInt whether every
// input was an integer (true when count is zero), and min/max the
// extrema (Null when no value was seen — always Null for COUNT(*),
// whose accumulator never inspects values). DISTINCT aggregates cannot
// be reconstructed this way; callers must keep them on the Add path.
func NewFinishedAggregator(fe *FuncExpr, count int64, sum float64, sumInt int64, allInt bool, min, max reldb.Value) *Aggregator {
	st := newAggState(fe)
	st.count = count
	st.sum = sum
	st.sumInt = sumInt
	st.allInt = allInt
	st.min = min
	st.max = max
	st.started = !min.IsNull()
	return &Aggregator{st: st}
}

// SelectAggregates returns the aggregate call nodes of a SELECT (from the
// select list, ORDER BY, and HAVING) in the canonical order FinishGrouped
// expects each group's Aggs slice to follow. It rejects SELECT * combined
// with aggregation, matching the executor.
func SelectAggregates(s *SelectStmt) ([]*FuncExpr, error) {
	return collectSelectAggs(s)
}

// PlannedGroup is one pre-aggregated group produced below materialization.
// Repr is a representative virtual-table row for the group (group-key
// columns populated, everything else null) and Aggs holds one finished
// accumulator per SelectAggregates entry, in that order.
type PlannedGroup struct {
	Repr reldb.Row
	Aggs []*Aggregator
}

// FinishGrouped completes a grouped SELECT whose aggregation was pushed
// below materialization: HAVING, projection, ORDER BY, DISTINCT, and
// LIMIT/OFFSET run here over the planner-built groups. An aggregate query
// with no GROUP BY and no groups still yields one row (COUNT(*) = 0).
func FinishGrouped(s *SelectStmt, columns []string, groups []PlannedGroup) (*Result, error) {
	aggs, err := collectSelectAggs(s)
	if err != nil {
		return nil, err
	}
	ordered := make([]*group, 0, len(groups))
	for _, pg := range groups {
		if len(pg.Aggs) != len(aggs) {
			return nil, fmt.Errorf("sql: FinishGrouped group has %d aggregates, statement has %d",
				len(pg.Aggs), len(aggs))
		}
		g := &group{repr: pg.Repr}
		for _, a := range pg.Aggs {
			g.states = append(g.states, a.st)
		}
		ordered = append(ordered, g)
	}
	if len(s.GroupBy) == 0 && len(ordered) == 0 {
		ordered = append(ordered, emptyGroup(len(columns), aggs))
	}
	return finishGrouped(s, frameFor(s, columns), aggs, ordered)
}
