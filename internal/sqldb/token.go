// Package sqldb implements a SQL subset over the reldb storage engines:
// CREATE TABLE / CREATE [UNIQUE] INDEX / DROP TABLE / DROP INDEX for DDL,
// INSERT, SELECT with WHERE, JOIN ... ON (inner and left), GROUP BY with
// aggregates and HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, plus UPDATE
// and DELETE. PerfTrack's data store issues its relational workload
// through this layer, mirroring the SQL interface the original prototype
// used against Oracle and PostgreSQL. The planner chooses primary-key
// lookups, index scans, or full scans per predicate; equi-joins use hash
// joins.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "UNIQUE": true, "ON": true, "DROP": true,
	"UPDATE": true, "SET": true, "DELETE": true, "JOIN": true,
	"INNER": true, "LEFT": true, "ORDER": true, "BY": true, "GROUP": true, "HAVING": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "TRUE": true,
	"FALSE": true, "IN": true, "IS": true, "LIKE": true, "AS": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"INTEGER": true, "INT": true, "REAL": true, "FLOAT": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BOOL": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "BETWEEN": true, "EXISTS": true, "IF": true,
}

type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: position %d: %s", e.pos, e.msg)
}

// lex splits a SQL statement into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			// Line comment.
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'') // escaped quote
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{start, "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot, seenExp := false, false
			for i < len(input) {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < len(input) && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c == '"':
			// Quoted identifier.
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{start, "unterminated quoted identifier"}
			}
			toks = append(toks, token{kind: tokIdent, text: sb.String(), pos: start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < len(input) {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.', ';', '%':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, &lexError{start, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
