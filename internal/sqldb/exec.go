package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"perftrack/internal/reldb"
)

// DB executes SQL statements against a reldb storage engine.
type DB struct {
	eng reldb.Engine
}

// Open wraps a storage engine in a SQL executor.
func Open(eng reldb.Engine) *DB { return &DB{eng: eng} }

// Engine returns the underlying storage engine.
func (db *DB) Engine() reldb.Engine { return db.eng }

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    []reldb.Row
}

// Exec parses and runs a statement that returns no rows (DDL, INSERT,
// UPDATE, DELETE). It reports the number of affected rows.
func (db *DB) Exec(query string) (int64, error) {
	stmt, err := Parse(query)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		if err := s.Schema.Validate(); err != nil {
			return 0, err
		}
		return 0, db.eng.CreateTable(s.Schema)
	case *CreateIndexStmt:
		return 0, db.eng.CreateIndex(s.Table, s.Spec)
	case *DropIndexStmt:
		return 0, db.eng.DropIndex(s.Table, s.Index)
	case *DropTableStmt:
		err := db.eng.DropTable(s.Table)
		if err != nil && s.IfExists {
			return 0, nil
		}
		return 0, err
	case *InsertStmt:
		return db.execInsert(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *SelectStmt:
		return 0, fmt.Errorf("sql: use Query for SELECT")
	default:
		return 0, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// Query parses and runs a SELECT.
func (db *DB) Query(query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires SELECT, got %T", stmt)
	}
	return db.execSelect(sel)
}

// QueryScalar runs a SELECT expected to return a single value.
func (db *DB) QueryScalar(query string) (reldb.Value, error) {
	res, err := db.Query(query)
	if err != nil {
		return reldb.Null(), err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return reldb.Null(), fmt.Errorf("sql: scalar query returned %d rows x %d cols",
			len(res.Rows), len(res.Columns))
	}
	return res.Rows[0][0], nil
}

func (db *DB) execInsert(s *InsertStmt) (int64, error) {
	tab, ok := db.eng.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	schema := tab.Schema()
	emptyFrame := &frame{}
	var count int64
	for _, exprRow := range s.Rows {
		row := make(reldb.Row, len(schema.Columns))
		if len(s.Columns) == 0 {
			if len(exprRow) != len(schema.Columns) {
				return count, fmt.Errorf("sql: INSERT has %d values, table %q has %d columns",
					len(exprRow), s.Table, len(schema.Columns))
			}
			for i, e := range exprRow {
				v, err := eval(e, emptyFrame, nil)
				if err != nil {
					return count, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(s.Columns) {
				return count, fmt.Errorf("sql: INSERT names %d columns but has %d values",
					len(s.Columns), len(exprRow))
			}
			for i := range row {
				row[i] = reldb.Null()
			}
			for i, col := range s.Columns {
				ci := schema.ColumnIndex(col)
				if ci < 0 {
					return count, fmt.Errorf("sql: table %q has no column %q", s.Table, col)
				}
				v, err := eval(exprRow[i], emptyFrame, nil)
				if err != nil {
					return count, err
				}
				row[ci] = v
			}
		}
		if _, err := db.eng.Insert(s.Table, row); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func (db *DB) execUpdate(s *UpdateStmt) (int64, error) {
	tab, ok := db.eng.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	schema := tab.Schema()
	f := frameForTable(s.Table, schema)
	type pending struct {
		id  int64
		row reldb.Row
	}
	var updates []pending
	var scanErr error
	tab.Scan(func(id int64, row reldb.Row) bool {
		if s.Where != nil {
			v, err := eval(s.Where, f, row)
			if err != nil {
				scanErr = err
				return false
			}
			if v.Kind() != reldb.KindBool || !v.Truth() {
				return true
			}
		}
		newRow := row.Clone()
		for _, a := range s.Set {
			ci := schema.ColumnIndex(a.Column)
			if ci < 0 {
				scanErr = fmt.Errorf("sql: table %q has no column %q", s.Table, a.Column)
				return false
			}
			v, err := eval(a.Value, f, row)
			if err != nil {
				scanErr = err
				return false
			}
			newRow[ci] = v
		}
		updates = append(updates, pending{id: id, row: newRow})
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	for _, u := range updates {
		if err := db.eng.Update(s.Table, u.id, u.row); err != nil {
			return 0, err
		}
	}
	return int64(len(updates)), nil
}

func (db *DB) execDelete(s *DeleteStmt) (int64, error) {
	tab, ok := db.eng.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("sql: no table %q", s.Table)
	}
	f := frameForTable(s.Table, tab.Schema())
	var ids []int64
	var scanErr error
	tab.Scan(func(id int64, row reldb.Row) bool {
		if s.Where != nil {
			v, err := eval(s.Where, f, row)
			if err != nil {
				scanErr = err
				return false
			}
			if v.Kind() != reldb.KindBool || !v.Truth() {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	for _, id := range ids {
		if err := db.eng.Delete(s.Table, id); err != nil {
			return 0, err
		}
	}
	return int64(len(ids)), nil
}

func frameForTable(alias string, schema *reldb.Schema) *frame {
	f := &frame{}
	for _, c := range schema.Columns {
		f.cols = append(f.cols, colBinding{table: alias, column: c.Name})
	}
	return f
}

// --- SELECT execution ---

func (db *DB) execSelect(s *SelectStmt) (*Result, error) {
	rows, f, err := db.buildInput(s)
	if err != nil {
		return nil, err
	}
	// WHERE.
	if s.Where != nil {
		kept := rows[:0]
		for _, row := range rows {
			v, err := eval(s.Where, f, row)
			if err != nil {
				return nil, err
			}
			if v.Kind() == reldb.KindBool && v.Truth() {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, item := range s.Items {
			if item.Expr != nil && hasAggregate(item.Expr) {
				grouped = true // implicit single group
				break
			}
		}
	}
	if grouped {
		return execGrouped(s, rows, f)
	}
	return execPlain(s, rows, f)
}

// buildInput scans the FROM table and applies JOIN clauses, producing the
// combined rows and the column frame.
func (db *DB) buildInput(s *SelectStmt) ([]reldb.Row, *frame, error) {
	baseTab, ok := db.eng.Table(s.From.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sql: no table %q", s.From.Table)
	}
	f := frameForTable(s.From.name(), baseTab.Schema())
	var rows []reldb.Row
	// Single-table queries can use an access path derived from WHERE.
	if len(s.Joins) == 0 && s.Where != nil {
		if planned := db.plannedScan(baseTab, s.From.name(), s.Where); planned != nil {
			rows = planned
		}
	}
	if rows == nil {
		baseTab.Scan(func(_ int64, row reldb.Row) bool {
			rows = append(rows, row)
			return true
		})
	}

	for _, j := range s.Joins {
		tab, ok := db.eng.Table(j.Table.Table)
		if !ok {
			return nil, nil, fmt.Errorf("sql: no table %q", j.Table.Table)
		}
		schema := tab.Schema()
		rightName := j.Table.name()
		rightFrame := frameForTable(rightName, schema)

		combined := &frame{cols: append(append([]colBinding{}, f.cols...), rightFrame.cols...)}

		var rightRows []reldb.Row
		tab.Scan(func(_ int64, row reldb.Row) bool {
			rightRows = append(rightRows, row)
			return true
		})

		// Try a hash join on an equi-condition a = b splitting across sides.
		leftKey, rightKey := splitEquiJoin(j.On, f, rightFrame)
		var out []reldb.Row
		if leftKey != nil && rightKey != nil {
			hash := make(map[string][]reldb.Row, len(rightRows))
			for _, rr := range rightRows {
				kv, err := eval(rightKey, rightFrame, rr)
				if err != nil {
					return nil, nil, err
				}
				if kv.IsNull() {
					continue
				}
				k := string(reldb.EncodeKey(nil, kv))
				hash[k] = append(hash[k], rr)
			}
			for _, lr := range rows {
				kv, err := eval(leftKey, f, lr)
				if err != nil {
					return nil, nil, err
				}
				matched := false
				if !kv.IsNull() {
					for _, rr := range hash[string(reldb.EncodeKey(nil, kv))] {
						joined := append(append(reldb.Row{}, lr...), rr...)
						ok, err := onMatches(j.On, combined, joined)
						if err != nil {
							return nil, nil, err
						}
						if ok {
							out = append(out, joined)
							matched = true
						}
					}
				}
				if j.Left && !matched {
					out = append(out, padRight(lr, len(schema.Columns)))
				}
			}
		} else {
			// Nested loop.
			for _, lr := range rows {
				matched := false
				for _, rr := range rightRows {
					joined := append(append(reldb.Row{}, lr...), rr...)
					ok, err := onMatches(j.On, combined, joined)
					if err != nil {
						return nil, nil, err
					}
					if ok {
						out = append(out, joined)
						matched = true
					}
				}
				if j.Left && !matched {
					out = append(out, padRight(lr, len(schema.Columns)))
				}
			}
		}
		rows = out
		f = combined
	}
	return rows, f, nil
}

func padRight(left reldb.Row, n int) reldb.Row {
	out := append(reldb.Row{}, left...)
	for i := 0; i < n; i++ {
		out = append(out, reldb.Null())
	}
	return out
}

func onMatches(on Expr, f *frame, row reldb.Row) (bool, error) {
	v, err := eval(on, f, row)
	if err != nil {
		return false, err
	}
	return v.Kind() == reldb.KindBool && v.Truth(), nil
}

// splitEquiJoin recognizes ON conditions of the form L = R (possibly under
// ANDs, in which case the first splittable equality is used) where L
// resolves entirely in the left frame and R in the right (or vice versa).
func splitEquiJoin(on Expr, left, right *frame) (Expr, Expr) {
	be, ok := on.(*BinaryExpr)
	if !ok {
		return nil, nil
	}
	if be.Op == "AND" {
		if l, r := splitEquiJoin(be.L, left, right); l != nil {
			return l, r
		}
		return splitEquiJoin(be.R, left, right)
	}
	if be.Op != "=" {
		return nil, nil
	}
	switch {
	case resolvesIn(be.L, left) && resolvesIn(be.R, right):
		return be.L, be.R
	case resolvesIn(be.R, left) && resolvesIn(be.L, right):
		return be.R, be.L
	}
	return nil, nil
}

// resolvesIn reports whether every column reference in e resolves in f.
func resolvesIn(e Expr, f *frame) bool {
	switch x := e.(type) {
	case *Literal:
		return true
	case *ColumnRef:
		_, err := f.resolve(x)
		return err == nil
	case *BinaryExpr:
		return resolvesIn(x.L, f) && resolvesIn(x.R, f)
	case *UnaryExpr:
		return resolvesIn(x.X, f)
	default:
		return false
	}
}

// plannedScan inspects WHERE for equality conjuncts over indexed columns
// and returns pre-filtered rows using the best access path, or nil to fall
// back to a full scan. The full WHERE is still applied afterward, so the
// plan only needs to be a superset of the matching rows.
func (db *DB) plannedScan(tab *reldb.Table, alias string, where Expr) []reldb.Row {
	eqs := map[string]reldb.Value{}
	collectEqualities(where, alias, eqs)
	if len(eqs) == 0 {
		return nil
	}
	schema := tab.Schema()
	// Primary-key point lookup.
	if len(schema.PrimaryKey) == 1 {
		if v, ok := eqs[schema.PrimaryKey[0]]; ok {
			row, _, found := tab.GetByPK(v)
			if !found {
				return []reldb.Row{}
			}
			return []reldb.Row{row}
		}
	}
	// Longest matching index prefix.
	bestName, bestLen := "", 0
	var bestPrefix []reldb.Value
	for col, v := range eqs {
		if name := tab.IndexOnColumns(col); name != "" && 1 > bestLen {
			bestName, bestLen = name, 1
			bestPrefix = []reldb.Value{v}
		}
		// Try two-column prefixes.
		for col2, v2 := range eqs {
			if col2 == col {
				continue
			}
			if name := tab.IndexOnColumns(col, col2); name != "" && 2 > bestLen {
				bestName, bestLen = name, 2
				bestPrefix = []reldb.Value{v, v2}
			}
		}
	}
	if bestName == "" {
		return nil
	}
	var rows []reldb.Row
	if err := tab.IndexScan(bestName, bestPrefix, func(_ int64, row reldb.Row) bool {
		rows = append(rows, row)
		return true
	}); err != nil {
		return nil
	}
	return rows
}

// collectEqualities gathers col = literal conjuncts (under ANDs only) whose
// column references the given table alias or is unqualified.
func collectEqualities(e Expr, alias string, out map[string]reldb.Value) {
	be, ok := e.(*BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case "AND":
		collectEqualities(be.L, alias, out)
		collectEqualities(be.R, alias, out)
	case "=":
		if col, lit, ok := colLitPair(be.L, be.R); ok {
			if col.Table == "" || col.Table == alias {
				out[col.Column] = lit
			}
		}
	}
}

func colLitPair(a, b Expr) (*ColumnRef, reldb.Value, bool) {
	if c, ok := a.(*ColumnRef); ok {
		if l, ok := b.(*Literal); ok {
			return c, l.Value, true
		}
	}
	if c, ok := b.(*ColumnRef); ok {
		if l, ok := a.(*Literal); ok {
			return c, l.Value, true
		}
	}
	return nil, reldb.Null(), false
}

// execPlain handles non-aggregated SELECT: projection, DISTINCT, ORDER BY,
// LIMIT/OFFSET.
func execPlain(s *SelectStmt, rows []reldb.Row, f *frame) (*Result, error) {
	cols, project, err := makeProjection(s.Items, f)
	if err != nil {
		return nil, err
	}
	type sortable struct {
		out  reldb.Row
		keys reldb.Row
	}
	items := make([]sortable, 0, len(rows))
	for _, row := range rows {
		out, err := project(row)
		if err != nil {
			return nil, err
		}
		var keys reldb.Row
		for _, oi := range s.OrderBy {
			k, err := evalOrderKey(oi.Expr, f, row, s.Items, cols, out)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
		items = append(items, sortable{out: out, keys: keys})
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(items, func(i, j int) bool {
			return orderLess(items[i].keys, items[j].keys, s.OrderBy)
		})
	}
	outRows := make([]reldb.Row, len(items))
	for i, it := range items {
		outRows[i] = it.out
	}
	if s.Distinct {
		outRows = distinctRows(outRows)
	}
	outRows = applyLimit(outRows, s.Limit, s.Offset)
	return &Result{Columns: cols, Rows: outRows}, nil
}

func orderLess(a, b reldb.Row, order []OrderItem) bool {
	for i := range order {
		c := reldb.Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if order[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// evalOrderKey evaluates an ORDER BY term. It first tries alias/output
// column references and 1-based positions, then falls back to evaluating
// the expression against the input row.
func evalOrderKey(e Expr, f *frame, row reldb.Row, items []SelectItem, cols []string, out reldb.Row) (reldb.Value, error) {
	if lit, ok := e.(*Literal); ok && lit.Value.Kind() == reldb.KindInt {
		pos := int(lit.Value.Int64())
		if pos < 1 || pos > len(out) {
			return reldb.Null(), fmt.Errorf("sql: ORDER BY position %d out of range", pos)
		}
		return out[pos-1], nil
	}
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i, item := range items {
			if item.Alias == cr.Column {
				return out[i], nil
			}
		}
		// Match output column names for grouped results where the input
		// frame may not resolve the reference.
		if _, err := f.resolve(cr); err != nil {
			for i, c := range cols {
				if c == cr.Column {
					return out[i], nil
				}
			}
		}
	}
	return eval(e, f, row)
}

func distinctRows(rows []reldb.Row) []reldb.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := string(reldb.EncodeKey(nil, r...))
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func applyLimit(rows []reldb.Row, limit, offset int) []reldb.Row {
	if offset > 0 {
		if offset >= len(rows) {
			return nil
		}
		rows = rows[offset:]
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

// makeProjection compiles the select list into output column names and a
// per-row projection function.
func makeProjection(items []SelectItem, f *frame) ([]string, func(reldb.Row) (reldb.Row, error), error) {
	var cols []string
	type step struct {
		star      bool
		starTable string
		expr      Expr
	}
	var steps []step
	for _, item := range items {
		if item.Star {
			n := 0
			for _, b := range f.cols {
				if item.Table == "" || b.table == item.Table {
					cols = append(cols, b.column)
					n++
				}
			}
			if item.Table != "" && n == 0 {
				return nil, nil, fmt.Errorf("sql: no table %q in select star", item.Table)
			}
			steps = append(steps, step{star: true, starTable: item.Table})
			continue
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr)
		}
		cols = append(cols, name)
		steps = append(steps, step{expr: item.Expr})
	}
	project := func(row reldb.Row) (reldb.Row, error) {
		out := make(reldb.Row, 0, len(cols))
		for _, st := range steps {
			if st.star {
				for i, b := range f.cols {
					if st.starTable == "" || b.table == st.starTable {
						out = append(out, row[i])
					}
				}
				continue
			}
			v, err := eval(st.expr, f, row)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return cols, project, nil
}

// --- grouped execution ---

type aggState struct {
	fn       string
	star     bool
	distinct bool

	count   int64
	sum     float64
	sumInt  int64
	allInt  bool
	min     reldb.Value
	max     reldb.Value
	seen    map[string]bool
	started bool
}

func newAggState(fe *FuncExpr) *aggState {
	st := &aggState{fn: fe.Name, star: fe.Star, distinct: fe.Distinct, allInt: true}
	if fe.Distinct {
		st.seen = make(map[string]bool)
	}
	return st
}

func (st *aggState) add(v reldb.Value) {
	if st.star {
		st.count++
		return
	}
	if v.IsNull() {
		return
	}
	if st.distinct {
		k := string(reldb.EncodeKey(nil, v))
		if st.seen[k] {
			return
		}
		st.seen[k] = true
	}
	st.count++
	if v.Kind() == reldb.KindInt {
		st.sumInt += v.Int64()
		st.sum += float64(v.Int64())
	} else if v.Kind() == reldb.KindFloat {
		st.allInt = false
		st.sum += v.Float64()
	}
	if !st.started || reldb.Compare(v, st.min) < 0 {
		st.min = v
	}
	if !st.started || reldb.Compare(v, st.max) > 0 {
		st.max = v
	}
	st.started = true
}

func (st *aggState) result() reldb.Value {
	switch st.fn {
	case "COUNT":
		return reldb.Int(st.count)
	case "SUM":
		if st.count == 0 {
			return reldb.Null()
		}
		if st.allInt {
			return reldb.Int(st.sumInt)
		}
		return reldb.Float(st.sum)
	case "AVG":
		if st.count == 0 {
			return reldb.Null()
		}
		return reldb.Float(st.sum / float64(st.count))
	case "MIN":
		if !st.started {
			return reldb.Null()
		}
		return st.min
	case "MAX":
		if !st.started {
			return reldb.Null()
		}
		return st.max
	}
	return reldb.Null()
}

// collectAggs gathers the aggregate call nodes in an expression tree.
func collectAggs(e Expr, out *[]*FuncExpr) {
	switch x := e.(type) {
	case *FuncExpr:
		*out = append(*out, x)
	case *BinaryExpr:
		collectAggs(x.L, out)
		collectAggs(x.R, out)
	case *UnaryExpr:
		collectAggs(x.X, out)
	case *InExpr:
		collectAggs(x.X, out)
		for _, i := range x.List {
			collectAggs(i, out)
		}
	case *IsNullExpr:
		collectAggs(x.X, out)
	case *BetweenExpr:
		collectAggs(x.X, out)
		collectAggs(x.Lo, out)
		collectAggs(x.Hi, out)
	}
}

// evalWithAggs evaluates an expression where aggregate nodes take their
// precomputed group values.
func evalWithAggs(e Expr, f *frame, row reldb.Row, aggVals map[*FuncExpr]reldb.Value) (reldb.Value, error) {
	switch x := e.(type) {
	case *FuncExpr:
		v, ok := aggVals[x]
		if !ok {
			return reldb.Null(), fmt.Errorf("sql: aggregate %s not computed", x.Name)
		}
		return v, nil
	case *BinaryExpr:
		if !hasAggregate(x) {
			return eval(x, f, row)
		}
		l, err := evalWithAggs(x.L, f, row, aggVals)
		if err != nil {
			return reldb.Null(), err
		}
		r, err := evalWithAggs(x.R, f, row, aggVals)
		if err != nil {
			return reldb.Null(), err
		}
		return evalBinary(&BinaryExpr{Op: x.Op, L: &Literal{Value: l}, R: &Literal{Value: r}}, f, row)
	case *UnaryExpr:
		if !hasAggregate(x) {
			return eval(x, f, row)
		}
		v, err := evalWithAggs(x.X, f, row, aggVals)
		if err != nil {
			return reldb.Null(), err
		}
		return eval(&UnaryExpr{Op: x.Op, X: &Literal{Value: v}}, f, row)
	default:
		return eval(e, f, row)
	}
}

// group is one aggregation group: a representative input row for the
// group-key columns plus one accumulator per aggregate call node.
type group struct {
	repr   reldb.Row
	states []*aggState
}

// collectSelectAggs gathers the aggregate call nodes of a SELECT from the
// select list, ORDER BY, and HAVING, in the canonical order the grouped
// executor (and FinishGrouped) consumes them.
func collectSelectAggs(s *SelectStmt) ([]*FuncExpr, error) {
	var aggs []*FuncExpr
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY or aggregates")
		}
		collectAggs(item.Expr, &aggs)
	}
	for _, oi := range s.OrderBy {
		collectAggs(oi.Expr, &aggs)
	}
	if s.Having != nil {
		collectAggs(s.Having, &aggs)
	}
	return aggs, nil
}

// emptyGroup builds the single all-null group that an aggregate query with
// no GROUP BY and no input rows still yields (e.g. COUNT(*) = 0).
func emptyGroup(ncols int, aggs []*FuncExpr) *group {
	g := &group{repr: make(reldb.Row, ncols)}
	for i := range g.repr {
		g.repr[i] = reldb.Null()
	}
	for _, fe := range aggs {
		g.states = append(g.states, newAggState(fe))
	}
	return g
}

func execGrouped(s *SelectStmt, rows []reldb.Row, f *frame) (*Result, error) {
	aggs, err := collectSelectAggs(s)
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*group)
	var order []string // first-seen order
	for _, row := range rows {
		var keyVals reldb.Row
		for _, ge := range s.GroupBy {
			v, err := eval(ge, f, row)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
		}
		k := string(reldb.EncodeKey(nil, keyVals...))
		g, ok := groups[k]
		if !ok {
			g = &group{repr: row}
			for _, fe := range aggs {
				g.states = append(g.states, newAggState(fe))
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, fe := range aggs {
			if fe.Star {
				g.states[i].add(reldb.Null())
				continue
			}
			v, err := eval(fe.Arg, f, row)
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}
	// An aggregate query with no GROUP BY and no input rows still yields
	// one row (e.g. COUNT(*) = 0).
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = emptyGroup(len(f.cols), aggs)
		order = append(order, "")
	}
	ordered := make([]*group, len(order))
	for i, k := range order {
		ordered[i] = groups[k]
	}
	return finishGrouped(s, f, aggs, ordered)
}

// finishGrouped completes a grouped SELECT from fully-accumulated groups:
// HAVING, projection, ORDER BY, DISTINCT, LIMIT/OFFSET.
func finishGrouped(s *SelectStmt, f *frame, aggs []*FuncExpr, ordered []*group) (*Result, error) {
	var cols []string
	for _, item := range s.Items {
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr)
		}
		cols = append(cols, name)
	}

	type sortable struct {
		out  reldb.Row
		keys reldb.Row
	}
	var outItems []sortable
	for _, g := range ordered {
		aggVals := make(map[*FuncExpr]reldb.Value, len(aggs))
		for i, fe := range aggs {
			aggVals[fe] = g.states[i].result()
		}
		if s.Having != nil {
			hv, err := evalWithAggs(s.Having, f, g.repr, aggVals)
			if err != nil {
				return nil, err
			}
			if hv.Kind() != reldb.KindBool || !hv.Truth() {
				continue
			}
		}
		out := make(reldb.Row, 0, len(s.Items))
		for _, item := range s.Items {
			v, err := evalWithAggs(item.Expr, f, g.repr, aggVals)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		var keys reldb.Row
		for _, oi := range s.OrderBy {
			var kv reldb.Value
			var err error
			if hasAggregate(oi.Expr) {
				kv, err = evalWithAggs(oi.Expr, f, g.repr, aggVals)
			} else {
				kv, err = evalOrderKey(oi.Expr, f, g.repr, s.Items, cols, out)
			}
			if err != nil {
				return nil, err
			}
			keys = append(keys, kv)
		}
		outItems = append(outItems, sortable{out: out, keys: keys})
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(outItems, func(i, j int) bool {
			return orderLess(outItems[i].keys, outItems[j].keys, s.OrderBy)
		})
	}
	outRows := make([]reldb.Row, len(outItems))
	for i, it := range outItems {
		outRows[i] = it.out
	}
	if s.Distinct {
		outRows = distinctRows(outRows)
	}
	outRows = applyLimit(outRows, s.Limit, s.Offset)
	return &Result{Columns: cols, Rows: outRows}, nil
}

// FormatTable renders a result set as an aligned text table for CLI output.
func (r *Result) FormatTable() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
