// Package compare implements the comparison operators listed in the
// paper's future-work section (§6) and exercised by the cross-platform
// case study (§4.1): aligning performance results from two executions by
// metric and comparable context, then computing differences, ratios,
// speedups, and regressions across whole executions.
//
// Alignment: two results correspond when they share a metric and a
// comparable context. Machine-specific resources (the grid hierarchy),
// execution-specific resources (the execution hierarchy and submissions),
// and per-run time intervals differ between any two runs by construction,
// so the alignment key keeps only resources from portable hierarchies —
// build, environment, application, and the like — plus the base names of
// time resources.
package compare

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
)

// nonPortableRoots are type-hierarchy roots whose resources never align
// across executions.
var nonPortableRoots = map[string]bool{
	"grid":       true,
	"execution":  true,
	"submission": true,
}

// typeCache memoizes Store.TypeOfResource for one comparison: the same
// resource names appear in nearly every result of an execution, and each
// store lookup costs a mutex round trip plus two engine point reads.
type typeCache struct {
	s *datastore.Store
	m map[core.ResourceName]core.TypePath
}

func newTypeCache(s *datastore.Store) *typeCache {
	return &typeCache{s: s, m: make(map[core.ResourceName]core.TypePath)}
}

func (tc *typeCache) typeOf(r core.ResourceName) (core.TypePath, error) {
	if tp, ok := tc.m[r]; ok {
		return tp, nil
	}
	tp, err := tc.s.TypeOfResource(r)
	if err != nil {
		return "", err
	}
	tc.m[r] = tp
	return tp, nil
}

// alignmentKey builds the canonical key for one result.
func alignmentKey(tc *typeCache, pr *core.PerformanceResult) (string, error) {
	var tokens []string
	for _, r := range pr.AllResources() {
		tp, err := tc.typeOf(r)
		if err != nil {
			return "", err
		}
		root := tp.Root()
		if nonPortableRoots[root] {
			continue
		}
		if root == "time" {
			// Align time phases by base name (e.g. "initialization").
			tokens = append(tokens, "time:"+r.BaseName())
			continue
		}
		tokens = append(tokens, string(tp)+":"+string(r))
	}
	sort.Strings(tokens)
	return pr.Metric + "\x00" + strings.Join(tokens, "\x00"), nil
}

// Pair is one aligned pair of values from two executions.
type Pair struct {
	Metric  string
	Context []core.ResourceName // portable context resources (from A)
	A, B    float64
	Units   string
}

// Difference is B - A.
func (p Pair) Difference() float64 { return p.B - p.A }

// Ratio is B / A; it is NaN when A is zero.
func (p Pair) Ratio() float64 {
	if p.A == 0 {
		return math.NaN()
	}
	return p.B / p.A
}

// Speedup is A / B — how much faster B is for time-like metrics; it is
// NaN when B is zero.
func (p Pair) Speedup() float64 {
	if p.B == 0 {
		return math.NaN()
	}
	return p.A / p.B
}

// PercentChange is 100 * (B - A) / A; it is NaN when A is zero.
func (p Pair) PercentChange() float64 {
	if p.A == 0 {
		return math.NaN()
	}
	return 100 * (p.B - p.A) / p.A
}

// Comparison is the aligned view of two executions.
type Comparison struct {
	ExecA, ExecB string
	Pairs        []Pair
	OnlyA        []*core.PerformanceResult // results with no counterpart in B
	OnlyB        []*core.PerformanceResult
}

// Executions aligns every performance result of two executions in a
// store. Results that align to the same key within one execution are
// averaged before pairing (several values measured at the same place).
func Executions(s *datastore.Store, execA, execB string) (*Comparison, error) {
	tc := newTypeCache(s)
	load := func(exec string) (map[string][]*core.PerformanceResult, error) {
		resA, err := resultsOfExecution(s, exec)
		if err != nil {
			return nil, err
		}
		keyed := make(map[string][]*core.PerformanceResult)
		for _, pr := range resA {
			k, err := alignmentKey(tc, pr)
			if err != nil {
				return nil, err
			}
			keyed[k] = append(keyed[k], pr)
		}
		return keyed, nil
	}
	keyedA, err := load(execA)
	if err != nil {
		return nil, err
	}
	keyedB, err := load(execB)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{ExecA: execA, ExecB: execB}
	var keys []string
	for k := range keyedA {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		as := keyedA[k]
		bs, ok := keyedB[k]
		if !ok {
			cmp.OnlyA = append(cmp.OnlyA, as...)
			continue
		}
		pair := Pair{
			Metric: as[0].Metric,
			Units:  as[0].Units,
			A:      mean(as),
			B:      mean(bs),
		}
		for _, r := range as[0].AllResources() {
			tp, err := tc.typeOf(r)
			if err != nil {
				return nil, err
			}
			if !nonPortableRoots[tp.Root()] {
				pair.Context = append(pair.Context, r)
			}
		}
		cmp.Pairs = append(cmp.Pairs, pair)
	}
	var bKeys []string
	for k := range keyedB {
		if _, ok := keyedA[k]; !ok {
			bKeys = append(bKeys, k)
		}
	}
	sort.Strings(bKeys)
	for _, k := range bKeys {
		cmp.OnlyB = append(cmp.OnlyB, keyedB[k]...)
	}
	return cmp, nil
}

func mean(prs []*core.PerformanceResult) float64 {
	sum := 0.0
	for _, pr := range prs {
		sum += pr.Value
	}
	return sum / float64(len(prs))
}

// resultsOfExecution materializes every result of one execution through
// the store's execution index.
func resultsOfExecution(s *datastore.Store, exec string) ([]*core.PerformanceResult, error) {
	out, err := s.ResultsOfExecution(exec)
	if err != nil {
		return nil, fmt.Errorf("compare: %w", err)
	}
	return out, nil
}

// Regression flags a pair whose B value exceeds A by more than the given
// fraction (e.g. 0.10 for 10% slower).
type Regression struct {
	Pair    Pair
	Percent float64
}

// Regressions returns pairs where execution B regressed relative to A by
// more than threshold (a fraction), sorted worst-first.
func (c *Comparison) Regressions(threshold float64) []Regression {
	var out []Regression
	for _, p := range c.Pairs {
		if p.A <= 0 {
			continue
		}
		pc := (p.B - p.A) / p.A
		if pc > threshold {
			out = append(out, Regression{Pair: p, Percent: pc * 100})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Percent > out[j].Percent })
	return out
}

// Improvements returns pairs where B improved on A by more than
// threshold, sorted best-first.
func (c *Comparison) Improvements(threshold float64) []Regression {
	var out []Regression
	for _, p := range c.Pairs {
		if p.A <= 0 {
			continue
		}
		pc := (p.A - p.B) / p.A
		if pc > threshold {
			out = append(out, Regression{Pair: p, Percent: pc * 100})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Percent > out[j].Percent })
	return out
}

// Summary aggregates a comparison.
type Summary struct {
	Paired       int
	OnlyA, OnlyB int
	GeoMeanRatio float64 // geometric mean of B/A over positive pairs
	MeanDiff     float64
}

// Summarize computes aggregate comparison statistics.
func (c *Comparison) Summarize() Summary {
	s := Summary{Paired: len(c.Pairs), OnlyA: len(c.OnlyA), OnlyB: len(c.OnlyB)}
	logSum, logN := 0.0, 0
	diffSum := 0.0
	for _, p := range c.Pairs {
		diffSum += p.Difference()
		if p.A > 0 && p.B > 0 {
			logSum += math.Log(p.B / p.A)
			logN++
		}
	}
	if len(c.Pairs) > 0 {
		s.MeanDiff = diffSum / float64(len(c.Pairs))
	}
	if logN > 0 {
		s.GeoMeanRatio = math.Exp(logSum / float64(logN))
	} else {
		s.GeoMeanRatio = math.NaN()
	}
	return s
}

// Finding is one diagnosed bottleneck: an aligned pair ranked by its
// contribution to the total slowdown between the two executions.
type Finding struct {
	Pair Pair
	// Delta is B - A for this pair (positive = slower in B).
	Delta float64
	// Contribution is Delta as a fraction of the total positive slowdown
	// across all pairs, in [0, 1].
	Contribution float64
}

// DiagnoseBottlenecks implements §6's multi-execution diagnosis: it ranks
// the contexts responsible for execution B being slower than A. Only
// pairs whose metric matches (empty = all time-like pairs, i.e. units
// containing "second") and whose delta is positive participate. The topN
// largest contributors are returned, sorted.
func (c *Comparison) DiagnoseBottlenecks(metric string, topN int) []Finding {
	var findings []Finding
	totalSlow := 0.0
	for _, p := range c.Pairs {
		if metric != "" && p.Metric != metric {
			continue
		}
		if metric == "" && !strings.Contains(p.Units, "second") {
			continue
		}
		d := p.Difference()
		if d <= 0 {
			continue
		}
		totalSlow += d
		findings = append(findings, Finding{Pair: p, Delta: d})
	}
	if totalSlow > 0 {
		for i := range findings {
			findings[i].Contribution = findings[i].Delta / totalSlow
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Delta > findings[j].Delta })
	if topN > 0 && len(findings) > topN {
		findings = findings[:topN]
	}
	return findings
}

// FilterMetric keeps only pairs with the given metric.
func (c *Comparison) FilterMetric(metric string) *Comparison {
	out := &Comparison{ExecA: c.ExecA, ExecB: c.ExecB}
	for _, p := range c.Pairs {
		if p.Metric == metric {
			out.Pairs = append(out.Pairs, p)
		}
	}
	return out
}
