package compare

import (
	"math"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// twoPlatformStore builds IRS runs on Frost and MCR with per-function
// timings, matching the §4.1 cross-platform study shape.
func twoPlatformStore(t *testing.T) *datastore.Store {
	t.Helper()
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.AddResource("/irs", "application", "")
	must(err)
	for _, fn := range []string{"main", "xdouble", "radsolve"} {
		_, err = s.AddResource(core.ResourceName("/irsbuild/irs.c/"+fn), "build/module/function", "")
		must(err)
	}
	_, err = s.AddResource("/GF/Frost", "grid/machine", "")
	must(err)
	_, err = s.AddResource("/GM/MCR", "grid/machine", "")
	must(err)
	_, err = s.AddExecution("irs-frost", "irs")
	must(err)
	_, err = s.AddExecution("irs-mcr", "irs")
	must(err)

	add := func(exec string, machine core.ResourceName, fn string, v float64) {
		t.Helper()
		_, err := s.AddPerfResult(&core.PerformanceResult{
			Execution: exec, Metric: "wall time", Value: v, Units: "seconds", Tool: "IRS",
			Contexts: []core.Context{core.NewContext("/irs", machine,
				core.ResourceName("/irsbuild/irs.c/"+fn))},
		})
		must(err)
	}
	// Frost is ~2x slower on main/xdouble; radsolve only on Frost.
	add("irs-frost", "/GF/Frost", "main", 100)
	add("irs-frost", "/GF/Frost", "xdouble", 40)
	add("irs-frost", "/GF/Frost", "radsolve", 25)
	add("irs-mcr", "/GM/MCR", "main", 50)
	add("irs-mcr", "/GM/MCR", "xdouble", 22)
	// An MCR-only function.
	_, err = s.AddResource("/irsbuild/irs.c/mcronly", "build/module/function", "")
	must(err)
	add("irs-mcr", "/GM/MCR", "mcronly", 1)
	return s
}

func TestExecutionsAlignAcrossMachines(t *testing.T) {
	s := twoPlatformStore(t)
	cmp, err := Executions(s, "irs-frost", "irs-mcr")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Pairs) != 2 {
		t.Fatalf("paired = %d, want 2 (main, xdouble)", len(cmp.Pairs))
	}
	if len(cmp.OnlyA) != 1 || len(cmp.OnlyB) != 1 {
		t.Errorf("onlyA=%d onlyB=%d", len(cmp.OnlyA), len(cmp.OnlyB))
	}
	// main: 100 -> 50.
	var mainPair *Pair
	for i := range cmp.Pairs {
		for _, r := range cmp.Pairs[i].Context {
			if r.BaseName() == "main" {
				mainPair = &cmp.Pairs[i]
			}
		}
	}
	if mainPair == nil {
		t.Fatal("main pair missing")
	}
	if mainPair.A != 100 || mainPair.B != 50 {
		t.Errorf("main pair = %+v", mainPair)
	}
	if mainPair.Speedup() != 2 || mainPair.Ratio() != 0.5 || mainPair.Difference() != -50 {
		t.Errorf("operators: speedup=%v ratio=%v diff=%v",
			mainPair.Speedup(), mainPair.Ratio(), mainPair.Difference())
	}
	if mainPair.PercentChange() != -50 {
		t.Errorf("percent change = %v", mainPair.PercentChange())
	}
}

func TestExecutionsUnknownExecution(t *testing.T) {
	s := twoPlatformStore(t)
	if _, err := Executions(s, "nope", "irs-mcr"); err == nil {
		t.Error("unknown execution accepted")
	}
	if _, err := Executions(s, "irs-frost", "nope"); err == nil {
		t.Error("unknown execution accepted")
	}
}

func TestRegressionsAndImprovements(t *testing.T) {
	s := twoPlatformStore(t)
	// Compare in the slow direction: MCR -> Frost regresses.
	cmp, err := Executions(s, "irs-mcr", "irs-frost")
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions(0.10)
	if len(regs) != 2 {
		t.Fatalf("regressions = %d", len(regs))
	}
	// Worst first: main doubled (100%).
	if regs[0].Percent < regs[1].Percent {
		t.Error("regressions not sorted worst-first")
	}
	if math.Abs(regs[0].Percent-100) > 1e-9 {
		t.Errorf("worst regression = %v%%", regs[0].Percent)
	}
	// The reverse comparison reports improvements.
	cmp2, _ := Executions(s, "irs-frost", "irs-mcr")
	imps := cmp2.Improvements(0.10)
	if len(imps) != 2 {
		t.Errorf("improvements = %d", len(imps))
	}
	if len(cmp2.Regressions(0.10)) != 0 {
		t.Error("no regressions expected in the fast direction")
	}
}

func TestSummarize(t *testing.T) {
	s := twoPlatformStore(t)
	cmp, _ := Executions(s, "irs-frost", "irs-mcr")
	sum := cmp.Summarize()
	if sum.Paired != 2 || sum.OnlyA != 1 || sum.OnlyB != 1 {
		t.Errorf("summary = %+v", sum)
	}
	// Geomean of {0.5, 0.55} is sqrt(0.275).
	want := math.Sqrt(0.5 * (22.0 / 40.0))
	if math.Abs(sum.GeoMeanRatio-want) > 1e-9 {
		t.Errorf("geomean = %v, want %v", sum.GeoMeanRatio, want)
	}
	if sum.MeanDiff >= 0 {
		t.Errorf("mean diff = %v, want negative (B faster)", sum.MeanDiff)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	c := &Comparison{}
	sum := c.Summarize()
	if sum.Paired != 0 || !math.IsNaN(sum.GeoMeanRatio) {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestFilterMetric(t *testing.T) {
	s := twoPlatformStore(t)
	cmp, _ := Executions(s, "irs-frost", "irs-mcr")
	if got := cmp.FilterMetric("wall time"); len(got.Pairs) != 2 {
		t.Errorf("wall time pairs = %d", len(got.Pairs))
	}
	if got := cmp.FilterMetric("nosuch"); len(got.Pairs) != 0 {
		t.Errorf("nosuch pairs = %d", len(got.Pairs))
	}
}

func TestDiagnoseBottlenecks(t *testing.T) {
	s := twoPlatformStore(t)
	// MCR -> Frost: everything slows down; main contributes most.
	cmp, err := Executions(s, "irs-mcr", "irs-frost")
	if err != nil {
		t.Fatal(err)
	}
	findings := cmp.DiagnoseBottlenecks("", 0)
	if len(findings) != 2 {
		t.Fatalf("findings = %d", len(findings))
	}
	// main: 50 -> 100 (delta 50); xdouble: 22 -> 40 (delta 18).
	if findings[0].Delta != 50 || findings[1].Delta != 18 {
		t.Errorf("deltas = %v, %v", findings[0].Delta, findings[1].Delta)
	}
	wantShare := 50.0 / 68.0
	if diff := findings[0].Contribution - wantShare; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("contribution = %v, want %v", findings[0].Contribution, wantShare)
	}
	// topN truncates.
	if got := cmp.DiagnoseBottlenecks("", 1); len(got) != 1 || got[0].Delta != 50 {
		t.Errorf("topN = %+v", got)
	}
	// The fast direction has no bottlenecks.
	fast, _ := Executions(s, "irs-frost", "irs-mcr")
	if got := fast.DiagnoseBottlenecks("", 0); len(got) != 0 {
		t.Errorf("fast direction findings = %d", len(got))
	}
	// Metric filter.
	if got := cmp.DiagnoseBottlenecks("nosuch", 0); len(got) != 0 {
		t.Errorf("bogus metric findings = %d", len(got))
	}
}

func TestPairEdgeCaseOperators(t *testing.T) {
	p := Pair{A: 0, B: 5}
	if !math.IsNaN(p.Ratio()) || !math.IsNaN(p.PercentChange()) {
		t.Error("zero A should yield NaN ratio and percent change")
	}
	q := Pair{A: 5, B: 0}
	if !math.IsNaN(q.Speedup()) {
		t.Error("zero B should yield NaN speedup")
	}
}

func TestDuplicateKeyValuesAveraged(t *testing.T) {
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	s.AddResource("/app", "application", "")
	s.AddExecution("a", "app")
	s.AddExecution("b", "app")
	for _, v := range []float64{10, 20} {
		if _, err := s.AddPerfResult(&core.PerformanceResult{
			Execution: "a", Metric: "m", Value: v,
			Contexts: []core.Context{core.NewContext("/app")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "b", Metric: "m", Value: 30,
		Contexts: []core.Context{core.NewContext("/app")},
	}); err != nil {
		t.Fatal(err)
	}
	cmp, err := Executions(s, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Pairs) != 1 || cmp.Pairs[0].A != 15 || cmp.Pairs[0].B != 30 {
		t.Errorf("pairs = %+v", cmp.Pairs)
	}
}
