package compare

// Table-driven coverage of the §6 pair operators on degenerate values:
// zero baselines, NaN measurements (Paradyn imports carry them), and
// infinities. The contract the wire layer depends on: operators never
// panic, and an undefined quantity is NaN — never Inf smuggled out of a
// finite-looking division.

import (
	"math"
	"testing"
)

func TestPairOperatorsTable(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	for _, tt := range []struct {
		name                         string
		a, b                         float64
		diff, ratio, speedup, pctChg float64
	}{
		{"plain", 100, 150, 50, 1.5, 100.0 / 150, 50},
		{"equal", 7, 7, 0, 1, 1, 0},
		{"zero A", 0, 5, 5, nan, 0, nan},
		{"zero B", 5, 0, -5, 0, nan, -100},
		{"both zero", 0, 0, 0, nan, nan, nan},
		{"NaN A", nan, 5, nan, nan, nan, nan},
		{"NaN B", 5, nan, nan, nan, nan, nan},
		{"Inf A", inf, 5, -inf, 0, inf, nan},
		{"Inf B", 5, inf, inf, inf, 0, inf},
		{"-Inf B", 5, -inf, -inf, -inf, -0.0, -inf},
		{"Inf both", inf, inf, nan, nan, nan, nan},
		{"negative A", -4, 2, 6, -0.5, -2, -150},
	} {
		t.Run(tt.name, func(t *testing.T) {
			p := Pair{A: tt.a, B: tt.b}
			check := func(op string, got, want float64) {
				t.Helper()
				if math.IsNaN(want) {
					if !math.IsNaN(got) {
						t.Errorf("%s(%v, %v) = %v, want NaN", op, tt.a, tt.b, got)
					}
					return
				}
				if got != want {
					t.Errorf("%s(%v, %v) = %v, want %v", op, tt.a, tt.b, got, want)
				}
			}
			check("Difference", p.Difference(), tt.diff)
			check("Ratio", p.Ratio(), tt.ratio)
			check("Speedup", p.Speedup(), tt.speedup)
			check("PercentChange", p.PercentChange(), tt.pctChg)
		})
	}
}
