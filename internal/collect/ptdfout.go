package collect

import (
	"fmt"
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// ToPTdf converts captured build information into PTdf records: a build
// resource carrying environment attributes, compiler resources (with the
// wrapped compiler for MPI wrapper scripts), an operatingSystem resource,
// and environment-hierarchy resources for linked libraries. Compilers are
// attached to the build as resource-valued attributes, following §2.1's
// "a compiler may be an attribute of a particular build".
func (b *BuildInfo) ToPTdf() []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs, ptdf.ApplicationRec{Name: b.Application})

	buildRes := core.ResourceName("/" + b.Name)
	recs = append(recs, ptdf.ResourceRec{Name: buildRes, Type: "build"})
	attr := func(res core.ResourceName, name, value string) {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: res, Attr: name, Value: value, AttrType: "string",
		})
	}
	attr(buildRes, "application", b.Application)
	attr(buildRes, "build machine", b.Machine)

	osRes := core.ResourceName("/" + b.OS)
	recs = append(recs, ptdf.ResourceRec{Name: osRes, Type: "operatingSystem"})
	attr(osRes, "version", b.OSVersion)
	recs = append(recs, ptdf.ResourceConstraintRec{R1: buildRes, R2: osRes})

	// Environment settings of the build user's shell.
	for _, k := range sortedKeys(b.Env) {
		attr(buildRes, "env "+k, b.Env[k])
	}

	// Compilers, flags, and wrapped compilers.
	seenComp := make(map[string]bool)
	for i, inv := range b.Invocations {
		compRes := core.ResourceName("/" + inv.Compiler)
		if !seenComp[inv.Compiler] {
			seenComp[inv.Compiler] = true
			recs = append(recs, ptdf.ResourceRec{Name: compRes, Type: "compiler"})
			if inv.Version != "" {
				attr(compRes, "version", inv.Version)
			}
			if inv.IsMPIWrapper {
				attr(compRes, "MPI wrapper", "true")
				attr(compRes, "wrapped compiler", inv.WrappedCompiler)
			}
			recs = append(recs, ptdf.ResourceConstraintRec{R1: buildRes, R2: compRes})
		}
		attr(buildRes, fmt.Sprintf("compile[%d] command", i), inv.Compiler)
		attr(buildRes, fmt.Sprintf("compile[%d] flags", i), joinSpace(inv.Flags))
		if len(inv.Sources) > 0 {
			attr(buildRes, fmt.Sprintf("compile[%d] sources", i), joinSpace(inv.Sources))
		}
	}

	// Static libraries linked into the build.
	for _, lib := range b.Libraries {
		libRes := core.ResourceName("/" + b.Name + "-libs/" + lib.Name)
		recs = append(recs, ptdf.ResourceRec{Name: libRes, Type: "build/module"})
		attr(libRes, "type", lib.Kind)
		if lib.Version != "" {
			attr(libRes, "version", lib.Version)
		}
	}
	return recs
}

// ToPTdf converts captured run information into PTdf records: the
// execution, an execution-hierarchy resource per process, a submission
// resource carrying run attributes, and environment-hierarchy resources
// for runtime libraries.
func (r *RunInfo) ToPTdf() ([]ptdf.Record, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	var recs []ptdf.Record
	recs = append(recs,
		ptdf.ApplicationRec{Name: r.Application},
		ptdf.ExecutionRec{Name: r.Execution, App: r.Application},
	)
	execRes := core.ResourceName("/" + r.Execution)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: r.Execution})
	attr := func(res core.ResourceName, name, value string) {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: res, Attr: name, Value: value, AttrType: "string",
		})
	}
	attr(execRes, "number of processes", fmt.Sprintf("%d", r.NProcs))
	attr(execRes, "number of threads", fmt.Sprintf("%d", r.NThreads))
	attr(execRes, "concurrency model", r.Concurrency)
	if r.BuildName != "" {
		attr(execRes, "build", r.BuildName)
	}
	if r.Machine != "" {
		attr(execRes, "machine", r.Machine)
	}
	if r.InputDeck != "" {
		deckRes := core.ResourceName("/" + r.InputDeck)
		recs = append(recs, ptdf.ResourceRec{Name: deckRes, Type: "inputDeck"})
		if r.InputTime != "" {
			attr(deckRes, "timestamp", r.InputTime)
		}
		recs = append(recs, ptdf.ResourceConstraintRec{R1: execRes, R2: deckRes})
	}
	for _, k := range sortedKeys(r.Env) {
		attr(execRes, "env "+k, r.Env[k])
	}
	// Per-process resources, with threads when the run is threaded.
	for p := 0; p < r.NProcs; p++ {
		procRes := execRes.Child(fmt.Sprintf("p%d", p))
		recs = append(recs, ptdf.ResourceRec{Name: procRes, Type: "execution/process", Exec: r.Execution})
		for th := 0; r.NThreads > 1 && th < r.NThreads; th++ {
			recs = append(recs, ptdf.ResourceRec{
				Name: procRes.Child(fmt.Sprintf("t%d", th)),
				Type: "execution/process/thread",
				Exec: r.Execution,
			})
		}
	}
	// Runtime (dynamic) libraries live in the environment hierarchy.
	for _, lib := range r.Libraries {
		libRes := core.ResourceName("/" + r.Execution + "-env/" + lib.Name)
		recs = append(recs, ptdf.ResourceRec{Name: libRes, Type: "environment/module"})
		attr(libRes, "type", lib.Kind)
		if lib.Version != "" {
			attr(libRes, "version", lib.Version)
		}
		if lib.Size > 0 {
			attr(libRes, "size", fmt.Sprintf("%d", lib.Size))
		}
		if lib.Timestamp != "" {
			attr(libRes, "timestamp", lib.Timestamp)
		}
	}
	return recs, nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
