package collect

import (
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

const makeLog = `make -C src all
gcc -c -O2 -DNDEBUG irs.c -o irs.o
gcc -c -O2 -DNDEBUG rad.c -o rad.o
mpicc -cc=icc -O2 -c comm.c -o comm.o
mpicc -o irs irs.o rad.o comm.o -lm -lmpi -lpthread
echo done
`

func TestParseMakeLog(t *testing.T) {
	invs, err := ParseMakeLog(strings.NewReader(makeLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 4 {
		t.Fatalf("invocations = %d: %+v", len(invs), invs)
	}
	c0 := invs[0]
	if c0.Compiler != "gcc" || c0.IsLink || len(c0.Sources) != 1 || c0.Sources[0] != "irs.c" {
		t.Errorf("inv 0 = %+v", c0)
	}
	if !contains(c0.Flags, "-O2") || !contains(c0.Flags, "-DNDEBUG") {
		t.Errorf("flags = %v", c0.Flags)
	}
	mpi := invs[2]
	if !mpi.IsMPIWrapper || mpi.WrappedCompiler != "icc" {
		t.Errorf("wrapper = %+v", mpi)
	}
	link := invs[3]
	if !link.IsLink || len(link.Libraries) != 3 || link.Outputs[0] != "irs" {
		t.Errorf("link = %+v", link)
	}
}

func TestParseMakeLogDefaultWrappedCompiler(t *testing.T) {
	invs, err := ParseMakeLog(strings.NewReader("mpif90 -c solve.f90 -o solve.o\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0].WrappedCompiler != "f90" {
		t.Errorf("invs = %+v", invs)
	}
}

func TestParseMakeLogIgnoresNoise(t *testing.T) {
	log := "rm -f *.o\nar rcs libx.a x.o\ngcc --version\ninstall -m 755 irs /usr/bin\n"
	invs, err := ParseMakeLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 0 {
		t.Errorf("noise produced invocations: %+v", invs)
	}
}

func TestCaptureBuildDerivesLibraries(t *testing.T) {
	b, err := CaptureBuild("irs-build-1", "irs", strings.NewReader(makeLog))
	if err != nil {
		t.Fatal(err)
	}
	if b.Machine == "" || b.OS == "" {
		t.Errorf("host info missing: %+v", b)
	}
	if len(b.Libraries) != 3 {
		t.Fatalf("libraries = %+v", b.Libraries)
	}
	kinds := map[string]string{}
	for _, l := range b.Libraries {
		kinds[l.Name] = l.Kind
	}
	if kinds["mpi"] != "MPI" || kinds["pthread"] != "thread" || kinds["m"] != "static" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCaptureRunConcurrencyModel(t *testing.T) {
	cases := []struct {
		np, nt int
		want   string
	}{
		{1, 1, "sequential"},
		{8, 1, "MPI"},
		{1, 4, "OpenMP"},
		{8, 4, "MPI+OpenMP"},
	}
	for _, c := range cases {
		r := CaptureRun("e", "app", c.np, c.nt, "")
		if r.Concurrency != c.want {
			t.Errorf("np=%d nt=%d: %q, want %q", c.np, c.nt, r.Concurrency, c.want)
		}
	}
}

func TestRunInfoValidate(t *testing.T) {
	bad := []*RunInfo{
		{Application: "a", NProcs: 1},
		{Execution: "e", NProcs: 1},
		{Execution: "e", Application: "a", NProcs: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad run info %d accepted", i)
		}
	}
}

// loadRecords pushes PTdf records into a fresh store, failing the test on
// any error — verifying that capture output is always loadable.
func loadRecords(t *testing.T, recs []ptdf.Record) *datastore.Store {
	t.Helper()
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d (%s): %v", i, ptdf.FormatRecord(rec), err)
		}
	}
	return s
}

func TestBuildInfoToPTdfLoads(t *testing.T) {
	b, err := CaptureBuild("irs-build-1", "irs", strings.NewReader(makeLog))
	if err != nil {
		t.Fatal(err)
	}
	s := loadRecords(t, b.ToPTdf())
	res, err := s.ResourceByName("/irs-build-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attributes["build machine"] == "" {
		t.Error("build machine attribute missing")
	}
	// MPI wrapper attributes present on the compiler resource.
	comp, err := s.ResourceByName("/mpicc")
	if err != nil {
		t.Fatal(err)
	}
	if comp.Attributes["wrapped compiler"] != "icc" {
		t.Errorf("compiler attrs = %v", comp.Attributes)
	}
	// Compiler is a resource-valued attribute of the build.
	if len(res.Constraints) < 2 { // OS + at least one compiler
		t.Errorf("build constraints = %v", res.Constraints)
	}
}

func TestRunInfoToPTdfLoads(t *testing.T) {
	r := CaptureRun("irs-001", "irs", 4, 2, "")
	r.BuildName = "irs-build-1"
	r.Libraries = []Library{{Name: "libmpi.so", Kind: "MPI", Version: "1.2", Size: 123456, Timestamp: "2005-04-01T00:00:00Z"}}
	recs, err := r.ToPTdf()
	if err != nil {
		t.Fatal(err)
	}
	s := loadRecords(t, recs)
	exec, err := s.ResourceByName("/irs-001")
	if err != nil {
		t.Fatal(err)
	}
	if exec.Attributes["number of processes"] != "4" ||
		exec.Attributes["concurrency model"] != "MPI+OpenMP" {
		t.Errorf("exec attrs = %v", exec.Attributes)
	}
	// 4 processes x 2 threads under the execution resource.
	desc, err := s.Descendants("/irs-001")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 12 { // 4 procs + 8 threads
		t.Errorf("descendants = %d: %v", len(desc), desc)
	}
	lib, err := s.ResourceByName("/irs-001-env/libmpi.so")
	if err != nil {
		t.Fatal(err)
	}
	if lib.Attributes["type"] != "MPI" || lib.Attributes["size"] != "123456" {
		t.Errorf("lib attrs = %v", lib.Attributes)
	}
}

func TestRunInfoToPTdfRejectsInvalid(t *testing.T) {
	r := &RunInfo{}
	if _, err := r.ToPTdf(); err == nil {
		t.Error("invalid run info accepted")
	}
}

func TestCaptureEnvAllowlistOnly(t *testing.T) {
	t.Setenv("PATH", "/usr/bin")
	t.Setenv("SECRET_TOKEN", "do-not-record")
	env := CaptureEnv()
	if _, ok := env["SECRET_TOKEN"]; ok {
		t.Error("non-allowlisted variable captured")
	}
	if env["PATH"] != "/usr/bin" {
		t.Errorf("PATH = %q", env["PATH"])
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
