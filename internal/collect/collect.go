// Package collect implements PerfTrack's automatic capture of build- and
// runtime-related information (§3.3): the build environment (operating
// system, machine, user environment), compilation details parsed from a
// make log (compilers, MPI wrapper scripts, flags, linked libraries), and
// the runtime environment (environment variables, process counts, runtime
// libraries, input deck). Captured data converts to PTdf records through
// the same resource/attribute model the paper describes.
package collect

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Library describes one static or dynamic library seen during a build or
// run. Example attributes from the paper: version, size, type (MPI or
// thread library), timestamp.
type Library struct {
	Name      string
	Path      string
	Version   string
	Kind      string // "static", "dynamic", "MPI", "thread"
	Size      int64
	Timestamp string
}

// CompilerInvocation is one compiler command parsed from a make log.
type CompilerInvocation struct {
	Compiler        string   // command name, e.g. "gcc" or "mpicc"
	Version         string   // when known
	Flags           []string // -O2, -DNDEBUG, ...
	Sources         []string // .c/.cc/.f files
	Outputs         []string // -o targets
	Libraries       []string // -lfoo names
	IsMPIWrapper    bool
	WrappedCompiler string // underlying compiler for MPI wrapper scripts
	IsLink          bool   // produced an executable (no -c)
}

// mpiWrappers maps wrapper script names to their typical underlying
// compilers; §3.3: "In the case that the compiler is an MPI wrapper
// script, we attempt to gather the compiler used by the wrapper script."
var mpiWrappers = map[string]string{
	"mpicc":    "cc",
	"mpicxx":   "c++",
	"mpiCC":    "c++",
	"mpic++":   "c++",
	"mpif77":   "f77",
	"mpif90":   "f90",
	"mpxlc":    "xlc",
	"mpxlf":    "xlf",
	"mpiicc":   "icc",
	"mpiifort": "ifort",
}

// knownCompilers are plain compiler command names recognized in make logs.
var knownCompilers = map[string]bool{
	"cc": true, "gcc": true, "g++": true, "c++": true, "clang": true,
	"icc": true, "icpc": true, "ifort": true, "xlc": true, "xlC": true,
	"xlf": true, "xlf90": true, "f77": true, "f90": true, "gfortran": true,
	"pgcc": true, "pgf90": true,
}

func isSourceFile(tok string) bool {
	switch strings.ToLower(filepath.Ext(tok)) {
	case ".c", ".cc", ".cpp", ".cxx", ".f", ".f77", ".f90", ".f95":
		return true
	}
	return false
}

// ParseMakeLog scans captured `make` output for compiler invocations. It
// recognizes both direct compiler commands and MPI wrapper scripts, and
// extracts flags, source files, outputs, and -l libraries.
func ParseMakeLog(r io.Reader) ([]CompilerInvocation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []CompilerInvocation
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "make") {
			continue
		}
		toks := strings.Fields(line)
		if len(toks) == 0 {
			continue
		}
		cmd := filepath.Base(toks[0])
		wrapped, isWrapper := mpiWrappers[cmd]
		if !isWrapper && !knownCompilers[cmd] {
			continue
		}
		inv := CompilerInvocation{
			Compiler:        cmd,
			IsMPIWrapper:    isWrapper,
			WrappedCompiler: wrapped,
			IsLink:          true,
		}
		for i := 1; i < len(toks); i++ {
			tok := toks[i]
			switch {
			case tok == "-c":
				inv.IsLink = false
				inv.Flags = append(inv.Flags, tok)
			case tok == "-o" && i+1 < len(toks):
				inv.Outputs = append(inv.Outputs, toks[i+1])
				i++
			case strings.HasPrefix(tok, "-l") && len(tok) > 2:
				inv.Libraries = append(inv.Libraries, tok[2:])
			case strings.HasPrefix(tok, "-cc=") && isWrapper:
				inv.WrappedCompiler = tok[len("-cc="):]
			case strings.HasPrefix(tok, "-"):
				inv.Flags = append(inv.Flags, tok)
			case isSourceFile(tok):
				inv.Sources = append(inv.Sources, tok)
			}
		}
		if len(inv.Sources) == 0 && len(inv.Outputs) == 0 && len(inv.Libraries) == 0 {
			continue // not a compile or link line after all
		}
		out = append(out, inv)
	}
	return out, sc.Err()
}

// BuildInfo is everything the build-capture wrapper records.
type BuildInfo struct {
	Name        string // unique build name, e.g. "irs-build-20050401"
	Application string
	Machine     string
	OS          string
	OSVersion   string
	Env         map[string]string
	Invocations []CompilerInvocation
	Libraries   []Library
}

// envAllowlist selects environment variables worth recording; recording
// everything would leak secrets and bloat the store.
var envAllowlist = []string{
	"PATH", "LD_LIBRARY_PATH", "CC", "CXX", "FC", "CFLAGS", "CXXFLAGS",
	"FFLAGS", "LDFLAGS", "MPI_ROOT", "OMP_NUM_THREADS", "HOME", "USER",
	"SHELL", "HOSTNAME", "LANG",
}

// CaptureEnv snapshots the allow-listed environment variables.
func CaptureEnv() map[string]string {
	out := make(map[string]string)
	for _, k := range envAllowlist {
		if v, ok := os.LookupEnv(k); ok {
			out[k] = v
		}
	}
	return out
}

// CaptureHost records the current machine and operating system, standing
// in for the paper's uname-based capture scripts.
func CaptureHost() (machine, osName, osVersion string) {
	machine, err := os.Hostname()
	if err != nil || machine == "" {
		machine = "unknown-host"
	}
	osName = runtime.GOOS
	osVersion = runtime.GOARCH // stdlib-only proxy for a kernel version
	if data, err := os.ReadFile("/proc/sys/kernel/osrelease"); err == nil {
		osVersion = strings.TrimSpace(string(data))
	}
	return machine, osName, osVersion
}

// CaptureBuild assembles a BuildInfo from the live host plus a make log.
func CaptureBuild(name, application string, makeLog io.Reader) (*BuildInfo, error) {
	invs, err := ParseMakeLog(makeLog)
	if err != nil {
		return nil, err
	}
	machine, osName, osVersion := CaptureHost()
	b := &BuildInfo{
		Name:        name,
		Application: application,
		Machine:     machine,
		OS:          osName,
		OSVersion:   osVersion,
		Env:         CaptureEnv(),
		Invocations: invs,
	}
	// Derive linked-library records from -l flags on link lines.
	seen := make(map[string]bool)
	for _, inv := range invs {
		if !inv.IsLink {
			continue
		}
		for _, lib := range inv.Libraries {
			if seen[lib] {
				continue
			}
			seen[lib] = true
			kind := "static"
			if lib == "mpi" || strings.HasPrefix(lib, "mpi") {
				kind = "MPI"
			} else if lib == "pthread" {
				kind = "thread"
			}
			b.Libraries = append(b.Libraries, Library{Name: lib, Kind: kind})
		}
	}
	sort.Slice(b.Libraries, func(i, j int) bool { return b.Libraries[i].Name < b.Libraries[j].Name })
	return b, nil
}

// RunInfo is everything the run-capture wrapper records about one
// execution and its environment.
type RunInfo struct {
	Execution   string
	Application string
	BuildName   string // the build this run used, when known
	Machine     string
	NProcs      int
	NThreads    int
	Concurrency string // "MPI", "OpenMP", "MPI+OpenMP", "sequential"
	InputDeck   string
	InputTime   string
	Env         map[string]string
	Libraries   []Library
}

// CaptureRun assembles a RunInfo from the live host and the given
// execution parameters.
func CaptureRun(execName, application string, nprocs, nthreads int, inputDeck string) *RunInfo {
	machine, _, _ := CaptureHost()
	conc := "sequential"
	switch {
	case nprocs > 1 && nthreads > 1:
		conc = "MPI+OpenMP"
	case nprocs > 1:
		conc = "MPI"
	case nthreads > 1:
		conc = "OpenMP"
	}
	info := &RunInfo{
		Execution:   execName,
		Application: application,
		Machine:     machine,
		NProcs:      nprocs,
		NThreads:    nthreads,
		Concurrency: conc,
		InputDeck:   inputDeck,
		Env:         CaptureEnv(),
	}
	if inputDeck != "" {
		if st, err := os.Stat(inputDeck); err == nil {
			info.InputTime = st.ModTime().UTC().Format("2006-01-02T15:04:05Z")
		}
	}
	return info
}

// Validate checks a RunInfo before conversion.
func (r *RunInfo) Validate() error {
	if r.Execution == "" {
		return fmt.Errorf("collect: run info has no execution name")
	}
	if r.Application == "" {
		return fmt.Errorf("collect: run info has no application")
	}
	if r.NProcs < 1 {
		return fmt.Errorf("collect: run info has %d processes", r.NProcs)
	}
	return nil
}
