package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// seedTwoExecServer loads two small PTdf documents (tags a and b), so
// the store holds two applications, two executions with attributes, and
// five results each.
func seedTwoExecServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("a", 5))
	loadDoc(t, ts.URL, ptdfDoc("b", 5))
	return ts
}

func TestSQLEndpoint(t *testing.T) {
	ts := seedTwoExecServer(t)

	var resp SQLResponse
	code, raw := postJSON(t, ts.URL+"/v1/sql", SQLRequest{
		SQL:     "SELECT execution, count(*), avg(value) FROM performance_result GROUP BY execution ORDER BY execution",
		Explain: true,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.APIVersion != APIVersion {
		t.Errorf("api_version = %q", resp.APIVersion)
	}
	if len(resp.Rows) != 2 || resp.RowCount != 2 {
		t.Fatalf("rows = %d (count %d), want 2:\n%s", len(resp.Rows), resp.RowCount, raw)
	}
	if got := resp.Rows[0][0]; got != "exec-a" {
		t.Errorf("first group = %v, want exec-a", got)
	}
	if got := resp.Rows[0][1]; got != float64(5) {
		t.Errorf("count(*) = %v (%T), want 5", got, got)
	}
	if resp.Plan == nil || resp.Plan.Strategy == "" {
		t.Fatalf("explain did not attach a plan:\n%s", raw)
	}
	if resp.Plan.ActualRows != 10 {
		t.Errorf("plan actual_rows = %d, want 10", resp.Plan.ActualRows)
	}

	// Without explain the plan stays off the wire.
	code, raw = postJSON(t, ts.URL+"/v1/sql", SQLRequest{SQL: "SELECT count(*) FROM performance_result"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if strings.Contains(raw, `"plan"`) {
		t.Errorf("plan leaked without explain:\n%s", raw)
	}

	// Limit truncates and says so.
	code, _ = postJSON(t, ts.URL+"/v1/sql", SQLRequest{
		SQL: "SELECT id FROM performance_result ORDER BY id", Limit: 3,
	}, &resp)
	if code != http.StatusOK || len(resp.Rows) != 3 || !resp.Truncated || resp.RowCount != 10 {
		t.Fatalf("limit: status %d rows %d truncated %v count %d, want 200/3/true/10",
			code, len(resp.Rows), resp.Truncated, resp.RowCount)
	}
}

func TestSQLEndpointErrors(t *testing.T) {
	ts := seedTwoExecServer(t)
	for name, body := range map[string]string{
		"empty sql":      `{"sql": ""}`,
		"parse error":    `{"sql": "SELEC nope"}`,
		"non-select":     `{"sql": "CREATE TABLE x (id INTEGER PRIMARY KEY)"}`,
		"bad pseudo":     `{"sql": "SELECT family FROM performance_result"}`,
		"unknown field":  `{"sql": "SELECT 1", "nope": true}`,
		"negative limit": `{"sql": "SELECT 1", "limit": -1}`,
	} {
		r, err := http.Post(ts.URL+"/v1/sql", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, r.StatusCode, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.APIVersion != APIVersion || er.Error == "" {
			t.Errorf("%s: malformed error envelope: %s", name, raw)
		}
	}
}

func TestSQLStream(t *testing.T) {
	ts := seedTwoExecServer(t)
	body, _ := json.Marshal(SQLRequest{
		SQL: "SELECT id, metric, value FROM performance_result ORDER BY id", Explain: true,
	})
	r, err := http.Post(ts.URL+"/v1/sql?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var (
		rows    int
		sawCols bool
		summary *SQLStreamLine
	)
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		var line SQLStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decode line %q: %v", sc.Text(), err)
		}
		if line.APIVersion != APIVersion {
			t.Fatalf("line without api_version: %s", sc.Text())
		}
		switch {
		case line.Error != "":
			t.Fatalf("mid-stream error: %s", line.Error)
		case line.Done:
			l := line
			summary = &l
		case line.Columns != nil:
			sawCols = true
			if want := []string{"id", "metric", "value"}; fmt.Sprint(line.Columns) != fmt.Sprint(want) {
				t.Fatalf("columns = %v, want %v", line.Columns, want)
			}
		case line.Row != nil:
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawCols || rows != 10 || summary == nil || summary.Rows != 10 {
		t.Fatalf("stream: cols %v rows %d summary %+v", sawCols, rows, summary)
	}
	if summary.Plan == nil || summary.Plan.Strategy == "" {
		t.Fatalf("summary line missing plan: %+v", summary)
	}
}

// TestSQLDifferentialWithPRFilter runs the same selections through
// /v1/sql and the pr-filter endpoints and asserts identical answers —
// the server-level counterpart of the planner's fuzz oracle.
func TestSQLDifferentialWithPRFilter(t *testing.T) {
	ts := seedTwoExecServer(t)
	sqlCount := func(q string) int {
		var resp SQLResponse
		code, raw := postJSON(t, ts.URL+"/v1/sql", SQLRequest{SQL: q}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, code, raw)
		}
		return int(resp.Rows[0][0].(float64))
	}

	cases := []struct {
		sql string
		req QueryRequest
	}{
		{
			sql: "SELECT count(*) FROM performance_result WHERE family = 'type=application'",
			req: QueryRequest{Families: []string{"type=application"}},
		},
		{
			sql: "SELECT count(*) FROM performance_result WHERE execution = 'exec-a'",
			req: QueryRequest{Select: &Selection{Execution: "exec-a"}},
		},
		{
			sql: "SELECT count(*) FROM performance_result WHERE family = 'name=/app-b' AND execution = 'exec-b'",
			req: QueryRequest{Select: &Selection{Execution: "exec-b", Families: []string{"name=/app-b"}}},
		},
	}
	for _, tc := range cases {
		var qr QueryResponse
		code, raw := postJSON(t, ts.URL+"/v1/query", tc.req, &qr)
		if code != http.StatusOK {
			t.Fatalf("query: status %d: %s", code, raw)
		}
		if got := sqlCount(tc.sql); got != qr.Matches {
			t.Errorf("%s: sql says %d, /v1/query says %d", tc.sql, got, qr.Matches)
		}
	}

	// Row-level: the same family through /v1/results and through SQL must
	// yield the same (execution, metric, value) rows.
	var rr ResultsResponse
	code, raw := postJSON(t, ts.URL+"/v1/results", ResultsRequest{
		Select: &Selection{Families: []string{"name=/app-a"}},
	}, &rr)
	if code != http.StatusOK {
		t.Fatalf("results: status %d: %s", code, raw)
	}
	var sr SQLResponse
	code, raw = postJSON(t, ts.URL+"/v1/sql", SQLRequest{
		SQL: "SELECT execution, metric, value FROM performance_result WHERE family = 'name=/app-a' ORDER BY id",
	}, &sr)
	if code != http.StatusOK {
		t.Fatalf("sql: status %d: %s", code, raw)
	}
	if len(sr.Rows) != len(rr.Rows) {
		t.Fatalf("sql %d rows, results %d rows", len(sr.Rows), len(rr.Rows))
	}
	for i := range sr.Rows {
		sqlRow := fmt.Sprintf("%v|%v|%g", sr.Rows[i][0], sr.Rows[i][1], sr.Rows[i][2].(float64))
		resRow := fmt.Sprintf("%s|%s|%s", rr.Rows[i][0], rr.Rows[i][1], rr.Rows[i][2])
		if sqlRow != resRow {
			t.Errorf("row %d: sql %q vs results %q", i, sqlRow, resRow)
		}
	}
}

// TestUnifiedSelectionWireCompat proves the old field spellings and the
// unified select spec decode to the same evaluation, byte for byte where
// the responses are deterministic.
func TestUnifiedSelectionWireCompat(t *testing.T) {
	ts := seedTwoExecServer(t)

	// /v1/query: top-level families vs select.families.
	var legacy, unified QueryResponse
	if code, raw := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Families: []string{"type=application"}}, &legacy); code != 200 {
		t.Fatalf("legacy query: %d %s", code, raw)
	}
	if code, raw := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Select: &Selection{Families: []string{"type=application"}}}, &unified); code != 200 {
		t.Fatalf("unified query: %d %s", code, raw)
	}
	if legacy.Matches != unified.Matches || len(legacy.Families) != len(unified.Families) {
		t.Errorf("legacy matches %d families %d, unified matches %d families %d",
			legacy.Matches, len(legacy.Families), unified.Matches, len(unified.Families))
	}
	if legacy.Matches != 10 {
		t.Errorf("matches = %d, want 10", legacy.Matches)
	}

	// Execution restriction narrows the count.
	var restricted QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Families: []string{"type=application"},
		Select:   &Selection{Execution: "exec-a"},
	}, &restricted)
	if restricted.Matches != 5 {
		t.Errorf("restricted matches = %d, want 5", restricted.Matches)
	}
	// An unknown execution is a 404, like everywhere else on the surface.
	if code, _ := postJSON(t, ts.URL+"/v1/query",
		QueryRequest{Select: &Selection{Execution: "nope"}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown execution: status %d, want 404", code)
	}

	// /v1/results: same rows through both spellings.
	var lr, ur ResultsResponse
	postJSON(t, ts.URL+"/v1/results", ResultsRequest{Families: []string{"name=/app-a"}}, &lr)
	postJSON(t, ts.URL+"/v1/results", ResultsRequest{Select: &Selection{Families: []string{"name=/app-a"}}}, &ur)
	if fmt.Sprint(lr.Rows) != fmt.Sprint(ur.Rows) || lr.Total != ur.Total {
		t.Errorf("results diverge between spellings: legacy %d rows, unified %d rows", len(lr.Rows), len(ur.Rows))
	}

	// /v1/diagnose: a/b selections vs the flat exec lists.
	flat := map[string]any{"exec_a": "exec-a", "exec_b": "exec-b", "top": 3}
	sel := map[string]any{"a": map[string]any{"execution": "exec-a"}, "b": map[string]any{"execution": "exec-b"}, "top": 3}
	var fd, sd DiagnoseResponse
	if code, raw := postJSON(t, ts.URL+"/v1/diagnose", flat, &fd); code != 200 {
		t.Fatalf("flat diagnose: %d %s", code, raw)
	}
	if code, raw := postJSON(t, ts.URL+"/v1/diagnose", sel, &sd); code != 200 {
		t.Fatalf("selection diagnose: %d %s", code, raw)
	}
	if fmt.Sprint(fd.SideA) != fmt.Sprint(sd.SideA) || fmt.Sprint(fd.SideB) != fmt.Sprint(sd.SideB) {
		t.Errorf("diagnose sides diverge: flat %v/%v, selection %v/%v", fd.SideA, fd.SideB, sd.SideA, sd.SideB)
	}
}

func TestResultsPagination(t *testing.T) {
	ts := seedTwoExecServer(t)
	full := ResultsRequest{Families: []string{"type=application"}, SortBy: "value", Descending: true}
	var all ResultsResponse
	if code, raw := postJSON(t, ts.URL+"/v1/results", full, &all); code != 200 {
		t.Fatalf("full: %d %s", code, raw)
	}
	if len(all.Rows) != 10 || all.NextCursor != "" {
		t.Fatalf("full: %d rows, cursor %q", len(all.Rows), all.NextCursor)
	}

	// Walk in pages of 3 and reassemble.
	var paged [][]string
	req := full
	req.Limit = 3
	pages := 0
	for {
		var page ResultsResponse
		if code, raw := postJSON(t, ts.URL+"/v1/results", req, &page); code != 200 {
			t.Fatalf("page %d: %d %s", pages, code, raw)
		}
		if page.Total != 10 {
			t.Fatalf("page total = %d, want 10", page.Total)
		}
		paged = append(paged, page.Rows...)
		pages++
		if page.NextCursor == "" {
			break
		}
		if pages > 10 {
			t.Fatal("cursor walk did not terminate")
		}
		req.Cursor = page.NextCursor
	}
	if pages != 4 {
		t.Errorf("pages = %d, want 4", pages)
	}
	if fmt.Sprint(paged) != fmt.Sprint(all.Rows) {
		t.Errorf("paged walk diverges from the full retrieval:\n%v\nvs\n%v", paged, all.Rows)
	}

	// Bad cursors are 400s, not wrong pages.
	for name, bad := range map[string]ResultsRequest{
		"garbage":       {Families: full.Families, Limit: 3, Cursor: "not-base64!"},
		"without limit": {Families: full.Families, Cursor: all.NextCursor + "x"},
		"wrong request": {Families: full.Families, Metric: "other", Limit: 3, Cursor: mintResultsCursor(t, ts.URL, full)},
	} {
		if code, raw := postJSON(t, ts.URL+"/v1/results", bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, code, raw)
		}
	}
}

// mintResultsCursor gets a real NextCursor for the given request shape.
func mintResultsCursor(t *testing.T, baseURL string, req ResultsRequest) string {
	t.Helper()
	req.Limit = 1
	var page ResultsResponse
	if code, raw := postJSON(t, baseURL+"/v1/results", req, &page); code != 200 {
		t.Fatalf("mint cursor: %d %s", code, raw)
	}
	if page.NextCursor == "" {
		t.Fatal("mint cursor: no next_cursor")
	}
	return page.NextCursor
}

func TestAttributesPagination(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var doc strings.Builder
	doc.WriteString("Application app\nExecution exec app\nResource /app application\nResource /exec execution exec\n")
	for _, attr := range []string{"alpha", "beta", "gamma", "delta", "epsilon"} {
		fmt.Fprintf(&doc, "ResourceAttribute /exec %s 1 string\n", attr)
	}
	doc.WriteString("PerfResult exec /app,/exec(primary) tool \"wall time\" 1.0 seconds\n")
	loadDoc(t, ts.URL, doc.String())

	get := func(params url.Values) (int, AttributesResponse, string) {
		r, err := http.Get(ts.URL + "/v1/attributes?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		raw, _ := io.ReadAll(r.Body)
		var out AttributesResponse
		if r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("decode: %v\n%s", err, raw)
			}
		}
		return r.StatusCode, out, string(raw)
	}

	code, all, raw := get(url.Values{})
	if code != 200 || len(all.Keys) != 5 || all.NextCursor != "" {
		t.Fatalf("unpaginated: %d, %d keys, cursor %q: %s", code, len(all.Keys), all.NextCursor, raw)
	}

	var walked []string
	params := url.Values{"limit": {"2"}}
	pages := 0
	for {
		code, page, raw := get(params)
		if code != 200 {
			t.Fatalf("page %d: %d %s", pages, code, raw)
		}
		for _, k := range page.Keys {
			walked = append(walked, k.Name)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		if pages > 10 {
			t.Fatal("cursor walk did not terminate")
		}
		params.Set("cursor", page.NextCursor)
	}
	if pages != 3 {
		t.Errorf("pages = %d, want 3", pages)
	}
	var want []string
	for _, k := range all.Keys {
		want = append(want, k.Name)
	}
	if fmt.Sprint(walked) != fmt.Sprint(want) {
		t.Errorf("walk = %v, want %v", walked, want)
	}

	// Bad limit, bad cursor, and a cursor minted for another prefix.
	if code, _, _ := get(url.Values{"limit": {"0"}}); code != http.StatusBadRequest {
		t.Errorf("limit=0: status %d, want 400", code)
	}
	if code, _, _ := get(url.Values{"cursor": {"@@@"}}); code != http.StatusBadRequest {
		t.Errorf("bad cursor: status %d, want 400", code)
	}
	_, first, _ := get(url.Values{"limit": {"2"}})
	if first.NextCursor == "" {
		t.Fatal("no cursor to misuse")
	}
	if code, _, _ := get(url.Values{"prefix": {"al"}, "cursor": {first.NextCursor}}); code != http.StatusBadRequest {
		t.Errorf("prefix-mismatched cursor: status %d, want 400", code)
	}
}
