package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"

	"perftrack/internal/diagnose"
)

// DiagnoseRequest is the body of POST /v1/diagnose. It is defined in the
// diagnose package (and aliased here like the other wire types) so the
// strict parser — and its fuzz target — exercise the exact wire shape
// the handler decodes.
type DiagnoseRequest = diagnose.Request

// jsonFloat encodes a float that may be NaN or ±Inf, which JSON cannot
// carry: non-finite values become nil (JSON null). Unlike /v1/compare's
// finite() — which clamps to 0 inside always-present fields — the
// diagnose response distinguishes "undefined" from "zero", so undefined
// statistics are null on the wire.
func jsonFloat(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

// DiagnoseExplanation is one ranked discriminating predicate with its
// evidence. MeanHold/MeanNot/Delta/Ratio are null when undefined (e.g.
// no measured execution on one side of the predicate).
type DiagnoseExplanation struct {
	Predicate string `json:"predicate"` // "attr op value"
	Attr      string `json:"attr"`
	Op        string `json:"op"`
	Value     string `json:"value"`

	Score    float64 `json:"score"`
	Effect   float64 `json:"effect"`
	Coverage float64 `json:"coverage"`

	MatchA   int `json:"match_a"`
	DefinedA int `json:"defined_a"`
	MatchB   int `json:"match_b"`
	DefinedB int `json:"defined_b"`

	MeanHold *float64 `json:"mean_hold,omitempty"`
	MeanNot  *float64 `json:"mean_not,omitempty"`
	Delta    *float64 `json:"delta,omitempty"`
	Ratio    *float64 `json:"ratio,omitempty"`

	MatchedB []string `json:"matched_b,omitempty"` // sample slow-side matches
	MatchedA []string `json:"matched_a,omitempty"`
}

// DiagnoseBottleneck ranks one metric by its contribution to the
// slowdown.
type DiagnoseBottleneck struct {
	Metric       string  `json:"metric"`
	Units        string  `json:"units,omitempty"`
	MeanA        float64 `json:"mean_a"`
	MeanB        float64 `json:"mean_b"`
	Delta        float64 `json:"delta"`
	Contribution float64 `json:"contribution"`
}

// DiagnoseContext is one aligned-context finding (single-execution sides
// only).
type DiagnoseContext struct {
	Context      []string `json:"context,omitempty"`
	Metric       string   `json:"metric"`
	Units        string   `json:"units,omitempty"`
	A            float64  `json:"a"`
	B            float64  `json:"b"`
	Delta        float64  `json:"delta"`
	Contribution float64  `json:"contribution"`
}

// DiagnoseResponse is the reply to POST /v1/diagnose. PerfA/PerfB/Delta/
// Ratio are null when a side has no measured executions (or, for Ratio,
// when side A's perf is zero).
type DiagnoseResponse struct {
	APIVersion   string   `json:"api_version"`
	SideA        []string `json:"side_a"`
	SideB        []string `json:"side_b"`
	Metric       string   `json:"metric,omitempty"`
	PerfA        *float64 `json:"perf_a,omitempty"`
	PerfB        *float64 `json:"perf_b,omitempty"`
	Delta        *float64 `json:"delta,omitempty"`
	Ratio        *float64 `json:"ratio,omitempty"`
	AlignedPairs int      `json:"aligned_pairs,omitempty"`
	Keys         int      `json:"keys"`
	Candidates   int      `json:"candidates"`

	Explanations []DiagnoseExplanation `json:"explanations"`
	Bottlenecks  []DiagnoseBottleneck  `json:"bottlenecks,omitempty"`
	Contexts     []DiagnoseContext     `json:"contexts,omitempty"`
	Trace        []string              `json:"trace,omitempty"`
}

// AttributeKey is one attribute key's domain summary
// (GET /v1/attributes).
type AttributeKey struct {
	Name      string   `json:"name"`
	Resources int      `json:"resources"`
	Distinct  int      `json:"distinct"`
	Numeric   bool     `json:"numeric,omitempty"`
	Min       *float64 `json:"min,omitempty"` // set only when Numeric
	Max       *float64 `json:"max,omitempty"`
	Values    []string `json:"values,omitempty"`
}

// AttributesResponse lists attribute keys, optionally filtered by name
// prefix. With ?limit= the listing is one page (in name order) and
// NextCursor is set while keys remain; pass it back as ?cursor= for the
// next page (same prefix required). See DESIGN.md §7.
type AttributesResponse struct {
	APIVersion string         `json:"api_version"`
	Prefix     string         `json:"prefix,omitempty"`
	Keys       []AttributeKey `json:"keys"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// NewDiagnoseResponse converts a diagnosis into its wire form. Exported
// so ptdiagnose renders local and remote diagnoses through one path.
func NewDiagnoseResponse(res *diagnose.Result) DiagnoseResponse {
	resp := DiagnoseResponse{
		APIVersion:   APIVersion,
		SideA:        res.SideA,
		SideB:        res.SideB,
		Metric:       res.Metric,
		PerfA:        jsonFloat(res.PerfA),
		PerfB:        jsonFloat(res.PerfB),
		Delta:        jsonFloat(res.Delta),
		Ratio:        jsonFloat(res.Ratio),
		AlignedPairs: res.AlignedPairs,
		Keys:         res.Keys,
		Candidates:   res.Candidates,
		Explanations: make([]DiagnoseExplanation, 0, len(res.Explanations)),
		Trace:        res.Trace,
	}
	for _, ex := range res.Explanations {
		resp.Explanations = append(resp.Explanations, DiagnoseExplanation{
			Predicate: ex.Pred.String(),
			Attr:      ex.Pred.Attr,
			Op:        ex.Pred.Op,
			Value:     ex.Pred.Value,
			Score:     ex.Score,
			Effect:    ex.Effect,
			Coverage:  ex.Coverage,
			MatchA:    ex.MatchA,
			DefinedA:  ex.DefinedA,
			MatchB:    ex.MatchB,
			DefinedB:  ex.DefinedB,
			MeanHold:  jsonFloat(ex.MeanHold),
			MeanNot:   jsonFloat(ex.MeanNot),
			Delta:     jsonFloat(ex.Delta),
			Ratio:     jsonFloat(ex.Ratio),
			MatchedB:  ex.MatchedB,
			MatchedA:  ex.MatchedA,
		})
	}
	for _, b := range res.Bottlenecks {
		resp.Bottlenecks = append(resp.Bottlenecks, DiagnoseBottleneck{
			Metric: b.Metric, Units: b.Units,
			MeanA: finite(b.MeanA), MeanB: finite(b.MeanB),
			Delta: finite(b.Delta), Contribution: finite(b.Contribution),
		})
	}
	for _, cf := range res.Contexts {
		dc := DiagnoseContext{
			Metric: cf.Metric, Units: cf.Units,
			A: finite(cf.A), B: finite(cf.B),
			Delta: finite(cf.Delta), Contribution: finite(cf.Contribution),
		}
		for _, r := range cf.Context {
			dc.Context = append(dc.Context, string(r))
		}
		resp.Contexts = append(resp.Contexts, dc)
	}
	return resp
}

// handleDiagnose is POST /v1/diagnose: parse the strict request, run the
// diagnosis under the request context (so the per-request timeout and
// cancellation propagate into the store scans), and reply with the
// NaN-free wire form.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeErrorString(w, r, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	sp, err := diagnose.ParseRequest(body)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	res, err := diagnose.Run(r.Context(), s.store, sp)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	s.log.Info("diagnose", "side_a", len(res.SideA), "side_b", len(res.SideB),
		"candidates", res.Candidates, "explanations", len(res.Explanations),
		"rid", RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, NewDiagnoseResponse(res))
}

// handleAttributes is GET /v1/attributes?prefix=&limit=&cursor=: the
// attribute-key domain listing backing the diagnose predicate space,
// paginated in name order when limit is set.
func (s *Server) handleAttributes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "prefix", "limit", "cursor":
		default:
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("unknown query parameter %q", key))
			return
		}
	}
	prefix := q.Get("prefix")
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad limit %q, want a positive integer", raw))
			return
		}
		limit = v
	}
	after := ""
	if cursor := q.Get("cursor"); cursor != "" {
		parts, err := decodeCursor(cursor, "a1", 3)
		if err != nil {
			writeErrorString(w, r, http.StatusBadRequest, err.Error())
			return
		}
		if parts[1] != cursorSig(prefix) {
			writeErrorString(w, r, http.StatusBadRequest, "cursor does not match this prefix")
			return
		}
		after = parts[2]
	}
	keys, err := s.store.AttributeKeys(prefix)
	if err != nil {
		writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
		return
	}
	// AttributeKeys returns name-sorted keys, so "after this name" is a
	// stable resume point even across ingests between pages.
	if after != "" {
		i := sort.Search(len(keys), func(i int) bool { return keys[i].Name > after })
		keys = keys[i:]
	}
	next := ""
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
		next = encodeCursor("a1", cursorSig(prefix), keys[len(keys)-1].Name)
	}
	resp := AttributesResponse{
		APIVersion: APIVersion, Prefix: prefix,
		Keys: make([]AttributeKey, 0, len(keys)), NextCursor: next,
	}
	for _, k := range keys {
		ak := AttributeKey{
			Name: k.Name, Resources: k.Resources, Distinct: k.Distinct,
			Numeric: k.Numeric, Values: k.Values,
		}
		if k.Numeric {
			ak.Min, ak.Max = jsonFloat(k.Min), jsonFloat(k.Max)
		}
		resp.Keys = append(resp.Keys, ak)
	}
	writeJSON(w, http.StatusOK, resp)
}
