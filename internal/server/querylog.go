package server

import (
	"sync"
	"time"

	"perftrack/internal/planner"
)

// queryRecord is one completed /v1/sql execution retained for
// GET /v1/debug/queries: the query text, the request it ran under, how
// long it took, and the full EXPLAIN ANALYZE profile — so a latency
// exemplar on /metrics can be chased to the exact query and its
// per-operator actuals without re-running anything.
type queryRecord struct {
	SQL       string
	RequestID string
	Start     time.Time
	Duration  time.Duration
	Strategy  string
	CacheHit  bool
	Rows      int
	Error     string
	Slow      bool
	Profile   *planner.ExecProfileWire
}

// queryRecordOverhead approximates the fixed cost of one record (struct,
// profile, ring bookkeeping) on top of its string payload.
const queryRecordOverhead = 512

// maxQueryTextBytes caps the SQL and error text retained per record: a
// few KB is plenty to identify a statement, and the cap keeps a single
// pathological query from pinning a ring above its byte budget.
const maxQueryTextBytes = 4 << 10

// truncateText bounds s to max bytes, marking the cut.
func truncateText(s string, max int) string {
	const marker = "...[truncated]"
	if len(s) <= max {
		return s
	}
	return s[:max-len(marker)] + marker
}

func (qr *queryRecord) byteSize() int64 {
	return int64(len(qr.SQL)+len(qr.RequestID)+len(qr.Strategy)+len(qr.Error)) + queryRecordOverhead
}

// queryRing is one byte-bounded FIFO of query records: appends evict
// from the front until the ring fits its budget again.
type queryRing struct {
	recs     []queryRecord
	bytes    int64
	maxBytes int64
}

func (r *queryRing) add(rec queryRecord) {
	if rec.byteSize() > r.maxBytes {
		return // one record over the whole budget: drop it, keep the bound
	}
	r.recs = append(r.recs, rec)
	r.bytes += rec.byteSize()
	evict := 0
	for r.bytes > r.maxBytes && evict < len(r.recs)-1 {
		r.bytes -= r.recs[evict].byteSize()
		evict++
	}
	if evict > 0 {
		r.recs = append(r.recs[:0], r.recs[evict:]...)
	}
}

// list returns up to limit records, newest first.
func (r *queryRing) list(limit int) []queryRecord {
	n := min(limit, len(r.recs))
	out := make([]queryRecord, 0, n)
	for i := len(r.recs) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, r.recs[i])
	}
	return out
}

// queryLog is the slow-query capture behind GET /v1/debug/queries: two
// byte-bounded rings (every completed query, and separately those at or
// over the slow threshold, mirroring the tracer's recent/slow split so
// a burst of fast queries cannot evict the interesting slow ones).
type queryLog struct {
	mu     sync.Mutex
	recent queryRing
	slow   queryRing

	slowThreshold time.Duration // <= 0 disables slow classification

	total     uint64 // lifetime records
	slowTotal uint64
}

// defaultQueryLogBytes bounds each ring of the query log.
const defaultQueryLogBytes = 1 << 20

func newQueryLog(maxBytes int64, slowThreshold time.Duration) *queryLog {
	if maxBytes <= 0 {
		maxBytes = defaultQueryLogBytes
	}
	return &queryLog{
		recent:        queryRing{maxBytes: maxBytes},
		slow:          queryRing{maxBytes: maxBytes},
		slowThreshold: slowThreshold,
	}
}

// add records one completed query, classifying it against the slow
// threshold.
func (ql *queryLog) add(rec queryRecord) {
	if ql == nil {
		return
	}
	rec.Slow = ql.slowThreshold > 0 && rec.Duration >= ql.slowThreshold
	rec.SQL = truncateText(rec.SQL, maxQueryTextBytes)
	rec.Error = truncateText(rec.Error, maxQueryTextBytes)
	ql.mu.Lock()
	defer ql.mu.Unlock()
	ql.total++
	ql.recent.add(rec)
	if rec.Slow {
		ql.slowTotal++
		ql.slow.add(rec)
	}
}

// list returns up to limit records from the recent (or slow) ring,
// newest first.
func (ql *queryLog) list(slow bool, limit int) []queryRecord {
	ql.mu.Lock()
	defer ql.mu.Unlock()
	if slow {
		return ql.slow.list(limit)
	}
	return ql.recent.list(limit)
}

// queryLogStats is a snapshot for the ptserved_query_profile_* metrics.
type queryLogStats struct {
	Total       uint64
	SlowTotal   uint64
	Entries     int
	SlowEntries int
	Bytes       int64
}

func (ql *queryLog) stats() queryLogStats {
	ql.mu.Lock()
	defer ql.mu.Unlock()
	return queryLogStats{
		Total:       ql.total,
		SlowTotal:   ql.slowTotal,
		Entries:     len(ql.recent.recs),
		SlowEntries: len(ql.slow.recs),
		Bytes:       ql.recent.bytes + ql.slow.bytes,
	}
}
