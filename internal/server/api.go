package server

import (
	"perftrack/internal/datastore"
	"perftrack/internal/planner"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
)

// Wire types for the v1 HTTP/JSON API. internal/client reuses these, so
// the request and response shapes are defined exactly once.
//
// Versioning: every v1 response carries `"api_version": "v1"`. Within v1
// the wire contract is append-only — fields are added, never renamed,
// retyped, or removed, and existing endpoints keep their semantics.
// Request decoding is strict: unknown fields are rejected with 400 so a
// client built against a newer minor revision fails loudly instead of
// being silently misread. See DESIGN.md §7 for the full guarantees.

// APIVersion is stamped on every v1 response body.
const APIVersion = "v1"

// Selection is the unified execution/set/family selection spec shared by
// /v1/query, /v1/results, /v1/compare, and /v1/diagnose: zero or more
// pr-filter family specs (intersected), optionally restricted to named
// executions. It is defined in internal/query so the CLIs and the
// diagnose request reuse the exact wire shape; see that package for
// field semantics.
type Selection = query.Selection

// PlanWire is the uniform explain payload: /v1/query and /v1/sql attach
// exactly this shape when a request sets explain, and ptquery/ptsql
// render it through planner.Format.
type PlanWire = planner.PlanWire

// QueryRequest asks for pr-filter match counts (the Figure 3 live
// counts). Select is the unified selection; the top-level Families field
// is the original spelling and keeps decoding, merged with
// Select.Families. Each family is a resource-filter spec in the shared
// CLI syntax, e.g. "type=application" or "name=/MCRGrid/MCR;rel=D".
// Explain attaches the evaluated access-path plan to the response.
type QueryRequest struct {
	Families []string   `json:"families,omitempty"`
	Select   *Selection `json:"select,omitempty"`
	Explain  bool       `json:"explain,omitempty"`
}

// FamilyCount reports one family's size and how many performance results
// it matches alone.
type FamilyCount struct {
	Spec      string `json:"spec"`
	Resources int    `json:"resources"`
	Matches   int    `json:"matches"`
}

// QueryResponse carries per-family and combined match counts plus the
// query engine's cache state at evaluation time.
type QueryResponse struct {
	APIVersion  string        `json:"api_version"`
	Families    []FamilyCount `json:"families"`
	Matches     int           `json:"matches"`
	Generation  uint64        `json:"generation"`
	CacheHits   uint64        `json:"cache_hits"`
	CacheMisses uint64        `json:"cache_misses"`
	Plan        *PlanWire     `json:"plan,omitempty"` // set when Explain
}

// ResultsRequest is the two-step retrieval (§3.2): evaluate a pr-filter,
// then refine the table — metric filter, free-resource columns, attribute
// columns, sort, and row limit. Select is the unified selection; the
// top-level Families field is the original spelling and keeps decoding,
// merged with Select.Families. With Limit > 0 the response is one page
// and carries NextCursor when rows remain; Cursor resumes from a prior
// page (the request refinements must match the cursor's, else 400). See
// DESIGN.md §7.
type ResultsRequest struct {
	Families      []string   `json:"families,omitempty"`
	Select        *Selection `json:"select,omitempty"`
	Metric        string     `json:"metric,omitempty"`
	AddColumns    []string   `json:"add_columns,omitempty"`    // resource types
	AddAttributes []string   `json:"add_attributes,omitempty"` // type.attribute
	SortBy        string     `json:"sort_by,omitempty"`
	Descending    bool       `json:"descending,omitempty"`
	Limit         int        `json:"limit,omitempty"`  // 0 = all rows
	Cursor        string     `json:"cursor,omitempty"` // opaque, from NextCursor
}

// ResultsResponse is the retrieved table in wire form. NextCursor is set
// when a Limit-bounded page left rows behind; passing it back in Cursor
// returns the next page.
type ResultsResponse struct {
	APIVersion string     `json:"api_version"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Total      int        `json:"total"` // rows matched before the limit
	NextCursor string     `json:"next_cursor,omitempty"`
}

// ResultStreamLine is one line of the NDJSON response to
// POST /v1/results?stream=1. The first line carries Columns plus Total
// (IDs matched by the pr-filter, before any metric filter); each
// following line carries one Row; the final line has Done=true with the
// emitted row count. A mid-stream failure emits a line with Error and
// ends the stream.
type ResultStreamLine struct {
	APIVersion string     `json:"api_version"`
	Columns    []string   `json:"columns,omitempty"`
	Total      int        `json:"total,omitempty"`
	Row        *ResultRow `json:"row,omitempty"`
	Error      string     `json:"error,omitempty"`

	// Summary-line fields (Done == true).
	Done bool `json:"done,omitempty"`
	Rows int  `json:"rows,omitempty"`
}

// ResultRow is one streamed performance result.
type ResultRow struct {
	Execution string   `json:"execution"`
	Metric    string   `json:"metric"`
	Value     float64  `json:"value"`
	Units     string   `json:"units"`
	Tool      string   `json:"tool"`
	Resources []string `json:"resources,omitempty"`
}

// SQLRequest is the body of POST /v1/sql: one SELECT against the
// planner's virtual catalog (execution, resource, attribute,
// performance_result), falling back to the physical schema for anything
// the catalog cannot express. Explain attaches the chosen plan; Limit
// caps returned rows (0 = all).
type SQLRequest struct {
	SQL     string `json:"sql"`
	Explain bool   `json:"explain,omitempty"`
	Limit   int    `json:"limit,omitempty"`

	// Analyze attaches the chosen plan with its execution profile (the
	// EXPLAIN ANALYZE form): per-operator row counts, segment blocks
	// scanned vs. zone-map-pruned, kernel vs. merge wall time, and the
	// planner's cardinality error. Implies Explain.
	Analyze bool `json:"analyze,omitempty"`
}

// SQLResponse is the buffered reply to POST /v1/sql. Cells are JSON
// scalars: strings, numbers, booleans, or null (SQL NULL and non-finite
// floats). Truncated is set when Limit dropped rows.
type SQLResponse struct {
	APIVersion string    `json:"api_version"`
	Columns    []string  `json:"columns"`
	Rows       [][]any   `json:"rows"`
	RowCount   int       `json:"row_count"` // rows produced before Limit
	Truncated  bool      `json:"truncated,omitempty"`
	Plan       *PlanWire `json:"plan,omitempty"` // set when Explain
}

// SQLStreamLine is one line of the NDJSON response to
// POST /v1/sql?stream=1, for results too large to buffer. The first line
// carries Columns; each following line one Row; the final line has
// Done=true with the emitted row count (and the plan, when Explain). A
// mid-stream failure emits a line with Error and ends the stream.
type SQLStreamLine struct {
	APIVersion string   `json:"api_version"`
	Columns    []string `json:"columns,omitempty"`
	Row        []any    `json:"row,omitempty"`
	Error      string   `json:"error,omitempty"`

	// Summary-line fields (Done == true).
	Done bool      `json:"done,omitempty"`
	Rows int       `json:"rows,omitempty"`
	Plan *PlanWire `json:"plan,omitempty"`
}

// LoadResponse reports one single-document PTdf ingest.
type LoadResponse struct {
	APIVersion string              `json:"api_version"`
	Stats      datastore.LoadStats `json:"stats"`
	Generation uint64              `json:"generation"`
}

// LoadDocStatus is one line of the NDJSON response to a multi-document
// (multipart) POST /v1/load. Per-document lines carry Doc plus either
// Stats+Generation (committed) or Error (that document rolled back); the
// final line has Done=true and totals for the whole stream.
type LoadDocStatus struct {
	APIVersion string              `json:"api_version"`
	Doc        string              `json:"doc,omitempty"`
	Stats      datastore.LoadStats `json:"stats"`
	Error      string              `json:"error,omitempty"`
	Generation uint64              `json:"generation,omitempty"`

	// Summary-line fields (Done == true).
	Done   bool `json:"done,omitempty"`
	Docs   int  `json:"docs,omitempty"`
	Failed int  `json:"failed,omitempty"`
}

// ReportResponse carries a name-list report (executions, metrics,
// applications, tools).
type ReportResponse struct {
	APIVersion string   `json:"api_version"`
	Report     string   `json:"report"`
	Items      []string `json:"items"`
}

// StatsResponse is the Table 1 style store summary plus query-engine
// counters, storage-engine footprint, and the planner's table/attribute
// statistics snapshot (GET /v1/stats).
type StatsResponse struct {
	APIVersion string                     `json:"api_version"`
	Store      datastore.Stats            `json:"store"`
	Engine     datastore.QueryEngineStats `json:"engine"`
	Storage    StorageStats               `json:"storage"`
	Statistics datastore.TableStatistics  `json:"statistics"`

	// PlanCache reports the /v1/sql result cache (generation-keyed LRU);
	// absent when the cache is disabled.
	PlanCache *planner.ResultCacheStats `json:"plan_cache,omitempty"`
}

// StorageStats describes the storage engine behind the store: its kind,
// per-table byte footprint, and — on the segment engine — compaction
// status.
type StorageStats struct {
	Kind     string              `json:"kind"`
	Engine   reldb.Stats         `json:"engine"`
	Segments *reldb.SegmentStats `json:"segments,omitempty"`
}

// segmentStatser is implemented by the segment storage engine.
type segmentStatser interface {
	SegmentStats() reldb.SegmentStats
}

// ComparePair is one aligned pair of performance results from the two
// executions of a /v1/compare. Ratio and Speedup are 0 when undefined
// (division by zero); Context holds the portable context resource names.
type ComparePair struct {
	Metric     string   `json:"metric"`
	Context    []string `json:"context,omitempty"`
	A          float64  `json:"a"`
	B          float64  `json:"b"`
	Units      string   `json:"units,omitempty"`
	Difference float64  `json:"difference"`
	Ratio      float64  `json:"ratio"`
	Speedup    float64  `json:"speedup"`
}

// CompareDelta is one regression or improvement: a pair plus how far B
// moved from A, in percent.
type CompareDelta struct {
	Pair    ComparePair `json:"pair"`
	Percent float64     `json:"percent"`
}

// CompareFinding is one diagnosed bottleneck (§6): a pair ranked by its
// contribution to the total slowdown.
type CompareFinding struct {
	Pair         ComparePair `json:"pair"`
	Delta        float64     `json:"delta"`
	Contribution float64     `json:"contribution"`
}

// CompareSummary aggregates a comparison. GeoMeanRatio is 0 when no pair
// has two positive values.
type CompareSummary struct {
	Paired       int     `json:"paired"`
	OnlyA        int     `json:"only_a"`
	OnlyB        int     `json:"only_b"`
	GeoMeanRatio float64 `json:"geo_mean_ratio"`
	MeanDiff     float64 `json:"mean_diff"`
}

// CompareResponse is the §6 comparison of two executions
// (GET /v1/compare?a=&b=).
type CompareResponse struct {
	APIVersion   string           `json:"api_version"`
	ExecA        string           `json:"exec_a"`
	ExecB        string           `json:"exec_b"`
	Summary      CompareSummary   `json:"summary"`
	Pairs        []ComparePair    `json:"pairs"`
	Regressions  []CompareDelta   `json:"regressions"`
	Improvements []CompareDelta   `json:"improvements"`
	Bottlenecks  []CompareFinding `json:"bottlenecks,omitempty"`
}

// HealthResponse is the liveness reply (/healthz sits outside the v1
// surface but is stamped for uniformity).
type HealthResponse struct {
	APIVersion string `json:"api_version"`
	Status     string `json:"status"`
	ReadOnly   bool   `json:"read_only"`
	Generation uint64 `json:"generation"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	APIVersion string `json:"api_version"`
	Error      string `json:"error"`
	RequestID  string `json:"request_id,omitempty"`
}

// QueryProfileWire is one captured /v1/sql execution
// (GET /v1/debug/queries): the query text, the request it ran under,
// and — when the execution carried one — its full EXPLAIN ANALYZE
// profile.
type QueryProfileWire struct {
	SQL        string                   `json:"sql"`
	RequestID  string                   `json:"request_id,omitempty"`
	Start      string                   `json:"start"` // RFC 3339 with sub-second precision
	DurationMS float64                  `json:"duration_ms"`
	Strategy   string                   `json:"strategy,omitempty"`
	CacheHit   bool                     `json:"cache_hit,omitempty"`
	Rows       int                      `json:"rows"`
	Error      string                   `json:"error,omitempty"`
	Slow       bool                     `json:"slow,omitempty"`
	Profile    *planner.ExecProfileWire `json:"profile,omitempty"`
}

// QueriesResponse lists recently captured (or, with ?slow=1, slow)
// queries, newest first.
type QueriesResponse struct {
	APIVersion string             `json:"api_version"`
	Slow       bool               `json:"slow,omitempty"`
	Queries    []QueryProfileWire `json:"queries"`
}

// SelfDiagnoseResponse is the reply to GET /v1/debug/selfdiagnose: the
// self-monitor's rolling window split into a baseline and a recent
// slice, diagnosed against each other by the same engine as
// POST /v1/diagnose. Diagnosis is absent (with Status explaining why)
// until the sampler has at least two samples.
type SelfDiagnoseResponse struct {
	APIVersion string            `json:"api_version"`
	Status     string            `json:"status"` // "ok" or why Diagnosis is absent
	Samples    int               `json:"samples"`
	Baseline   int               `json:"baseline,omitempty"` // executions on side A
	Recent     int               `json:"recent,omitempty"`   // executions on side B
	Diagnosis  *DiagnoseResponse `json:"diagnosis,omitempty"`
}

// TraceSummary is one completed request trace in list form
// (GET /v1/debug/traces). ID is the request ID the trace was keyed by.
type TraceSummary struct {
	ID         string  `json:"id"`
	Route      string  `json:"route"`
	Start      string  `json:"start"` // RFC 3339 with sub-second precision
	DurationMS float64 `json:"duration_ms"`
	Slow       bool    `json:"slow,omitempty"`
	Spans      int     `json:"spans"`
}

// TracesResponse lists recent (or, with ?slow=1, slow) traces, newest
// first.
type TracesResponse struct {
	APIVersion string         `json:"api_version"`
	Slow       bool           `json:"slow,omitempty"`
	Traces     []TraceSummary `json:"traces"`
}

// SpanWire is one span of a trace's span tree. Parent is the index of
// the parent span within the same trace, -1 for the root. OffsetMS is
// the span's start relative to the trace start.
type SpanWire struct {
	Index       int               `json:"index"`
	Parent      int               `json:"parent"`
	Name        string            `json:"name"`
	OffsetMS    float64           `json:"offset_ms"`
	DurationMS  float64           `json:"duration_ms"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// TraceResponse is one full trace (GET /v1/debug/traces/{id}): the
// summary plus every span recorded under the request, in start order.
type TraceResponse struct {
	APIVersion string       `json:"api_version"`
	Trace      TraceSummary `json:"trace"`
	Spans      []SpanWire   `json:"spans"`
}
