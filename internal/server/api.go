package server

import (
	"perftrack/internal/datastore"
)

// Wire types for the v1 HTTP/JSON API. internal/client reuses these, so
// the request and response shapes are defined exactly once.

// QueryRequest asks for pr-filter match counts (the Figure 3 live
// counts). Each family is a resource-filter spec in the shared CLI
// syntax, e.g. "type=application" or "name=/MCRGrid/MCR;rel=D".
type QueryRequest struct {
	Families []string `json:"families"`
}

// FamilyCount reports one family's size and how many performance results
// it matches alone.
type FamilyCount struct {
	Spec      string `json:"spec"`
	Resources int    `json:"resources"`
	Matches   int    `json:"matches"`
}

// QueryResponse carries per-family and combined match counts plus the
// query engine's cache state at evaluation time.
type QueryResponse struct {
	Families    []FamilyCount `json:"families"`
	Matches     int           `json:"matches"`
	Generation  uint64        `json:"generation"`
	CacheHits   uint64        `json:"cache_hits"`
	CacheMisses uint64        `json:"cache_misses"`
}

// ResultsRequest is the two-step retrieval (§3.2): evaluate a pr-filter,
// then refine the table — metric filter, free-resource columns, attribute
// columns, sort, and row limit.
type ResultsRequest struct {
	Families      []string `json:"families"`
	Metric        string   `json:"metric,omitempty"`
	AddColumns    []string `json:"add_columns,omitempty"`    // resource types
	AddAttributes []string `json:"add_attributes,omitempty"` // type.attribute
	SortBy        string   `json:"sort_by,omitempty"`
	Descending    bool     `json:"descending,omitempty"`
	Limit         int      `json:"limit,omitempty"` // 0 = all rows
}

// ResultsResponse is the retrieved table in wire form.
type ResultsResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Total   int        `json:"total"` // rows matched before the limit
}

// LoadResponse reports one PTdf ingest.
type LoadResponse struct {
	Stats      datastore.LoadStats `json:"stats"`
	Generation uint64              `json:"generation"`
}

// ReportResponse carries a name-list report (executions, metrics,
// applications, tools).
type ReportResponse struct {
	Report string   `json:"report"`
	Items  []string `json:"items"`
}

// StatsResponse is the Table 1 style store summary plus query-engine
// counters.
type StatsResponse struct {
	Store  datastore.Stats            `json:"store"`
	Engine datastore.QueryEngineStats `json:"engine"`
}

// HealthResponse is the liveness reply.
type HealthResponse struct {
	Status     string `json:"status"`
	ReadOnly   bool   `json:"read_only"`
	Generation uint64 `json:"generation"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}
