package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// multipartBody assembles named PTdf documents into one multipart body.
func multipartBody(t *testing.T, docs map[string]string, order []string) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, name := range order {
		part, err := mw.CreateFormFile("ptdf", name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := part.Write([]byte(docs[name])); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// postMultipart posts a bulk load and decodes the NDJSON status stream.
func postMultipart(t *testing.T, url string, body *bytes.Buffer, contentType string) []LoadDocStatus {
	t.Helper()
	resp, err := http.Post(url, contentType, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []LoadDocStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var st LoadDocStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad status line %q: %v", sc.Text(), err)
		}
		lines = append(lines, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestBulkLoadMultipartNDJSON(t *testing.T) {
	_, ts := newTestServer(t, nil)
	docs := map[string]string{}
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("doc-%d.ptdf", i)
		docs[name] = ptdfDoc(fmt.Sprintf("bulk%d", i), 2)
		order = append(order, name)
	}
	docs["doc-2.ptdf"] = "Garbage line\n" // one bad document mid-stream

	body, ct := multipartBody(t, docs, order)
	lines := postMultipart(t, ts.URL+"/v1/load?j=2", body, ct)
	if len(lines) != 5 {
		t.Fatalf("got %d status lines, want 4 docs + summary:\n%+v", len(lines), lines)
	}
	for i, st := range lines[:4] {
		if st.APIVersion != APIVersion {
			t.Errorf("line %d: api_version = %q", i, st.APIVersion)
		}
		if st.Doc != order[i] {
			t.Errorf("line %d: doc = %q, want %q (in-order commits)", i, st.Doc, order[i])
		}
		if i == 2 {
			if st.Error == "" {
				t.Error("bad document reported no error")
			}
			continue
		}
		if st.Error != "" {
			t.Errorf("doc %d failed: %s", i, st.Error)
		}
		if st.Stats.Results != 2 {
			t.Errorf("doc %d stats = %+v", i, st.Stats)
		}
	}
	sum := lines[4]
	if !sum.Done || sum.Docs != 4 || sum.Failed != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Stats.Results != 6 {
		t.Errorf("summary totals = %+v", sum.Stats)
	}

	// The three good documents are queryable; the bad one left nothing.
	var qr QueryResponse
	code, raw := postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, &qr)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if qr.Matches != 6 {
		t.Errorf("matches = %d, want 6", qr.Matches)
	}
}

// TestBulkLoadConcurrentWithQuery is the race-detector e2e for the bulk
// write path: multipart ingests with parallel decoding race against
// /v1/query readers, and the final counts must be exact.
func TestBulkLoadConcurrentWithQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const loaders, docsPer = 4, 3
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			docs := map[string]string{}
			var order []string
			for d := 0; d < docsPer; d++ {
				name := fmt.Sprintf("l%d-d%d", l, d)
				docs[name] = ptdfDoc(name, 2)
				order = append(order, name)
			}
			body, ct := multipartBody(t, docs, order)
			for _, st := range postMultipart(t, ts.URL+"/v1/load?j=4", body, ct) {
				if st.Error != "" {
					t.Errorf("loader %d: %s", l, st.Error)
				}
			}
		}(l)
	}
	// Queriers hammer the read path while the loaders run.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var qr QueryResponse
				postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, &qr)
			}
		}()
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	var qr QueryResponse
	code, raw := postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, &qr)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, raw)
	}
	if want := loaders * docsPer * 2; qr.Matches != want {
		t.Errorf("matches = %d, want %d", qr.Matches, want)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("st", 3))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.APIVersion != APIVersion {
		t.Errorf("api_version = %q", sr.APIVersion)
	}
	if sr.Store.Results != 3 || sr.Store.Executions != 1 {
		t.Errorf("store stats = %+v", sr.Store)
	}
	if sr.Engine.Generation == 0 {
		t.Error("engine stats missing generation")
	}
}

const compareDoc = `Application app
Execution ea app
Execution eb app
Resource /app application
Resource /ea execution ea
Resource /eb execution eb
PerfResult ea /app,/ea(primary) t "wall time" 100 seconds
PerfResult eb /app,/eb(primary) t "wall time" 150 seconds
`

func TestCompareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, compareDoc)

	resp, err := http.Get(ts.URL + "/v1/compare?a=ea&b=eb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var cr CompareResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.APIVersion != APIVersion || cr.ExecA != "ea" || cr.ExecB != "eb" {
		t.Errorf("header fields = %+v", cr)
	}
	if cr.Summary.Paired != 1 {
		t.Fatalf("summary = %+v", cr.Summary)
	}
	if len(cr.Pairs) != 1 || cr.Pairs[0].A != 100 || cr.Pairs[0].B != 150 {
		t.Errorf("pairs = %+v", cr.Pairs)
	}
	if cr.Pairs[0].Ratio != 1.5 {
		t.Errorf("ratio = %v", cr.Pairs[0].Ratio)
	}
	if len(cr.Regressions) != 1 || cr.Regressions[0].Percent != 50 {
		t.Errorf("regressions = %+v", cr.Regressions)
	}
	if len(cr.Bottlenecks) != 1 {
		t.Errorf("bottlenecks = %+v", cr.Bottlenecks)
	}

	// Unknown executions are 404; bad parameters are 400.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/compare?a=ghost&b=eb", http.StatusNotFound},
		{"/v1/compare?a=ea", http.StatusBadRequest},
		{"/v1/compare?a=ea&b=eb&threshold=junk", http.StatusBadRequest},
		{"/v1/compare?a=ea&b=eb&bogus=1", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestErrorStatusMapping pins the sentinel-error → HTTP status contract:
// 404 for missing entities, 409 for identity conflicts, 400 for bad
// input.
func TestErrorStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, "Application a\nExecution e1 a\n")

	post := func(doc string) int {
		resp, err := http.Post(ts.URL+"/v1/load", "text/plain", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Redefining e1 under a different application is an identity conflict.
	if code := post("Application b\nExecution e1 b\n"); code != http.StatusConflict {
		t.Errorf("conflicting load = %d, want 409", code)
	}
	// A dangling reference inside a document is the document's fault: 400.
	if code := post("PerfResult ghost /x(primary) t m 1 u\n"); code != http.StatusBadRequest {
		t.Errorf("dangling reference load = %d, want 400", code)
	}
	if code := post("Garbage\n"); code != http.StatusBadRequest {
		t.Errorf("bad syntax load = %d, want 400", code)
	}
}

// TestStrictRequestDecoding pins the v1 contract that unknown request
// fields are rejected rather than silently ignored.
func TestStrictRequestDecoding(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"families": ["type=application"], "tpyo": true}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: status = %d", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "tpyo") {
		t.Errorf("error does not name the unknown field: %q", er.Error)
	}
	if er.APIVersion != APIVersion {
		t.Errorf("api_version = %q", er.APIVersion)
	}
}

// TestAPIVersionStamped spot-checks that every v1 response body carries
// the api_version field.
func TestAPIVersionStamped(t *testing.T) {
	_, ts := newTestServer(t, nil)
	lr := loadDoc(t, ts.URL, ptdfDoc("ver", 1))
	if lr.APIVersion != APIVersion {
		t.Errorf("load api_version = %q", lr.APIVersion)
	}
	for _, path := range []string{"/healthz", "/v1/stats", "/v1/reports/executions"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			APIVersion string `json:"api_version"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if body.APIVersion != APIVersion {
			t.Errorf("%s api_version = %q", path, body.APIVersion)
		}
	}
}
