package server

import (
	"math"
	"net/http"
	"strings"
	"time"

	"perftrack/internal/planner"
	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// sqlCell converts one SQL value into its JSON form: SQL NULL and
// non-finite floats (which JSON cannot carry) become null.
func sqlCell(v reldb.Value) any {
	switch v.Kind() {
	case reldb.KindInt:
		return v.Int64()
	case reldb.KindFloat:
		f := v.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case reldb.KindString:
		return v.Text()
	case reldb.KindBool:
		return v.Truth()
	}
	return nil
}

func sqlRow(row reldb.Row) []any {
	return appendSQLRow(make([]any, 0, len(row)), row)
}

// appendSQLRow converts a row into dst, reusing its backing array —
// the streaming encoder recycles one slice across every emitted row.
func appendSQLRow(dst []any, row reldb.Row) []any {
	for _, v := range row {
		dst = append(dst, sqlCell(v))
	}
	return dst
}

// handleSQL is POST /v1/sql: one SELECT planned and executed against the
// store's virtual catalog by the cost-based planner (internal/planner).
// The buffered form replies with SQLResponse; ?stream=1 emits NDJSON
// SQLStreamLines through http.Flusher for results too large to buffer
// (the route is unlimited by the timeout handler for the same reason as
// /v1/results). Parse, plan, and catalog errors are 400s.
func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req SQLRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErrorString(w, r, http.StatusBadRequest, "sql is required")
		return
	}
	if req.Limit < 0 {
		writeErrorString(w, r, http.StatusBadRequest, "limit must be >= 0")
		return
	}
	pl := planner.New(s.store)
	pl.Cache = s.planCache
	start := time.Now()
	res, plan, err := pl.Query(r.Context(), req.SQL)
	rec := queryRecord{
		SQL:       req.SQL,
		RequestID: RequestIDFromContext(r.Context()),
		Start:     start,
		Duration:  time.Since(start),
	}
	if err != nil {
		rec.Error = err.Error()
		s.queries.add(rec)
		writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
		return
	}
	rec.Strategy = plan.Strategy
	rec.CacheHit = plan.CacheHit
	rec.Rows = len(res.Rows)
	rec.Profile = plan.ProfileWire()
	s.queries.add(rec)
	var wire *PlanWire
	if req.Analyze {
		wire = plan.WireAnalyze()
	} else if req.Explain {
		wire = plan.Wire()
	}
	s.log.Debug("sql", "strategy", plan.Strategy, "rows", len(res.Rows),
		"est", plan.EstRows, "actual", plan.ActualRows, "cache_hit", plan.CacheHit,
		"rid", RequestIDFromContext(r.Context()))
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		s.streamSQL(w, res, req, wire)
		return
	}
	rows := res.Rows
	truncated := false
	if req.Limit > 0 && len(rows) > req.Limit {
		rows = rows[:req.Limit]
		truncated = true
	}
	resp := SQLResponse{
		APIVersion: APIVersion,
		Columns:    res.Columns,
		Rows:       make([][]any, 0, len(rows)),
		RowCount:   len(res.Rows),
		Truncated:  truncated,
		Plan:       wire,
	}
	for _, row := range rows {
		resp.Rows = append(resp.Rows, sqlRow(row))
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamSQL emits a completed result set as NDJSON. sqldb results are
// already materialized (the planner's pushed aggregation keeps them
// small when possible); streaming bounds the response encoding, not the
// execution.
func (s *Server) streamSQL(w http.ResponseWriter, res *sqldb.Result, req SQLRequest, plan *PlanWire) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := newNDJSON(w)
	defer enc.Release()
	flusher, _ := w.(http.Flusher)
	if err := enc.Encode(SQLStreamLine{APIVersion: APIVersion, Columns: res.Columns}); err != nil {
		return
	}
	emitted := 0
	var rowBuf []any // one backing array for every emitted line
	for _, row := range res.Rows {
		if req.Limit > 0 && emitted >= req.Limit {
			break
		}
		rowBuf = appendSQLRow(rowBuf[:0], row)
		if err := enc.Encode(SQLStreamLine{APIVersion: APIVersion, Row: rowBuf}); err != nil {
			return
		}
		emitted++
		if emitted%resultStreamChunk == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(SQLStreamLine{APIVersion: APIVersion, Done: true, Rows: emitted, Plan: plan})
	if flusher != nil {
		flusher.Flush()
	}
}
