package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// ptdfDoc builds a small self-contained PTdf document whose names are
// derived from tag, so concurrent loaders never collide.
func ptdfDoc(tag string, results int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Application app-%s\n", tag)
	fmt.Fprintf(&b, "Execution exec-%s app-%s\n", tag, tag)
	fmt.Fprintf(&b, "Resource /app-%s application\n", tag)
	fmt.Fprintf(&b, "Resource /exec-%s execution exec-%s\n", tag, tag)
	fmt.Fprintf(&b, "ResourceAttribute /exec-%s nprocs 8 string\n", tag)
	for i := 0; i < results; i++ {
		fmt.Fprintf(&b, "PerfResult exec-%s /app-%s,/exec-%s(primary) ptool \"wall time\" %d.5 seconds\n", tag, tag, tag, i)
	}
	return b.String()
}

func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	store, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, req, resp any) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, resp); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return r.StatusCode, string(raw)
}

func loadDoc(t *testing.T, baseURL, doc string) LoadResponse {
	t.Helper()
	r, err := http.Post(baseURL+"/v1/load", "text/plain", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d: %s", r.StatusCode, raw)
	}
	var lr LoadResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestConcurrentLoadAndQuery is the headline e2e check: several loaders
// stream distinct PTdf documents while queriers hammer /v1/query and the
// report endpoints. Run under -race this exercises the full lock
// discipline; afterwards the combined counts must be exact (no lost
// loads, no stale cached counts).
func TestConcurrentLoadAndQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const loaders, queriers, perDoc = 4, 4, 5

	var wg sync.WaitGroup
	errs := make(chan error, loaders+queriers)
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc := ptdfDoc(fmt.Sprintf("l%d", i), perDoc)
			r, err := http.Post(ts.URL+"/v1/load", "text/plain", strings.NewReader(doc))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("loader %d: status %d: %s", i, r.StatusCode, body)
			}
		}(i)
	}
	done := make(chan struct{})
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var qr QueryResponse
				body, _ := json.Marshal(QueryRequest{Families: []string{"type=application"}})
				r, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d: %s", r.StatusCode, raw)
					return
				}
				if err := json.Unmarshal(raw, &qr); err != nil {
					errs <- err
					return
				}
				if max := loaders * perDoc; qr.Matches > max {
					errs <- fmt.Errorf("query counted %d matches, max possible %d", qr.Matches, max)
					return
				}
			}
		}()
	}
	// Let the queriers overlap the loads, then stop them.
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every load landed and the final count is exact, not a stale cache.
	var qr QueryResponse
	code, raw := postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, &qr)
	if code != http.StatusOK {
		t.Fatalf("final query: %d %s", code, raw)
	}
	if want := loaders * perDoc; qr.Matches != want {
		t.Errorf("final matches = %d, want %d", qr.Matches, want)
	}
	if len(qr.Families) != 1 || qr.Families[0].Resources != loaders {
		t.Errorf("families = %+v, want %d application resources", qr.Families, loaders)
	}
}

// TestQueryReflectsIngestImmediately guards the generation contract: a
// cached count must never be served across a load.
func TestQueryReflectsIngestImmediately(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := QueryRequest{Families: []string{"type=application"}}

	loadDoc(t, ts.URL, ptdfDoc("one", 2))
	var q1 QueryResponse
	postJSON(t, ts.URL+"/v1/query", req, &q1)
	// Ask twice so the second answer comes from the match cache.
	var q2 QueryResponse
	postJSON(t, ts.URL+"/v1/query", req, &q2)
	if q2.Matches != 2 || q2.CacheHits <= q1.CacheHits {
		t.Errorf("cached query: %+v then %+v", q1, q2)
	}

	lr := loadDoc(t, ts.URL, ptdfDoc("two", 3))
	if lr.Generation <= q2.Generation {
		t.Errorf("load did not advance generation: %d -> %d", q2.Generation, lr.Generation)
	}
	var q3 QueryResponse
	postJSON(t, ts.URL+"/v1/query", req, &q3)
	if q3.Matches != 5 {
		t.Errorf("post-load matches = %d, want 5 (stale cache?)", q3.Matches)
	}
}

func TestResultsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("r", 4))

	var res ResultsResponse
	code, raw := postJSON(t, ts.URL+"/v1/results", ResultsRequest{
		Families:      []string{"type=application"},
		Metric:        "wall time",
		AddAttributes: []string{"execution.nprocs"},
		SortBy:        "value",
		Descending:    true,
		Limit:         2,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("results: %d %s", code, raw)
	}
	if res.Total != 4 || len(res.Rows) != 2 {
		t.Fatalf("total = %d rows = %d, want 4/2", res.Total, len(res.Rows))
	}
	wantCols := []string{"execution", "metric", "value", "units", "tool", "execution.nprocs"}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Errorf("columns = %v", res.Columns)
	}
	// Sorted descending by value: 3.5 then 2.5; attribute column filled.
	if res.Rows[0][2] != "3.5" || res.Rows[1][2] != "2.5" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Rows[0][5] != "8" {
		t.Errorf("attribute cell = %q, want 8", res.Rows[0][5])
	}
}

func TestReports(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("rep", 1))

	var rep ReportResponse
	r, err := http.Get(ts.URL + "/v1/reports/executions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(rep.Items) != 1 || rep.Items[0] != "exec-rep" {
		t.Errorf("executions = %+v", rep)
	}

	var st StatsResponse
	r, err = http.Get(ts.URL + "/v1/reports/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Store.Results != 1 || st.Store.Applications != 1 {
		t.Errorf("stats = %+v", st.Store)
	}

	r, err = http.Get(ts.URL + "/v1/reports/bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report: status %d", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Malformed JSON.
	r, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", r.StatusCode)
	}

	// Bad family spec.
	code, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"nonsense"}}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("bad spec: status %d %s", code, body)
	}

	// Bad PTdf document: rejected AND rolled back.
	r, err = http.Post(ts.URL+"/v1/load", "text/plain",
		strings.NewReader("Application half\nPerfResult nope /ghost(primary) t m 1 u\n"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad PTdf: status %d", r.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" || er.RequestID == "" {
		t.Errorf("error body = %s", raw)
	}
	var st StatsResponse
	if _, err := http.Get(ts.URL + "/v1/reports/stats"); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/query", QueryRequest{}, nil)
	rr, err := http.Get(ts.URL + "/v1/reports/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(rr.Body).Decode(&st)
	rr.Body.Close()
	if st.Store.Applications != 0 {
		t.Errorf("failed load left data: %+v", st.Store)
	}
}

func TestReadOnlyRejectsLoad(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.ReadOnly = true })
	r, err := http.Post(ts.URL+"/v1/load", "text/plain", strings.NewReader(ptdfDoc("ro", 1)))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Errorf("read-only load: status %d, want 403", r.StatusCode)
	}
	var h HealthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if !h.ReadOnly || h.Status != "ok" {
		t.Errorf("health = %+v", h)
	}
}

// TestSheddingUnderLoad pins MaxInFlight to 1, parks that slot on a load
// whose body never finishes, and checks that the next API request is
// shed with 429 + Retry-After while /healthz (unlimited) still answers.
func TestSheddingUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })

	pr, pw := io.Pipe()
	started := make(chan struct{})
	loadErr := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/load", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		loadErr <- err
	}()
	// Feed the first bytes so the handler is definitely inside LoadPTdf,
	// holding the in-flight slot.
	go func() {
		pw.Write([]byte("Application slow\n"))
		close(started)
	}()
	<-started

	// The slot is taken: queries must be shed quickly.
	deadline := time.Now().Add(2 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(QueryRequest{Families: []string{"type=application"}})
		r, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		code := r.StatusCode
		retryAfter := r.Header.Get("Retry-After")
		r.Body.Close()
		if code == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Error("429 without Retry-After")
			}
			shed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !shed {
		t.Error("no request was shed with MaxInFlight=1 and a stuck load")
	}

	// Health stays reachable while the API is saturated.
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz during saturation: status %d", r.StatusCode)
	}

	pw.Close() // EOF finishes the stuck load
	if err := <-loadErr; err != nil {
		t.Fatalf("stuck load failed: %v", err)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("m", 1))
	postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, nil)

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	body := string(raw)
	for _, want := range []string{
		`ptserved_requests_total{route="/v1/load",code="200"} 1`,
		`ptserved_requests_total{route="/v1/query",code="200"} 1`,
		`ptserved_request_duration_seconds_count{route="/v1/load"} 1`,
		"ptserved_in_flight_requests",
		"ptserved_requests_shed_total 0",
		"ptserved_store_generation",
		"ptserved_query_cache_misses",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "fixed-id-123")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got := r.Header.Get("X-Request-Id"); got != "fixed-id-123" {
		t.Errorf("request id = %q", got)
	}
	// Generated when absent.
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.Header.Get("X-Request-Id") == "" {
		t.Error("no generated request id")
	}
}

// TestShutdownDrainsAndCheckpoints runs a real listener over a file-backed
// store, ingests over the network, then shuts down: the WAL must be
// truncated into a snapshot and a reopened store must serve the data.
func TestShutdownDrainsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := datastore.Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Checkpointer: fe})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	loadDoc(t, base, ptdfDoc("shut", 3))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}

	// Checkpoint happened: snapshot exists, WAL truncated.
	if fi, err := os.Stat(filepath.Join(dir, "perftrack.snap")); err != nil || fi.Size() == 0 {
		t.Errorf("snapshot after shutdown: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "perftrack.wal")); err != nil || fi.Size() != 0 {
		t.Errorf("WAL not truncated after shutdown: %v size=%d", err, fi.Size())
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := datastore.Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Results != 3 || st.Applications != 1 {
		t.Errorf("reopened store stats = %+v", st)
	}
}
