package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// doTagged issues a request carrying a fixed X-Request-Id so the
// resulting trace can be fetched back by ID.
func doTagged(t *testing.T, method, url, rid string, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", rid)
	if method == http.MethodPost && strings.HasPrefix(body, "{") {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getTrace(t *testing.T, baseURL, rid string) (TraceResponse, int) {
	t.Helper()
	r, err := http.Get(baseURL + "/v1/debug/traces/" + rid)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var tr TraceResponse
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r.StatusCode
}

func spanNames(tr TraceResponse) map[string]SpanWire {
	out := make(map[string]SpanWire, len(tr.Spans))
	for _, sp := range tr.Spans {
		out[sp.Name] = sp
	}
	return out
}

// TestTraceByRequestID is the acceptance check for the tracing tentpole:
// a request tagged with X-Request-Id must be retrievable at
// /v1/debug/traces/{id} with the named datastore spans recorded under
// the request's root span.
func TestTraceByRequestID(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// A traced load records the PTdf decode and the batch commit.
	r := doTagged(t, http.MethodPost, ts.URL+"/v1/load", "rid-load-1", ptdfDoc("tr", 3))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d", r.StatusCode)
	}
	tr, code := getTrace(t, ts.URL, "rid-load-1")
	if code != http.StatusOK {
		t.Fatalf("trace fetch: status %d", code)
	}
	if tr.Trace.ID != "rid-load-1" || tr.Trace.Route != "/v1/load" {
		t.Errorf("trace summary = %+v", tr.Trace)
	}
	spans := spanNames(tr)
	root, ok := spans["/v1/load"]
	if !ok || root.Parent != -1 {
		t.Fatalf("no root span: %+v", tr.Spans)
	}
	if root.Annotations["status"] != "200" || root.Annotations["method"] != "POST" {
		t.Errorf("root annotations = %v", root.Annotations)
	}
	for _, want := range []string{"datastore.load.decode", "datastore.batch.commit"} {
		sp, ok := spans[want]
		if !ok {
			t.Errorf("trace missing span %q; have %v", want, tr.Spans)
			continue
		}
		if sp.Parent < 0 || sp.Parent >= len(tr.Spans) {
			t.Errorf("span %q has bad parent %d", want, sp.Parent)
		}
	}
	if commit := spans["datastore.batch.commit"]; commit.Annotations["records"] != "8" {
		t.Errorf("commit records annotation = %v", commit.Annotations)
	}

	// A traced query records the pr-filter evaluation and family lookups,
	// annotated with the cache outcome.
	body, _ := json.Marshal(QueryRequest{Families: []string{"type=application"}})
	r = doTagged(t, http.MethodPost, ts.URL+"/v1/query", "rid-query-1", string(body))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	tr, code = getTrace(t, ts.URL, "rid-query-1")
	if code != http.StatusOK {
		t.Fatalf("query trace: status %d", code)
	}
	spans = spanNames(tr)
	for _, want := range []string{"datastore.filter", "datastore.prfilter", "datastore.family"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("query trace missing span %q; have %v", want, tr.Spans)
		}
	}
	if c := spans["datastore.family"].Annotations["cache"]; c != "hit" && c != "miss" {
		t.Errorf("family span cache annotation = %q", c)
	}

	// A traced retrieval records the materializer phases.
	body, _ = json.Marshal(ResultsRequest{Families: []string{"type=application"}})
	r = doTagged(t, http.MethodPost, ts.URL+"/v1/results", "rid-results-1", string(body))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	tr, code = getTrace(t, ts.URL, "rid-results-1")
	if code != http.StatusOK {
		t.Fatalf("results trace: status %d", code)
	}
	spans = spanNames(tr)
	for _, want := range []string{"materialize.fetch", "materialize.focus", "materialize.assemble"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("results trace missing span %q; have %v", want, tr.Spans)
		}
	}
}

func TestDebugTracesListAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, nil)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	// /healthz is untraced; the list starts empty.
	var list TracesResponse
	r, err = http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list.Traces) != 0 {
		t.Errorf("untraced probe produced traces: %+v", list.Traces)
	}

	loadDoc(t, ts.URL, ptdfDoc("dl", 1))
	body, _ := json.Marshal(QueryRequest{Families: []string{"type=application"}})
	http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))

	r, err = http.Get(ts.URL + "/v1/debug/traces?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	list = TracesResponse{}
	json.NewDecoder(r.Body).Decode(&list)
	r.Body.Close()
	if len(list.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(list.Traces))
	}
	// Newest first: the query came after the load.
	if list.Traces[0].Route != "/v1/query" || list.Traces[0].Spans < 2 {
		t.Errorf("newest trace = %+v", list.Traces[0])
	}

	if _, code := getTrace(t, ts.URL, "never-seen"); code != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", code)
	}
	r, err = http.Get(ts.URL + "/v1/debug/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", r.StatusCode)
	}
}

// TestSelfPTdfRoundTrip is the dog-food check: the telemetry document
// served by /v1/debug/selfptdf must load cleanly into a fresh PerfTrack
// store and be queryable like any other performance data.
func TestSelfPTdfRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("sp", 2))
	body, _ := json.Marshal(QueryRequest{Families: []string{"type=application"}})
	http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))

	r, err := http.Get(ts.URL + "/v1/debug/selfptdf")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("selfptdf: status %d: %s", r.StatusCode, doc)
	}

	fresh, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := fresh.LoadPTdf(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("self-profile does not load: %v\n%s", err, doc)
	}
	if stats.Results == 0 || stats.Apps != 1 || stats.Executions != 1 {
		t.Errorf("self-profile stats = %+v\n%s", stats, doc)
	}

	apps, err := fresh.Applications()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0] != "ptserved" {
		t.Errorf("applications = %v", apps)
	}
	metrics, err := fresh.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var hasLoad, hasCommits bool
	for _, m := range metrics {
		if m == "/v1/load requests" {
			hasLoad = true
		}
		if m == "batch commits" {
			hasCommits = true
		}
	}
	if !hasLoad || !hasCommits {
		t.Errorf("self-profile metrics = %v", metrics)
	}
}
