package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestPlanCacheOverHTTP pins the /v1/sql result cache end to end: a
// repeated query is served from cache with identical bytes, /v1/stats
// reports the counters, and an ingest (generation bump) invalidates.
func TestPlanCacheOverHTTP(t *testing.T) {
	ts := seedTwoExecServer(t)
	req := SQLRequest{SQL: "SELECT execution, count(*), avg(value) FROM performance_result GROUP BY execution ORDER BY execution"}

	var r1, r2 SQLResponse
	code, raw1 := postJSON(t, ts.URL+"/v1/sql", req, &r1)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw1)
	}
	code, raw2 := postJSON(t, ts.URL+"/v1/sql", req, &r2)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw2)
	}
	if raw1 != raw2 {
		t.Fatalf("cache hit changed the response bytes:\n%s\nvs\n%s", raw1, raw2)
	}

	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.PlanCache == nil {
		t.Fatalf("stats missing plan_cache section")
	}
	if st.PlanCache.Hits < 1 || st.PlanCache.Misses < 1 || st.PlanCache.Entries < 1 {
		t.Fatalf("plan_cache counters = %+v, want >=1 hit/miss/entry", *st.PlanCache)
	}

	// Ingest bumps the store generation; the same query must re-execute
	// and see the new rows.
	loadDoc(t, ts.URL, ptdfDoc("c", 5))
	var r3 SQLResponse
	code, raw3 := postJSON(t, ts.URL+"/v1/sql", req, &r3)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw3)
	}
	if len(r3.Rows) != 3 {
		t.Fatalf("post-ingest groups = %d, want 3 (stale cache?): %s", len(r3.Rows), raw3)
	}
}
