// Package server implements ptserved's HTTP/JSON service layer: a
// concurrent network front end over one PerfTrack data store. It exposes
// PTdf ingest, pr-filter match counting, two-step result retrieval, and
// the name-list reports, with an operational envelope of request
// tagging, structured leveled logs, load shedding, per-request timeouts,
// panic recovery, Prometheus-style metrics, context-propagated request
// tracing with debug endpoints, and graceful drain + checkpoint
// shutdown. Only the standard library is used.
package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/obs"
	"perftrack/internal/obs/selfmon"
	"perftrack/internal/planner"
)

// Checkpointer is the subset of reldb.FileEngine the server needs at
// shutdown; a nil Checkpointer (e.g. a pure in-memory store under test)
// skips the checkpoint step.
type Checkpointer interface {
	Checkpoint() error
}

// Config carries the server's dependencies and operational limits.
type Config struct {
	Store        *datastore.Store
	Checkpointer Checkpointer // optional; invoked after drain on Shutdown

	// ReadOnly rejects POST /v1/load with 403.
	ReadOnly bool

	// MaxInFlight bounds concurrently served API requests; excess
	// requests are shed with 429. 0 means the default of 64.
	MaxInFlight int

	// RequestTimeout bounds each API request end to end; 0 means the
	// default of 30s. /healthz and /metrics are exempt.
	RequestTimeout time.Duration

	// Log receives structured key=value lines (one per request plus
	// lifecycle events). Nil falls back to wrapping Logger's writer at
	// info level, or no logging when both are nil.
	Log *obs.Logger

	// Logger is the legacy plain logger; retained so existing callers
	// keep their output destination. When Log is set it wins.
	Logger *log.Logger

	// TraceBuffer bounds how many completed (and, separately, slow)
	// traces are retained for /v1/debug/traces. 0 means the default of
	// 256.
	TraceBuffer int

	// SlowRequestThreshold marks traces at or over this duration as slow
	// (kept in a separate ring and logged at warn level). 0 means the
	// default of 1s; negative disables slow-request detection.
	SlowRequestThreshold time.Duration

	// PlanCacheBytes bounds the /v1/sql result cache (keyed by query
	// text + store generation). 0 means the planner default
	// (planner.DefaultCacheBytes); negative disables the cache.
	PlanCacheBytes int64

	// QueryLogBytes bounds each ring (recent and slow) of the /v1/sql
	// query-profile capture behind GET /v1/debug/queries. 0 means the
	// default of 1 MiB; negative disables capture.
	QueryLogBytes int64

	// SelfMonInterval is the continuous self-diagnosis sampling period:
	// the server snapshots its own telemetry as PTdf executions and
	// GET /v1/debug/selfdiagnose compares recent samples against the
	// rolling baseline. 0 means the default of 15s; negative disables
	// self-monitoring.
	SelfMonInterval time.Duration

	// SelfMonWindow bounds how many telemetry samples the self-monitor
	// retains (older samples age out of its side store). 0 means the
	// default of 64.
	SelfMonWindow int
}

// Server is the ptserved HTTP service.
type Server struct {
	cfg       Config
	store     *datastore.Store
	metrics   *serverMetrics
	tracer    *obs.Tracer
	log       *obs.Logger
	sem       chan struct{}
	httpSrv   *http.Server
	planCache *planner.ResultCache // nil when disabled
	queries   *queryLog            // nil when disabled
	selfmon   *selfmon.Sampler     // nil when disabled

	selfMu   sync.Mutex   // guards selfPrev (interval-delta state)
	selfPrev selfSnapshot // previous self-sample counter snapshot

	// injectDelay stretches every instrumented request by the given
	// nanoseconds — a fault-injection hook for the self-diagnosis tests.
	injectDelay atomic.Int64
}

// New validates the config and builds a Server. The caller serves it via
// Serve/ListenAndServe or mounts Handler() under its own http.Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("server: MaxInFlight must be positive, got %d", cfg.MaxInFlight)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.TraceBuffer == 0 {
		cfg.TraceBuffer = 256
	}
	if cfg.SlowRequestThreshold == 0 {
		cfg.SlowRequestThreshold = time.Second
	}
	logger := cfg.Log
	if logger == nil && cfg.Logger != nil {
		logger = obs.NewLogger(cfg.Logger.Writer(), obs.LevelInfo)
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		metrics: newServerMetrics(),
		log:     logger,
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.PlanCacheBytes >= 0 {
		s.planCache = planner.NewResultCache(cfg.PlanCacheBytes)
		s.metrics.registerPlanCache(s.planCache)
	}
	if cfg.QueryLogBytes >= 0 {
		s.queries = newQueryLog(cfg.QueryLogBytes, cfg.SlowRequestThreshold)
		s.metrics.registerQueryLog(s.queries)
	}
	s.tracer = obs.NewTracer(cfg.TraceBuffer, cfg.SlowRequestThreshold, func(tr *obs.Trace) {
		d := tr.Data()
		s.log.Warn("slow request", "rid", tr.ID(), "route", tr.Name(),
			"dur", d.Duration, "spans", len(d.Spans))
	})
	s.metrics.registerStore(cfg.Store)
	s.metrics.registerTracer(s.tracer)
	if cfg.SelfMonInterval >= 0 {
		if err := s.buildSelfMonitor(); err != nil {
			return nil, err
		}
	}
	s.httpSrv = &http.Server{
		Handler:     s.Handler(),
		ReadTimeout: 0, // streamed loads may upload for a long time
		IdleTimeout: 2 * time.Minute,
		ErrorLog:    cfg.Logger,
	}
	return s, nil
}

// route wires one endpoint with the full middleware stack. Outermost to
// innermost: request-ID tagging, structured logging, tracing, panic
// recovery, metrics instrumentation, load shedding, per-request timeout.
// The limiter sits inside instrumentation so shed requests still appear
// in the 429 counters. `timed` is separate from `limited` because the
// timeout middleware buffers the whole response (and hides
// http.Flusher), which would break streaming endpoints: /v1/load counts
// against the in-flight ceiling but streams NDJSON unbuffered. `traced`
// marks API routes whose requests record a span tree; probe and debug
// endpoints skip tracing so scrapes don't churn the trace rings.
func (s *Server) route(mux *http.ServeMux, pattern, routeName string, limited, timed, traced bool, h http.Handler) {
	if timed {
		h = s.timeout(h)
	}
	if limited {
		h = s.limit(h)
	}
	h = s.instrument(routeName, h)
	h = s.recoverPanics(h)
	if traced {
		h = s.trace(routeName, h)
	}
	h = s.logRequests(routeName, h)
	h = withRequestID(h)
	mux.Handle(pattern, h)
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// /healthz and /metrics bypass the limiter and timeout so probes and
	// scrapes keep answering while the API sheds load.
	s.route(mux, "GET /healthz", "/healthz", false, false, false, http.HandlerFunc(s.handleHealth))
	s.route(mux, "GET /metrics", "/metrics", false, false, false, http.HandlerFunc(s.handleMetrics))
	// /v1/load is limited but not timed: bulk ingest streams per-document
	// status lines, which the buffering TimeoutHandler would swallow, and
	// a large upload may legitimately outlast the request timeout.
	s.route(mux, "POST /v1/load", "/v1/load", true, false, true, http.HandlerFunc(s.handleLoad))
	s.route(mux, "POST /v1/query", "/v1/query", true, true, true, http.HandlerFunc(s.handleQuery))
	// /v1/results is limited but not timed for the same reason as
	// /v1/load: ?stream=1 emits NDJSON through http.Flusher, which the
	// buffering TimeoutHandler would hide, and a full-corpus retrieval
	// may legitimately outlast the request timeout.
	s.route(mux, "POST /v1/results", "/v1/results", true, false, true, http.HandlerFunc(s.handleResults))
	// /v1/sql is limited but not timed: ?stream=1 emits NDJSON through
	// http.Flusher, which the buffering TimeoutHandler would hide.
	s.route(mux, "POST /v1/sql", "/v1/sql", true, false, true, http.HandlerFunc(s.handleSQL))
	s.route(mux, "GET /v1/stats", "/v1/stats", true, true, true, http.HandlerFunc(s.handleStats))
	s.route(mux, "GET /v1/compare", "/v1/compare", true, true, true, http.HandlerFunc(s.handleCompare))
	s.route(mux, "POST /v1/diagnose", "/v1/diagnose", true, true, true, http.HandlerFunc(s.handleDiagnose))
	s.route(mux, "GET /v1/attributes", "/v1/attributes", true, true, true, http.HandlerFunc(s.handleAttributes))
	s.route(mux, "GET /v1/reports/{name}", "/v1/reports", true, true, true, http.HandlerFunc(s.handleReport))
	// Debug surface: untraced (reading traces must not write traces) and
	// unlimited, so diagnosis works while the API sheds load.
	s.route(mux, "GET /v1/debug/traces", "/v1/debug/traces", false, false, false, http.HandlerFunc(s.handleDebugTraces))
	s.route(mux, "GET /v1/debug/traces/{id}", "/v1/debug/trace", false, false, false, http.HandlerFunc(s.handleDebugTrace))
	s.route(mux, "GET /v1/debug/selfptdf", "/v1/debug/selfptdf", false, false, false, http.HandlerFunc(s.handleSelfPTdf))
	s.route(mux, "GET /v1/debug/queries", "/v1/debug/queries", false, false, false, http.HandlerFunc(s.handleDebugQueries))
	s.route(mux, "GET /v1/debug/selfdiagnose", "/v1/debug/selfdiagnose", false, false, false, http.HandlerFunc(s.handleSelfDiagnose))
	return mux
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, mirroring net/http.
func (s *Server) Serve(l net.Listener) error {
	s.log.Info("serving", "addr", l.Addr().String(), "read_only", s.cfg.ReadOnly,
		"max_in_flight", s.cfg.MaxInFlight, "timeout", s.cfg.RequestTimeout)
	if s.selfmon != nil {
		s.selfmon.Start()
	}
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests (bounded by ctx), then checkpoints
// the store so the on-disk snapshot reflects everything ingested over
// the network and the write-ahead log is truncated.
func (s *Server) Shutdown(ctx context.Context) error {
	s.log.Info("shutting down, draining in-flight requests")
	if s.selfmon != nil {
		s.selfmon.Stop()
	}
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	if s.cfg.Checkpointer != nil {
		if err := s.cfg.Checkpointer.Checkpoint(); err != nil {
			return fmt.Errorf("server: checkpoint: %w", err)
		}
		s.log.Info("checkpoint complete")
	}
	return nil
}
