package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/query"
)

// maxRequestBody bounds JSON request bodies. PTdf uploads on /v1/load
// are streamed and exempt.
const maxRequestBody = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeErrorString(w, r, code, err.Error())
}

func writeErrorString(w http.ResponseWriter, r *http.Request, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg, RequestID: RequestIDFromContext(r.Context())})
}

// decodeJSON reads a bounded JSON body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		ReadOnly:   s.cfg.ReadOnly,
		Generation: s.store.Generation(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	es := s.store.QueryEngineStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, []gauge{
		{"ptserved_store_generation", float64(es.Generation)},
		{"ptserved_query_cache_hits", float64(es.CacheHits)},
		{"ptserved_query_cache_misses", float64(es.CacheMisses)},
		{"ptserved_query_cache_entries", float64(es.CacheEntries)},
	})
}

// handleLoad streams a PTdf document from the request body into the
// store. The load is transactional: on a bad record nothing of the
// document remains (datastore.LoadPTdf rolls back), and the 400 reply
// names the failing record.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeErrorString(w, r, http.StatusForbidden, "store is read-only")
		return
	}
	stats, err := s.store.LoadPTdf(r.Body)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.logf("load: %d records (%d results, %d resources) rid=%s",
		stats.Records, stats.Results, stats.Resources, RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, LoadResponse{Stats: stats, Generation: s.store.Generation()})
}

// buildPRFilter parses each family spec, applies it against the store,
// and reports the per-family live counts alongside the assembled
// pr-filter.
func (s *Server) buildPRFilter(specs []string) (core.PRFilter, []FamilyCount, error) {
	prf := core.PRFilter{}
	counts := make([]FamilyCount, 0, len(specs))
	for _, spec := range specs {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			return prf, nil, err
		}
		fam, err := s.store.ApplyFilter(rf)
		if err != nil {
			return prf, nil, fmt.Errorf("family %q: %w", spec, err)
		}
		n, err := s.store.CountFamilyMatches(fam)
		if err != nil {
			return prf, nil, fmt.Errorf("family %q: %w", spec, err)
		}
		counts = append(counts, FamilyCount{Spec: spec, Resources: fam.Size(), Matches: n})
		prf.Families = append(prf.Families, fam)
	}
	return prf, counts, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	prf, counts, err := s.buildPRFilter(req.Families)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	total, err := s.store.CountMatches(prf)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	es := s.store.QueryEngineStats()
	writeJSON(w, http.StatusOK, QueryResponse{
		Families:    counts,
		Matches:     total,
		Generation:  es.Generation,
		CacheHits:   es.CacheHits,
		CacheMisses: es.CacheMisses,
	})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Limit < 0 {
		writeErrorString(w, r, http.StatusBadRequest, "limit must be >= 0")
		return
	}
	prf, _, err := s.buildPRFilter(req.Families)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	tbl, err := query.Retrieve(s.store, prf)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if req.Metric != "" {
		tbl.FilterMetric(req.Metric)
	}
	for _, col := range req.AddColumns {
		if err := tbl.AddColumn(core.TypePath(col), false); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	for _, spec := range req.AddAttributes {
		i := strings.LastIndexByte(spec, '.')
		if i <= 0 {
			writeErrorString(w, r, http.StatusBadRequest,
				fmt.Sprintf("bad attribute column %q, want type.attribute", spec))
			return
		}
		if err := tbl.AddAttributeColumn(core.TypePath(spec[:i]), spec[i+1:]); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	if req.SortBy != "" {
		tbl.SortBy(req.SortBy, req.Descending)
	}

	cols := tbl.Columns()
	total := len(tbl.Rows)
	rows := tbl.Rows
	if req.Limit > 0 && len(rows) > req.Limit {
		rows = rows[:req.Limit]
	}
	out := make([][]string, 0, len(rows))
	for _, row := range rows {
		cells := make([]string, len(cols))
		for j, c := range cols {
			cells[j] = tbl.Cell(row, c)
		}
		out = append(out, cells)
	}
	writeJSON(w, http.StatusOK, ResultsResponse{Columns: cols, Rows: out, Total: total})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var items []string
	switch name {
	case "executions":
		items = s.store.Executions()
	case "metrics":
		items = s.store.Metrics()
	case "applications":
		items = s.store.Applications()
	case "tools":
		items = s.store.Tools()
	case "stats":
		writeJSON(w, http.StatusOK, StatsResponse{
			Store:  s.store.Stats(),
			Engine: s.store.QueryEngineStats(),
		})
		return
	default:
		writeErrorString(w, r, http.StatusNotFound,
			fmt.Sprintf("unknown report %q (want executions, metrics, applications, tools, or stats)", name))
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{Report: name, Items: items})
}
