package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"

	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/planner"
	"perftrack/internal/query"
)

// maxRequestBody bounds JSON request bodies. PTdf uploads on /v1/load
// are streamed and exempt.
const maxRequestBody = 1 << 20

// maxBulkWorkers caps the per-request decode parallelism a client may ask
// for on a multi-document load.
const maxBulkWorkers = 32

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// statusOf maps a store error class onto an HTTP status: missing
// entities are 404, identity conflicts 409, malformed input 400, and
// anything unclassified keeps the handler's fallback.
func statusOf(err error, fallback int) int {
	switch {
	case errors.Is(err, datastore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, datastore.ErrExists):
		return http.StatusConflict
	case errors.Is(err, datastore.ErrBadSpec):
		return http.StatusBadRequest
	}
	return fallback
}

func writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeErrorString(w, r, statusOf(err, code), err.Error())
}

func writeErrorString(w http.ResponseWriter, r *http.Request, code int, msg string) {
	writeJSON(w, code, ErrorResponse{APIVersion: APIVersion, Error: msg, RequestID: RequestIDFromContext(r.Context())})
}

// decodeJSON reads a bounded JSON body into v. Decoding is strict:
// unknown fields are a 400, part of the v1 wire contract.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		APIVersion: APIVersion,
		Status:     "ok",
		ReadOnly:   s.cfg.ReadOnly,
		Generation: s.store.Generation(),
	})
}

// handleMetrics serves the exposition, content-negotiated on Accept:
// scrapers that accept application/openmetrics-text get the OpenMetrics
// body (histogram exemplars, terminating "# EOF"); everyone else gets
// the plain 0.0.4 format, which must stay exemplar-free because that
// parser rejects trailing content after a sample value.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.metrics.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}

// acceptsOpenMetrics reports whether an Accept header offers the
// OpenMetrics media type with a non-zero quality.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil || mt != "application/openmetrics-text" {
			continue
		}
		if q, ok := params["q"]; ok {
			if v, err := strconv.ParseFloat(q, 64); err == nil && v <= 0 {
				continue
			}
		}
		return true
	}
	return false
}

// handleLoad ingests PTdf. A plain body is one document, applied
// transactionally (one batch commit) with a JSON LoadResponse. A
// multipart body is a stream of documents: parts decode in parallel
// (bounded by the j query parameter, capped at maxBulkWorkers) and
// commit one batch each in part order, and the response streams one
// NDJSON status line per document plus a Done summary line. Failure is
// per document — a bad part rolls back alone and the remaining parts
// still commit.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		writeErrorString(w, r, http.StatusForbidden, "store is read-only")
		return
	}
	ct, params, ctErr := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ctErr == nil && strings.HasPrefix(ct, "multipart/") {
		s.handleBulkLoad(w, r, params["boundary"])
		return
	}
	stats, err := s.store.LoadPTdfCtx(r.Context(), r.Body)
	if err != nil {
		// Within an uploaded document, dangling references are the
		// document's fault, not a missing URI: report 400, not 404.
		code := http.StatusBadRequest
		if errors.Is(err, datastore.ErrExists) {
			code = http.StatusConflict
		}
		writeErrorString(w, r, code, err.Error())
		return
	}
	s.log.Info("load", "records", stats.Records, "results", stats.Results,
		"resources", stats.Resources, "rid", RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, LoadResponse{APIVersion: APIVersion, Stats: stats, Generation: s.store.Generation()})
}

// bulkWorkers parses the j query parameter.
func bulkWorkers(q url.Values) (int, error) {
	raw := q.Get("j")
	if raw == "" {
		return min(runtime.GOMAXPROCS(0), maxBulkWorkers), nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad j parameter %q, want a positive integer", raw)
	}
	return min(n, maxBulkWorkers), nil
}

func (s *Server) handleBulkLoad(w http.ResponseWriter, r *http.Request, boundary string) {
	if boundary == "" {
		writeErrorString(w, r, http.StatusBadRequest, "multipart load without boundary")
		return
	}
	workers, err := bulkWorkers(r.URL.Query())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	mr := multipart.NewReader(r.Body, boundary)
	parts := 0
	// Parts must be read sequentially off the request body, so each is
	// buffered before being handed to a parallel decode worker; the
	// pipeline's bounded window (2×workers documents) is the memory bound.
	next := func() (string, io.ReadCloser, error) {
		part, err := mr.NextPart()
		if err != nil {
			return "", nil, err // io.EOF ends the stream; anything else aborts it
		}
		parts++
		name := part.FileName()
		if name == "" {
			name = part.FormName()
		}
		if name == "" {
			name = fmt.Sprintf("doc-%d", parts)
		}
		buf, err := io.ReadAll(part)
		if err != nil {
			return "", nil, fmt.Errorf("reading part %q: %w", name, err)
		}
		return name, io.NopCloser(bytes.NewReader(buf)), nil
	}

	var total datastore.LoadStats
	docs, failed := 0, 0
	srcErr := s.store.BulkLoadStreamCtx(r.Context(), next, workers, func(dr datastore.DocResult) {
		docs++
		line := LoadDocStatus{APIVersion: APIVersion, Doc: dr.Name}
		if dr.Err != nil {
			failed++
			line.Error = dr.Err.Error()
		} else {
			total.Add(dr.Stats)
			line.Stats = dr.Stats
			line.Generation = s.store.Generation()
		}
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	})
	summary := LoadDocStatus{
		APIVersion: APIVersion,
		Done:       true,
		Docs:       docs,
		Failed:     failed,
		Stats:      total,
		Generation: s.store.Generation(),
	}
	if srcErr != nil && srcErr != io.EOF {
		summary.Error = srcErr.Error()
	}
	enc.Encode(summary)
	s.log.Info("bulk load", "docs", docs, "failed", failed,
		"records", total.Records, "j", workers, "rid", RequestIDFromContext(r.Context()))
}

// buildPRFilter parses each family spec, applies it against the store,
// and reports the per-family live counts alongside the assembled
// pr-filter.
func (s *Server) buildPRFilter(ctx context.Context, specs []string) (core.PRFilter, []FamilyCount, error) {
	prf := core.PRFilter{}
	counts := make([]FamilyCount, 0, len(specs))
	for _, spec := range specs {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			return prf, nil, fmt.Errorf("%w: %w", err, datastore.ErrBadSpec)
		}
		fam, err := s.store.ApplyFilterCtx(ctx, rf)
		if err != nil {
			return prf, nil, fmt.Errorf("family %q: %w", spec, err)
		}
		n, err := s.store.CountFamilyMatchesCtx(ctx, fam)
		if err != nil {
			return prf, nil, fmt.Errorf("family %q: %w", spec, err)
		}
		counts = append(counts, FamilyCount{Spec: spec, Resources: fam.Size(), Matches: n})
		prf.Families = append(prf.Families, fam)
	}
	return prf, counts, nil
}

// selectionParts merges the unified Select spec with an endpoint's
// legacy top-level families list: the full family-spec list plus the
// execution restriction. Every selection-taking handler converges here,
// so the old and new spellings cannot drift apart.
func selectionParts(sel *Selection, legacyFamilies []string) (families, executions []string) {
	families = append(families, legacyFamilies...)
	if sel != nil {
		families = append(families, sel.Families...)
	}
	return families, sel.ExecutionList()
}

// executionResultIDs unions the sorted result-ID lists of the named
// executions. An unknown execution is ErrNotFound (404 on the wire).
func (s *Server) executionResultIDs(execs []string) ([]int64, error) {
	var out []int64
	for _, e := range execs {
		ids, err := s.store.ExecutionResultIDs(e)
		if err != nil {
			return nil, err
		}
		out = unionSorted(out, ids)
	}
	return out, nil
}

// unionSorted merges two ascending ID lists, dropping duplicates.
func unionSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// intersectSorted intersects two ascending ID lists.
func intersectSorted(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	families, execs := selectionParts(req.Select, req.Families)
	prf, counts, err := s.buildPRFilter(r.Context(), families)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	var total int
	if len(execs) == 0 {
		total, err = s.store.CountMatchesCtx(r.Context(), prf)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
	} else {
		ids, err := s.store.MatchingResultIDsCtx(r.Context(), prf)
		if err != nil {
			writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
			return
		}
		restrict, err := s.executionResultIDs(execs)
		if err != nil {
			writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
			return
		}
		total = len(intersectSorted(ids, restrict))
	}
	es := s.store.QueryEngineStats()
	resp := QueryResponse{
		APIVersion:  APIVersion,
		Families:    counts,
		Matches:     total,
		Generation:  es.Generation,
		CacheHits:   es.CacheHits,
		CacheMisses: es.CacheMisses,
	}
	if req.Explain {
		resp.Plan = planner.PRFilterPlan(s.store, execs, families, total)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Limit < 0 {
		writeErrorString(w, r, http.StatusBadRequest, "limit must be >= 0")
		return
	}
	families, execs := selectionParts(req.Select, req.Families)
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		s.handleResultsStream(w, r, req, families, execs)
		return
	}
	if req.Cursor != "" && req.Limit <= 0 {
		writeErrorString(w, r, http.StatusBadRequest, "cursor requires a positive limit")
		return
	}
	prf, _, err := s.buildPRFilter(r.Context(), families)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	tbl, err := query.RetrieveCtx(r.Context(), s.store, prf)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if len(execs) > 0 {
		keep := make(map[string]bool, len(execs))
		for _, e := range execs {
			keep[e] = true
		}
		tbl.FilterRows(func(row *query.Row) bool { return keep[row.Execution] })
	}
	if req.Metric != "" {
		tbl.FilterMetric(req.Metric)
	}
	for _, col := range req.AddColumns {
		if err := tbl.AddColumn(core.TypePath(col), false); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	for _, spec := range req.AddAttributes {
		i := strings.LastIndexByte(spec, '.')
		if i <= 0 {
			writeErrorString(w, r, http.StatusBadRequest,
				fmt.Sprintf("bad attribute column %q, want type.attribute", spec))
			return
		}
		if err := tbl.AddAttributeColumn(core.TypePath(spec[:i]), spec[i+1:]); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	if req.SortBy != "" {
		tbl.SortBy(req.SortBy, req.Descending)
	}

	cols := tbl.Columns()
	total := len(tbl.Rows)
	rows := tbl.Rows

	// Pagination: the cursor is bound to the refinements (but not the
	// page size) via a fingerprint, so a cursor replayed against a
	// different query is a 400 rather than a silently wrong page.
	sigFields := append([]string{strconv.Itoa(len(families))}, families...)
	sigFields = append(sigFields, execs...)
	sigFields = append(sigFields, req.Metric,
		strings.Join(req.AddColumns, ","), strings.Join(req.AddAttributes, ","),
		req.SortBy, strconv.FormatBool(req.Descending))
	sig := cursorSig(sigFields...)
	offset := 0
	if req.Cursor != "" {
		parts, err := decodeCursor(req.Cursor, "r1", 3)
		if err != nil {
			writeErrorString(w, r, http.StatusBadRequest, err.Error())
			return
		}
		off, convErr := strconv.Atoi(parts[1])
		if convErr != nil || off < 0 {
			writeErrorString(w, r, http.StatusBadRequest, "bad cursor")
			return
		}
		if parts[2] != sig {
			writeErrorString(w, r, http.StatusBadRequest, "cursor does not match this request")
			return
		}
		offset = min(off, len(rows))
	}
	rows = rows[offset:]
	next := ""
	if req.Limit > 0 && len(rows) > req.Limit {
		rows = rows[:req.Limit]
		next = encodeCursor("r1", strconv.Itoa(offset+req.Limit), sig)
	}
	out := make([][]string, 0, len(rows))
	for _, row := range rows {
		cells := make([]string, len(cols))
		for j, c := range cols {
			cells[j] = tbl.Cell(row, c)
		}
		out = append(out, cells)
	}
	writeJSON(w, http.StatusOK, ResultsResponse{
		APIVersion: APIVersion, Columns: cols, Rows: out, Total: total, NextCursor: next,
	})
}

// errStreamLimit aborts MaterializeStream once the row limit is reached.
var errStreamLimit = errors.New("stream limit reached")

// resultStreamChunk bounds how many results are materialized (and held
// in memory) per emitted NDJSON burst.
const resultStreamChunk = 2048

// handleResultsStream is POST /v1/results?stream=1: evaluate the
// pr-filter once, then materialize and emit matching results in bounded
// chunks as NDJSON, so neither side holds a full-corpus retrieval in
// memory. Refinements that need the whole result set (sorting, added
// columns) are rejected; the metric filter and row limit apply per row.
func (s *Server) handleResultsStream(w http.ResponseWriter, r *http.Request, req ResultsRequest, families, execs []string) {
	if len(req.AddColumns) > 0 || len(req.AddAttributes) > 0 || req.SortBy != "" {
		writeErrorString(w, r, http.StatusBadRequest,
			"stream=1 supports selection, metric, and limit only (sorting and added columns need the full result set)")
		return
	}
	if req.Cursor != "" {
		writeErrorString(w, r, http.StatusBadRequest, "stream=1 does not paginate; use limit, or the buffered form with a cursor")
		return
	}
	prf, _, err := s.buildPRFilter(r.Context(), families)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ids, err := s.store.MatchingResultIDsCtx(r.Context(), prf)
	if err != nil {
		writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
		return
	}
	if len(execs) > 0 {
		restrict, err := s.executionResultIDs(execs)
		if err != nil {
			writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
			return
		}
		ids = intersectSorted(ids, restrict)
	}
	total := len(ids)
	if req.Metric == "" && req.Limit > 0 && len(ids) > req.Limit {
		ids = ids[:req.Limit]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := newNDJSON(w)
	defer enc.Release()
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(ResultStreamLine{APIVersion: APIVersion, Columns: query.FixedColumns, Total: total}); err != nil {
		return
	}
	flush()
	emitted := 0
	var row ResultRow // reused across lines; only Resources' backing array survives a reset
	err = s.store.MaterializeStreamCtx(r.Context(), ids, datastore.MaterializeOptions{ChunkSize: resultStreamChunk},
		func(batch []*core.PerformanceResult) error {
			for _, pr := range batch {
				if req.Metric != "" && pr.Metric != req.Metric {
					continue
				}
				row = ResultRow{
					Execution: pr.Execution,
					Metric:    pr.Metric,
					Value:     pr.Value,
					Units:     pr.Units,
					Tool:      pr.Tool,
					Resources: row.Resources[:0],
				}
				for _, res := range pr.AllResources() {
					row.Resources = append(row.Resources, string(res))
				}
				if err := enc.Encode(ResultStreamLine{APIVersion: APIVersion, Row: &row}); err != nil {
					return err
				}
				emitted++
				if req.Limit > 0 && emitted >= req.Limit {
					return errStreamLimit
				}
			}
			flush()
			return nil
		})
	if err != nil && !errors.Is(err, errStreamLimit) {
		// Headers are gone; all we can do is report in-band and stop
		// before the Done line so the client sees a truncated stream.
		s.log.Warn("results stream aborted", "err", err, "rid", RequestIDFromContext(r.Context()))
		enc.Encode(ResultStreamLine{APIVersion: APIVersion, Error: err.Error()})
		flush()
		return
	}
	enc.Encode(ResultStreamLine{APIVersion: APIVersion, Done: true, Rows: emitted})
	flush()
	s.log.Debug("results stream", "rows", emitted, "total", total, "rid", RequestIDFromContext(r.Context()))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.store.Engine().Stats()
	resp := StatsResponse{
		APIVersion: APIVersion,
		Store:      s.store.Stats(),
		Engine:     s.store.QueryEngineStats(),
		Storage:    StorageStats{Kind: es.Kind, Engine: es},
		Statistics: s.store.TableStatistics(),
	}
	if se, ok := s.store.Engine().(segmentStatser); ok {
		if st := se.SegmentStats(); st.Enabled {
			resp.Storage.Segments = &st
		}
	}
	if s.planCache != nil {
		pc := s.planCache.Stats()
		resp.PlanCache = &pc
	}
	writeJSON(w, http.StatusOK, resp)
}

// finite maps NaN and ±Inf — which JSON cannot carry — to 0.
func finite(f float64) float64 {
	if f != f || f > 1e308 || f < -1e308 {
		return 0
	}
	return f
}

func wirePair(p compare.Pair) ComparePair {
	wp := ComparePair{
		Metric:     p.Metric,
		A:          finite(p.A),
		B:          finite(p.B),
		Units:      p.Units,
		Difference: finite(p.Difference()),
		Ratio:      finite(p.Ratio()),
		Speedup:    finite(p.Speedup()),
	}
	for _, r := range p.Context {
		wp.Context = append(wp.Context, string(r))
	}
	return wp
}

// handleCompare wraps compare.Executions: GET /v1/compare?a=&b= with
// optional metric, threshold (default 0.10), and top (default 10)
// parameters. An unknown execution is a 404.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "a", "b", "metric", "threshold", "top":
		default:
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("unknown query parameter %q", key))
			return
		}
	}
	a, b := q.Get("a"), q.Get("b")
	if a == "" || b == "" {
		writeErrorString(w, r, http.StatusBadRequest, "a and b query parameters are required")
		return
	}
	threshold := 0.10
	if raw := q.Get("threshold"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad threshold %q", raw))
			return
		}
		threshold = v
	}
	top := 10
	if raw := q.Get("top"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad top %q", raw))
			return
		}
		top = v
	}

	cmp, err := compare.Executions(s.store, a, b)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	metric := q.Get("metric")
	if metric != "" {
		cmp = cmp.FilterMetric(metric)
	}
	sum := cmp.Summarize()
	resp := CompareResponse{
		APIVersion: APIVersion,
		ExecA:      a,
		ExecB:      b,
		Summary: CompareSummary{
			Paired:       sum.Paired,
			OnlyA:        sum.OnlyA,
			OnlyB:        sum.OnlyB,
			GeoMeanRatio: finite(sum.GeoMeanRatio),
			MeanDiff:     finite(sum.MeanDiff),
		},
	}
	for _, p := range cmp.Pairs {
		resp.Pairs = append(resp.Pairs, wirePair(p))
	}
	for _, reg := range cmp.Regressions(threshold) {
		resp.Regressions = append(resp.Regressions, CompareDelta{Pair: wirePair(reg.Pair), Percent: finite(reg.Percent)})
	}
	for _, imp := range cmp.Improvements(threshold) {
		resp.Improvements = append(resp.Improvements, CompareDelta{Pair: wirePair(imp.Pair), Percent: finite(imp.Percent)})
	}
	for _, f := range cmp.DiagnoseBottlenecks(metric, top) {
		resp.Bottlenecks = append(resp.Bottlenecks, CompareFinding{
			Pair: wirePair(f.Pair), Delta: finite(f.Delta), Contribution: finite(f.Contribution),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var (
		items []string
		err   error
	)
	switch name {
	case "executions":
		items, err = s.store.Executions()
	case "metrics":
		items, err = s.store.Metrics()
	case "applications":
		items, err = s.store.Applications()
	case "tools":
		items, err = s.store.Tools()
	case "stats":
		// Kept for wire compatibility; GET /v1/stats is the primary form.
		s.handleStats(w, r)
		return
	default:
		writeErrorString(w, r, http.StatusNotFound,
			fmt.Sprintf("unknown report %q (want executions, metrics, applications, tools, or stats)", name))
		return
	}
	if err != nil {
		writeError(w, r, statusOf(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{APIVersion: APIVersion, Report: name, Items: items})
}
