package server

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"

	"perftrack/internal/obs"
	"perftrack/internal/obs/selfmon"
)

// This file wires the continuous self-diagnosis loop: the selfmon
// sampler snapshots the server's own telemetry on an interval, each
// snapshot becomes a PTdf execution in an in-memory side store, and
// GET /v1/debug/selfdiagnose runs internal/diagnose over the rolling
// baseline-vs-recent split. The cumulative snapshot behind
// /v1/debug/selfptdf shares the same Sample/WriteDoc path.

// hostname names the grid/machine resource in self-profiles.
func hostname() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		return "localhost"
	}
	return host
}

// selfSnapshot is the cumulative counter state one interval sample
// diffs against.
type selfSnapshot struct {
	routeCount map[string]uint64
	routeSum   map[string]float64
	slowTraces uint64
	shed       uint64
	planHits   uint64
	planMisses uint64
	generation uint64
}

func (s *Server) takeSelfSnapshot() selfSnapshot {
	snap := selfSnapshot{
		routeCount: make(map[string]uint64),
		routeSum:   make(map[string]float64),
		shed:       s.metrics.shed.Value(),
		generation: s.store.Generation(),
	}
	s.metrics.latency.Each(func(values []string, h *obs.Histogram) {
		snap.routeCount[values[0]] = h.Count()
		snap.routeSum[values[0]] = h.Sum()
	})
	_, _, slowN, _ := s.tracer.Stats()
	snap.slowTraces = slowN
	if s.planCache != nil {
		st := s.planCache.Stats()
		snap.planHits, snap.planMisses = st.Hits, st.Misses
	}
	return snap
}

// collectSelfSample is the sampler's Collect hook: one interval sample
// of server behaviour. Time-like metrics are interval means (this
// window's requests only, so a latency shift shows up immediately
// instead of being averaged into history); operational attributes are
// numeric strings, joining the diagnosis engine's threshold-predicate
// space — a diagnosis can answer not just "recent samples are slower"
// but "...and they are exactly the samples where shed_delta >= 1".
func (s *Server) collectSelfSample() selfmon.Sample {
	s.selfMu.Lock()
	defer s.selfMu.Unlock()
	cur := s.takeSelfSnapshot()
	prev := s.selfPrev
	s.selfPrev = cur

	var sm selfmon.Sample
	routes := make([]string, 0, len(cur.routeCount))
	for route := range cur.routeCount {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	var dCount uint64
	var dSum float64
	for _, route := range routes {
		dc := cur.routeCount[route] - prev.routeCount[route]
		if dc == 0 {
			continue
		}
		ds := cur.routeSum[route] - prev.routeSum[route]
		sm.Metrics = append(sm.Metrics, selfmon.Metric{
			Name: route + " latency mean", Value: ds / float64(dc), Units: "seconds",
		})
		dCount += dc
		dSum += ds
	}
	if dCount > 0 {
		sm.Metrics = append(sm.Metrics, selfmon.Metric{
			Name: "request latency mean", Value: dSum / float64(dCount), Units: "seconds",
		})
	}
	sm.Metrics = append(sm.Metrics, selfmon.Metric{
		Name: "requests", Value: float64(dCount), Units: "requests",
	})

	attr := func(k, v string) { sm.Attrs = append(sm.Attrs, [2]string{k, v}) }
	attr("requests_delta", strconv.FormatUint(dCount, 10))
	attr("slow_traces_delta", strconv.FormatUint(cur.slowTraces-prev.slowTraces, 10))
	attr("shed_delta", strconv.FormatUint(cur.shed-prev.shed, 10))
	if s.planCache != nil {
		attr("plan_cache_hits_delta", strconv.FormatUint(cur.planHits-prev.planHits, 10))
		attr("plan_cache_misses_delta", strconv.FormatUint(cur.planMisses-prev.planMisses, 10))
	}
	attr("in_flight", strconv.FormatInt(int64(s.metrics.inFlight.Value()), 10))
	attr("goroutines", strconv.Itoa(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	attr("heap_mb", strconv.FormatUint(ms.HeapAlloc>>20, 10))
	attr("store_generation", strconv.FormatUint(cur.generation, 10))
	return sm
}

// selfPTdfSample snapshots cumulative telemetry: the per-route latency
// distributions, store counters, and tracer totals that
// /v1/debug/selfptdf has always exported.
func (s *Server) selfPTdfSample() selfmon.Sample {
	var sm selfmon.Sample
	add := func(name string, v float64, units string) {
		sm.Metrics = append(sm.Metrics, selfmon.Metric{Name: name, Value: v, Units: units})
	}

	s.metrics.latency.Each(func(values []string, h *obs.Histogram) {
		route := values[0]
		if h.Count() == 0 {
			return
		}
		add(route+" requests", float64(h.Count()), "requests")
		add(route+" latency sum", h.Sum(), "seconds")
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
			add(route+" latency "+q.name, h.Quantile(q.q), "seconds")
		}
	})

	tel := s.store.Telemetry()
	add("batch commits", float64(tel.BatchCommits), "batches")
	add("batch rollbacks", float64(tel.BatchRollbacks), "batches")
	add("wal flushes", float64(tel.WALFlushes), "flushes")
	add("records loaded", float64(tel.RecordsLoaded), "records")
	add("match cache hits", float64(tel.MatchCacheHits), "hits")
	add("match cache misses", float64(tel.MatchCacheMisses), "misses")
	add("focus cache hits", float64(tel.FocusCacheHits), "hits")
	add("focus cache misses", float64(tel.FocusCacheMisses), "misses")
	add("materializations", float64(tel.Materializations), "chunks")
	add("results read", float64(tel.ResultsRead), "results")

	started, completed, slowN, spans := s.tracer.Stats()
	add("traces started", float64(started), "traces")
	add("traces completed", float64(completed), "traces")
	add("traces slow", float64(slowN), "traces")
	add("spans recorded", float64(spans), "spans")
	return sm
}

// buildSelfMonitor constructs the sampler over the server's telemetry.
func (s *Server) buildSelfMonitor() error {
	sm, err := selfmon.New(selfmon.Config{
		App:      "ptserved",
		Host:     hostname(),
		Interval: s.cfg.SelfMonInterval,
		Window:   s.cfg.SelfMonWindow,
		Collect:  s.collectSelfSample,
		OnError:  func(err error) { s.log.Warn("selfmon sample", "err", err) },
	})
	if err != nil {
		return fmt.Errorf("server: self-monitor: %w", err)
	}
	s.selfmon = sm
	s.metrics.reg.CounterFunc("ptserved_selfmon_samples_total",
		"Self-monitor telemetry samples taken.",
		func() uint64 { return sm.Stats().Samples })
	s.metrics.reg.CounterFunc("ptserved_selfmon_errors_total",
		"Self-monitor samples that failed to serialize or load.",
		func() uint64 { return sm.Stats().Errors })
	s.metrics.reg.GaugeFunc("ptserved_selfmon_retained_samples",
		"Samples resident in the self-monitor's side store window.",
		func() float64 { return float64(sm.Stats().Retained) })
	return nil
}
