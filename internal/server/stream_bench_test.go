package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// discardRW is a ResponseWriter that throws the body away, so the
// benchmarks measure encoding, not transport.
type discardRW struct{ h http.Header }

func (d discardRW) Header() http.Header       { return d.h }
func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (discardRW) WriteHeader(statusCode int)  {}

func benchResult(rows int) *sqldb.Result {
	res := &sqldb.Result{Columns: []string{"id", "metric", "value"}}
	for i := 0; i < rows; i++ {
		res.Rows = append(res.Rows, reldb.Row{
			reldb.Int(int64(i)),
			reldb.Str(fmt.Sprintf("metric-%d", i%16)),
			reldb.Float(float64(i) * 0.25),
		})
	}
	return res
}

// BenchmarkSQLStreamEncode measures the pooled streaming encoder: one
// reused line buffer and one reused row slice per stream.
func BenchmarkSQLStreamEncode(b *testing.B) {
	s := &Server{}
	res := benchResult(1000)
	w := discardRW{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.streamSQL(w, res, SQLRequest{}, nil)
	}
}

// BenchmarkSQLStreamEncodeDirect is the pre-pool baseline: a fresh
// json.Encoder writing to the response and a fresh []any per row. The
// allocs/op delta against BenchmarkSQLStreamEncode is the satellite's
// acceptance evidence.
func BenchmarkSQLStreamEncodeDirect(b *testing.B) {
	res := benchResult(1000)
	w := discardRW{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := json.NewEncoder(w)
		enc.Encode(SQLStreamLine{APIVersion: APIVersion, Columns: res.Columns})
		for _, row := range res.Rows {
			enc.Encode(SQLStreamLine{APIVersion: APIVersion, Row: sqlRow(row)})
		}
		enc.Encode(SQLStreamLine{APIVersion: APIVersion, Done: true, Rows: len(res.Rows)})
	}
}

// BenchmarkResultsStreamEncode measures the pooled encoder on the
// /v1/results line shape with a reused ResultRow.
func BenchmarkResultsStreamEncode(b *testing.B) {
	w := discardRW{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := newNDJSON(w)
		var row ResultRow
		for j := 0; j < 1000; j++ {
			row = ResultRow{
				Execution: "exec-a", Metric: "time", Value: float64(j), Units: "seconds",
				Tool: "tool", Resources: append(row.Resources[:0], "/app", "/SG/SM/batch/n0/p0"),
			}
			if err := enc.Encode(ResultStreamLine{APIVersion: APIVersion, Row: &row}); err != nil {
				b.Fatal(err)
			}
		}
		enc.Release()
	}
}
