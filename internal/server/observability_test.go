package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"perftrack/internal/obs"
)

// postSQL posts one SQLRequest and decodes the buffered response.
func postSQL(t *testing.T, baseURL string, req SQLRequest) SQLResponse {
	t.Helper()
	var resp SQLResponse
	code, raw := postJSON(t, baseURL+"/v1/sql", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("sql: status %d: %s", code, raw)
	}
	return resp
}

// TestSQLAnalyzeAttachesProfile checks the wire split on /v1/sql: plain
// explain stays profile-free, analyze attaches the execution profile
// with actuals that add up.
func TestSQLAnalyzeAttachesProfile(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("an", 6))
	q := "SELECT metric, count(*) FROM performance_result GROUP BY metric ORDER BY metric"

	plain := postSQL(t, ts.URL, SQLRequest{SQL: q, Explain: true})
	if plain.Plan == nil || plain.Plan.Profile != nil {
		t.Fatalf("explain: plan=%v, want plan without profile", plain.Plan)
	}
	an := postSQL(t, ts.URL, SQLRequest{SQL: q, Analyze: true})
	if an.Plan == nil || an.Plan.Profile == nil {
		t.Fatalf("analyze: plan=%v, want plan with profile", an.Plan)
	}
	prof := an.Plan.Profile
	if prof.RowsScanned == 0 || prof.RowsReturned == 0 {
		t.Errorf("profile actuals empty: %+v", prof)
	}
	if prof.ExecNanos <= 0 {
		t.Errorf("ExecNanos = %d, want > 0", prof.ExecNanos)
	}
}

// TestDebugQueriesCapture checks the slow-query ring end to end: every
// /v1/sql execution is captured with its profile and request ID, the
// slow ring keeps only executions over the threshold, and parameters
// are validated.
func TestDebugQueriesCapture(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.SlowRequestThreshold = time.Nanosecond // everything classifies slow
	})
	loadDoc(t, ts.URL, ptdfDoc("qc", 4))

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sql",
		strings.NewReader(`{"sql": "SELECT count(*) FROM performance_result"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-capture")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	// A failing query is captured too, with its error.
	postJSON(t, ts.URL+"/v1/sql", SQLRequest{SQL: "SELEC nope"}, nil)

	for _, slow := range []string{"", "?slow=1"} {
		r, err := http.Get(ts.URL + "/v1/debug/queries" + slow)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("queries%s: status %d: %s", slow, r.StatusCode, raw)
		}
		var resp QueriesResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Queries) == 0 {
			t.Fatalf("queries%s: empty capture", slow)
		}
		if slow == "" {
			// Newest first: the parse error, then the counted query.
			if resp.Queries[0].Error == "" {
				t.Errorf("newest capture missing error: %+v", resp.Queries[0])
			}
			ok := resp.Queries[1]
			if ok.RequestID != "req-capture" || ok.Profile == nil || ok.Rows != 1 || !ok.Slow {
				t.Errorf("captured query = %+v, want req-capture with profile, 1 row, slow", ok)
			}
		}
	}

	st := srv.queries.stats()
	if st.Total != 2 || st.SlowTotal != 2 || st.Entries != 2 {
		t.Errorf("query log stats = %+v, want 2 total, 2 slow, 2 resident", st)
	}

	if code, _ := func() (int, string) {
		r, err := http.Get(ts.URL + "/v1/debug/queries?limit=zero")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		raw, _ := io.ReadAll(r.Body)
		return r.StatusCode, string(raw)
	}(); code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", code)
	}
}

// TestQueryRingEviction pins the byte bound: a ring never grows past
// its budget and evicts oldest-first.
func TestQueryRingEviction(t *testing.T) {
	ring := queryRing{maxBytes: 3 * queryRecordOverhead}
	for i := 0; i < 10; i++ {
		ring.add(queryRecord{SQL: strings.Repeat("x", i)})
	}
	if len(ring.recs) >= 10 {
		t.Fatalf("ring never evicted: %d records", len(ring.recs))
	}
	if ring.bytes > ring.maxBytes+queryRecordOverhead {
		t.Errorf("ring bytes %d exceed budget %d", ring.bytes, ring.maxBytes)
	}
	// Newest survives.
	last := ring.recs[len(ring.recs)-1]
	if len(last.SQL) != 9 {
		t.Errorf("newest record evicted; tail SQL len = %d", len(last.SQL))
	}
}

// TestTimeoutJSONEnvelope pins the raw bytes of the timeout reply: the
// custom timeout middleware must answer expiry with the standard v1
// error envelope (request_id included), not http.TimeoutHandler's
// plain-text body.
func TestTimeoutJSONEnvelope(t *testing.T) {
	srv, _ := newTestServer(t, func(c *Config) { c.RequestTimeout = 10 * time.Millisecond })
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	h := withRequestID(srv.timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	})))
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set("X-Request-Id", "req-timeout")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	want := "{\n  \"api_version\": \"v1\",\n  \"error\": \"request timed out\",\n  \"request_id\": \"req-timeout\"\n}\n"
	if got := rec.Body.String(); got != want {
		t.Errorf("timeout envelope drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTimeoutCompletesFast checks the passthrough path: a handler that
// finishes in time reaches the client byte-for-byte, headers included.
func TestTimeoutCompletesFast(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("body"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "body" || rec.Header().Get("X-Custom") != "yes" {
		t.Errorf("passthrough drifted: code=%d body=%q headers=%v", rec.Code, rec.Body.String(), rec.Header())
	}
}

// TestTimeoutPropagatesPanic checks that a panicking handler re-raises
// on the serving goroutine so recoverPanics still turns it into a 500.
func TestTimeoutPropagatesPanic(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.timeout(http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("boom") }))
	defer func() {
		if v := recover(); v != "boom" {
			t.Errorf("recovered %v, want the handler's panic value", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("panic did not propagate")
}

// exemplarRe matches the OpenMetrics exemplar suffix on a _bucket line.
var exemplarRe = regexp.MustCompile(`_bucket{[^}]*} \d+ # \{trace_id="req-exemplar"\} [0-9.eE+-]+ \d+$`)

// openMetricsAccept is what a Prometheus scraper negotiating the
// OpenMetrics format sends.
const openMetricsAccept = "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5"

// TestMetricsExemplarsAndQueryProfiles checks the /metrics surface in
// both negotiated formats: the query-profile family is exported, the
// plain 0.0.4 body stays exemplar-free (its parser rejects trailing
// content after a sample value), and an OpenMetrics scrape gets the
// request ID of a recent observation as a bucket exemplar plus the
// terminating # EOF.
func TestMetricsExemplarsAndQueryProfiles(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("me", 3))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sql",
		strings.NewReader(`{"sql": "SELECT count(*) FROM performance_result"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-exemplar")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()

	scrape := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return string(raw), r.Header.Get("Content-Type")
	}

	body, ct := scrape("")
	if ct != "text/plain; version=0.0.4" {
		t.Errorf("plain scrape Content-Type = %q", ct)
	}
	for _, name := range []string{
		"ptserved_query_profiles_total",
		"ptserved_query_profiles_slow_total",
		"ptserved_query_profile_entries",
		"ptserved_query_profile_bytes",
		"ptserved_selfmon_samples_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if strings.Contains(body, "# {") || strings.Contains(body, "# EOF") {
		t.Errorf("plain 0.0.4 scrape carries OpenMetrics-only syntax:\n%s", body)
	}

	body, ct = scrape(openMetricsAccept)
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics scrape Content-Type = %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics scrape not terminated by # EOF")
	}
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "ptserved_request_duration_seconds_bucket") && exemplarRe.MatchString(line) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no latency bucket carries the req-exemplar exemplar:\n%s", body)
	}
}

// TestSelfDiagnosePlantedSlowdown is the acceptance check for the
// continuous self-diagnosis loop: requests run fast through several
// telemetry samples, then the fault-injection delay throttles the
// handler path; /v1/debug/selfdiagnose must measure the recent window
// as slower and rank a discriminating predicate that separates it from
// the baseline.
func TestSelfDiagnosePlantedSlowdown(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.SlowRequestThreshold = 5 * time.Millisecond
	})
	loadDoc(t, ts.URL, ptdfDoc("sd", 4))

	burst := func() {
		for i := 0; i < 3; i++ {
			postJSON(t, ts.URL+"/v1/query", QueryRequest{Families: []string{"type=application"}}, nil)
		}
	}
	for i := 0; i < 4; i++ { // fast baseline samples
		burst()
		if err := srv.selfmon.SampleNow(); err != nil {
			t.Fatalf("baseline sample %d: %v", i, err)
		}
	}
	srv.injectDelay.Store(int64(20 * time.Millisecond)) // the slowdown lands
	defer srv.injectDelay.Store(0)
	for i := 0; i < 2; i++ {
		burst()
		if err := srv.selfmon.SampleNow(); err != nil {
			t.Fatalf("slow sample %d: %v", i, err)
		}
	}

	r, err := http.Get(ts.URL + "/v1/debug/selfdiagnose?recent=2")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("selfdiagnose: status %d: %s", r.StatusCode, raw)
	}
	var resp SelfDiagnoseResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Diagnosis == nil {
		t.Fatalf("selfdiagnose = %s", raw)
	}
	if resp.Samples != 6 || resp.Baseline != 4 || resp.Recent != 2 {
		t.Errorf("window split = %d/%d/%d, want 6/4/2", resp.Samples, resp.Baseline, resp.Recent)
	}
	d := resp.Diagnosis
	if d.PerfA == nil || d.PerfB == nil || *d.PerfB <= *d.PerfA {
		t.Fatalf("recent window not measured slower: perf_a=%v perf_b=%v", d.PerfA, d.PerfB)
	}
	if len(d.Explanations) == 0 {
		t.Fatal("no discriminating predicate ranked for the planted slowdown")
	}
	// The planted delay makes requests cross the slow threshold, so the
	// slow-trace counter must surface as a discriminating predicate.
	// Other telemetry (heap, goroutines) may legitimately tie it in
	// rank, so look for it anywhere in the ranking rather than pinning
	// first place.
	found := false
	for _, ex := range d.Explanations {
		if ex.Attr == "slow_traces_delta" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("slow_traces_delta not among the discriminating predicates: %v", d.Explanations)
	}
}

// TestSelfDiagnoseNotEnoughSamples checks the pre-warm-up reply: 200
// with a status message instead of an error envelope, so dashboards can
// poll it from process start.
func TestSelfDiagnoseNotEnoughSamples(t *testing.T) {
	_, ts := newTestServer(t, nil)
	r, err := http.Get(ts.URL + "/v1/debug/selfdiagnose")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r.StatusCode, raw)
	}
	var resp SelfDiagnoseResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Diagnosis != nil || !strings.Contains(resp.Status, "samples") {
		t.Errorf("pre-warm-up reply = %s", raw)
	}
}

// TestSelfDiagnoseForceSample checks ?sample=1: two forced samples are
// enough to produce a diagnosis without waiting out the interval.
func TestSelfDiagnoseForceSample(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("fs", 2))
	var resp SelfDiagnoseResponse
	for i := 0; i < 2; i++ {
		r, err := http.Get(ts.URL + "/v1/debug/selfdiagnose?sample=1")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if resp.Status != "ok" || resp.Samples != 2 {
		t.Errorf("after two forced samples: status=%q samples=%d, want ok/2", resp.Status, resp.Samples)
	}
}

// TestAcceptsOpenMetrics pins the /metrics content negotiation: only an
// Accept header offering application/openmetrics-text with non-zero
// quality selects the OpenMetrics (exemplar-carrying) format.
func TestAcceptsOpenMetrics(t *testing.T) {
	for accept, want := range map[string]bool{
		"":           false,
		"text/plain": false,
		"application/openmetrics-text":                                   true,
		openMetricsAccept:                                                true,
		"application/openmetrics-text;q=0":                               false,
		"text/plain, application/openmetrics-text; version=0.0.1; q=0.8": true,
	} {
		if got := acceptsOpenMetrics(accept); got != want {
			t.Errorf("acceptsOpenMetrics(%q) = %v, want %v", accept, got, want)
		}
	}
}

// TestQueryLogBoundsOversizedRecords pins the byte budget against a
// single pathological statement: SQL text is truncated at capture time,
// and a record that would alone exceed a ring's whole budget is dropped
// rather than pinning the ring above its bound.
func TestQueryLogBoundsOversizedRecords(t *testing.T) {
	ql := newQueryLog(0, 0)
	ql.add(queryRecord{SQL: strings.Repeat("s", 3*maxQueryTextBytes)})
	recs := ql.list(false, 10)
	if len(recs) != 1 || len(recs[0].SQL) != maxQueryTextBytes {
		t.Fatalf("oversized SQL not truncated: %d records, SQL len %d", len(recs), len(recs[0].SQL))
	}
	if !strings.HasSuffix(recs[0].SQL, "...[truncated]") {
		t.Errorf("truncated SQL not marked: %q", recs[0].SQL[len(recs[0].SQL)-20:])
	}

	ring := queryRing{maxBytes: queryRecordOverhead} // any non-empty text is over budget
	ring.add(queryRecord{SQL: "x"})
	if len(ring.recs) != 0 || ring.bytes != 0 {
		t.Errorf("record over the whole budget was kept: %d records, %d bytes", len(ring.recs), ring.bytes)
	}
	ring.add(queryRecord{})
	if len(ring.recs) != 1 {
		t.Errorf("record exactly at budget was dropped")
	}
}

// lockedBuf is a goroutine-safe buffer for capturing log output.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestTimeoutLatePanicLogged checks that a handler panic landing after
// the deadline has already answered 503 — when no goroutine is left to
// re-raise it on — is logged instead of vanishing.
func TestTimeoutLatePanicLogged(t *testing.T) {
	var lb lockedBuf
	srv, _ := newTestServer(t, func(c *Config) {
		c.RequestTimeout = 10 * time.Millisecond
		c.Log = obs.NewLogger(&lb, obs.LevelError)
	})
	release := make(chan struct{})
	h := srv.timeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		panic("late boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	close(release) // now let the handler panic, after the 503 went out
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(lb.String(), "handler panic after timeout") {
		if time.Now().After(deadline) {
			t.Fatalf("late panic never logged; log so far:\n%s", lb.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if out := lb.String(); !strings.Contains(out, "late boom") {
		t.Errorf("log line missing the panic value:\n%s", out)
	}
}
