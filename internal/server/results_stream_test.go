package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// streamResults posts a ResultsRequest to /v1/results?stream=1 and
// decodes every NDJSON line.
func streamResults(t *testing.T, baseURL string, req ResultsRequest) (int, []ResultStreamLine) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/results?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	var lines []ResultStreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line ResultStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

func TestResultsStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("sm", 5))

	code, lines := streamResults(t, ts.URL, ResultsRequest{Families: []string{"type=application"}})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(lines) != 7 { // header + 5 rows + done
		t.Fatalf("got %d lines, want 7: %+v", len(lines), lines)
	}
	header := lines[0]
	if header.APIVersion != APIVersion || header.Total != 5 || len(header.Columns) != 5 {
		t.Errorf("header = %+v", header)
	}
	for i, line := range lines[1:6] {
		if line.Row == nil {
			t.Fatalf("line %d has no row: %+v", i+1, line)
		}
		if line.Row.Execution != "exec-sm" || line.Row.Metric != "wall time" ||
			line.Row.Units != "seconds" || line.Row.Tool != "ptool" {
			t.Errorf("row %d = %+v", i, line.Row)
		}
		if len(line.Row.Resources) != 2 {
			t.Errorf("row %d resources = %v", i, line.Row.Resources)
		}
	}
	done := lines[len(lines)-1]
	if !done.Done || done.Rows != 5 {
		t.Errorf("summary = %+v", done)
	}

	// The row limit bounds emission.
	_, limited := streamResults(t, ts.URL, ResultsRequest{Families: []string{"type=application"}, Limit: 2})
	if got := len(limited); got != 4 { // header + 2 rows + done
		t.Errorf("limited stream = %d lines: %+v", got, limited)
	} else if !limited[3].Done || limited[3].Rows != 2 {
		t.Errorf("limited summary = %+v", limited[3])
	}

	// A metric filter that matches nothing yields an empty stream with a
	// summary.
	_, none := streamResults(t, ts.URL, ResultsRequest{Families: []string{"type=application"}, Metric: "no such metric"})
	if len(none) != 2 || !none[1].Done || none[1].Rows != 0 {
		t.Errorf("empty stream = %+v", none)
	}
}

func TestResultsStreamRejectsRefinements(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("sr", 2))
	for name, req := range map[string]ResultsRequest{
		"sort":     {SortBy: "value"},
		"columns":  {AddColumns: []string{"grid/machine"}},
		"attrs":    {AddAttributes: []string{"execution.nprocs"}},
		"badfam":   {Families: []string{"%%%not-a-spec"}},
		"neglimit": {Limit: -1},
	} {
		code, _ := streamResults(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	// The buffered (non-stream) retrieval still works on the same route.
	var rr ResultsResponse
	code, raw := postJSON(t, ts.URL+"/v1/results", ResultsRequest{SortBy: "value"}, &rr)
	if code != http.StatusOK || len(rr.Rows) != 2 {
		t.Errorf("buffered retrieval: %d %s %+v", code, raw, rr)
	}
}

// TestResultsStreamConcurrentWithBulkLoad races streamed retrievals
// against parallel multipart ingest; run with -race this checks the
// materializer's worker fan-out against the write path.
func TestResultsStreamConcurrentWithBulkLoad(t *testing.T) {
	_, ts := newTestServer(t, nil)
	loadDoc(t, ts.URL, ptdfDoc("seed", 4))

	const loaders, docsPer = 3, 3
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			docs := map[string]string{}
			var order []string
			for d := 0; d < docsPer; d++ {
				name := fmt.Sprintf("sl%d-d%d", l, d)
				docs[name] = ptdfDoc(name, 3)
				order = append(order, name)
			}
			body, ct := multipartBody(t, docs, order)
			for _, st := range postMultipart(t, ts.URL+"/v1/load?j=3", body, ct) {
				if st.Error != "" {
					t.Errorf("loader %d: %s", l, st.Error)
				}
			}
		}(l)
	}
	stop := make(chan struct{})
	var swg sync.WaitGroup
	for q := 0; q < 2; q++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, lines := streamResults(t, ts.URL, ResultsRequest{Families: []string{"type=application"}})
				if len(lines) == 0 {
					continue
				}
				last := lines[len(lines)-1]
				if last.Error != "" {
					t.Errorf("stream failed mid-flight: %s", last.Error)
					return
				}
				if !last.Done {
					t.Error("stream ended without a summary line")
					return
				}
				rows := 0
				for _, line := range lines[1 : len(lines)-1] {
					if line.Row == nil {
						t.Errorf("non-row line mid-stream: %+v", line)
						return
					}
					rows++
				}
				if rows != last.Rows {
					t.Errorf("summary says %d rows, saw %d", last.Rows, rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swg.Wait()

	// Everything committed is now visible to one final stream.
	_, lines := streamResults(t, ts.URL, ResultsRequest{Families: []string{"type=application"}})
	want := 4 + loaders*docsPer*3
	if last := lines[len(lines)-1]; !last.Done || last.Rows != want {
		t.Errorf("final stream summary = %+v, want %d rows", last, want)
	}
}
