package server

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"perftrack/internal/core"
	"perftrack/internal/obs"
	"perftrack/internal/ptdf"
)

// debugTraceLimit is the default (and maximum) number of traces listed
// by GET /v1/debug/traces.
const debugTraceLimit = 100

func wireTraceSummary(d obs.TraceData) TraceSummary {
	return TraceSummary{
		ID:         d.ID,
		Route:      d.Name,
		Start:      d.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(d.Duration) / float64(time.Millisecond),
		Slow:       d.Slow,
		Spans:      len(d.Spans),
	}
}

// handleDebugTraces lists completed traces, newest first. ?slow=1 reads
// the slow ring instead of the recent one; ?limit=N caps the list.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := debugTraceLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad limit %q", raw))
			return
		}
		limit = min(n, debugTraceLimit)
	}
	slow := q.Get("slow") == "1" || q.Get("slow") == "true"
	var traces []obs.TraceData
	if slow {
		traces = s.tracer.Slow(limit)
	} else {
		traces = s.tracer.Recent(limit)
	}
	resp := TracesResponse{APIVersion: APIVersion, Slow: slow, Traces: make([]TraceSummary, 0, len(traces))}
	for _, d := range traces {
		resp.Traces = append(resp.Traces, wireTraceSummary(d))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugTrace returns the full span tree of one trace by request
// ID. A trace is findable as long as it survives in the recent or slow
// ring; an evicted or unknown ID is a 404.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.tracer.Find(id)
	if !ok {
		writeErrorString(w, r, http.StatusNotFound,
			fmt.Sprintf("no trace for request ID %q (evicted or never traced)", id))
		return
	}
	resp := TraceResponse{APIVersion: APIVersion, Trace: wireTraceSummary(d)}
	for _, sp := range d.Spans {
		sw := SpanWire{
			Index:      sp.ID,
			Parent:     sp.Parent,
			Name:       sp.Name,
			OffsetMS:   float64(sp.Start.Sub(d.Start)) / float64(time.Millisecond),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Annotations) > 0 {
			sw.Annotations = make(map[string]string, len(sp.Annotations))
			for _, a := range sp.Annotations {
				sw.Annotations[a.Key] = a.Value
			}
		}
		resp.Spans = append(resp.Spans, sw)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSelfPTdf serializes the server's own telemetry as a loadable
// PTdf document: PerfTrack eating its own dog food. The server becomes
// an application, this process an execution, the host a grid/machine
// resource, and every per-route latency quantile and store counter a
// PerfResult — so ptserved's performance can be loaded into a PerfTrack
// store (even its own) and diagnosed with the same pr-filter/compare
// workflow as any parallel application.
func (s *Server) handleSelfPTdf(w http.ResponseWriter, r *http.Request) {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	exec := "ptserved-" + host

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	pw := ptdf.NewWriter(w)
	pw.Comment("ptserved self-profile, generated " + time.Now().UTC().Format(time.RFC3339))
	pw.Write(ptdf.ApplicationRec{Name: "ptserved"})
	pw.Write(ptdf.ResourceTypeRec{Type: "grid"})
	pw.Write(ptdf.ResourceTypeRec{Type: "grid/machine"})
	pw.Write(ptdf.ExecutionRec{Name: exec, App: "ptserved"})
	machine := core.ResourceName("/ptserved/" + host)
	pw.Write(ptdf.ResourceRec{Name: "/ptserved", Type: "grid"})
	pw.Write(ptdf.ResourceRec{Name: machine, Type: "grid/machine"})

	ctxSet := []ptdf.ResourceSet{{Names: []core.ResourceName{machine}, Type: core.FocusPrimary}}
	result := func(metric string, value float64, units string) {
		pw.Write(ptdf.PerfResultRec{
			Exec: exec, Sets: ctxSet, Tool: "ptserved", Metric: metric, Value: value, Units: units,
		})
	}

	s.metrics.latency.Each(func(values []string, h *obs.Histogram) {
		route := values[0]
		if h.Count() == 0 {
			return
		}
		result(route+" requests", float64(h.Count()), "requests")
		result(route+" latency sum", h.Sum(), "seconds")
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}} {
			result(route+" latency "+q.name, h.Quantile(q.q), "seconds")
		}
	})

	tel := s.store.Telemetry()
	result("batch commits", float64(tel.BatchCommits), "batches")
	result("batch rollbacks", float64(tel.BatchRollbacks), "batches")
	result("wal flushes", float64(tel.WALFlushes), "flushes")
	result("records loaded", float64(tel.RecordsLoaded), "records")
	result("match cache hits", float64(tel.MatchCacheHits), "hits")
	result("match cache misses", float64(tel.MatchCacheMisses), "misses")
	result("focus cache hits", float64(tel.FocusCacheHits), "hits")
	result("focus cache misses", float64(tel.FocusCacheMisses), "misses")
	result("materializations", float64(tel.Materializations), "chunks")
	result("results read", float64(tel.ResultsRead), "results")

	started, completed, slowN, spans := s.tracer.Stats()
	result("traces started", float64(started), "traces")
	result("traces completed", float64(completed), "traces")
	result("traces slow", float64(slowN), "traces")
	result("spans recorded", float64(spans), "spans")

	if err := pw.Flush(); err != nil {
		s.log.Warn("selfptdf write", "err", err, "rid", RequestIDFromContext(r.Context()))
	}
}
