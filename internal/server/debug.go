package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"perftrack/internal/obs"
	"perftrack/internal/obs/selfmon"
)

// debugTraceLimit is the default (and maximum) number of traces listed
// by GET /v1/debug/traces.
const debugTraceLimit = 100

func wireTraceSummary(d obs.TraceData) TraceSummary {
	return TraceSummary{
		ID:         d.ID,
		Route:      d.Name,
		Start:      d.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(d.Duration) / float64(time.Millisecond),
		Slow:       d.Slow,
		Spans:      len(d.Spans),
	}
}

// handleDebugTraces lists completed traces, newest first. ?slow=1 reads
// the slow ring instead of the recent one; ?limit=N caps the list.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := debugTraceLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad limit %q", raw))
			return
		}
		limit = min(n, debugTraceLimit)
	}
	slow := q.Get("slow") == "1" || q.Get("slow") == "true"
	var traces []obs.TraceData
	if slow {
		traces = s.tracer.Slow(limit)
	} else {
		traces = s.tracer.Recent(limit)
	}
	resp := TracesResponse{APIVersion: APIVersion, Slow: slow, Traces: make([]TraceSummary, 0, len(traces))}
	for _, d := range traces {
		resp.Traces = append(resp.Traces, wireTraceSummary(d))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugTrace returns the full span tree of one trace by request
// ID. A trace is findable as long as it survives in the recent or slow
// ring; an evicted or unknown ID is a 404.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.tracer.Find(id)
	if !ok {
		writeErrorString(w, r, http.StatusNotFound,
			fmt.Sprintf("no trace for request ID %q (evicted or never traced)", id))
		return
	}
	resp := TraceResponse{APIVersion: APIVersion, Trace: wireTraceSummary(d)}
	for _, sp := range d.Spans {
		sw := SpanWire{
			Index:      sp.ID,
			Parent:     sp.Parent,
			Name:       sp.Name,
			OffsetMS:   float64(sp.Start.Sub(d.Start)) / float64(time.Millisecond),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Annotations) > 0 {
			sw.Annotations = make(map[string]string, len(sp.Annotations))
			for _, a := range sp.Annotations {
				sw.Annotations[a.Key] = a.Value
			}
		}
		resp.Spans = append(resp.Spans, sw)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSelfPTdf serializes the server's own telemetry as a loadable
// PTdf document: PerfTrack eating its own dog food. The server becomes
// an application, this process an execution, the host a grid/machine
// resource, and every per-route latency quantile and store counter a
// PerfResult — so ptserved's performance can be loaded into a PerfTrack
// store (even its own) and diagnosed with the same pr-filter/compare
// workflow as any parallel application. The continuous form of the same
// idea is the selfmon sampler behind /v1/debug/selfdiagnose; both share
// one Sample→PTdf serialization.
func (s *Server) handleSelfPTdf(w http.ResponseWriter, r *http.Request) {
	host := hostname()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	err := selfmon.WriteDoc(w, selfmon.DocSpec{
		App:     "ptserved",
		Exec:    "ptserved-" + host,
		Host:    host,
		Comment: "ptserved self-profile, generated " + time.Now().UTC().Format(time.RFC3339),
	}, s.selfPTdfSample())
	if err != nil {
		s.log.Warn("selfptdf write", "err", err, "rid", RequestIDFromContext(r.Context()))
	}
}

// handleDebugQueries lists captured /v1/sql executions with their
// EXPLAIN ANALYZE profiles, newest first. ?slow=1 reads the slow ring
// (queries at or over the slow-request threshold); ?limit=N caps the
// list.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if s.queries == nil {
		writeErrorString(w, r, http.StatusNotFound, "query capture is disabled")
		return
	}
	q := r.URL.Query()
	limit := debugTraceLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad limit %q", raw))
			return
		}
		limit = min(n, debugTraceLimit)
	}
	slow := q.Get("slow") == "1" || q.Get("slow") == "true"
	recs := s.queries.list(slow, limit)
	resp := QueriesResponse{APIVersion: APIVersion, Slow: slow, Queries: make([]QueryProfileWire, 0, len(recs))}
	for _, rec := range recs {
		resp.Queries = append(resp.Queries, QueryProfileWire{
			SQL:        rec.SQL,
			RequestID:  rec.RequestID,
			Start:      rec.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(rec.Duration) / float64(time.Millisecond),
			Strategy:   rec.Strategy,
			CacheHit:   rec.CacheHit,
			Rows:       rec.Rows,
			Error:      rec.Error,
			Slow:       rec.Slow,
			Profile:    rec.Profile,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSelfDiagnose runs the continuous self-diagnosis: the sampler's
// retained telemetry window is split into baseline and recent slices
// and handed to the same engine as POST /v1/diagnose (side A =
// baseline, side B = recent, so a positive delta reads "recent is
// slower"). ?recent=N sizes the recent slice (default: a quarter of the
// window); ?sample=1 takes an immediate sample first, which smoke tests
// and operators use to avoid waiting out the interval.
func (s *Server) handleSelfDiagnose(w http.ResponseWriter, r *http.Request) {
	if s.selfmon == nil {
		writeErrorString(w, r, http.StatusNotFound, "self-monitoring is disabled")
		return
	}
	q := r.URL.Query()
	recentN := 0
	if raw := q.Get("recent"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErrorString(w, r, http.StatusBadRequest, fmt.Sprintf("bad recent %q", raw))
			return
		}
		recentN = n
	}
	if v := q.Get("sample"); v == "1" || v == "true" {
		if err := s.selfmon.SampleNow(); err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
	}
	rep, err := s.selfmon.Diagnose(r.Context(), recentN)
	if errors.Is(err, selfmon.ErrNotEnoughSamples) {
		writeJSON(w, http.StatusOK, SelfDiagnoseResponse{
			APIVersion: APIVersion,
			Status:     err.Error(),
			Samples:    s.selfmon.Stats().Retained,
		})
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	diag := NewDiagnoseResponse(rep.Result)
	s.log.Info("selfdiagnose", "samples", rep.Samples, "baseline", len(rep.Baseline),
		"recent", len(rep.Recent), "explanations", len(diag.Explanations),
		"rid", RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, SelfDiagnoseResponse{
		APIVersion: APIVersion,
		Status:     "ok",
		Samples:    rep.Samples,
		Baseline:   len(rep.Baseline),
		Recent:     len(rep.Recent),
		Diagnosis:  &diag,
	})
}
