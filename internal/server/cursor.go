package server

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"encoding/base64"
)

// Opaque pagination cursors (DESIGN.md §7). A cursor is URL-safe base64
// of "<kind>|<field>|..."; the kind pins the endpoint and format
// version, and one field is a fingerprint of the request the cursor was
// minted for, so a cursor replayed against a different query is a 400
// instead of a silently wrong page. Cursors are positional, not
// snapshot-consistent: rows ingested between pages may shift results,
// which the stable sort orders (attribute name; the requested sort_by)
// keep to appends rather than rescrambles.

// encodeCursor packs cursor fields. The last field may contain the
// separator; decodeCursor splits with a field count so it survives.
func encodeCursor(parts ...string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(strings.Join(parts, "|")))
}

// decodeCursor unpacks a cursor minted by encodeCursor, checking the
// kind tag and field count.
func decodeCursor(cursor, kind string, n int) ([]string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return nil, fmt.Errorf("bad cursor")
	}
	parts := strings.SplitN(string(raw), "|", n)
	if len(parts) != n || parts[0] != kind {
		return nil, fmt.Errorf("bad cursor")
	}
	return parts, nil
}

// cursorSig fingerprints the request fields a cursor is bound to.
func cursorSig(fields ...string) string {
	h := fnv.New64a()
	for _, f := range fields {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 36)
}
