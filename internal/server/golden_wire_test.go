package server

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden wire test pins the raw JSON bytes of every v1 response
// envelope — field names, field order, indentation, api_version, and the
// error envelope included — so an accidental rename, retype, or
// reordering fails a test instead of silently breaking clients
// (DESIGN.md §7: within v1 the contract is append-only).
//
// Regenerate after an intentional, append-only change with:
//
//	go test ./internal/server/ -run TestGoldenWireEnvelopes -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// volatileWire scrubs the few legitimately nondeterministic values
// (trace timestamps and durations) so the rest of the body can be
// compared byte for byte. Request IDs are NOT scrubbed: the test pins
// them via the X-Request-Id header the server honors.
var volatileWire = []struct {
	re   *regexp.Regexp
	repl string
}{
	{regexp.MustCompile(`"start": "[^"]*"`), `"start": "<start>"`},
	{regexp.MustCompile(`"duration_ms": [0-9.eE+-]+`), `"duration_ms": 0`},
	{regexp.MustCompile(`"offset_ms": [0-9.eE+-]+`), `"offset_ms": 0`},
	{regexp.MustCompile(`(?m)^\s*"slow": true,\n`), ``},
	{regexp.MustCompile(`"(plan|exec|kernel|merge)_nanos": [0-9]+`), `"${1}_nanos": 0`},
}

func scrubVolatile(body string) string {
	for _, v := range volatileWire {
		body = v.re.ReplaceAllString(body, v.repl)
	}
	return body
}

// goldenDoc is like ptdfDoc but with a per-tag nprocs value so the
// diagnose envelope carries a real discriminating predicate.
func goldenDoc(tag string, nprocs, results int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Application app-%s\n", tag)
	fmt.Fprintf(&b, "Execution exec-%s app-%s\n", tag, tag)
	fmt.Fprintf(&b, "Resource /app-%s application\n", tag)
	fmt.Fprintf(&b, "Resource /exec-%s execution exec-%s\n", tag, tag)
	fmt.Fprintf(&b, "ResourceAttribute /exec-%s nprocs %d string\n", tag, nprocs)
	for i := 0; i < results; i++ {
		fmt.Fprintf(&b, "PerfResult exec-%s /app-%s,/exec-%s(primary) ptool \"wall time\" %d.5 seconds\n",
			tag, tag, tag, (nprocs/8)*(i+1))
	}
	return b.String()
}

func TestGoldenWireEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Every request in this fixed sequence pins its request ID, so error
	// envelopes and trace lookups are byte-deterministic. Steps with a
	// golden name snapshot their raw response body.
	steps := []struct {
		golden string // "" = setup only
		method string
		path   string
		body   string
		status int
	}{
		{"load", "POST", "/v1/load", goldenDoc("ga", 8, 3), 200},
		{"", "POST", "/v1/load", goldenDoc("gb", 16, 3), 200},
		{"health", "GET", "/healthz", "", 200},
		{"query", "POST", "/v1/query", `{"families": ["type=application"], "explain": true}`, 200},
		{"results", "POST", "/v1/results", `{"select": {"families": ["type=application"]}, "sort_by": "value", "descending": true, "limit": 3}`, 200},
		{"sql", "POST", "/v1/sql", `{"sql": "SELECT metric, count(*), avg(value) FROM performance_result GROUP BY metric", "explain": true}`, 200},
		{"compare", "GET", "/v1/compare?a=exec-ga&b=exec-gb", "", 200},
		{"diagnose", "POST", "/v1/diagnose", `{"exec_a": "exec-ga", "exec_b": "exec-gb", "top": 3}`, 200},
		{"attributes", "GET", "/v1/attributes?limit=1", "", 200},
		{"report", "GET", "/v1/reports/executions", "", 200},
		{"stats", "GET", "/v1/stats", "", 200},
		{"sql_analyze", "POST", "/v1/sql", `{"sql": "SELECT metric, count(*) FROM performance_result GROUP BY metric", "analyze": true}`, 200},
		{"error_notfound", "GET", "/v1/compare?a=nope&b=exec-gb", "", 404},
		{"error_badrequest", "POST", "/v1/sql", `{"sql": "SELECT 1", "bogus": true}`, 400},
		{"traces", "GET", "/v1/debug/traces?limit=2", "", 200},
		{"trace", "GET", "/v1/debug/traces/req-query", "", 200},
		{"queries", "GET", "/v1/debug/queries?limit=5", "", 200},
		{"selfdiagnose", "GET", "/v1/debug/selfdiagnose", "", 200},
	}

	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, step := range steps {
		name := step.golden
		if name == "" {
			name = fmt.Sprintf("setup-%d", i)
		}
		req, err := http.NewRequest(step.method, ts.URL+step.path, strings.NewReader(step.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", "req-"+name)
		if step.method == "POST" {
			ct := "application/json"
			if strings.HasPrefix(step.path, "/v1/load") {
				ct = "text/plain"
			}
			req.Header.Set("Content-Type", ct)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != step.status {
			t.Fatalf("%s %s: status %d, want %d: %s", step.method, step.path, r.StatusCode, step.status, raw)
		}
		if step.golden == "" {
			continue
		}
		got := scrubVolatile(string(raw))
		if !strings.Contains(got, `"api_version": "v1"`) {
			t.Errorf("%s: response without api_version:\n%s", step.golden, got)
		}
		path := filepath.Join(dir, step.golden+".json")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", step.golden, err)
		}
		if got != string(want) {
			t.Errorf("%s: wire envelope drifted from %s (run with -update if the change is intentional, append-only, and documented):\n--- got ---\n%s\n--- want ---\n%s",
				step.golden, path, got, want)
		}
	}
}

// TestGoldenStability replays the golden sequence on a second identical
// server and store; byte-identical fixtures prove the envelopes carry no
// hidden nondeterminism (map ordering, pointers, timestamps).
func TestGoldenStability(t *testing.T) {
	run := func() map[string]string {
		_, ts := newTestServer(t, nil)
		out := map[string]string{}
		post := func(name, path, body string) {
			req, _ := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
			req.Header.Set("X-Request-Id", "req-"+name)
			req.Header.Set("Content-Type", "application/json")
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(r.Body)
			r.Body.Close()
			out[name] = scrubVolatile(string(raw))
		}
		loadDoc(t, ts.URL, goldenDoc("ga", 8, 3))
		loadDoc(t, ts.URL, goldenDoc("gb", 16, 3))
		post("query", "/v1/query", `{"families": ["type=application"], "explain": true}`)
		post("sql", "/v1/sql", `{"sql": "SELECT execution, avg(value) FROM performance_result GROUP BY execution", "explain": true}`)
		post("diagnose", "/v1/diagnose", `{"exec_a": "exec-ga", "exec_b": "exec-gb"}`)
		return out
	}
	a, b := run(), run()
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("%s: two identical runs produced different bytes:\n%s\nvs\n%s", name, a[name], b[name])
		}
	}
}
