package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both cached count lookups (sub-millisecond) and large streamed
// loads (seconds).
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// routeStats accumulates one route's request counts and latencies.
type routeStats struct {
	codes   map[int]uint64
	buckets []uint64 // cumulative counts per latencyBuckets entry
	count   uint64
	sum     float64 // total seconds
}

// serverMetrics is the process-local instrumentation behind GET /metrics:
// per-route request counters by status code, per-route latency
// histograms, an in-flight gauge, and a shed-request counter. The query
// engine's generation and cache counters are appended at scrape time.
type serverMetrics struct {
	inFlight atomic.Int64
	shed     atomic.Uint64

	mu     sync.Mutex
	routes map[string]*routeStats
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{routes: make(map[string]*routeStats)}
}

// observe records one finished request.
func (m *serverMetrics) observe(route string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{codes: make(map[int]uint64), buckets: make([]uint64, len(latencyBuckets))}
		m.routes[route] = rs
	}
	rs.codes[code]++
	rs.count++
	rs.sum += secs
	for i, ub := range latencyBuckets {
		if secs <= ub {
			rs.buckets[i]++
		}
	}
}

// gauge is one extra name/value pair appended to the exposition.
type gauge struct {
	name  string
	value float64
}

// write renders the Prometheus text exposition format.
func (m *serverMetrics) write(w io.Writer, extra []gauge) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# TYPE ptserved_requests_total counter\n")
	for _, route := range routes {
		rs := m.routes[route]
		codes := make([]int, 0, len(rs.codes))
		for c := range rs.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "ptserved_requests_total{route=%q,code=\"%d\"} %d\n", route, c, rs.codes[c])
		}
	}
	fmt.Fprintf(w, "# TYPE ptserved_request_duration_seconds histogram\n")
	for _, route := range routes {
		rs := m.routes[route]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "ptserved_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", route, ub, rs.buckets[i])
		}
		fmt.Fprintf(w, "ptserved_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, rs.count)
		fmt.Fprintf(w, "ptserved_request_duration_seconds_sum{route=%q} %g\n", route, rs.sum)
		fmt.Fprintf(w, "ptserved_request_duration_seconds_count{route=%q} %d\n", route, rs.count)
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE ptserved_in_flight_requests gauge\n")
	fmt.Fprintf(w, "ptserved_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# TYPE ptserved_requests_shed_total counter\n")
	fmt.Fprintf(w, "ptserved_requests_shed_total %d\n", m.shed.Load())
	for _, g := range extra {
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(w, "%s %g\n", g.name, g.value)
	}
}
