package server

import (
	"strconv"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/obs"
	"perftrack/internal/planner"
)

// serverMetrics is the process-local instrumentation behind GET /metrics,
// built on the obs registry: per-route request counters by status code,
// per-route latency histograms, an in-flight gauge, and a shed-request
// counter. Store counters (batch commits, WAL flushes, cache hit/miss),
// tracer counters, and Go runtime gauges are registered as scrape-time
// callbacks, so /metrics always reflects the live values without the
// store knowing about the registry.
type serverMetrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inFlight *obs.Gauge
	shed     *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("ptserved_requests_total",
			"Requests served, by route and status code.", "route", "code"),
		latency: reg.HistogramVec("ptserved_request_duration_seconds",
			"Request latency in seconds, by route.", obs.DefBuckets, "route"),
		inFlight: reg.Gauge("ptserved_in_flight_requests",
			"API requests currently being served."),
		shed: reg.Counter("ptserved_requests_shed_total",
			"Requests shed with 429 at the in-flight ceiling."),
	}
	obs.RegisterRuntimeMetrics(reg)
	return m
}

// observe records one finished request. The latency observation carries
// the request ID as an OpenMetrics exemplar, so a populated bucket on
// /metrics links straight to a trace in /v1/debug/traces/{id}.
func (m *serverMetrics) observe(route string, code int, d time.Duration, requestID string) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.With(route).ObserveExemplar(d.Seconds(), requestID)
}

// registerQueryLog exposes the slow-query capture's counters and
// footprint.
func (m *serverMetrics) registerQueryLog(ql *queryLog) {
	m.reg.CounterFunc("ptserved_query_profiles_total",
		"Query executions captured with profiles by the /v1/sql query log.",
		func() uint64 { return ql.stats().Total })
	m.reg.CounterFunc("ptserved_query_profiles_slow_total",
		"Captured queries at or over the slow-request threshold.",
		func() uint64 { return ql.stats().SlowTotal })
	m.reg.GaugeFunc("ptserved_query_profile_entries",
		"Query-log resident entries (recent ring).",
		func() float64 { return float64(ql.stats().Entries) })
	m.reg.GaugeFunc("ptserved_query_profile_bytes",
		"Approximate query-log resident bytes across both rings.",
		func() float64 { return float64(ql.stats().Bytes) })
}

// registerStore bridges the store's query-engine and telemetry counters
// into the registry. The ptserved_query_cache_* and
// ptserved_store_generation names predate the registry and are kept
// verbatim (gauges, no _total suffix) for scrape compatibility.
func (m *serverMetrics) registerStore(store *datastore.Store) {
	m.reg.GaugeFunc("ptserved_store_generation",
		"Store generation; advances on every mutation.",
		func() float64 { return float64(store.Generation()) })
	m.reg.GaugeFunc("ptserved_query_cache_hits",
		"pr-filter match-cache hits.",
		func() float64 { return float64(store.QueryEngineStats().CacheHits) })
	m.reg.GaugeFunc("ptserved_query_cache_misses",
		"pr-filter match-cache misses.",
		func() float64 { return float64(store.QueryEngineStats().CacheMisses) })
	m.reg.GaugeFunc("ptserved_query_cache_entries",
		"pr-filter match-cache resident entries.",
		func() float64 { return float64(store.QueryEngineStats().CacheEntries) })

	m.reg.CounterFunc("ptserved_store_batch_commits_total",
		"Committed write batches.",
		func() uint64 { return store.Telemetry().BatchCommits })
	m.reg.CounterFunc("ptserved_store_batch_rollbacks_total",
		"Write batches rolled back by a bad record.",
		func() uint64 { return store.Telemetry().BatchRollbacks })
	m.reg.CounterFunc("ptserved_store_wal_flushes_total",
		"WAL group flushes.",
		func() uint64 { return store.Telemetry().WALFlushes })
	m.reg.CounterFunc("ptserved_store_records_loaded_total",
		"PTdf records applied by committed batches.",
		func() uint64 { return store.Telemetry().RecordsLoaded })
	m.reg.CounterFunc("ptserved_store_focus_cache_hits_total",
		"Materializer focus links served from the per-query cache.",
		func() uint64 { return store.Telemetry().FocusCacheHits })
	m.reg.CounterFunc("ptserved_store_focus_cache_misses_total",
		"Materializer foci decoded from the engine.",
		func() uint64 { return store.Telemetry().FocusCacheMisses })
	m.reg.CounterFunc("ptserved_store_materializations_total",
		"Materializer chunks run.",
		func() uint64 { return store.Telemetry().Materializations })
	m.reg.CounterFunc("ptserved_store_results_read_total",
		"Performance results materialized.",
		func() uint64 { return store.Telemetry().ResultsRead })

	m.reg.CounterFunc("ptserved_store_segment_scans_total",
		"Columnar segment range scans run by the materializer.",
		func() uint64 { return store.Telemetry().SegmentScans })
	m.reg.CounterFunc("ptserved_store_segment_rows_scanned_total",
		"Rows visited by columnar segment scans.",
		func() uint64 { return store.Telemetry().SegmentRowsScanned })
	m.reg.CounterFunc("ptserved_store_zone_map_prunes_total",
		"Segments skipped by zone-map bounds during range scans.",
		func() uint64 { return store.Telemetry().ZoneMapPrunes })
	m.reg.RegisterHistogram("ptserved_store_segment_scan_bytes",
		"Columnar bytes touched per segment range scan.",
		store.SegmentScanBytes())

	// Compactor counters live on the storage engine rather than the
	// store; bridge them only when a segment engine is attached.
	if se, ok := store.Engine().(segmentStatser); ok {
		m.reg.CounterFunc("ptserved_store_segments_compacted_total",
			"Background compaction passes that wrote segments.",
			func() uint64 { return uint64(se.SegmentStats().Compactions) })
		m.reg.CounterFunc("ptserved_store_segments_written_total",
			"Immutable columnar segment files written.",
			func() uint64 { return uint64(se.SegmentStats().SegmentsWritten) })
	}
}

// registerPlanCache bridges the /v1/sql result cache counters into the
// registry at scrape time.
func (m *serverMetrics) registerPlanCache(c *planner.ResultCache) {
	m.reg.CounterFunc("ptserved_plan_cache_hits_total",
		"/v1/sql results served from the generation-keyed plan cache.",
		func() uint64 { return c.Stats().Hits })
	m.reg.CounterFunc("ptserved_plan_cache_misses_total",
		"/v1/sql queries executed because no cached result matched.",
		func() uint64 { return c.Stats().Misses })
	m.reg.CounterFunc("ptserved_plan_cache_evictions_total",
		"Plan-cache entries evicted to stay under the byte bound.",
		func() uint64 { return c.Stats().Evictions })
	m.reg.GaugeFunc("ptserved_plan_cache_entries",
		"Plan-cache resident entries.",
		func() float64 { return float64(c.Stats().Entries) })
	m.reg.GaugeFunc("ptserved_plan_cache_bytes",
		"Approximate plan-cache resident bytes.",
		func() float64 { return float64(c.Stats().Bytes) })
}

// registerTracer exposes the tracer's lifetime counters.
func (m *serverMetrics) registerTracer(tr *obs.Tracer) {
	m.reg.CounterFunc("ptserved_traces_total",
		"Traces completed.",
		func() uint64 { _, c, _, _ := tr.Stats(); return c })
	m.reg.CounterFunc("ptserved_traces_slow_total",
		"Traces over the slow-request threshold.",
		func() uint64 { _, _, s, _ := tr.Stats(); return s })
	m.reg.CounterFunc("ptserved_spans_total",
		"Spans recorded across all traces.",
		func() uint64 { _, _, _, sp := tr.Stats(); return sp })
}
