package server

// Pooled NDJSON line encoding for the streaming endpoints
// (/v1/results?stream=1, /v1/sql?stream=1). Encoding straight into the
// ResponseWriter allocates a fresh encode buffer per line at the json
// layer boundary; marshalling into a pooled per-stream buffer instead
// reuses one buffer for every line of a stream and across streams, so
// per-row allocations stay flat regardless of result size (pinned by
// BenchmarkSQLStreamEncode / BenchmarkResultsStreamEncode).

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// maxPooledEncodeBuf caps the buffer capacity returned to the pool, so
// one giant row does not pin its memory forever.
const maxPooledEncodeBuf = 64 << 10

// ndjsonEncoder writes one JSON line per Encode through a reused buffer.
type ndjsonEncoder struct {
	w   io.Writer
	buf *bytes.Buffer
	enc *json.Encoder
}

var ndjsonPool = sync.Pool{New: func() any {
	buf := new(bytes.Buffer)
	return &ndjsonEncoder{buf: buf, enc: json.NewEncoder(buf)}
}}

// newNDJSON borrows an encoder from the pool and points it at w.
// Callers must Release it when the stream ends.
func newNDJSON(w io.Writer) *ndjsonEncoder {
	e := ndjsonPool.Get().(*ndjsonEncoder)
	e.w = w
	return e
}

// Encode marshals v (with the trailing newline json.Encoder emits) into
// the reused buffer and writes it out as one line.
func (e *ndjsonEncoder) Encode(v any) error {
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		return err
	}
	_, err := e.w.Write(e.buf.Bytes())
	return err
}

// Release returns the encoder to the pool, dropping oversized buffers.
func (e *ndjsonEncoder) Release() {
	e.w = nil
	if e.buf.Cap() > maxPooledEncodeBuf {
		e.buf = new(bytes.Buffer)
		e.enc = json.NewEncoder(e.buf)
	}
	ndjsonPool.Put(e)
}
