package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// ctxKey is the private context-key type for request-scoped values.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// RequestIDFromContext returns the request's ID tag, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// statusRecorder captures the status code and body size written by a
// handler so the logging and metrics layers can report them.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers
// (the NDJSON bulk load) work through the middleware stack.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID returns a 16-hex-char random tag.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID tags every request with an ID (honoring one supplied by
// the caller) and echoes it in the X-Request-Id response header.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id)))
	})
}

// logRequests writes one structured line per request.
func (s *Server) logRequests(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method, "route", route, "path", r.URL.Path,
			"status", sr.code, "bytes", sr.bytes,
			"dur", time.Since(start).Round(time.Microsecond),
			"rid", RequestIDFromContext(r.Context()), "remote", r.RemoteAddr)
	})
}

// trace opens the request's root span, keyed by the request ID so
// /v1/debug/traces/{id} can find it later, and threads the trace down
// through the handler's context into the datastore. The root span is
// annotated with the method, path, and final status code; the trace is
// published to the debug rings when the root span ends.
func (s *Server) trace(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, span := s.tracer.StartTrace(r.Context(), RequestIDFromContext(r.Context()), route)
		span.Annotate("method", r.Method)
		if r.URL.Path != route {
			span.Annotate("path", r.URL.Path)
		}
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			if sr.code == 0 {
				sr.code = http.StatusOK
			}
			span.Annotate("status", strconv.Itoa(sr.code))
			span.End()
		}()
		next.ServeHTTP(sr, r.WithContext(ctx))
	})
}

// recoverPanics converts a handler panic into a 500 instead of killing
// the connection (and, under Go's default ServeMux behaviour, keeps one
// bad request from taking down unrelated in-flight work).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				s.log.Error("panic", "err", v,
					"rid", RequestIDFromContext(r.Context()), "stack", string(debug.Stack()))
				writeErrorString(w, r, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// instrument maintains the in-flight gauge and per-route counters. The
// injectDelay fault hook stretches every instrumented request by a fixed
// amount; the self-diagnosis tests use it to plant a measurable slowdown
// that flows through the real latency histograms and slow-trace
// detection (one atomic load per request when unset).
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		if d := s.injectDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		next.ServeHTTP(sr, r)
		if sr.code == 0 {
			sr.code = http.StatusOK
		}
		s.metrics.observe(route, sr.code, time.Since(start), RequestIDFromContext(r.Context()))
	})
}

// timeoutWriter buffers a handler's response so the timeout middleware
// can atomically choose between it and the timeout envelope. After the
// deadline fires, further writes are discarded with
// http.ErrHandlerTimeout, mirroring http.TimeoutHandler.
type timeoutWriter struct {
	mu       sync.Mutex
	header   http.Header
	buf      bytes.Buffer
	code     int
	timedOut bool
}

func (tw *timeoutWriter) Header() http.Header { return tw.header }

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut || tw.code != 0 {
		return
	}
	tw.code = code
}

func (tw *timeoutWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	if tw.code == 0 {
		tw.code = http.StatusOK
	}
	return tw.buf.Write(p)
}

// copyTo replays the buffered response onto the real writer.
func (tw *timeoutWriter) copyTo(w http.ResponseWriter) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	dst := w.Header()
	for k, v := range tw.header {
		dst[k] = v
	}
	if tw.code == 0 {
		tw.code = http.StatusOK
	}
	w.WriteHeader(tw.code)
	w.Write(tw.buf.Bytes())
}

// timeout bounds one request end to end, like http.TimeoutHandler but
// answering expiry with the v1 JSON error envelope (503 + request_id)
// instead of a plain-text body — every non-2xx reply on the API surface
// is an ErrorResponse, including this one. The handler runs in its own
// goroutine against a buffered writer; its context is cancelled at the
// deadline so store scans and the planner unwind promptly, and a panic
// inside the handler is re-raised on the serving goroutine for
// recoverPanics above. A panic that lands after the deadline branch has
// already answered 503 has no goroutine left to re-raise on, so it is
// logged instead of silently dropped.
func (s *Server) timeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		tw := &timeoutWriter{header: make(http.Header)}
		done := make(chan struct{})
		type panicInfo struct {
			val   any
			stack []byte
		}
		panicked := make(chan panicInfo, 1)
		go func() {
			defer func() {
				if v := recover(); v != nil {
					panicked <- panicInfo{val: v, stack: debug.Stack()}
					return
				}
				close(done)
			}()
			next.ServeHTTP(tw, r)
		}()
		select {
		case p := <-panicked:
			panic(p.val)
		case <-done:
			tw.copyTo(w)
		case <-ctx.Done():
			tw.mu.Lock()
			tw.timedOut = true
			tw.mu.Unlock()
			// The handler goroutine is still unwinding and nobody is
			// left to re-raise a late panic on, so drain and log it
			// rather than let it vanish into the buffered channel.
			route, rid := r.URL.Path, RequestIDFromContext(r.Context())
			go func() {
				select {
				case p := <-panicked:
					s.log.Error("handler panic after timeout", "route", route, "rid", rid, "panic", fmt.Sprint(p.val), "stack", string(p.stack))
				case <-done:
				}
			}()
			writeErrorString(w, r, http.StatusServiceUnavailable, "request timed out")
		}
	})
}

// limit sheds load beyond the configured in-flight ceiling with 429 +
// Retry-After instead of queueing unboundedly: under overload the server
// answers fast and cheap, and well-behaved clients (internal/client)
// back off and retry.
func (s *Server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.metrics.shed.Add(1)
			s.log.Debug("shed", "route", r.URL.Path, "rid", RequestIDFromContext(r.Context()))
			w.Header().Set("Retry-After", "1")
			writeErrorString(w, r, http.StatusTooManyRequests, "server at capacity")
		}
	})
}
