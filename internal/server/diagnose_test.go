package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/diagnose"
	"perftrack/internal/gen"
	"perftrack/internal/reldb"
)

// newFleetServer serves a store pre-loaded with a synthetic diagnosis
// fleet.
func newFleetServer(t *testing.T, spec gen.FleetSpec) (*gen.Fleet, *httptest.Server) {
	t.Helper()
	fleet, err := gen.FleetRecords(spec)
	if err != nil {
		t.Fatal(err)
	}
	store, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	batch := store.NewBatch()
	for _, rec := range fleet.Records {
		batch.Stage(rec)
	}
	if _, err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return fleet, ts
}

func TestDiagnoseEndpointRanksPlantedPredicate(t *testing.T) {
	fleet, ts := newFleetServer(t, gen.FleetSpec{Execs: 100, Seed: 7})
	req := DiagnoseRequest{ExecsA: fleet.Fast, ExecsB: fleet.Slow, Explain: true}
	var resp DiagnoseResponse
	code, raw := postJSON(t, ts.URL+"/v1/diagnose", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.APIVersion != APIVersion {
		t.Errorf("api_version = %q", resp.APIVersion)
	}
	if strings.Contains(raw, "NaN") || strings.Contains(raw, "Inf") {
		t.Fatalf("response leaks non-finite floats:\n%s", raw)
	}
	if len(resp.Explanations) == 0 {
		t.Fatalf("no explanations: %s", raw)
	}
	top := resp.Explanations[0]
	if top.Predicate != "compiler = -O0" {
		t.Fatalf("top predicate = %q, want compiler = -O0", top.Predicate)
	}
	if top.Attr != "compiler" || top.Op != "=" || top.Value != "-O0" {
		t.Errorf("predicate parts = %q %q %q", top.Attr, top.Op, top.Value)
	}
	if top.Score <= 0.99 {
		t.Errorf("score = %v, want ~1", top.Score)
	}
	if resp.Ratio == nil || *resp.Ratio < 1.8 || *resp.Ratio > 2.2 {
		t.Errorf("ratio = %v, want ~2", resp.Ratio)
	}
	if len(resp.Bottlenecks) == 0 || resp.Bottlenecks[0].Metric != "wall clock time" {
		t.Errorf("bottlenecks = %+v", resp.Bottlenecks)
	}
	if len(resp.Trace) == 0 {
		t.Error("explain=true produced no trace")
	}
}

func TestDiagnoseEndpointErrors(t *testing.T) {
	fleet, ts := newFleetServer(t, gen.FleetSpec{Execs: 6, Seed: 1})
	post := func(body string) (int, string) {
		t.Helper()
		r, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r.StatusCode, buf.String()
	}
	for _, tt := range []struct {
		name string
		body string
		code int
	}{
		{"unknown execution", `{"exec_a":"` + fleet.Fast[0] + `","exec_b":"nope"}`, http.StatusNotFound},
		{"unknown field", `{"exec_a":"a","exec_b":"b","bogus":1}`, http.StatusBadRequest},
		{"trailing data", `{"exec_a":"a","exec_b":"b"} extra`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"missing side", `{"exec_a":"a"}`, http.StatusBadRequest},
		{"ambiguous side", `{"exec_a":"a","execs_a":["x"],"exec_b":"b"}`, http.StatusBadRequest},
		{"bad family", `{"families_a":["bogus=="],"exec_b":"` + fleet.Slow[0] + `"}`, http.StatusBadRequest},
	} {
		code, raw := post(tt.body)
		if code != tt.code {
			t.Errorf("%s: status %d, want %d: %s", tt.name, code, tt.code, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal([]byte(raw), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tt.name, raw)
		}
	}
}

// TestDiagnoseResponseNeverEmitsNaN proves the wire conversion by
// construction: a Result saturated with NaN and ±Inf round-trips through
// JSON with the undefined statistics as null.
func TestDiagnoseResponseNeverEmitsNaN(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	res := &diagnose.Result{
		SideA: []string{"a"}, SideB: []string{"b"},
		PerfA: nan, PerfB: inf, Delta: nan, Ratio: nan,
		Explanations: []diagnose.Explanation{{
			Pred:  diagnose.Predicate{Attr: "k", Op: "=", Value: "v"},
			Score: 0.5, Effect: 0.5, Coverage: 1,
			MeanHold: nan, MeanNot: inf, Delta: nan, Ratio: nan,
		}},
		Bottlenecks: []diagnose.Bottleneck{{Metric: "m", MeanA: nan, MeanB: inf, Delta: nan}},
	}
	raw, err := json.Marshal(NewDiagnoseResponse(res))
	if err != nil {
		t.Fatalf("marshal with NaN inputs: %v", err)
	}
	if bytes.Contains(raw, []byte("NaN")) || bytes.Contains(raw, []byte("Inf")) {
		t.Fatalf("non-finite float on the wire: %s", raw)
	}
	var back DiagnoseResponse
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.PerfA != nil || back.Ratio != nil {
		t.Errorf("undefined perf fields survived: %+v", back)
	}
	if back.Explanations[0].MeanHold != nil || back.Explanations[0].Ratio != nil {
		t.Errorf("undefined explanation stats survived: %+v", back.Explanations[0])
	}
	if back.Explanations[0].Score != 0.5 {
		t.Errorf("finite field lost: %+v", back.Explanations[0])
	}
}

func TestAttributesEndpoint(t *testing.T) {
	_, ts := newFleetServer(t, gen.FleetSpec{Execs: 8, Seed: 2})
	get := func(url string, out any) (int, string) {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		if out != nil && r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(buf.Bytes(), out); err != nil {
				t.Fatalf("decode: %v\n%s", err, buf.String())
			}
		}
		return r.StatusCode, buf.String()
	}
	var resp AttributesResponse
	code, raw := get(ts.URL+"/v1/attributes", &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.APIVersion != APIVersion {
		t.Errorf("api_version = %q", resp.APIVersion)
	}
	byName := map[string]AttributeKey{}
	for _, k := range resp.Keys {
		byName[k.Name] = k
	}
	compiler, ok := byName["compiler"]
	if !ok {
		t.Fatalf("compiler key missing: %+v", resp.Keys)
	}
	if compiler.Distinct != 2 || compiler.Resources != 8 {
		t.Errorf("compiler = %+v", compiler)
	}
	clock, ok := byName["clock MHz"]
	if !ok {
		t.Fatalf("clock MHz key missing (machine attrs not listed)")
	}
	if !clock.Numeric || clock.Min == nil || clock.Max == nil {
		t.Errorf("clock MHz = %+v", clock)
	}

	// Prefix filter.
	resp = AttributesResponse{}
	code, raw = get(ts.URL+"/v1/attributes?prefix=comp", &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(resp.Keys) != 1 || resp.Keys[0].Name != "compiler" || resp.Prefix != "comp" {
		t.Errorf("prefix listing = %+v", resp)
	}

	// Unknown query parameter.
	code, _ = get(ts.URL+"/v1/attributes?bogus=1", nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown param status = %d, want 400", code)
	}
}
