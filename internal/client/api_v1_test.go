package client

// End-to-end tests of the v1 client surface against a real server over
// an in-memory store: bulk loads, server-side compare, and the typed
// error contract (APIError unwraps to the datastore sentinels).

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
	"perftrack/internal/server"
)

func newAPIServer(t *testing.T) *Client {
	t.Helper()
	store, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.MaxRetries = -1
	return c
}

func execDoc(tag string, value float64) string {
	return fmt.Sprintf(`Application app
Execution %s app
Resource /app application
Resource /%s execution %s
PerfResult %s /app,/%s(primary) t "wall time" %g seconds
`, tag, tag, tag, tag, tag, value)
}

func TestLoadBatchEndToEnd(t *testing.T) {
	c := newAPIServer(t)
	ctx := context.Background()
	docs := []BatchDoc{
		{Name: "a.ptdf", R: strings.NewReader(execDoc("ea", 100))},
		{Name: "bad.ptdf", R: strings.NewReader("Garbage\n")},
		{Name: "b.ptdf", R: strings.NewReader(execDoc("eb", 150))},
	}
	var seen []server.LoadDocStatus
	summary, err := c.LoadBatch(ctx, docs, 2, func(st server.LoadDocStatus) { seen = append(seen, st) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d per-doc lines, want 3: %+v", len(seen), seen)
	}
	for i, want := range []string{"a.ptdf", "bad.ptdf", "b.ptdf"} {
		if seen[i].Doc != want {
			t.Errorf("doc %d = %q, want %q", i, seen[i].Doc, want)
		}
	}
	if seen[1].Error == "" {
		t.Error("bad document reported no error")
	}
	if !summary.Done || summary.Docs != 3 || summary.Failed != 1 {
		t.Errorf("summary = %+v", summary)
	}
	if summary.Stats.Results != 2 {
		t.Errorf("summary stats = %+v", summary.Stats)
	}

	// Both good executions are now comparable server-side.
	cr, err := c.Compare(ctx, "ea", "eb", CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Summary.Paired != 1 || len(cr.Regressions) != 1 {
		t.Errorf("compare = %+v", cr)
	}
	if cr.Regressions[0].Percent != 50 {
		t.Errorf("regression percent = %v", cr.Regressions[0].Percent)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := newAPIServer(t)
	ctx := context.Background()
	if _, err := c.Load(ctx, strings.NewReader(execDoc("ea", 100))); err != nil {
		t.Fatal(err)
	}

	// Missing entity → ErrNotFound.
	_, err := c.Compare(ctx, "ghost", "ea", CompareOptions{})
	if !errors.Is(err, datastore.ErrNotFound) {
		t.Errorf("compare unknown exec: err = %v, want ErrNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("err = %v, want *APIError with 404", err)
	}

	// Identity conflict → ErrExists.
	_, err = c.Load(ctx, strings.NewReader("Application other\nExecution ea other\n"))
	if !errors.Is(err, datastore.ErrExists) {
		t.Errorf("conflicting load: err = %v, want ErrExists", err)
	}

	// Malformed input → ErrBadSpec.
	_, err = c.Load(ctx, strings.NewReader("Garbage\n"))
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Errorf("bad document: err = %v, want ErrBadSpec", err)
	}
	_, err = c.Query(ctx, []string{"%%%not-a-spec"})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Errorf("bad filter spec: err = %v, want ErrBadSpec", err)
	}
}

func TestResultsStreamEndToEnd(t *testing.T) {
	c := newAPIServer(t)
	ctx := context.Background()
	for _, doc := range []string{execDoc("ea", 100), execDoc("eb", 150)} {
		if _, err := c.Load(ctx, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	var rows []server.ResultRow
	summary, err := c.ResultsStream(ctx, server.ResultsRequest{Families: []string{"type=application"}},
		func(row server.ResultRow) { rows = append(rows, row) })
	if err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Rows != 2 || len(rows) != 2 {
		t.Fatalf("summary = %+v, rows = %d", summary, len(rows))
	}
	for _, row := range rows {
		if row.Metric != "wall time" || row.Tool != "t" || len(row.Resources) != 2 {
			t.Errorf("row = %+v", row)
		}
	}
	if rows[0].Execution != "ea" || rows[1].Execution != "eb" {
		t.Errorf("executions = %q, %q", rows[0].Execution, rows[1].Execution)
	}

	// Refinements needing the full result set are rejected up front.
	_, err = c.ResultsStream(ctx, server.ResultsRequest{SortBy: "value"}, nil)
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Errorf("sorted stream: err = %v, want ErrBadSpec", err)
	}
}

// attrDoc is execDoc plus a compiler attribute on the execution
// resource, so a diagnosis has a predicate to find.
func attrDoc(tag string, value float64, compiler string) string {
	return fmt.Sprintf(`Application app
Execution %s app
Resource /app application
Resource /%s execution %s
ResourceAttribute /%s compiler %s string
PerfResult %s /app,/%s(primary) t "wall time" %g seconds
`, tag, tag, tag, tag, compiler, tag, tag, value)
}

func TestClientDiagnoseAndAttributes(t *testing.T) {
	c := newAPIServer(t)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		compiler, value := "-O2", 100.0
		if i%2 == 1 {
			compiler, value = "-O0", 200.0
		}
		doc := attrDoc(fmt.Sprintf("e%d", i), value, compiler)
		if _, err := c.Load(ctx, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Diagnose(ctx, server.DiagnoseRequest{
		ExecsA: []string{"e0", "e2", "e4", "e6"},
		ExecsB: []string{"e1", "e3", "e5", "e7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Explanations) == 0 || resp.Explanations[0].Predicate != "compiler = -O0" {
		t.Fatalf("explanations = %+v", resp.Explanations)
	}
	if resp.Ratio == nil || *resp.Ratio != 2 {
		t.Errorf("ratio = %v, want 2", resp.Ratio)
	}

	ar, err := c.Attributes(ctx, "comp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Keys) != 1 || ar.Keys[0].Name != "compiler" || ar.Keys[0].Distinct != 2 {
		t.Errorf("attributes = %+v", ar.Keys)
	}

	// Typed errors surface through Diagnose like every other call.
	_, err = c.Diagnose(ctx, server.DiagnoseRequest{ExecA: "ghost", ExecB: "e0"})
	if !errors.Is(err, datastore.ErrNotFound) {
		t.Errorf("unknown exec: err = %v, want ErrNotFound", err)
	}
	_, err = c.Diagnose(ctx, server.DiagnoseRequest{ExecA: "e0"})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Errorf("missing side: err = %v, want ErrBadSpec", err)
	}
}

func TestClientStats(t *testing.T) {
	c := newAPIServer(t)
	ctx := context.Background()
	if _, err := c.Load(ctx, strings.NewReader(execDoc("ea", 100))); err != nil {
		t.Fatal(err)
	}
	sr, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.APIVersion != server.APIVersion || sr.Store.Executions != 1 || sr.Store.Results != 1 {
		t.Errorf("stats = %+v", sr)
	}
}
