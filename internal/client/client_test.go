package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perftrack/internal/server"
)

// flakyHandler fails the first n requests with the given status, then
// delegates to ok.
func flakyHandler(n int, status int, header http.Header, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			for k, vs := range header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "transient", RequestID: "rid-1"})
			return
		}
		ok(w, r)
	}, &calls
}

func fastClient(url string) *Client {
	return &Client{BaseURL: url, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

func TestRetriesTransient5xxThenSucceeds(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusInternalServerError, nil, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "ok", Generation: 7})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	hr, err := fastClient(ts.URL).Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Generation != 7 {
		t.Errorf("health = %+v", hr)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

func TestRetries429AndReplaysLoadBody(t *testing.T) {
	var gotBody atomic.Value
	h, calls := flakyHandler(1, http.StatusTooManyRequests, nil, func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody.Store(string(b))
		json.NewEncoder(w).Encode(server.LoadResponse{Generation: 1})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	doc := "Application retried\n"
	if _, err := fastClient(ts.URL).Load(context.Background(), strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
	// The retried attempt carried the full, identical document.
	if got, _ := gotBody.Load().(string); got != doc {
		t.Errorf("retried body = %q, want %q", got, doc)
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	hdr := http.Header{}
	hdr.Set("Retry-After", "1")
	h, _ := flakyHandler(1, http.StatusTooManyRequests, hdr, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.QueryResponse{Matches: 3})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	start := time.Now()
	qr, err := fastClient(ts.URL).Query(context.Background(), []string{"type=application"})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Matches != 3 {
		t.Errorf("matches = %d", qr.Matches)
	}
	// Backoff would be ~ms; Retry-After forces >= 1s.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("Retry-After ignored: retried after %s", elapsed)
	}
}

func TestDoesNotRetryBadRequest(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusBadRequest, nil, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	_, err := fastClient(ts.URL).Query(context.Background(), []string{"nonsense"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if apiErr.Message != "transient" || apiErr.RequestID != "rid-1" {
		t.Errorf("error body not decoded: %+v", apiErr)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried: %d calls", calls.Load())
	}
}

func TestGivesUpAfterMaxRetries(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusServiceUnavailable, nil, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestRetriesConnectionErrors(t *testing.T) {
	// A server that dies after its first (failed) response: the port is
	// then closed, so the retry hits a connection error and must still be
	// retried until MaxRetries runs out.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	url := ts.URL
	ts.Close()

	c := fastClient(url)
	c.MaxRetries = 2
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected error against closed port")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Errorf("connection error misreported as API error: %v", err)
	}
}

func TestContextCancelsRetryLoop(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusServiceUnavailable, nil, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := fastClient(ts.URL)
	c.BaseBackoff = 20 * time.Millisecond
	c.MaxRetries = 1000
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not stop the retry loop promptly")
	}
	if calls.Load() > 10 {
		t.Errorf("calls = %d despite 30ms deadline", calls.Load())
	}
}

func TestBackoffGrowsAndJitters(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 5; attempt++ {
		d := c.backoff(attempt, "")
		want := c.BaseBackoff << (attempt - 1)
		if want > c.MaxBackoff {
			want = c.MaxBackoff
		}
		if d <= 0 || d > want {
			t.Errorf("attempt %d: backoff %s outside (0, %s]", attempt, d, want)
		}
		if d < want/2 {
			t.Errorf("attempt %d: backoff %s below half the target %s", attempt, d, want)
		}
		if want > prevMax {
			prevMax = want
		}
	}
	// Retry-After dominates the computed backoff.
	if d := c.backoff(1, "2"); d < 2*time.Second {
		t.Errorf("Retry-After backoff = %s, want >= 2s", d)
	}
}

// TestCountersTrackRetriesAndBackoff pins the client's own
// instrumentation: each attempt counts as a request, each retry counts a
// backoff sleep, and the snapshot is cumulative across calls.
func TestCountersTrackRetriesAndBackoff(t *testing.T) {
	h, _ := flakyHandler(2, http.StatusInternalServerError, nil, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "ok"})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastClient(ts.URL)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Counters()
	if st.Requests != 3 || st.Retries != 2 || st.BackoffSleeps != 2 {
		t.Errorf("counters = %+v, want 3 requests / 2 retries / 2 sleeps", st)
	}
	if st.BackoffTotal <= 0 {
		t.Errorf("backoff total = %s, want > 0", st.BackoffTotal)
	}
	if st.StreamAborts != 0 {
		t.Errorf("stream aborts = %d, want 0", st.StreamAborts)
	}

	// A second, clean call adds exactly one request.
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Counters().Requests; got != 4 {
		t.Errorf("requests after clean call = %d, want 4", got)
	}
}

// TestCountersTrackStreamAborts: a result stream truncated before its
// summary line counts as an abort.
func TestCountersTrackStreamAborts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"api_version":"v1","columns":["execution"],"total":1}` + "\n"))
		// No row, no Done line: the stream just ends.
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	_, err := c.ResultsStream(context.Background(), server.ResultsRequest{}, nil)
	if err == nil {
		t.Fatal("truncated stream did not error")
	}
	st := c.Counters()
	if st.StreamAborts != 1 || st.Requests != 1 {
		t.Errorf("counters = %+v, want 1 abort / 1 request", st)
	}
}
