package client

import (
	"sync/atomic"
	"time"
)

// Stats is a snapshot of one Client's lifetime instrumentation counters.
// (Client.Stats fetches the *server's* /v1/stats; Counters reports the
// client's own behaviour — how many requests it sent, how often it had
// to retry, and how long it spent backing off.)
type Stats struct {
	// Requests counts HTTP requests actually sent, including each retry
	// attempt and the non-retrying streaming calls.
	Requests uint64
	// Retries counts attempts beyond the first.
	Retries uint64
	// BackoffSleeps counts the waits before retries; BackoffTotal is the
	// time spent in them.
	BackoffSleeps uint64
	BackoffTotal  time.Duration
	// StreamAborts counts streaming calls (ResultsStream, LoadBatch) that
	// ended without a clean summary line: mid-stream server errors,
	// truncated streams, and decode failures.
	StreamAborts uint64
}

// counters is the live atomic state behind Counters. It lives in its own
// struct so Client's exported configuration fields stay copyable in
// docs/examples while the counters are only touched through the pointer
// receiver methods.
type counters struct {
	requests      atomic.Uint64
	retries       atomic.Uint64
	backoffSleeps atomic.Uint64
	backoffNanos  atomic.Uint64
	streamAborts  atomic.Uint64
}

// Counters snapshots the client's instrumentation counters. Safe for
// concurrent use with in-flight calls.
func (c *Client) Counters() Stats {
	return Stats{
		Requests:      c.ctrs.requests.Load(),
		Retries:       c.ctrs.retries.Load(),
		BackoffSleeps: c.ctrs.backoffSleeps.Load(),
		BackoffTotal:  time.Duration(c.ctrs.backoffNanos.Load()),
		StreamAborts:  c.ctrs.streamAborts.Load(),
	}
}

func (c *Client) countRequest() { c.ctrs.requests.Add(1) }

func (c *Client) countRetry(slept time.Duration) {
	c.ctrs.retries.Add(1)
	c.ctrs.backoffSleeps.Add(1)
	c.ctrs.backoffNanos.Add(uint64(slept))
}

func (c *Client) countStreamAbort() { c.ctrs.streamAborts.Add(1) }
