// Package client is the Go client for ptserved's v1 HTTP/JSON API. It
// shares its wire types with internal/server, supports contexts on every
// call, and retries transient failures (connection errors, 429, 5xx)
// with exponential backoff and jitter, honoring Retry-After.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/server"
)

// APIError is a non-2xx reply from the server, decoded from its JSON
// error body when possible.
type APIError struct {
	StatusCode int
	Message    string
	RequestID  string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("client: server returned %d: %s (request %s)", e.StatusCode, e.Message, e.RequestID)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Unwrap maps the HTTP status class back onto the datastore's sentinel
// errors, so callers can errors.Is(err, datastore.ErrNotFound) (and
// ErrExists, ErrBadSpec) on a remote call exactly as they would on a
// local store.
func (e *APIError) Unwrap() error {
	switch e.StatusCode {
	case http.StatusNotFound:
		return datastore.ErrNotFound
	case http.StatusConflict:
		return datastore.ErrExists
	case http.StatusBadRequest:
		return datastore.ErrBadSpec
	}
	return nil
}

// retryable reports whether the failure class is worth another attempt:
// the server shed the request (429) or failed transiently (5xx).
func (e *APIError) retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// Client talks to one ptserved instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7075".
	BaseURL string

	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// MaxRetries bounds attempts beyond the first; negative disables
	// retries. 0 means the default of 4.
	MaxRetries int

	// BaseBackoff seeds the exponential backoff (doubled per attempt, up
	// to MaxBackoff, plus up to 50% jitter). Zero values mean 100ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// ctrs instruments the client; snapshot with Counters.
	ctrs counters
}

// New returns a client with default retry policy.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 4
	}
	return c.MaxRetries
}

// backoff computes the sleep before retry attempt (1-based), honoring a
// Retry-After hint when the server supplied one. Jitter keeps a fleet of
// shed clients from re-arriving in lockstep; the result is never zero.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			return time.Duration(secs)*time.Second + time.Duration(rand.Int63n(int64(100*time.Millisecond))+1)
		}
	}
	base, max := c.BaseBackoff, c.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) + 1
}

// do sends one request, retrying transient failures. body is the raw
// request payload (replayed on each attempt); out, when non-nil, receives
// the decoded 200 response.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt, retryAfterOf(lastErr))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
			}
			c.countRetry(wait)
		}
		err := c.doOnce(ctx, method, path, contentType, body, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		}
		if apiErr, ok := err.(*retryAfterError); ok {
			if !apiErr.APIError.retryable() || attempt >= c.retries() {
				return apiErr.APIError
			}
		} else if attempt >= c.retries() {
			return err
		}
		lastErr = err
	}
}

// retryAfterError carries the Retry-After hint alongside the API error.
type retryAfterError struct {
	*APIError
	retryAfter string
}

func retryAfterOf(err error) string {
	if ra, ok := err.(*retryAfterError); ok {
		return ra.retryAfter
	}
	return ""
}

func (c *Client) doOnce(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	c.countRequest()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		var er server.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			apiErr.Message, apiErr.RequestID = er.Error, er.RequestID
		}
		return &retryAfterError{APIError: apiErr, retryAfter: resp.Header.Get("Retry-After")}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: decode %s response: %w", path, err)
		}
	}
	return nil
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	return c.do(ctx, http.MethodPost, path, "application/json", body, out)
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) (server.HealthResponse, error) {
	var out server.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", "", nil, &out)
	return out, err
}

// Load streams a PTdf document to the server. The document is buffered
// in memory so transient failures can be retried with an identical body;
// the server applies it transactionally.
func (c *Client) Load(ctx context.Context, r io.Reader) (server.LoadResponse, error) {
	var out server.LoadResponse
	doc, err := io.ReadAll(r)
	if err != nil {
		return out, fmt.Errorf("client: read PTdf document: %w", err)
	}
	err = c.do(ctx, http.MethodPost, "/v1/load", "text/plain", doc, &out)
	return out, err
}

// Query evaluates a pr-filter (one spec per family) and returns the
// match counts.
func (c *Client) Query(ctx context.Context, families []string) (server.QueryResponse, error) {
	return c.QueryWith(ctx, server.QueryRequest{Families: families})
}

// QueryWith is Query over the full request shape: the unified selection
// (families plus execution restriction) and the explain flag.
func (c *Client) QueryWith(ctx context.Context, req server.QueryRequest) (server.QueryResponse, error) {
	var out server.QueryResponse
	err := c.postJSON(ctx, "/v1/query", req, &out)
	return out, err
}

// SQL runs one SELECT on the server's cost-based planner
// (POST /v1/sql). A malformed or unsupported statement unwraps to
// datastore.ErrBadSpec.
func (c *Client) SQL(ctx context.Context, req server.SQLRequest) (server.SQLResponse, error) {
	var out server.SQLResponse
	err := c.postJSON(ctx, "/v1/sql", req, &out)
	return out, err
}

// Results runs the two-step retrieval and returns the refined table.
func (c *Client) Results(ctx context.Context, req server.ResultsRequest) (server.ResultsResponse, error) {
	var out server.ResultsResponse
	err := c.postJSON(ctx, "/v1/results", req, &out)
	return out, err
}

// ResultsStream runs a streamed retrieval (POST /v1/results?stream=1):
// the server evaluates the pr-filter once, then materializes matching
// results in bounded chunks and emits one NDJSON row line each, so
// neither side holds a full-corpus retrieval in memory. onRow, when
// non-nil, observes each row as it arrives; the returned line is the
// final summary (Done=true with the emitted row count). Only Families,
// Metric, and Limit apply — the server rejects refinements that need
// the whole result set (sorting, added columns).
//
// ResultsStream never retries: rows already handed to onRow cannot be
// taken back, and replaying the stream would duplicate them.
func (c *Client) ResultsStream(ctx context.Context, req server.ResultsRequest, onRow func(server.ResultRow)) (server.ResultStreamLine, error) {
	var summary server.ResultStreamLine
	body, err := json.Marshal(req)
	if err != nil {
		return summary, fmt.Errorf("client: encode request: %w", err)
	}
	path := "/v1/results?stream=1"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return summary, fmt.Errorf("client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.countRequest()
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return summary, fmt.Errorf("client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		var er server.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			apiErr.Message, apiErr.RequestID = er.Error, er.RequestID
		}
		return summary, apiErr
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var st server.ResultStreamLine
		if err := json.Unmarshal(line, &st); err != nil {
			return summary, fmt.Errorf("client: decode result stream line: %w", err)
		}
		switch {
		case st.Error != "":
			c.countStreamAbort()
			return summary, fmt.Errorf("client: result stream failed mid-stream: %s", st.Error)
		case st.Done:
			summary, sawSummary = st, true
		case st.Row != nil:
			if onRow != nil {
				onRow(*st.Row)
			}
		}
	}
	if err := sc.Err(); err != nil {
		c.countStreamAbort()
		return summary, fmt.Errorf("client: read result stream: %w", err)
	}
	if !sawSummary {
		c.countStreamAbort()
		return summary, fmt.Errorf("client: result stream ended without a summary line")
	}
	return summary, nil
}

// Report fetches one name-list report: executions, metrics,
// applications, or tools.
func (c *Client) Report(ctx context.Context, name string) (server.ReportResponse, error) {
	var out server.ReportResponse
	err := c.do(ctx, http.MethodGet, "/v1/reports/"+name, "", nil, &out)
	return out, err
}

// Stats fetches the store summary and query-engine counters.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var out server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, &out)
	return out, err
}

// CompareOptions refine a Compare call. Zero values mean the server
// defaults: all metrics, 10% threshold, top 10 bottlenecks.
type CompareOptions struct {
	Metric    string
	Threshold float64
	Top       int
}

// Compare fetches the server-side comparison of two executions
// (GET /v1/compare). An unknown execution surfaces as an *APIError that
// unwraps to datastore.ErrNotFound.
func (c *Client) Compare(ctx context.Context, execA, execB string, opts CompareOptions) (server.CompareResponse, error) {
	q := url.Values{}
	q.Set("a", execA)
	q.Set("b", execB)
	if opts.Metric != "" {
		q.Set("metric", opts.Metric)
	}
	if opts.Threshold > 0 {
		q.Set("threshold", strconv.FormatFloat(opts.Threshold, 'g', -1, 64))
	}
	if opts.Top > 0 {
		q.Set("top", strconv.Itoa(opts.Top))
	}
	var out server.CompareResponse
	err := c.do(ctx, http.MethodGet, "/v1/compare?"+q.Encode(), "", nil, &out)
	return out, err
}

// Diagnose runs an automated multi-execution diagnosis on the server
// (POST /v1/diagnose) and returns the ranked explanations. The request
// is idempotent, so transient failures retry like any other call; an
// unknown execution unwraps to datastore.ErrNotFound and a malformed
// spec to datastore.ErrBadSpec.
func (c *Client) Diagnose(ctx context.Context, req server.DiagnoseRequest) (server.DiagnoseResponse, error) {
	var out server.DiagnoseResponse
	err := c.postJSON(ctx, "/v1/diagnose", req, &out)
	return out, err
}

// Attributes lists attribute keys and their value domains
// (GET /v1/attributes), optionally filtered by name prefix.
func (c *Client) Attributes(ctx context.Context, prefix string) (server.AttributesResponse, error) {
	return c.AttributesPage(ctx, prefix, 0, "")
}

// AttributesPage is Attributes with pagination: limit bounds the page
// (0 = everything) and cursor resumes from a prior page's NextCursor.
// The response carries the next cursor while keys remain.
func (c *Client) AttributesPage(ctx context.Context, prefix string, limit int, cursor string) (server.AttributesResponse, error) {
	q := url.Values{}
	if prefix != "" {
		q.Set("prefix", prefix)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	path := "/v1/attributes"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out server.AttributesResponse
	err := c.do(ctx, http.MethodGet, path, "", nil, &out)
	return out, err
}

// BatchDoc names one PTdf document for LoadBatch.
type BatchDoc struct {
	Name string
	R    io.Reader
}

// LoadBatch streams several PTdf documents to the server in one
// multipart POST /v1/load. The server decodes them in parallel (workers
// hints the parallelism; 0 lets the server pick) and commits each
// document transactionally in order, streaming back one NDJSON status
// line per document. onDoc, when non-nil, observes each per-document
// line as it arrives; the returned LoadDocStatus is the final summary
// line (Done=true, with totals and the failed-document count).
//
// LoadBatch never retries: by the time a failure is visible some
// documents may already have committed, and replaying the stream would
// double-apply them. Callers retry per document using the statuses.
func (c *Client) LoadBatch(ctx context.Context, docs []BatchDoc, workers int, onDoc func(server.LoadDocStatus)) (server.LoadDocStatus, error) {
	var summary server.LoadDocStatus
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, d := range docs {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("doc-%d", i+1)
		}
		part, err := mw.CreateFormFile("ptdf", name)
		if err != nil {
			return summary, fmt.Errorf("client: build multipart body: %w", err)
		}
		if _, err := io.Copy(part, d.R); err != nil {
			return summary, fmt.Errorf("client: read document %q: %w", name, err)
		}
	}
	if err := mw.Close(); err != nil {
		return summary, fmt.Errorf("client: build multipart body: %w", err)
	}

	path := "/v1/load"
	if workers > 0 {
		path += "?j=" + strconv.Itoa(workers)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, &body)
	if err != nil {
		return summary, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	c.countRequest()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return summary, fmt.Errorf("client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(bytes.TrimSpace(raw))}
		var er server.ErrorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			apiErr.Message, apiErr.RequestID = er.Error, er.RequestID
		}
		return summary, apiErr
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var st server.LoadDocStatus
		if err := json.Unmarshal(line, &st); err != nil {
			c.countStreamAbort()
			return summary, fmt.Errorf("client: decode load status line: %w", err)
		}
		if st.Done {
			summary, sawSummary = st, true
			continue
		}
		if onDoc != nil {
			onDoc(st)
		}
	}
	if err := sc.Err(); err != nil {
		c.countStreamAbort()
		return summary, fmt.Errorf("client: read load status stream: %w", err)
	}
	if !sawSummary {
		c.countStreamAbort()
		return summary, fmt.Errorf("client: load status stream ended without a summary line")
	}
	return summary, nil
}
