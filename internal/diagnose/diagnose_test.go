package diagnose

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/gen"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// fleetStore loads a synthetic fleet into a fresh in-memory store.
func fleetStore(t testing.TB, spec gen.FleetSpec) (*datastore.Store, *gen.Fleet) {
	t.Helper()
	fleet, err := gen.FleetRecords(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	batch := s.NewBatch()
	for _, rec := range fleet.Records {
		batch.Stage(rec)
	}
	if _, err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, fleet
}

func TestDiagnoseFleetRanksPlantedPredicate(t *testing.T) {
	s, fleet := fleetStore(t, gen.FleetSpec{Execs: 100, Seed: 7})
	res, err := Run(context.Background(), s, Spec{
		ExecsA:  fleet.Fast,
		ExecsB:  fleet.Slow,
		Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 {
		t.Fatalf("no explanations; trace:\n%s", strings.Join(res.Trace, "\n"))
	}
	top := res.Explanations[0]
	if got := top.Pred.String(); got != "compiler = -O0" {
		t.Fatalf("top explanation %q (score %.3f), want planted compiler = -O0; trace:\n%s",
			got, top.Score, strings.Join(res.Trace, "\n"))
	}
	if top.Score <= 0.99 {
		t.Fatalf("planted predicate score = %v, want ~1", top.Score)
	}
	if len(res.Explanations) > 1 && res.Explanations[1].Score >= top.Score {
		t.Fatalf("planted predicate does not dominate: #2 %q score %v",
			res.Explanations[1].Pred, res.Explanations[1].Score)
	}
	// The headline perf must reflect the planted 2x slowdown.
	if res.Ratio < 1.8 || res.Ratio > 2.2 {
		t.Fatalf("side ratio = %v, want ~2", res.Ratio)
	}
	if res.Keys == 0 || res.Candidates == 0 || len(res.Trace) == 0 {
		t.Fatalf("missing search metadata: keys %d candidates %d trace %d",
			res.Keys, res.Candidates, len(res.Trace))
	}
	// Bottleneck ranking: both time metrics slowed down 2x; wall clock
	// time (100 vs 20 base) contributes the most.
	if len(res.Bottlenecks) == 0 || res.Bottlenecks[0].Metric != "wall clock time" {
		t.Fatalf("bottlenecks = %+v", res.Bottlenecks)
	}
}

func TestDiagnoseParallelMatchesSerial(t *testing.T) {
	s, fleet := fleetStore(t, gen.FleetSpec{Execs: 60, Seed: 11})
	serial, err := Run(context.Background(), s, Spec{ExecsA: fleet.Fast, ExecsB: fleet.Slow, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), s, Spec{ExecsA: fleet.Fast, ExecsB: fleet.Slow, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Explanations, parallel.Explanations) {
		t.Fatalf("serial and parallel diverge:\n%+v\nvs\n%+v", serial.Explanations, parallel.Explanations)
	}
	if !reflect.DeepEqual(serial.Bottlenecks, parallel.Bottlenecks) {
		t.Fatalf("bottlenecks diverge")
	}
}

func TestDiagnoseNumericThresholdPredicate(t *testing.T) {
	// Plant a purely numeric discriminator with a domain small enough to
	// enumerate but where only a threshold separates the sides exactly.
	var recs []ptdf.Record
	recs = append(recs, ptdf.ApplicationRec{Name: "app"})
	var fast, slow []string
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("exec-%02d", i)
		recs = append(recs, ptdf.ExecutionRec{Name: name, App: "app"})
		res := core.ResourceName("/" + name)
		recs = append(recs, ptdf.ResourceRec{Name: res, Type: "execution", Exec: name})
		mem := 100 + 10*(i%4) // slow: 100..130
		value := 50.0
		if i%2 == 0 {
			mem = 200 + 10*(i%4) // fast: 200..230
			value = 25.0
			fast = append(fast, name)
		} else {
			slow = append(slow, name)
		}
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: res, Attr: "memory per node MB", Value: fmt.Sprintf("%d", mem), AttrType: "string",
		})
		recs = append(recs, ptdf.PerfResultRec{
			Exec: name, Sets: []ptdf.ResourceSet{{Names: []core.ResourceName{res}, Type: core.FocusPrimary}},
			Tool: "gen", Metric: "wall clock time", Units: "seconds", Value: value,
		})
	}
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	batch := s.NewBatch()
	for _, rec := range recs {
		batch.Stage(rec)
	}
	if _, err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), s, Spec{ExecsA: fast, ExecsB: slow})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	top := res.Explanations[0]
	if top.Pred.Attr != "memory per node MB" || top.Pred.Op != "<=" {
		t.Fatalf("top = %q, want a memory threshold", top.Pred)
	}
	if top.Effect != 1 {
		t.Fatalf("threshold effect = %v, want 1", top.Effect)
	}
}

func TestDiagnoseOneVsOneAlignsContexts(t *testing.T) {
	s, fleet := fleetStore(t, gen.FleetSpec{Execs: 10, Seed: 3})
	res, err := Run(context.Background(), s, Spec{ExecA: fleet.Fast[0], ExecB: fleet.Slow[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.AlignedPairs == 0 {
		t.Fatal("no aligned pairs in 1v1 mode")
	}
	if len(res.Contexts) == 0 {
		t.Fatal("no context findings in 1v1 mode")
	}
	if res.Delta <= 0 {
		t.Fatalf("delta = %v, want positive (B planted slower)", res.Delta)
	}
	// Set mode must not produce context findings.
	setRes, err := Run(context.Background(), s, Spec{ExecsA: fleet.Fast, ExecsB: fleet.Slow})
	if err != nil {
		t.Fatal(err)
	}
	if setRes.AlignedPairs != 0 || len(setRes.Contexts) != 0 {
		t.Fatalf("set mode produced 1v1 evidence: %d pairs, %d contexts",
			setRes.AlignedPairs, len(setRes.Contexts))
	}
}

func TestDiagnoseFamilySides(t *testing.T) {
	// Select the sides by pr-filter families over the planted attribute's
	// values, exercising the ApplyFilter → MatchingResultIDs →
	// ExecutionsOfResults path.
	s, fleet := fleetStore(t, gen.FleetSpec{Execs: 30, Seed: 5})
	res, err := Run(context.Background(), s, Spec{
		FamiliesA: []string{"attr=compiler=-O2"},
		FamiliesB: []string{"attr=compiler=-O0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SideA) != len(fleet.Fast) || len(res.SideB) != len(fleet.Slow) {
		t.Fatalf("family selection: %d/%d executions, want %d/%d",
			len(res.SideA), len(res.SideB), len(fleet.Fast), len(fleet.Slow))
	}
	if res.Ratio < 1.8 || res.Ratio > 2.2 {
		t.Fatalf("ratio = %v, want ~2", res.Ratio)
	}
}

func TestDiagnoseErrors(t *testing.T) {
	s, fleet := fleetStore(t, gen.FleetSpec{Execs: 6, Seed: 1})
	// Unknown execution → ErrNotFound.
	_, err := Run(context.Background(), s, Spec{ExecA: fleet.Fast[0], ExecB: "nope"})
	if !errors.Is(err, datastore.ErrNotFound) {
		t.Fatalf("unknown execution: %v, want ErrNotFound", err)
	}
	// Ambiguous side selection → ErrBadSpec.
	_, err = Run(context.Background(), s, Spec{ExecA: "x", FamiliesA: []string{"type=application"}, ExecB: "y"})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Fatalf("ambiguous side: %v, want ErrBadSpec", err)
	}
	// No side at all → ErrBadSpec.
	_, err = Run(context.Background(), s, Spec{ExecA: "x"})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Fatalf("missing side: %v, want ErrBadSpec", err)
	}
	// Bad family spec → ErrBadSpec.
	_, err = Run(context.Background(), s, Spec{FamiliesA: []string{"bogus=="}, ExecB: fleet.Slow[0]})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Fatalf("bad family: %v, want ErrBadSpec", err)
	}
	// Families matching nothing → ErrNotFound.
	_, err = Run(context.Background(), s, Spec{FamiliesA: []string{"name=/no/such/resource"}, ExecB: fleet.Slow[0]})
	if !errors.Is(err, datastore.ErrNotFound) {
		t.Fatalf("empty family: %v, want ErrNotFound", err)
	}
	// Out-of-range knobs → ErrBadSpec.
	_, err = Run(context.Background(), s, Spec{ExecA: "a", ExecB: "b", MinCoverage: 2})
	if !errors.Is(err, datastore.ErrBadSpec) {
		t.Fatalf("bad min_coverage: %v, want ErrBadSpec", err)
	}
}

func TestParseRequest(t *testing.T) {
	sp, err := ParseRequest([]byte(`{"exec_a":"a","exec_b":"b","metric":"m","top":3,"explain":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.ExecA != "a" || sp.ExecB != "b" || sp.Metric != "m" || sp.Top != 3 || !sp.Explain {
		t.Fatalf("parsed %+v", sp)
	}
	for _, bad := range []string{
		``,
		`{`,
		`{"exec_a":"a"}`, // missing side B
		`{"exec_a":"a","exec_b":"b","unknown":1}`,     // unknown field
		`{"exec_a":"a","exec_b":"b"} trailing`,        // trailing data
		`{"exec_a":"a","execs_a":["x"],"exec_b":"b"}`, // ambiguous side
		`{"exec_a":"a","exec_b":"b","top":-1}`,
	} {
		if _, err := ParseRequest([]byte(bad)); !errors.Is(err, datastore.ErrBadSpec) {
			t.Errorf("ParseRequest(%q) = %v, want ErrBadSpec", bad, err)
		}
	}
}
