package diagnose

import (
	"math"
	"strings"
	"testing"
)

func TestPredicateHolds(t *testing.T) {
	tests := []struct {
		name          string
		pred          Predicate
		vals          []string
		holds, defind bool
	}{
		{"eq match", Predicate{Attr: "c", Op: "=", Value: "-O0"}, []string{"-O0"}, true, true},
		{"eq miss", Predicate{Attr: "c", Op: "=", Value: "-O0"}, []string{"-O2"}, false, true},
		{"eq any-of", Predicate{Attr: "c", Op: "=", Value: "-O0"}, []string{"-O2", "-O0"}, true, true},
		{"eq undefined", Predicate{Attr: "c", Op: "=", Value: "-O0"}, nil, false, false},
		{"neq holds", Predicate{Attr: "c", Op: "!=", Value: "-O0"}, []string{"-O2"}, true, true},
		{"neq miss", Predicate{Attr: "c", Op: "!=", Value: "-O0"}, []string{"-O2", "-O0"}, false, true},
		{"neq undefined", Predicate{Attr: "c", Op: "!=", Value: "-O0"}, nil, false, false},
		{"le match", Predicate{Attr: "n", Op: "<=", threshold: 48}, []string{"32"}, true, true},
		{"le miss", Predicate{Attr: "n", Op: "<=", threshold: 48}, []string{"64"}, false, true},
		{"le any-of", Predicate{Attr: "n", Op: "<=", threshold: 48}, []string{"64", "32"}, true, true},
		{"le unparsable", Predicate{Attr: "n", Op: "<=", threshold: 48}, []string{"small"}, false, false},
		{"le mixed", Predicate{Attr: "n", Op: "<=", threshold: 48}, []string{"small", "64"}, false, true},
		{"gt match", Predicate{Attr: "n", Op: ">", threshold: 48}, []string{"64"}, true, true},
		{"gt miss", Predicate{Attr: "n", Op: ">", threshold: 48}, []string{"32"}, false, true},
	}
	for _, tt := range tests {
		holds, defined := tt.pred.Holds(tt.vals)
		if holds != tt.holds || defined != tt.defind {
			t.Errorf("%s: Holds(%v) = (%v, %v), want (%v, %v)",
				tt.name, tt.vals, holds, defined, tt.holds, tt.defind)
		}
	}
}

func TestPredicateNegate(t *testing.T) {
	for _, tt := range []struct{ op, want string }{
		{"=", "!="}, {"!=", "="}, {"<=", ">"}, {">", "<="},
	} {
		if got := (Predicate{Op: tt.op}).negate().Op; got != tt.want {
			t.Errorf("negate(%s) = %s, want %s", tt.op, got, tt.want)
		}
	}
}

// mkProfiles builds nFast fast profiles followed by nSlow slow ones, with
// the given perf values (NaN perf marks the execution unmeasured).
func mkProfiles(fastPerf, slowPerf []float64) []profile {
	var out []profile
	for i, v := range fastPerf {
		p := profile{name: "fast-" + string(rune('a'+i)), perf: v, perfOK: !math.IsNaN(v)}
		out = append(out, p)
	}
	for i, v := range slowPerf {
		p := profile{name: "slow-" + string(rune('a'+i)), slow: true, perf: v, perfOK: !math.IsNaN(v)}
		out = append(out, p)
	}
	return out
}

func TestScoreCandidatePerfectSeparation(t *testing.T) {
	profiles := mkProfiles([]float64{10, 10}, []float64{20, 20})
	matrix := [][]string{{"-O2"}, {"-O2"}, {"-O0"}, {"-O0"}}
	ex := scoreCandidate(Predicate{Attr: "compiler", Op: "=", Value: "-O0"}, matrix, profiles)
	if ex.Effect != 1 || ex.Coverage != 1 || ex.Score != 1 {
		t.Fatalf("effect/coverage/score = %v/%v/%v, want 1/1/1", ex.Effect, ex.Coverage, ex.Score)
	}
	if ex.MatchB != 2 || ex.MatchA != 0 || ex.DefinedA != 2 || ex.DefinedB != 2 {
		t.Fatalf("counts = %+v", ex)
	}
	if ex.MeanHold != 20 || ex.MeanNot != 10 || ex.Delta != 10 || ex.Ratio != 2 {
		t.Fatalf("delta summary = hold %v not %v delta %v ratio %v", ex.MeanHold, ex.MeanNot, ex.Delta, ex.Ratio)
	}
}

func TestScoreCandidateOrientsTowardSlowSide(t *testing.T) {
	// The candidate characterizes the fast side; scoring must flip it.
	profiles := mkProfiles([]float64{10, 10}, []float64{20, 20})
	matrix := [][]string{{"-O2"}, {"-O2"}, {"-O0"}, {"-O0"}}
	ex := scoreCandidate(Predicate{Attr: "compiler", Op: "=", Value: "-O2"}, matrix, profiles)
	if ex.Pred.Op != "!=" || ex.Pred.Value != "-O2" {
		t.Fatalf("predicate not negated: %v", ex.Pred)
	}
	if ex.Effect != 1 || ex.MatchB != 2 || ex.MatchA != 0 {
		t.Fatalf("flipped counts wrong: %+v", ex)
	}
}

func TestScoreCandidateZeroBaseline(t *testing.T) {
	// Attribute defined only on the slow side: no baseline to compare
	// against, so the effect (and score) must be zero, not NaN or 1.
	profiles := mkProfiles([]float64{10}, []float64{20, 20})
	matrix := [][]string{nil, {"x"}, {"x"}}
	ex := scoreCandidate(Predicate{Attr: "a", Op: "=", Value: "x"}, matrix, profiles)
	if ex.Effect != 0 || ex.Score != 0 {
		t.Fatalf("zero-baseline effect/score = %v/%v, want 0/0", ex.Effect, ex.Score)
	}
	if ex.Coverage <= 0.66 || ex.Coverage >= 0.67 {
		t.Fatalf("coverage = %v, want 2/3", ex.Coverage)
	}
}

func TestScoreCandidateNaNAndInfPerf(t *testing.T) {
	// Unmeasured executions (NaN) are excluded from the delta summary;
	// infinite measurements propagate without panicking.
	profiles := mkProfiles([]float64{math.NaN()}, []float64{math.Inf(1)})
	matrix := [][]string{{"fast"}, {"slow"}}
	ex := scoreCandidate(Predicate{Attr: "k", Op: "=", Value: "slow"}, matrix, profiles)
	if !math.IsInf(ex.MeanHold, 1) {
		t.Fatalf("MeanHold = %v, want +Inf", ex.MeanHold)
	}
	if !math.IsNaN(ex.MeanNot) || !math.IsNaN(ex.Delta) || !math.IsNaN(ex.Ratio) {
		t.Fatalf("NaN propagation: not %v delta %v ratio %v", ex.MeanNot, ex.Delta, ex.Ratio)
	}
}

func TestScoreCandidateZeroDenominatorRatio(t *testing.T) {
	profiles := mkProfiles([]float64{0, 0}, []float64{5, 5})
	matrix := [][]string{{"f"}, {"f"}, {"s"}, {"s"}}
	ex := scoreCandidate(Predicate{Attr: "k", Op: "=", Value: "s"}, matrix, profiles)
	if !math.IsNaN(ex.Ratio) {
		t.Fatalf("Ratio with zero MeanNot = %v, want NaN", ex.Ratio)
	}
	if ex.Delta != 5 {
		t.Fatalf("Delta = %v, want 5", ex.Delta)
	}
}

func TestEnumerate(t *testing.T) {
	tests := []struct {
		name     string
		matrix   [][]string
		minCov   float64
		nPreds   int
		skipPart string
	}{
		{"empty", nil, 0.25, 0, "no executions"},
		{"undefined", [][]string{nil, nil}, 0.25, 0, "no executions"},
		{"low coverage", [][]string{{"a"}, nil, nil, nil, {"b"}}, 0.5, 0, "coverage"},
		{"constant", [][]string{{"a"}, {"a"}}, 0.25, 0, "constant"},
		{"small categorical", [][]string{{"a"}, {"b"}, {"c"}}, 0.25, 3, ""},
		{"numeric small", [][]string{{"1"}, {"2"}, {"4"}}, 0.25, 5, ""}, // 3 eq + 2 thresholds
	}
	for _, tt := range tests {
		preds, skip := enumerate("k", tt.matrix, tt.minCov)
		if tt.skipPart != "" {
			if skip == "" || !strings.Contains(skip, tt.skipPart) {
				t.Errorf("%s: skip = %q, want containing %q", tt.name, skip, tt.skipPart)
			}
			continue
		}
		if skip != "" {
			t.Errorf("%s: unexpected skip %q", tt.name, skip)
			continue
		}
		if len(preds) != tt.nPreds {
			t.Errorf("%s: %d predicates %v, want %d", tt.name, len(preds), preds, tt.nPreds)
		}
	}

	// Large categorical domains are rejected outright.
	big := make([][]string, maxEqDomain+2)
	for i := range big {
		big[i] = []string{"v" + strings.Repeat("x", i)}
	}
	if _, skip := enumerate("k", big, 0); !strings.Contains(skip, "categorical domain") {
		t.Errorf("big categorical skip = %q", skip)
	}

	// Large numeric domains fall back to capped thresholds.
	bigNum := make([][]string, 40)
	for i := range bigNum {
		bigNum[i] = []string{string(rune('0'+i/10)) + string(rune('0'+i%10))} // "00".."39"
	}
	preds, skip := enumerate("k", bigNum, 0)
	if skip != "" {
		t.Fatalf("numeric domain skipped: %q", skip)
	}
	if len(preds) == 0 || len(preds) > maxThresholds {
		t.Fatalf("threshold cap: got %d predicates, want 1..%d", len(preds), maxThresholds)
	}
	for _, p := range preds {
		if p.Op != "<=" {
			t.Fatalf("expected only threshold predicates, got %v", p)
		}
	}
}

func TestRankExplanationsPrefersEqualityAndDedups(t *testing.T) {
	profiles := mkProfiles([]float64{10, 10}, []float64{20, 20})
	matrix := [][]string{{"-O2"}, {"-O2"}, {"-O0"}, {"-O0"}}
	// Score both equality candidates: "= -O0" survives as-is, "= -O2"
	// orients into "!= -O2" with the identical match set.
	exs := []Explanation{
		scoreCandidate(Predicate{Attr: "compiler", Op: "=", Value: "-O0"}, matrix, profiles),
		scoreCandidate(Predicate{Attr: "compiler", Op: "=", Value: "-O2"}, matrix, profiles),
	}
	ranked := rankExplanations(exs)
	if len(ranked) != 1 {
		t.Fatalf("expected mirror predicates to dedup, got %d: %v", len(ranked), ranked)
	}
	if got := ranked[0].Pred.String(); got != "compiler = -O0" {
		t.Fatalf("kept %q, want the equality form", got)
	}

	// Zero-score explanations are dropped.
	flat := [][]string{{"x"}, {"x"}, {"x"}, {"x"}}
	exs = []Explanation{scoreCandidate(Predicate{Attr: "k", Op: "=", Value: "x"}, flat, profiles)}
	if got := rankExplanations(exs); len(got) != 0 {
		t.Fatalf("zero-score explanation survived: %v", got)
	}
}
