package diagnose

import (
	"errors"
	"testing"

	"perftrack/internal/datastore"
)

// FuzzDiagnoseSpec fuzzes the /v1/diagnose request parser: any input must
// either parse into a Spec that re-validates cleanly or fail with
// ErrBadSpec — never panic, never return a half-valid spec.
func FuzzDiagnoseSpec(f *testing.F) {
	f.Add(`{"exec_a":"a","exec_b":"b"}`)
	f.Add(`{"execs_a":["a","b"],"execs_b":["c"],"metric":"time","top":5}`)
	f.Add(`{"families_a":["type=application"],"families_b":["attr=compiler=-O0"],"min_coverage":0.5}`)
	f.Add(`{"exec_a":"a","exec_b":"b","explain":true}`)
	f.Add(`{"exec_a":"a","exec_b":"b","top":-1}`)
	f.Add(`{"exec_a":"a"}`)
	f.Add(`{"unknown":true}`)
	f.Add(`{"exec_a":"a","exec_b":"b"}{"trailing":1}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		sp, err := ParseRequest([]byte(data))
		if err != nil {
			if !errors.Is(err, datastore.ErrBadSpec) {
				t.Fatalf("non-ErrBadSpec parse error: %v", err)
			}
			return
		}
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("accepted spec fails validation: %+v: %v", sp, verr)
		}
	})
}
