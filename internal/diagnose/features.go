package diagnose

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/query"
)

// profile is one selected execution's observation: which side it belongs
// to and its performance under the diagnosis metric.
type profile struct {
	name   string
	slow   bool // side B
	perf   float64
	perfOK bool
}

// metricAgg accumulates one metric's values per side, feeding the
// bottleneck ranking.
type metricAgg struct {
	units      string
	sumA, sumB float64
	nA, nB     int
}

// features is everything the scorer needs, extracted from the store in
// one parallel pass over the selected executions.
type features struct {
	profiles []profile
	// resExecs inverts the execution footprints: resource ID → indexes
	// into profiles whose footprint contains it.
	resExecs map[int64][]int
	// metrics aggregates every metric seen on the selected executions.
	metrics map[string]*metricAgg
}

// resolveSide turns one side of a Spec into its execution list: the
// single named execution, the explicit list, or every execution owning a
// result matched by the side's pr-filter families.
func resolveSide(ctx context.Context, s *datastore.Store, exec string, execs, families []string, side string) ([]string, error) {
	if exec != "" {
		return []string{exec}, nil
	}
	if len(execs) > 0 {
		out := make([]string, len(execs))
		copy(out, execs)
		sort.Strings(out)
		return out, nil
	}
	prf := core.PRFilter{}
	for _, spec := range families {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("diagnose: side %s family %q: %w: %w", side, spec, err, datastore.ErrBadSpec)
		}
		fam, err := s.ApplyFilterCtx(ctx, rf)
		if err != nil {
			return nil, err
		}
		prf.Families = append(prf.Families, fam)
	}
	ids, err := s.MatchingResultIDsCtx(ctx, prf)
	if err != nil {
		return nil, err
	}
	matched, err := s.ExecutionsOfResults(ids)
	if err != nil {
		return nil, err
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("diagnose: side %s families match no executions: %w", side, datastore.ErrNotFound)
	}
	return matched, nil
}

// metricMatches reports whether a result participates in the perf
// measurement: the named metric, or — with no metric filter — any
// time-like result (units containing "second"), matching the compare
// package's bottleneck convention.
func metricMatches(metric string, pr *core.PerformanceResult) bool {
	if metric != "" {
		return pr.Metric == metric
	}
	return strings.Contains(pr.Units, "second")
}

// extractFeatures builds the per-execution profiles, footprint inversion,
// and per-metric aggregates for both sides, fanning the per-execution
// store reads out over workers (the store's reader paths are concurrent).
func extractFeatures(ctx context.Context, s *datastore.Store, execsA, execsB []string, metric string, workers int) (*features, error) {
	n := len(execsA) + len(execsB)
	f := &features{
		profiles: make([]profile, n),
		resExecs: make(map[int64][]int),
		metrics:  make(map[string]*metricAgg),
	}
	type perExec struct {
		footprint []int64
		results   []*core.PerformanceResult
	}
	name := func(i int) string {
		if i < len(execsA) {
			return execsA[i]
		}
		return execsB[i-len(execsA)]
	}
	got := make([]perExec, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				exec := name(i)
				fp, err := s.ExecutionResourceIDs(exec)
				if err != nil {
					errs[i] = err
					continue
				}
				res, err := s.ResultsOfExecutionCtx(ctx, exec)
				if err != nil {
					errs[i] = err
					continue
				}
				got[i] = perExec{footprint: fp, results: res}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		slow := i >= len(execsA)
		p := profile{name: name(i), slow: slow}
		sum, cnt := 0.0, 0
		for _, pr := range got[i].results {
			agg := f.metrics[pr.Metric]
			if agg == nil {
				agg = &metricAgg{units: pr.Units}
				f.metrics[pr.Metric] = agg
			}
			if slow {
				agg.sumB += pr.Value
				agg.nB++
			} else {
				agg.sumA += pr.Value
				agg.nA++
			}
			if metricMatches(metric, pr) {
				sum += pr.Value
				cnt++
			}
		}
		if cnt > 0 {
			p.perf = sum / float64(cnt)
			p.perfOK = true
		}
		f.profiles[i] = p
		for _, rid := range got[i].footprint {
			f.resExecs[rid] = append(f.resExecs[rid], i)
		}
	}
	return f, nil
}

// matrixFor projects one attribute's effective values onto the selected
// executions: matrix[i] lists the distinct values carried by execution
// i's footprint. vals comes straight from the attribute index
// (Store.AttributeValues), so cost scales with resources carrying the
// attribute, not with store size.
func (f *features) matrixFor(vals map[int64]string) [][]string {
	matrix := make([][]string, len(f.profiles))
	for rid, v := range vals {
		for _, i := range f.resExecs[rid] {
			if !containsStr(matrix[i], v) {
				matrix[i] = append(matrix[i], v)
			}
		}
	}
	for _, vs := range matrix {
		sort.Strings(vs)
	}
	return matrix
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
