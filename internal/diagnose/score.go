package diagnose

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Enumeration bounds. Equality predicates are only generated over small
// value domains (larger categorical domains — timestamps, run IDs —
// cannot generalize and would flood the candidate list); numeric domains
// of any size are covered by at most maxThresholds threshold predicates
// drawn from the midpoints between adjacent distinct values.
const (
	maxEqDomain   = 12
	maxThresholds = 15
	matchedSample = 5
)

// Predicate is one candidate explanation over a single attribute:
// an equality test ("compiler = -O0") or a numeric threshold test
// ("clock MHz <= 937.5"). A predicate holds for an execution when any
// resource in the execution's footprint carries a satisfying effective
// value; it is undefined for executions whose footprint lacks the
// attribute (or, for numeric ops, lacks a parseable value).
type Predicate struct {
	Attr  string
	Op    string // "=", "!=", "<=", ">"
	Value string

	threshold float64 // parsed Value for numeric ops
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Value)
}

// Holds evaluates the predicate over one execution's values for the
// attribute, reporting (holds, defined).
func (p Predicate) Holds(vals []string) (bool, bool) {
	if len(vals) == 0 {
		return false, false
	}
	switch p.Op {
	case "=":
		for _, v := range vals {
			if v == p.Value {
				return true, true
			}
		}
		return false, true
	case "!=":
		for _, v := range vals {
			if v == p.Value {
				return false, true
			}
		}
		return true, true
	case "<=", ">":
		defined := false
		for _, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			defined = true
			if (p.Op == "<=") == (f <= p.threshold) {
				return true, true
			}
		}
		return false, defined
	}
	return false, false
}

// negate flips the predicate to its complement over defined executions,
// so that a candidate that characterizes the fast side is reported as its
// mirror image characterizing the slow side.
func (p Predicate) negate() Predicate {
	switch p.Op {
	case "=":
		p.Op = "!="
	case "!=":
		p.Op = "="
	case "<=":
		p.Op = ">"
	case ">":
		p.Op = "<="
	}
	return p
}

// Explanation is one scored candidate explanation for the slowdown.
type Explanation struct {
	Pred Predicate
	// Score = Effect × Coverage, the PerfXplain-style ranking key.
	Score float64
	// Effect is the separation the predicate achieves: the fraction of
	// defined slow-side (B) executions it matches minus the fraction of
	// defined fast-side (A) executions it matches. Candidates are oriented
	// (negated if needed) so Effect ≥ 0; it is 0 whenever either side has
	// no defined executions (a zero-baseline predicate cannot explain a
	// difference between the sides).
	Effect float64
	// Coverage is the fraction of all selected executions for which the
	// predicate is defined.
	Coverage         float64
	MatchA, DefinedA int
	MatchB, DefinedB int
	// MeanHold/MeanNot are the mean perf of defined executions the
	// predicate matches / does not match; Delta = MeanHold - MeanNot and
	// Ratio = MeanHold / MeanNot. All are NaN when a group is empty (and
	// Ratio when MeanNot is 0); the wire layer encodes NaN as null.
	MeanHold, MeanNot float64
	Delta, Ratio      float64
	// MatchedB/MatchedA sample execution names matching the predicate.
	MatchedB, MatchedA []string

	// sig fingerprints which executions the predicate matches, so ranking
	// can collapse predicates that select the identical population (e.g.
	// `x != a` mirrors `x = b` over a two-value domain).
	sig string
}

// enumerate generates the candidate predicates for one attribute from the
// per-execution value matrix. It returns the candidates and, when the
// attribute is skipped, the reason (for -explain traces).
func enumerate(attr string, matrix [][]string, minCoverage float64) ([]Predicate, string) {
	defined := 0
	domain := make(map[string]bool)
	for _, vals := range matrix {
		if len(vals) > 0 {
			defined++
		}
		for _, v := range vals {
			domain[v] = true
		}
	}
	if len(matrix) == 0 || defined == 0 {
		return nil, "no executions carry it"
	}
	if cov := float64(defined) / float64(len(matrix)); cov < minCoverage {
		return nil, fmt.Sprintf("coverage %.2f below minimum %.2f", cov, minCoverage)
	}
	if len(domain) < 2 {
		return nil, "constant value (nothing to discriminate)"
	}
	values := make([]string, 0, len(domain))
	for v := range domain {
		values = append(values, v)
	}
	sort.Strings(values)

	nums := make([]float64, 0, len(values))
	numeric := true
	for _, v := range values {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			numeric = false
			break
		}
		nums = append(nums, f)
	}
	var preds []Predicate
	if len(values) <= maxEqDomain {
		for _, v := range values {
			preds = append(preds, Predicate{Attr: attr, Op: "=", Value: v})
		}
	} else if !numeric {
		return nil, fmt.Sprintf("categorical domain of %d values exceeds %d", len(domain), maxEqDomain)
	}
	if numeric && len(nums) >= 2 {
		sort.Float64s(nums)
		mids := make([]float64, 0, len(nums)-1)
		for i := 1; i < len(nums); i++ {
			mids = append(mids, (nums[i-1]+nums[i])/2)
		}
		// Cap thresholds by sampling the midpoints evenly.
		step := 1
		if len(mids) > maxThresholds {
			step = (len(mids) + maxThresholds - 1) / maxThresholds
		}
		for i := 0; i < len(mids); i += step {
			t := mids[i]
			preds = append(preds, Predicate{
				Attr: attr, Op: "<=",
				Value:     strconv.FormatFloat(t, 'g', -1, 64),
				threshold: t,
			})
		}
	}
	return preds, ""
}

// scoreCandidate evaluates one predicate over every selected execution.
// profiles and matrix are index-aligned; profiles[i].slow marks side B.
func scoreCandidate(pred Predicate, matrix [][]string, profiles []profile) Explanation {
	matchA, defA, matchB, defB := 0, 0, 0, 0
	for i, vals := range matrix {
		holds, defined := pred.Holds(vals)
		if !defined {
			continue
		}
		if profiles[i].slow {
			defB++
			if holds {
				matchB++
			}
		} else {
			defA++
			if holds {
				matchA++
			}
		}
	}
	effect := 0.0
	if defA > 0 && defB > 0 {
		effect = float64(matchB)/float64(defB) - float64(matchA)/float64(defA)
	}
	if effect < 0 {
		pred = pred.negate()
		matchA, matchB = defA-matchA, defB-matchB
		effect = -effect
	}
	ex := Explanation{
		Pred:     pred,
		Effect:   effect,
		Coverage: float64(defA+defB) / float64(len(profiles)),
		MatchA:   matchA, DefinedA: defA,
		MatchB: matchB, DefinedB: defB,
	}
	ex.Score = ex.Effect * ex.Coverage
	// Second pass with the oriented predicate: perf split, samples, and
	// the match-set fingerprint.
	sumHold, nHold, sumNot, nNot := 0.0, 0, 0.0, 0
	sig := make([]byte, len(matrix))
	for i, vals := range matrix {
		holds, defined := pred.Holds(vals)
		switch {
		case !defined:
			sig[i] = 'u'
		case holds:
			sig[i] = 'h'
		default:
			sig[i] = 'n'
		}
		if !defined {
			continue
		}
		if holds {
			if profiles[i].slow && len(ex.MatchedB) < matchedSample {
				ex.MatchedB = append(ex.MatchedB, profiles[i].name)
			}
			if !profiles[i].slow && len(ex.MatchedA) < matchedSample {
				ex.MatchedA = append(ex.MatchedA, profiles[i].name)
			}
		}
		if !profiles[i].perfOK {
			continue
		}
		if holds {
			sumHold += profiles[i].perf
			nHold++
		} else {
			sumNot += profiles[i].perf
			nNot++
		}
	}
	ex.MeanHold, ex.MeanNot = math.NaN(), math.NaN()
	if nHold > 0 {
		ex.MeanHold = sumHold / float64(nHold)
	}
	if nNot > 0 {
		ex.MeanNot = sumNot / float64(nNot)
	}
	ex.Delta = ex.MeanHold - ex.MeanNot
	if ex.MeanNot == 0 {
		ex.Ratio = math.NaN()
	} else {
		ex.Ratio = ex.MeanHold / ex.MeanNot
	}
	ex.sig = string(sig)
	return ex
}

// opRank orders predicate forms at equal score: direct forms before
// negations, so `compiler = -O0` outranks its mirror `compiler != -O2`.
func opRank(op string) int {
	switch op {
	case "=":
		return 0
	case "<=":
		return 1
	case ">":
		return 2
	default:
		return 3
	}
}

// rankExplanations sorts scored candidates best-first and drops
// duplicates (a negated equality over a two-value domain mirrors the
// other value's predicate) and zero-score candidates.
func rankExplanations(exs []Explanation) []Explanation {
	sort.Slice(exs, func(i, j int) bool {
		a, b := exs[i], exs[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Effect != b.Effect {
			return a.Effect > b.Effect
		}
		if a.MatchB != b.MatchB {
			return a.MatchB > b.MatchB
		}
		if ra, rb := opRank(a.Pred.Op), opRank(b.Pred.Op); ra != rb {
			return ra < rb
		}
		return a.Pred.String() < b.Pred.String()
	})
	seen := make(map[string]bool, len(exs))
	out := exs[:0]
	for _, ex := range exs {
		if ex.Score <= 0 {
			continue
		}
		key := ex.Pred.Attr + "\x00" + ex.sig
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, ex)
	}
	return out
}
