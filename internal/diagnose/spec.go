package diagnose

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"perftrack/internal/datastore"
	"perftrack/internal/query"
)

// Request is the wire form of a diagnosis spec — the body of
// POST /v1/diagnose. It mirrors Spec minus the local-only Workers knob.
//
// A and B carry each side as a unified query.Selection, the shape shared
// with /v1/query and /v1/results. The older flat spellings (exec_a,
// execs_a, families_a, ...) keep decoding and merge with the selections,
// per the v1 append-only wire contract.
type Request struct {
	A           *query.Selection `json:"a,omitempty"`
	B           *query.Selection `json:"b,omitempty"`
	ExecA       string           `json:"exec_a,omitempty"`
	ExecB       string           `json:"exec_b,omitempty"`
	ExecsA      []string         `json:"execs_a,omitempty"`
	ExecsB      []string         `json:"execs_b,omitempty"`
	FamiliesA   []string         `json:"families_a,omitempty"`
	FamiliesB   []string         `json:"families_b,omitempty"`
	Metric      string           `json:"metric,omitempty"`
	Top         int              `json:"top,omitempty"`
	MinCoverage float64          `json:"min_coverage,omitempty"`
	Explain     bool             `json:"explain,omitempty"`
}

// Spec validates the request and converts it to a runnable Spec, merging
// the unified selections into the flat side fields.
func (r Request) Spec() (Spec, error) {
	sp := Spec{
		ExecA: r.ExecA, ExecB: r.ExecB,
		ExecsA:    append([]string(nil), r.ExecsA...),
		ExecsB:    append([]string(nil), r.ExecsB...),
		FamiliesA: append([]string(nil), r.FamiliesA...),
		FamiliesB: append([]string(nil), r.FamiliesB...),
		Metric:    r.Metric, Top: r.Top,
		MinCoverage: r.MinCoverage, Explain: r.Explain,
	}
	sp.ExecsA = append(sp.ExecsA, r.A.ExecutionList()...)
	sp.ExecsB = append(sp.ExecsB, r.B.ExecutionList()...)
	if r.A != nil {
		sp.FamiliesA = append(sp.FamiliesA, r.A.Families...)
	}
	if r.B != nil {
		sp.FamiliesB = append(sp.FamiliesB, r.B.Families...)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// ParseRequest strictly decodes a JSON diagnose request: unknown fields,
// trailing garbage, and invalid side selections are all rejected with
// ErrBadSpec, per the v1 API's decoding contract.
func ParseRequest(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Spec{}, fmt.Errorf("diagnose: bad request: %v: %w", err, datastore.ErrBadSpec)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("diagnose: trailing data after request: %w", datastore.ErrBadSpec)
	}
	return req.Spec()
}
