// Package diagnose implements automated multi-execution performance
// diagnosis — the paper's §6 future-work item of moving beyond hand-built
// comparisons. Given two executions (or two pr-filter-selected sets of
// executions), it answers "why is side B slower than side A?" three ways:
//
//   - aligning results with compare.Executions and ranking per-context
//     deltas (single-execution sides only),
//   - ranking metrics by their contribution to the slowdown (the
//     bottleneck framing),
//   - searching the resource-attribute space for predicates that best
//     discriminate the slow side from the fast side (equality and
//     numeric-threshold candidates, scored by effect size × coverage,
//     PerfXplain-style), enumerated through the attribute index rather
//     than full resource scans.
//
// Predicate scoring and per-execution feature extraction fan out over a
// bounded worker pool, mirroring the materializer's GOMAXPROCS pattern.
package diagnose

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/obs"
)

// Defaults applied by Run when the Spec leaves them zero.
const (
	DefaultTop         = 10
	DefaultMinCoverage = 0.25
)

// Spec selects the two sides and parameterizes the search. Each side is
// exactly one of: a named execution (ExecA/ExecB), an explicit execution
// list (ExecsA/ExecsB), or a list of pr-filter family specs (ptquery
// syntax) whose matching results select the side's executions.
type Spec struct {
	ExecA     string
	ExecB     string
	ExecsA    []string
	ExecsB    []string
	FamiliesA []string
	FamiliesB []string
	// Metric restricts the perf measurement and bottleneck ranking to one
	// metric; empty means every time-like result (units containing
	// "second").
	Metric string
	// Top caps ranked explanations, contexts, and bottlenecks
	// (0 = DefaultTop).
	Top int
	// MinCoverage drops attributes defined on less than this fraction of
	// the selected executions (0 = DefaultMinCoverage).
	MinCoverage float64
	// Explain records the predicate search trace in Result.Trace.
	Explain bool
	// Workers bounds the fan-out of feature extraction and predicate
	// scoring; <= 0 means GOMAXPROCS, 1 forces the serial path.
	Workers int
}

// Validate checks side selection and parameter ranges.
func (sp *Spec) Validate() error {
	if err := validateSide("A", sp.ExecA, sp.ExecsA, sp.FamiliesA); err != nil {
		return err
	}
	if err := validateSide("B", sp.ExecB, sp.ExecsB, sp.FamiliesB); err != nil {
		return err
	}
	if sp.Top < 0 {
		return fmt.Errorf("diagnose: top must be >= 0: %w", datastore.ErrBadSpec)
	}
	if sp.MinCoverage < 0 || sp.MinCoverage > 1 {
		return fmt.Errorf("diagnose: min_coverage must be in [0, 1]: %w", datastore.ErrBadSpec)
	}
	return nil
}

func validateSide(side, exec string, execs, families []string) error {
	set := 0
	if exec != "" {
		set++
	}
	if len(execs) > 0 {
		set++
	}
	if len(families) > 0 {
		set++
	}
	if set != 1 {
		return fmt.Errorf("diagnose: side %s needs exactly one of an execution name, an execution list, or family specs: %w",
			side, datastore.ErrBadSpec)
	}
	for _, e := range execs {
		if e == "" {
			return fmt.Errorf("diagnose: side %s has an empty execution name: %w", side, datastore.ErrBadSpec)
		}
	}
	return nil
}

// Bottleneck ranks one metric by its contribution to the slowdown.
type Bottleneck struct {
	Metric string
	Units  string
	MeanA  float64 // mean value per result on side A
	MeanB  float64
	Delta  float64 // MeanB - MeanA
	// Contribution is Delta as a fraction of the total positive slowdown
	// across ranked metrics; 0 for metrics where B improved.
	Contribution float64
}

// ContextFinding is one aligned-context delta from compare.Executions,
// produced only when both sides are single executions.
type ContextFinding struct {
	Context      []core.ResourceName
	Metric       string
	Units        string
	A, B         float64
	Delta        float64
	Contribution float64
}

// Result is a completed diagnosis.
type Result struct {
	SideA, SideB []string
	Metric       string
	// PerfA/PerfB are the mean per-execution perf of each side under the
	// metric selection; NaN when a side has no matching results.
	PerfA, PerfB float64
	Delta        float64 // PerfB - PerfA
	Ratio        float64 // PerfB / PerfA; NaN when PerfA is 0
	// AlignedPairs counts result pairs aligned by compare.Executions
	// (single-execution sides only).
	AlignedPairs int
	Keys         int // attribute keys considered
	Candidates   int // predicates scored
	Explanations []Explanation
	Bottlenecks  []Bottleneck
	Contexts     []ContextFinding
	Trace        []string // search trace; populated when Spec.Explain
}

// Run executes a diagnosis against the store.
func Run(ctx context.Context, s *datastore.Store, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	top := spec.Top
	if top == 0 {
		top = DefaultTop
	}
	minCov := spec.MinCoverage
	if minCov == 0 {
		minCov = DefaultMinCoverage
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{Metric: spec.Metric}
	trace := func(format string, args ...any) {
		if spec.Explain {
			res.Trace = append(res.Trace, fmt.Sprintf(format, args...))
		}
	}

	selCtx, selSpan := obs.StartSpan(ctx, "diagnose.select")
	execsA, err := resolveSide(selCtx, s, spec.ExecA, spec.ExecsA, spec.FamiliesA, "A")
	if err == nil {
		res.SideA = execsA
		res.SideB, err = resolveSide(selCtx, s, spec.ExecB, spec.ExecsB, spec.FamiliesB, "B")
	}
	selSpan.Annotate("side_a", strconv.Itoa(len(res.SideA)))
	selSpan.Annotate("side_b", strconv.Itoa(len(res.SideB)))
	selSpan.End()
	if err != nil {
		return nil, err
	}
	trace("side A: %d execution(s); side B: %d execution(s)", len(res.SideA), len(res.SideB))
	if spec.Metric == "" {
		trace("perf measure: mean of time-like results (units containing \"second\")")
	} else {
		trace("perf measure: mean of metric %q", spec.Metric)
	}

	featCtx, featSpan := obs.StartSpan(ctx, "diagnose.features")
	feats, err := extractFeatures(featCtx, s, res.SideA, res.SideB, spec.Metric, workers)
	if err != nil {
		featSpan.End()
		return nil, err
	}
	featSpan.Annotate("footprint_resources", strconv.Itoa(len(feats.resExecs)))
	featSpan.End()

	res.PerfA, res.PerfB = sidePerf(feats.profiles)
	res.Delta = res.PerfB - res.PerfA
	if res.PerfA == 0 {
		res.Ratio = math.NaN()
	} else {
		res.Ratio = res.PerfB / res.PerfA
	}

	if len(res.SideA) == 1 && len(res.SideB) == 1 {
		cmp, err := compare.Executions(s, res.SideA[0], res.SideB[0])
		if err != nil {
			return nil, err
		}
		res.AlignedPairs = len(cmp.Pairs)
		for _, f := range cmp.DiagnoseBottlenecks(spec.Metric, top) {
			res.Contexts = append(res.Contexts, ContextFinding{
				Context: f.Pair.Context, Metric: f.Pair.Metric, Units: f.Pair.Units,
				A: f.Pair.A, B: f.Pair.B, Delta: f.Delta, Contribution: f.Contribution,
			})
		}
		trace("aligned %d result pair(s) between %q and %q; %d slower-context finding(s)",
			res.AlignedPairs, res.SideA[0], res.SideB[0], len(res.Contexts))
	}
	res.Bottlenecks = rankBottlenecks(feats.metrics, spec.Metric, top)

	_, enumSpan := obs.StartSpan(ctx, "diagnose.enumerate")
	keys, err := s.AttributeKeys("")
	if err != nil {
		enumSpan.End()
		return nil, err
	}
	res.Keys = len(keys)
	type candidate struct {
		pred   Predicate
		matrix [][]string
	}
	var cands []candidate
	for _, key := range keys {
		vals, err := s.AttributeValues(key.Name)
		if err != nil {
			enumSpan.End()
			return nil, err
		}
		matrix := feats.matrixFor(vals)
		preds, skip := enumerate(key.Name, matrix, minCov)
		if skip != "" {
			trace("attr %q: skipped — %s", key.Name, skip)
			continue
		}
		trace("attr %q: %d candidate predicate(s)", key.Name, len(preds))
		for _, p := range preds {
			cands = append(cands, candidate{p, matrix})
		}
	}
	res.Candidates = len(cands)
	enumSpan.Annotate("keys", strconv.Itoa(res.Keys))
	enumSpan.Annotate("candidates", strconv.Itoa(res.Candidates))
	enumSpan.End()

	_, scoreSpan := obs.StartSpan(ctx, "diagnose.score")
	exs := make([]Explanation, len(cands))
	scoreWorkers := workers
	if scoreWorkers > len(cands) {
		scoreWorkers = len(cands)
	}
	if scoreWorkers <= 1 {
		for i, c := range cands {
			exs[i] = scoreCandidate(c.pred, c.matrix, feats.profiles)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < scoreWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					exs[i] = scoreCandidate(cands[i].pred, cands[i].matrix, feats.profiles)
				}
			}()
		}
		for i := range cands {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	scoreSpan.Annotate("workers", strconv.Itoa(workers))
	scoreSpan.End()

	ranked := rankExplanations(exs)
	trace("%d of %d candidate(s) discriminate the sides (score > 0)", len(ranked), res.Candidates)
	if len(ranked) > top {
		ranked = ranked[:top]
	}
	res.Explanations = ranked
	return res, nil
}

// sidePerf means the per-execution perf of each side; NaN for a side with
// no measured executions.
func sidePerf(profiles []profile) (a, b float64) {
	sumA, nA, sumB, nB := 0.0, 0, 0.0, 0
	for _, p := range profiles {
		if !p.perfOK {
			continue
		}
		if p.slow {
			sumB += p.perf
			nB++
		} else {
			sumA += p.perf
			nA++
		}
	}
	a, b = math.NaN(), math.NaN()
	if nA > 0 {
		a = sumA / float64(nA)
	}
	if nB > 0 {
		b = sumB / float64(nB)
	}
	return a, b
}

// rankBottlenecks orders metrics by their per-result slowdown, largest
// first, with contributions normalized over the positive deltas.
func rankBottlenecks(metrics map[string]*metricAgg, metric string, top int) []Bottleneck {
	var out []Bottleneck
	totalSlow := 0.0
	for name, agg := range metrics {
		if metric != "" && name != metric {
			continue
		}
		if agg.nA == 0 || agg.nB == 0 {
			continue
		}
		b := Bottleneck{
			Metric: name, Units: agg.units,
			MeanA: agg.sumA / float64(agg.nA),
			MeanB: agg.sumB / float64(agg.nB),
		}
		b.Delta = b.MeanB - b.MeanA
		// Only metrics where B actually lost time are bottlenecks; a NaN
		// delta (NaN measurements on a side) fails the test and drops too.
		if !(b.Delta > 0) {
			continue
		}
		totalSlow += b.Delta
		out = append(out, b)
	}
	if totalSlow > 0 {
		for i := range out {
			out[i].Contribution = out[i].Delta / totalSlow
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Metric < out[j].Metric
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}
