package smg

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func genReport(t *testing.T, run Run) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, run); err != nil {
		t.Fatal(err)
	}
	rep, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, buf.String())
	}
	return rep
}

func defaultRun() Run {
	return Run{Execution: "smg-uv-001", NProcs: 64, Px: 8, Py: 4, Pz: 2,
		Nx: 35, Ny: 35, Nz: 35, Seed: 1}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	rep := genReport(t, defaultRun())
	if rep.Nx != 35 || rep.Px != 8 || rep.NProcs() != 64 {
		t.Errorf("params = %+v", rep)
	}
	if len(rep.WallTimes) != 3 || len(rep.CPUTimes) != 3 {
		t.Errorf("timings = %v / %v", rep.WallTimes, rep.CPUTimes)
	}
	if rep.Iterations < 5 || rep.Iterations > 8 {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	if rep.Residual <= 0 || rep.Residual > 1e-6 {
		t.Errorf("residual = %g", rep.Residual)
	}
	// Solve dominates setup dominates interface.
	if rep.WallTimes["SMG Solve"] <= rep.WallTimes["SMG Setup"] ||
		rep.WallTimes["SMG Setup"] <= rep.WallTimes["Struct Interface"] {
		t.Errorf("phase ordering: %v", rep.WallTimes)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage\n",
		"SMG Solve:\n",                    // phase but no timings at all
		"wall clock time = 1.0 seconds\n", // timing outside phase
		"Iterations = seven\n",
		"Final Relative Residual Norm = x\n",
		"(nx, ny, nz)    = (35, 35)\n",
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q) should fail", doc)
		}
	}
}

func TestToPTdfEightWholeExecutionValues(t *testing.T) {
	// Table 1 SMG-BG/L: 8 metrics, 8 performance results per execution.
	rep := genReport(t, defaultRun())
	recs := rep.ToPTdf("smg2000", "bgl-smg-001", "/BGLGrid/BGL")
	results := 0
	metrics := map[string]bool{}
	for _, rec := range recs {
		if pr, ok := rec.(ptdf.PerfResultRec); ok {
			results++
			metrics[pr.Metric] = true
		}
	}
	if results != 8 || len(metrics) != 8 {
		t.Errorf("results = %d, metrics = %d, want 8/8", results, len(metrics))
	}
}

func TestToPTdfLoadsAndQueries(t *testing.T) {
	rep := genReport(t, defaultRun())
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/UVGrid/UV", "grid/machine", ""); err != nil {
		t.Fatal(err)
	}
	for i, rec := range rep.ToPTdf("smg2000", "smg-uv-001", "/UVGrid/UV") {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Results != 8 {
		t.Errorf("results = %d", st.Results)
	}
	// Time hierarchy resources for the phases exist.
	phase, err := s.ResourceByName("/smg-uv-001-time/SMG_Solve")
	if err != nil {
		t.Fatal(err)
	}
	if phase.Type != "time/interval" {
		t.Errorf("phase type = %q", phase.Type)
	}
	// Execution attributes recorded.
	exec, _ := s.ResourceByName("/smg-uv-001")
	if exec.Attributes["number of processes"] != "64" {
		t.Errorf("exec attrs = %v", exec.Attributes)
	}
}

func TestGenerateScalesWithProblemSize(t *testing.T) {
	small := genReport(t, Run{Execution: "s", NProcs: 8, Px: 2, Py: 2, Pz: 2,
		Nx: 35, Ny: 35, Nz: 35, Seed: 5})
	large := genReport(t, Run{Execution: "l", NProcs: 8, Px: 2, Py: 2, Pz: 2,
		Nx: 70, Ny: 70, Nz: 70, Seed: 5})
	if large.WallTimes["SMG Solve"] <= small.WallTimes["SMG Solve"] {
		t.Error("larger problems should take longer")
	}
}
