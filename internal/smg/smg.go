// Package smg generates and parses SMG2000 benchmark output for the §4.2
// noise-analysis case study. The raw SMG2000 benchmark output contains
// eight data values at the level of the whole execution (Table 1's
// SMG-BG/L row: 8 metrics, 8 results): wall and CPU clock times for the
// Struct Interface, SMG Setup, and SMG Solve phases, the iteration count,
// and the final relative residual norm. Generate reproduces the output
// shape (Figure 7); Parse converts real-format or generated files to PTdf.
package smg

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// Phases are the three timed phases of an SMG2000 run.
var Phases = []string{"Struct Interface", "SMG Setup", "SMG Solve"}

// Run describes one generated SMG2000 execution.
type Run struct {
	Execution  string
	NProcs     int
	Px, Py, Pz int // process topology; Px*Py*Pz should equal NProcs
	Nx, Ny, Nz int // per-process problem size
	Seed       int64
}

// Generate writes SMG2000-format output (the native benchmark portion of
// Figure 7).
func Generate(w io.Writer, run Run) error {
	rng := rand.New(rand.NewSource(run.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Running with these driver parameters:\n")
	fmt.Fprintf(bw, "  (nx, ny, nz)    = (%d, %d, %d)\n", run.Nx, run.Ny, run.Nz)
	fmt.Fprintf(bw, "  (Px, Py, Pz)    = (%d, %d, %d)\n", run.Px, run.Py, run.Pz)
	fmt.Fprintf(bw, "  (bx, by, bz)    = (1, 1, 1)\n")
	fmt.Fprintf(bw, "  (cx, cy, cz)    = (1.000000, 1.000000, 1.000000)\n")
	fmt.Fprintf(bw, "  (n_pre, n_post) = (1, 1)\n")
	fmt.Fprintf(bw, "  dim             = 3\n")
	fmt.Fprintf(bw, "  solver ID       = 0\n")
	fmt.Fprintf(bw, "=============================================\n")
	work := float64(run.Nx*run.Ny*run.Nz) / 42875.0
	base := []float64{0.4 * work, 3.5 * work, 18.0 * work}
	for i, phase := range Phases {
		wall := base[i] * (1 + rng.Float64()*0.2)
		cpu := wall * (0.92 + rng.Float64()*0.07)
		fmt.Fprintf(bw, "%s:\n", phase)
		fmt.Fprintf(bw, "  wall clock time = %.6f seconds\n", wall)
		fmt.Fprintf(bw, "  cpu clock time  = %.6f seconds\n", cpu)
		fmt.Fprintf(bw, "=============================================\n")
	}
	iters := 5 + rng.Intn(4)
	fmt.Fprintf(bw, "Iterations = %d\n", iters)
	fmt.Fprintf(bw, "Final Relative Residual Norm = %e\n", 1e-7*(0.5+rng.Float64()))
	return bw.Flush()
}

// Report is the parsed form of one SMG2000 output file.
type Report struct {
	Execution  string // supplied by the caller; not present in the output
	Nx, Ny, Nz int
	Px, Py, Pz int
	WallTimes  map[string]float64 // phase -> seconds
	CPUTimes   map[string]float64
	Iterations int
	Residual   float64
}

// NProcs returns the total process count from the topology.
func (r *Report) NProcs() int { return r.Px * r.Py * r.Pz }

// Parse reads SMG2000 output.
func Parse(rd io.Reader) (*Report, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	rep := &Report{
		WallTimes: make(map[string]float64),
		CPUTimes:  make(map[string]float64),
	}
	currentPhase := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "=") ||
			strings.HasPrefix(text, "Running with"):
			continue
		case strings.HasPrefix(text, "(nx, ny, nz)") || strings.HasPrefix(text, "(Px, Py, Pz)"):
			vals, err := parseTriple(text)
			if err != nil {
				return nil, fmt.Errorf("smg: line %d: %w", line, err)
			}
			if strings.HasPrefix(text, "(nx") {
				rep.Nx, rep.Ny, rep.Nz = vals[0], vals[1], vals[2]
			} else {
				rep.Px, rep.Py, rep.Pz = vals[0], vals[1], vals[2]
			}
		case strings.HasPrefix(text, "(") || strings.HasPrefix(text, "dim") ||
			strings.HasPrefix(text, "solver"):
			continue
		case strings.HasSuffix(text, ":") && isPhase(strings.TrimSuffix(text, ":")):
			currentPhase = strings.TrimSuffix(text, ":")
		case strings.HasPrefix(text, "wall clock time"):
			v, err := parseTimeLine(text)
			if err != nil {
				return nil, fmt.Errorf("smg: line %d: %w", line, err)
			}
			if currentPhase == "" {
				return nil, fmt.Errorf("smg: line %d: time outside a phase", line)
			}
			rep.WallTimes[currentPhase] = v
		case strings.HasPrefix(text, "cpu clock time"):
			v, err := parseTimeLine(text)
			if err != nil {
				return nil, fmt.Errorf("smg: line %d: %w", line, err)
			}
			if currentPhase == "" {
				return nil, fmt.Errorf("smg: line %d: time outside a phase", line)
			}
			rep.CPUTimes[currentPhase] = v
		case strings.HasPrefix(text, "Iterations"):
			parts := strings.Split(text, "=")
			if len(parts) != 2 {
				return nil, fmt.Errorf("smg: line %d: bad Iterations line", line)
			}
			n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, fmt.Errorf("smg: line %d: %w", line, err)
			}
			rep.Iterations = n
		case strings.HasPrefix(text, "Final Relative Residual Norm"):
			parts := strings.Split(text, "=")
			if len(parts) != 2 {
				return nil, fmt.Errorf("smg: line %d: bad residual line", line)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("smg: line %d: %w", line, err)
			}
			rep.Residual = v
		default:
			return nil, fmt.Errorf("smg: line %d: unrecognized text %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.WallTimes) == 0 {
		return nil, fmt.Errorf("smg: no phase timings found")
	}
	return rep, nil
}

func isPhase(s string) bool {
	for _, p := range Phases {
		if p == s {
			return true
		}
	}
	return false
}

func parseTriple(text string) ([3]int, error) {
	var out [3]int
	open := strings.LastIndexByte(text, '(')
	closeP := strings.LastIndexByte(text, ')')
	if open < 0 || closeP < open {
		return out, fmt.Errorf("bad triple %q", text)
	}
	parts := strings.Split(text[open+1:closeP], ",")
	if len(parts) != 3 {
		return out, fmt.Errorf("bad triple %q", text)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return out, err
		}
		out[i] = n
	}
	return out, nil
}

func parseTimeLine(text string) (float64, error) {
	parts := strings.Split(text, "=")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad time line %q", text)
	}
	val := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(parts[1]), "seconds"))
	return strconv.ParseFloat(strings.TrimSpace(val), 64)
}

// ToPTdf converts a parsed report to PTdf: the eight whole-execution
// values of the raw benchmark, each in a context of application +
// execution (+ machine when given). Time-hierarchy resources represent
// the three phases.
func (rep *Report) ToPTdf(app, execName string, machineRes core.ResourceName) []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: execName, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})
	execRes := core.ResourceName("/" + execName)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: execName})
	attr := func(name, value string) {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: execRes, Attr: name, Value: value, AttrType: "string",
		})
	}
	attr("number of processes", strconv.Itoa(rep.NProcs()))
	attr("problem nx,ny,nz", fmt.Sprintf("%d,%d,%d", rep.Nx, rep.Ny, rep.Nz))
	attr("topology Px,Py,Pz", fmt.Sprintf("%d,%d,%d", rep.Px, rep.Py, rep.Pz))

	timeRoot := core.ResourceName("/" + execName + "-time")
	recs = append(recs, ptdf.ResourceRec{Name: timeRoot, Type: "time"})

	baseCtx := []core.ResourceName{appRes, execRes}
	if machineRes != "" {
		baseCtx = append(baseCtx, machineRes)
	}
	addResult := func(metric string, value float64, units string, extra ...core.ResourceName) {
		ctx := append(append([]core.ResourceName{}, baseCtx...), extra...)
		recs = append(recs, ptdf.PerfResultRec{
			Exec:   execName,
			Sets:   []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
			Tool:   "SMG2000",
			Metric: metric,
			Value:  value,
			Units:  units,
		})
	}
	for _, phase := range Phases {
		slug := strings.ReplaceAll(phase, " ", "_")
		phaseRes := timeRoot.Child(slug)
		recs = append(recs, ptdf.ResourceRec{Name: phaseRes, Type: "time/interval"})
		if v, ok := rep.WallTimes[phase]; ok {
			addResult(phase+" wall clock time", v, "seconds", phaseRes)
		}
		if v, ok := rep.CPUTimes[phase]; ok {
			addResult(phase+" cpu clock time", v, "seconds", phaseRes)
		}
	}
	addResult("Iterations", float64(rep.Iterations), "iterations")
	addResult("Final Relative Residual Norm", rep.Residual, "unitless")
	return recs
}
