package irs

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func generateReport(t *testing.T, run Run) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, run); err != nil {
		t.Fatal(err)
	}
	rep, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGenerateParseRoundTrip(t *testing.T) {
	rep := generateReport(t, Run{Execution: "irs-001", NProcs: 64, Seed: 1})
	if rep.Execution != "irs-001" || rep.NProcs != 64 || rep.Version != "1.4" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Shape: ~80 functions x 5 metrics with ~6% cells skipped.
	if got := len(rep.Rows); got < 330 || got > 400 {
		t.Errorf("rows = %d, want ~376", got)
	}
	for _, row := range rep.Rows {
		if row.Min > row.Average || row.Average > row.Max {
			t.Fatalf("ordering violated: %+v", row)
		}
		if row.Aggregate < row.Max {
			t.Fatalf("aggregate < max at 64 procs: %+v", row)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	Generate(&a, Run{Execution: "e", NProcs: 8, Seed: 7})
	Generate(&b, Run{Execution: "e", NProcs: 8, Seed: 7})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed should generate identical output")
	}
	var c bytes.Buffer
	Generate(&c, Run{Execution: "e", NProcs: 8, Seed: 8})
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds should differ")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"IRS Timing Report\nExecution: e\n",    // no rows
		"IRS Timing Report\nProcesses: many\n", // bad procs
		"Function Metric A B C D\nmain CPUTime 1 2 3\n", // short row (no exec)
		"IRS Timing Report\nExecution: e\nFunction x\nmain CPUTime 1 2 3 bogus\n",
		"stray text before table\n",
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q) should fail", doc)
		}
	}
}

func TestToPTdfCountsMatchTable1Shape(t *testing.T) {
	rep := generateReport(t, Run{Execution: "irs-001", NProcs: 64, Seed: 2})
	recs := rep.ToPTdf("irs", "/MCRGrid/MCR")
	var results, resources int
	metrics := map[string]bool{}
	for _, rec := range recs {
		switch r := rec.(type) {
		case ptdf.PerfResultRec:
			results++
			metrics[r.Metric] = true
		case ptdf.ResourceRec:
			resources++
		}
	}
	// Table 1: ~1,514 results, 25 metrics (5 metrics x 4 stats = 20 plus
	// variation; we produce exactly 20 metric names), ~280 resources.
	if results != 4*len(rep.Rows) {
		t.Errorf("results = %d, want %d", results, 4*len(rep.Rows))
	}
	if results < 1300 || results > 1600 {
		t.Errorf("results = %d, want ~1514", results)
	}
	if len(metrics) != 20 {
		t.Errorf("distinct metrics = %d", len(metrics))
	}
	if resources < 80 {
		t.Errorf("resources = %d", resources)
	}
}

func TestToPTdfLoadsIntoStore(t *testing.T) {
	rep := generateReport(t, Run{Execution: "irs-001", NProcs: 16, Seed: 3})
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	// The machine must pre-exist (as in §4.1, machine data was already in
	// the store).
	if _, err := s.AddResource("/MCRGrid/MCR", "grid/machine", ""); err != nil {
		t.Fatal(err)
	}
	for i, rec := range rep.ToPTdf("irs", "/MCRGrid/MCR") {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Results != int64(4*len(rep.Rows)) {
		t.Errorf("stored results = %d", st.Results)
	}
	if st.Executions != 1 || st.Applications != 1 {
		t.Errorf("stats = %+v", st)
	}
	fn, err := s.ResourceByName("/irs-code/irs.c/main")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Type != "build/module/function" {
		t.Errorf("function type = %q", fn.Type)
	}
}

func TestToPTdfWithoutMachine(t *testing.T) {
	rep := generateReport(t, Run{Execution: "e", NProcs: 2, Seed: 4})
	recs := rep.ToPTdf("irs", "")
	for _, rec := range recs {
		if pr, ok := rec.(ptdf.PerfResultRec); ok {
			if len(pr.Sets[0].Names) != 3 {
				t.Fatalf("context = %v", pr.Sets[0].Names)
			}
			break
		}
	}
}

func TestFunctionCount(t *testing.T) {
	if FunctionCount() != 80 {
		t.Errorf("FunctionCount = %d, want 80 (paper: ~80 functions)", FunctionCount())
	}
}
