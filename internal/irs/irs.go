// Package irs generates and parses timing output of the Implicit
// Radiation Solver (IRS) ASC Purple benchmark used in the paper's §4.1
// case study. The real benchmark emits, per run, timing data for roughly
// 80 functions with aggregate, average, max, and min values for five
// metrics, cumulative over all processes — about 1,500 performance
// results per execution (Table 1 reports 1,514). Because the original
// LLNL runs are unavailable, Generate produces files with the same
// structure and statistical shape; Parse converts either generated or
// real-format files into PTdf records.
package irs

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// Metrics are the five per-function metrics IRS reports.
var Metrics = []string{"CPUTime", "WallTime", "MPITime", "FLOPCount", "CacheMisses"}

// Stats are the four summary statistics reported per metric.
var Stats = []string{"aggregate", "average", "max", "min"}

// metricUnits maps metrics to their units.
var metricUnits = map[string]string{
	"CPUTime":     "seconds",
	"WallTime":    "seconds",
	"MPITime":     "seconds",
	"FLOPCount":   "operations",
	"CacheMisses": "misses",
}

// functionNames lists IRS source functions used by the generator; the
// real code has ~80 instrumented functions.
var functionNames = func() []string {
	bases := []string{
		"main", "rcomdbl", "xdouble", "radsolve", "matsolve", "conjgrad",
		"setboundary", "hydro", "advance", "eosdriver", "zonecalc",
		"fluxcalc", "gradcalc", "smooth", "restrict", "prolong",
		"dotproduct", "axpy", "spmv", "precond",
	}
	var out []string
	for _, b := range bases {
		out = append(out, b)
		for i := 1; i <= 3; i++ {
			out = append(out, fmt.Sprintf("%s_phase%d", b, i))
		}
	}
	return out // 80 functions
}()

// FunctionCount is the number of functions the generator emits.
func FunctionCount() int { return len(functionNames) }

// Run describes one generated IRS execution. FuncStart/FuncCount select a
// slice of the instrumented functions: the real benchmark splits its
// timing data over several files, each covering a timer group. A zero
// FuncCount means all functions.
type Run struct {
	Execution string
	NProcs    int
	Seed      int64
	FuncStart int
	FuncCount int
}

// funcs returns the function-name slice the run covers.
func (r Run) funcs() []string {
	if r.FuncCount <= 0 {
		return functionNames
	}
	start := r.FuncStart
	if start < 0 {
		start = 0
	}
	if start >= len(functionNames) {
		return nil
	}
	end := start + r.FuncCount
	if end > len(functionNames) {
		end = len(functionNames)
	}
	return functionNames[start:end]
}

// Generate writes one IRS timing file in the benchmark's report format.
// Some (function, metric) cells are skipped at random, matching the
// paper's "sometimes one of the values or metrics doesn't apply".
func Generate(w io.Writer, run Run) error {
	rng := rand.New(rand.NewSource(run.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "IRS Timing Report\n")
	fmt.Fprintf(bw, "Code Version: 1.4\n")
	fmt.Fprintf(bw, "Execution: %s\n", run.Execution)
	fmt.Fprintf(bw, "Processes: %d\n", run.NProcs)
	fmt.Fprintf(bw, "%s\n", strings.Repeat("-", 96))
	fmt.Fprintf(bw, "%-24s %-12s %14s %14s %14s %14s\n",
		"Function", "Metric", "Aggregate", "Average", "Max", "Min")
	for _, fn := range run.funcs() {
		weight := 0.2 + rng.Float64()*2.0
		for _, m := range Metrics {
			// ~6% of cells do not apply, so results-per-execution varies
			// around 1,500 like the paper's 1,514.
			if rng.Float64() < 0.06 {
				continue
			}
			var avg float64
			switch m {
			case "CPUTime", "WallTime":
				avg = weight * (1 + rng.Float64())
			case "MPITime":
				avg = weight * rng.Float64() * 0.4
			case "FLOPCount":
				avg = weight * (1e8 + rng.Float64()*1e9)
			case "CacheMisses":
				avg = weight * (1e5 + rng.Float64()*1e7)
			}
			imbalance := 1 + rng.Float64()*0.5
			maxV := avg * imbalance
			minV := avg / imbalance
			agg := avg * float64(run.NProcs)
			fmt.Fprintf(bw, "%-24s %-12s %14.4f %14.4f %14.4f %14.4f\n",
				fn, m, agg, avg, maxV, minV)
		}
	}
	return bw.Flush()
}

// Report is the parsed form of one IRS timing file.
type Report struct {
	Execution string
	Version   string
	NProcs    int
	Rows      []ReportRow
}

// ReportRow is one (function, metric) line.
type ReportRow struct {
	Function  string
	Metric    string
	Aggregate float64
	Average   float64
	Max       float64
	Min       float64
}

// Parse reads an IRS timing file.
func Parse(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	rep := &Report{}
	inTable := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "IRS Timing Report"):
			continue
		case strings.HasPrefix(text, "Code Version:"):
			rep.Version = strings.TrimSpace(strings.TrimPrefix(text, "Code Version:"))
		case strings.HasPrefix(text, "Execution:"):
			rep.Execution = strings.TrimSpace(strings.TrimPrefix(text, "Execution:"))
		case strings.HasPrefix(text, "Processes:"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "Processes:")))
			if err != nil {
				return nil, fmt.Errorf("irs: line %d: bad process count: %w", line, err)
			}
			rep.NProcs = n
		case strings.HasPrefix(text, "---"):
			continue
		case strings.HasPrefix(text, "Function"):
			inTable = true
		default:
			if !inTable {
				return nil, fmt.Errorf("irs: line %d: unexpected text %q before table", line, text)
			}
			fields := strings.Fields(text)
			if len(fields) != 6 {
				return nil, fmt.Errorf("irs: line %d: expected 6 columns, got %d", line, len(fields))
			}
			row := ReportRow{Function: fields[0], Metric: fields[1]}
			vals := make([]float64, 4)
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseFloat(fields[2+i], 64)
				if err != nil {
					return nil, fmt.Errorf("irs: line %d: bad value %q", line, fields[2+i])
				}
				vals[i] = v
			}
			row.Aggregate, row.Average, row.Max, row.Min = vals[0], vals[1], vals[2], vals[3]
			rep.Rows = append(rep.Rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Execution == "" {
		return nil, fmt.Errorf("irs: missing Execution header")
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("irs: no data rows")
	}
	return rep, nil
}

// ToPTdf converts a parsed report to PTdf records: the application and
// execution, build-hierarchy resources for each function, a whole-program
// context, and one performance result per (function, metric, statistic).
// machineRes, when nonempty, joins each context (the measured platform).
func (rep *Report) ToPTdf(app string, machineRes core.ResourceName) []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: rep.Execution, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})
	execRes := core.ResourceName("/" + rep.Execution)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: rep.Execution})
	recs = append(recs, ptdf.ResourceAttributeRec{
		Resource: execRes, Attr: "number of processes",
		Value: strconv.Itoa(rep.NProcs), AttrType: "string",
	})
	if rep.Version != "" {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: execRes, Attr: "code version", Value: rep.Version, AttrType: "string",
		})
	}

	buildRoot := core.ResourceName("/" + app + "-code")
	recs = append(recs, ptdf.ResourceRec{Name: buildRoot, Type: "build"})
	moduleRes := buildRoot.Child("irs.c")
	recs = append(recs, ptdf.ResourceRec{Name: moduleRes, Type: "build/module"})

	seenFn := make(map[string]bool)
	for _, row := range rep.Rows {
		fnRes := moduleRes.Child(row.Function)
		if !seenFn[row.Function] {
			seenFn[row.Function] = true
			recs = append(recs, ptdf.ResourceRec{Name: fnRes, Type: "build/module/function"})
		}
		ctx := []core.ResourceName{appRes, execRes, fnRes}
		if machineRes != "" {
			ctx = append(ctx, machineRes)
		}
		statValues := map[string]float64{
			"aggregate": row.Aggregate, "average": row.Average,
			"max": row.Max, "min": row.Min,
		}
		for _, stat := range Stats {
			value := statValues[stat]
			recs = append(recs, ptdf.PerfResultRec{
				Exec:   rep.Execution,
				Sets:   []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
				Tool:   "IRS",
				Metric: row.Metric + " " + stat,
				Value:  value,
				Units:  metricUnits[row.Metric],
			})
		}
	}
	return recs
}
