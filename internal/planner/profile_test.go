package planner

import (
	"context"
	"strings"
	"testing"

	"perftrack/internal/reldb"
)

// TestExecProfileVectorizedAggregate checks the EXPLAIN ANALYZE actuals
// for the flagship path: a grouped aggregate over a multi-segment store
// with a B-tree tail, executed by the parallel kernels.
func TestExecProfileVectorizedAggregate(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 400, 4, 40)
	p := New(st)
	p.Workers = 4
	q := "SELECT metric, count(*), avg(value) FROM performance_result GROUP BY metric ORDER BY metric"
	res, plan, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !plan.Vectorized {
		t.Fatalf("expected the vectorized path (plan: %s)", plan.Text())
	}
	prof := plan.Profile
	if prof == nil {
		t.Fatal("plan carries no profile")
	}
	if prof.SegmentRows != 400 {
		t.Errorf("SegmentRows = %d, want 400", prof.SegmentRows)
	}
	if prof.TailRows != 40 {
		t.Errorf("TailRows = %d, want 40", prof.TailRows)
	}
	if prof.RowsScanned != 440 {
		t.Errorf("RowsScanned = %d, want 440", prof.RowsScanned)
	}
	if prof.RowsReturned != int64(len(res.Rows)) {
		t.Errorf("RowsReturned = %d, want %d", prof.RowsReturned, len(res.Rows))
	}
	if prof.BlocksScanned == 0 {
		t.Error("BlocksScanned = 0, want > 0")
	}
	if len(prof.WorkerRows) == 0 {
		t.Error("WorkerRows empty, want per-worker partition sizes")
	}
	var partSum int64
	for _, n := range prof.WorkerRows {
		partSum += n
	}
	if partSum != prof.SegmentRows {
		t.Errorf("sum(WorkerRows) = %d, want SegmentRows %d", partSum, prof.SegmentRows)
	}
	if prof.ExecNanos <= 0 {
		t.Errorf("ExecNanos = %d, want > 0", prof.ExecNanos)
	}
	if prof.PlanNanos <= 0 {
		t.Errorf("PlanNanos = %d, want > 0", prof.PlanNanos)
	}
}

// TestExecProfileZoneMapPruning checks that a selective PK-range scan
// records the blocks the zone maps let it skip.
func TestExecProfileZoneMapPruning(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 400, 4, 0)
	p := New(st)
	_, plan, err := p.Query(context.Background(),
		"SELECT count(*) FROM performance_result WHERE id <= 10")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	prof := plan.Profile
	if prof == nil {
		t.Fatal("plan carries no profile")
	}
	if prof.BlocksPruned == 0 {
		t.Errorf("BlocksPruned = 0, want > 0 (plan: %s)", plan.Text())
	}
	if prof.SegmentRows == 0 || prof.SegmentRows >= 400 {
		t.Errorf("SegmentRows = %d, want a pruned subset of 400", prof.SegmentRows)
	}
}

// TestExecProfileCacheHit checks that a cache hit returns the profile
// of the execution that filled the entry, flagged as such on the wire.
func TestExecProfileCacheHit(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 200)
	p := New(st)
	p.Cache = NewResultCache(1 << 20)
	q := "SELECT metric, count(*) FROM performance_result GROUP BY metric ORDER BY metric"
	_, first, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	_, second, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !second.CacheHit {
		t.Fatal("second execution missed the cache")
	}
	if second.Profile == nil {
		t.Fatal("cache hit dropped the profile")
	}
	if second.Profile.RowsScanned != first.Profile.RowsScanned {
		t.Errorf("cached profile RowsScanned = %d, want %d",
			second.Profile.RowsScanned, first.Profile.RowsScanned)
	}
	w := second.ProfileWire()
	if w == nil || !w.CacheHit {
		t.Errorf("ProfileWire = %+v, want CacheHit=true", w)
	}
}

// TestAnalyzeWireAndFormat checks the wire split: Wire() stays
// profile-free (plain explain output is byte-stable), WireAnalyze()
// attaches it, and Format renders the per-operator actuals.
func TestAnalyzeWireAndFormat(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 400, 4, 0)
	p := New(st)
	_, plan, err := p.Query(context.Background(),
		"SELECT metric, avg(value) FROM performance_result GROUP BY metric ORDER BY metric")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plain := plan.Wire(); plain.Profile != nil {
		t.Error("Wire() attached a profile; plain explain must stay byte-stable")
	}
	wa := plan.WireAnalyze()
	if wa.Profile == nil {
		t.Fatal("WireAnalyze() carries no profile")
	}
	out := Format(wa)
	for _, want := range []string{"profile:", "scanned:", "returned:", "workers:"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "segment rows") {
		t.Errorf("analyze output missing segment actuals:\n%s", out)
	}
}

// TestExecProfile100kSegmentAggregate is the acceptance check: analyze
// on a 100k-row segment-store grouped aggregate reports full-scan
// actuals that add up.
func TestExecProfile100kSegmentAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row corpus; skipped in -short")
	}
	st, _ := seedSegmentStore(t, t.TempDir(), 100_000, 4, 0)
	p := New(st)
	_, plan, err := p.Query(context.Background(),
		"SELECT metric, count(*), avg(value) FROM performance_result GROUP BY metric ORDER BY metric")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	prof := plan.Profile
	if prof == nil {
		t.Fatal("plan carries no profile")
	}
	if prof.SegmentRows != 100_000 || prof.RowsScanned != 100_000 {
		t.Errorf("SegmentRows=%d RowsScanned=%d, want 100000 each", prof.SegmentRows, prof.RowsScanned)
	}
	w := plan.WireAnalyze().Profile
	if w.CardinalityError > 0.5 {
		t.Errorf("CardinalityError = %.2f on a full aggregate scan, want near 0", w.CardinalityError)
	}
}

func TestCardinalityError(t *testing.T) {
	for _, tc := range []struct {
		est, actual int64
		want        float64
	}{
		{100, 100, 0},
		{50, 100, 0.5},
		{200, 100, 1},
		{5, 0, 5},
	} {
		if got := cardinalityError(tc.est, tc.actual); got != tc.want {
			t.Errorf("cardinalityError(%d, %d) = %g, want %g", tc.est, tc.actual, got, tc.want)
		}
	}
}
