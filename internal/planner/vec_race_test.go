package planner

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// TestVectorizedScanDuringCompaction runs parallel vectorized segment
// scans concurrently with batch commits and WAL compaction passes. The
// queries are pinned to an id prefix that existed before the writer
// started, so every execution — whatever mix of segments, fresh
// segments, and B-tree tail it observes across generations — must
// return the same bytes. Run under -race this also proves the scan
// fan-out never touches mutable engine state unsynchronized.
func TestVectorizedScanDuringCompaction(t *testing.T) {
	const seedRows = 1200
	st, fe := seedSegmentStore(t, t.TempDir(), seedRows, 2, 0)

	queries := []string{
		fmt.Sprintf("SELECT metric, count(*), sum(value), min(value), max(value) FROM performance_result WHERE id <= %d GROUP BY metric ORDER BY metric", seedRows),
		fmt.Sprintf("SELECT execution, avg(value) FROM performance_result WHERE id <= %d GROUP BY execution", seedRows),
		fmt.Sprintf("SELECT id, value FROM performance_result WHERE id <= %d AND metric = 'metric-1' AND value >= 100 ORDER BY id", seedRows),
	}
	naive := New(st)
	naive.Naive = true
	want := make([]string, len(queries))
	for i, q := range queries {
		res, _, err := naive.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("baseline %s: %v", q, err)
		}
		want[i] = renderResult(res)
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	// Writer: batch commits (generation bumps) interleaved with
	// compaction passes that rewrite the segment manifest.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			b := st.NewBatch()
			for j := 0; j < 40; j++ {
				b.Stage(ptdf.PerfResultRec{
					Exec: "exec-a",
					Sets: []ptdf.ResourceSet{{Names: []core.ResourceName{"/app"}, Type: core.FocusPrimary}},
					Tool: "tool", Metric: fmt.Sprintf("metric-%d", j%4),
					Value: float64(round*40+j) * 0.25, Units: "seconds",
				})
			}
			if _, err := b.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			if round%2 == 1 {
				if err := fe.CompactSegments(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	// Readers: parallel vectorized scans across shifting generations.
	const readers = 4
	const iters = 30
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			p := New(st)
			p.Workers = 2
			for i := 0; i < iters; i++ {
				qi := (r + i) % len(queries)
				res, _, err := p.Query(context.Background(), queries[qi])
				if err != nil {
					t.Errorf("reader %d: %s: %v", r, queries[qi], err)
					return
				}
				if got := renderResult(res); got != want[qi] {
					t.Errorf("reader %d iter %d: %s: result drifted across generations:\n%s\nvs\n%s",
						r, i, queries[qi], got, want[qi])
					return
				}
			}
		}(r)
	}

	// Stop the writer once every reader has finished its iterations.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}
