// Package planner is the cost-based query planner between the SQL
// frontend (internal/sqldb) and the datastore. It exposes the store as a
// small virtual catalog — execution, resource, attribute, and
// performance_result tables keyed by names instead of internal IDs —
// and, per predicate, chooses between attribute-index scans, the cached
// ID-set intersection of the pr-filter engine, zone-map-pruned columnar
// segment scans, and full scans, using the table statistics the store
// collects at batch-commit time. Predicates and aggregations are pushed
// below materialization, so SELECT avg(value) ... GROUP BY metric never
// builds result rows.
//
// Queries the catalog cannot express (joins, physical columns such as
// execution_id, unknown tables) fall through to the raw sqldb executor
// over the physical schema, so the SQL surface never shrinks.
package planner

import (
	"context"
	"fmt"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/obs"
	"perftrack/internal/query"
	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// Access-path strategies a plan can choose.
const (
	StrategyFullScan  = "full-scan"   // B-tree scan of every row
	StrategyZoneMap   = "zone-map"    // columnar segment scan with zone-map pruning
	StrategyIndex     = "index"       // secondary-index prefix scan
	StrategyIDSet     = "idset-cache" // cached pr-filter ID-set intersection
	StrategyAttrIndex = "attr-index"  // attribute-index scan feeding the ID set
	StrategyRawSQL    = "raw-sql"     // delegated to the physical-schema executor
)

// Cost-model weights: relative cost of visiting one row on each access
// path (DESIGN.md §11). Point lookups pay random B-tree descents, index
// scans a key walk plus row fetch, full scans a sequential B-tree walk,
// and segment scans stream decoded columns.
const (
	costPointLookup = 4.0
	costIndexRow    = 2.0
	costScanRow     = 1.0
	costSegmentRow  = 0.25
)

// virtualColumns is the planner catalog: the virtual tables and their
// column order. performance_result additionally accepts the WHERE-only
// pseudo-columns "resource" (a resource name, descendants included) and
// "family" (a full pr-filter family spec).
var virtualColumns = map[string][]string{
	"execution":          {"name", "application"},
	"resource":           {"name", "base_name", "type", "execution"},
	"attribute":          {"resource", "name", "value"},
	"performance_result": {"id", "execution", "metric", "value", "units", "tool"},
}

// resultDims are performance_result's dimension columns: virtual column →
// physical row index and dictionary table.
var resultDims = map[string]struct {
	physCol int
	dict    string
}{
	"execution": {1, "execution"},
	"metric":    {2, "metric"},
	"tool":      {3, "performance_tool"},
	"units":     {4, "units"},
}

// Planner plans and executes SELECTs against a datastore.
type Planner struct {
	store *datastore.Store

	// Naive disables the cost-based machinery — no predicate or aggregate
	// pushdown, full-scan access, every WHERE conjunct re-evaluated per
	// materialized row. Family specs are still honored (they are
	// semantics, not optimization). It is the ablation baseline for
	// BENCH_sql.json and the oracle for FuzzSQLPlanner.
	Naive bool

	// NoVector disables the vectorized segment kernels, keeping zone-map
	// scans on the row-at-a-time path. It is the ablation baseline for
	// BENCH_scan.json.
	NoVector bool

	// Workers caps the vectorized scan fan-out; 0 means GOMAXPROCS.
	Workers int

	// Cache, when set, serves repeated queries from a generation-keyed
	// result cache (see ResultCache). Naive mode bypasses it so the
	// differential oracle always re-executes.
	Cache *ResultCache
}

// New builds a planner over a store.
func New(st *datastore.Store) *Planner { return &Planner{store: st} }

// Plan describes how one query ran: the chosen strategy with estimated
// (from commit-time statistics) versus actual scan-output cardinality,
// the pushed-down predicates, and how many virtual rows were built.
type Plan struct {
	Table        string
	Strategy     string
	EstRows      int64
	ActualRows   int64
	Pushed       []string
	Residual     bool
	Aggregate    bool
	Materialized int64
	Alternatives []string // "strategy=cost" entries the cost model compared
	Vectorized   bool     // scan ran through the batched segment kernels
	Workers      int      // vectorized scan fan-out actually used
	CacheHit     bool     // result served from the plan-keyed result cache

	// Profile records the execution's per-operator actuals (see
	// profile.go). A cache hit carries the profile of the execution that
	// filled the entry.
	Profile *ExecProfile
}

// Query parses, plans, and executes one SELECT. With a Cache attached,
// a repeated query under an unchanged store generation returns the
// cached result; any mutation bumps the generation and implicitly
// invalidates every cached entry. When the context carries a trace, the
// whole lookup runs under a planner.query span tagged cache=hit|miss,
// so cached requests still show up in /v1/debug/traces instead of
// vanishing at the short-circuit.
func (p *Planner) Query(ctx context.Context, sqlText string) (*sqldb.Result, *Plan, error) {
	ctx, span := obs.StartSpan(ctx, "planner.query")
	defer span.End()
	var gen uint64
	cached := p.Cache != nil && !p.Naive
	if cached {
		gen = p.store.Generation()
		if res, plan, ok := p.Cache.get(sqlText, gen); ok {
			span.Annotate("cache", "hit")
			span.Annotate("strategy", plan.Strategy)
			return res, plan, nil
		}
		span.Annotate("cache", "miss")
	}
	res, plan, err := p.execute(ctx, sqlText)
	if cached && err == nil {
		p.Cache.put(sqlText, gen, res, plan)
	}
	if err == nil {
		span.Annotate("strategy", plan.Strategy)
	}
	return res, plan, err
}

// execute parses, plans, and runs one SELECT, bypassing the cache.
func (p *Planner) execute(ctx context.Context, sqlText string) (*sqldb.Result, *Plan, error) {
	prof := newExecProfile()
	stmt, err := sqldb.Parse(sqlText)
	if err != nil {
		return nil, nil, fmt.Errorf("planner: %v: %w", err, datastore.ErrBadSpec)
	}
	sel, ok := stmt.(*sqldb.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("planner: only SELECT is supported (got %T): %w", stmt, datastore.ErrBadSpec)
	}
	var res *sqldb.Result
	var plan *Plan
	switch {
	case p.virtualizable(sel) && sel.From.Table == "performance_result":
		res, plan, err = p.planResults(ctx, sel, prof)
	case p.virtualizable(sel):
		res, plan, err = p.planDimension(ctx, sel, prof)
	default:
		res, plan, err = p.rawQuery(sel, sqlText, prof)
	}
	if err == nil {
		prof.finish(len(res.Rows))
	}
	return res, plan, err
}

// rawQuery delegates to the physical-schema SQL executor.
func (p *Planner) rawQuery(sel *sqldb.SelectStmt, sqlText string, prof *ExecProfile) (*sqldb.Result, *Plan, error) {
	prof.markPlanned()
	res, err := p.store.SQL().Query(sqlText)
	if err != nil {
		return nil, nil, fmt.Errorf("planner: %v: %w", err, datastore.ErrBadSpec)
	}
	prof.RowsScanned = int64(len(res.Rows))
	return res, &Plan{
		Table:        sel.From.Table,
		Strategy:     StrategyRawSQL,
		EstRows:      int64(len(res.Rows)),
		ActualRows:   int64(len(res.Rows)),
		Materialized: int64(len(res.Rows)),
		Profile:      prof,
	}, nil
}

// virtualizable reports whether the statement can run against the
// virtual catalog: a single known virtual table and every column
// reference resolvable there (pseudo-columns count; ORDER BY may also
// name select-list aliases). Anything else goes to the raw executor.
func (p *Planner) virtualizable(sel *sqldb.SelectStmt) bool {
	cols, ok := virtualColumns[sel.From.Table]
	if !ok || len(sel.Joins) > 0 {
		return false
	}
	allowed := map[string]bool{}
	for _, c := range cols {
		allowed[c] = true
	}
	if sel.From.Table == "performance_result" {
		allowed["family"] = true
		allowed["resource"] = true
	}
	alias := map[string]bool{}
	for _, item := range sel.Items {
		if item.Alias != "" {
			alias[item.Alias] = true
		}
	}
	from := sel.From.Table
	if sel.From.Alias != "" {
		from = sel.From.Alias
	}
	resolves := func(e sqldb.Expr, extra map[string]bool) bool {
		ok := true
		walkColumnRefs(e, func(cr *sqldb.ColumnRef) {
			if cr.Table != "" && cr.Table != from {
				ok = false
			}
			if !allowed[cr.Column] && !extra[cr.Column] {
				ok = false
			}
		})
		return ok
	}
	for _, item := range sel.Items {
		if item.Star {
			if item.Table != "" && item.Table != from {
				return false
			}
			continue
		}
		if !resolves(item.Expr, nil) {
			return false
		}
	}
	if sel.Where != nil && !resolves(sel.Where, nil) {
		return false
	}
	for _, ge := range sel.GroupBy {
		if !resolves(ge, nil) {
			return false
		}
	}
	if sel.Having != nil && !resolves(sel.Having, nil) {
		return false
	}
	for _, oi := range sel.OrderBy {
		if !resolves(oi.Expr, alias) {
			return false
		}
	}
	return true
}

// walkColumnRefs visits every column reference in an expression tree,
// including aggregate arguments.
func walkColumnRefs(e sqldb.Expr, fn func(*sqldb.ColumnRef)) {
	switch x := e.(type) {
	case *sqldb.ColumnRef:
		fn(x)
	case *sqldb.BinaryExpr:
		walkColumnRefs(x.L, fn)
		walkColumnRefs(x.R, fn)
	case *sqldb.UnaryExpr:
		walkColumnRefs(x.X, fn)
	case *sqldb.InExpr:
		walkColumnRefs(x.X, fn)
		for _, i := range x.List {
			walkColumnRefs(i, fn)
		}
	case *sqldb.IsNullExpr:
		walkColumnRefs(x.X, fn)
	case *sqldb.BetweenExpr:
		walkColumnRefs(x.X, fn)
		walkColumnRefs(x.Lo, fn)
		walkColumnRefs(x.Hi, fn)
	case *sqldb.FuncExpr:
		if x.Arg != nil {
			walkColumnRefs(x.Arg, fn)
		}
	}
}

// --- WHERE analysis ---

// conjunct kinds, from the planner's point of view.
const (
	kindResidual = iota // only evaluable per materialized row
	kindFamily          // family/resource pseudo-column equality → ID set
	kindDim             // dimension name equality → ID filter
	kindNum             // value/id comparison → scalar filter
)

// numPred is a pushable numeric comparison on value or id.
type numPred struct {
	col string // "value" or "id"
	op  string
	f   float64
}

func (np numPred) ok(v float64) bool {
	switch np.op {
	case "=":
		return v == np.f
	case "!=":
		return v != np.f
	case "<":
		return v < np.f
	case "<=":
		return v <= np.f
	case ">":
		return v > np.f
	case ">=":
		return v >= np.f
	}
	return false
}

// conjunct is one AND-leaf of the WHERE clause with its classification.
type conjunct struct {
	expr sqldb.Expr
	kind int

	famSpec string // kindFamily
	dimCol  string // kindDim: virtual column
	dimVal  string // kindDim: required name
	num     numPred
}

// splitConjuncts flattens the AND tree of a WHERE clause.
func splitConjuncts(e sqldb.Expr, out []sqldb.Expr) []sqldb.Expr {
	if be, ok := e.(*sqldb.BinaryExpr); ok && be.Op == "AND" {
		out = splitConjuncts(be.L, out)
		return splitConjuncts(be.R, out)
	}
	return append(out, e)
}

// colOpLit decomposes a comparison between a column and a literal,
// flipping the operator when the literal is on the left.
func colOpLit(e sqldb.Expr) (col, op string, lit reldb.Value, ok bool) {
	be, isBin := e.(*sqldb.BinaryExpr)
	if !isBin {
		return "", "", reldb.Null(), false
	}
	switch be.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return "", "", reldb.Null(), false
	}
	if cr, isCol := be.L.(*sqldb.ColumnRef); isCol {
		if l, isLit := be.R.(*sqldb.Literal); isLit {
			return cr.Column, be.Op, l.Value, true
		}
	}
	if cr, isCol := be.R.(*sqldb.ColumnRef); isCol {
		if l, isLit := be.L.(*sqldb.Literal); isLit {
			flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
			return cr.Column, flip[be.Op], l.Value, true
		}
	}
	return "", "", reldb.Null(), false
}

// analyzeResultWhere classifies each WHERE conjunct of a
// performance_result query.
func analyzeResultWhere(where sqldb.Expr) []conjunct {
	if where == nil {
		return nil
	}
	var out []conjunct
	for _, e := range splitConjuncts(where, nil) {
		c := conjunct{expr: e, kind: kindResidual}
		if col, op, lit, ok := colOpLit(e); ok {
			switch {
			case col == "family" && op == "=" && lit.Kind() == reldb.KindString:
				c.kind, c.famSpec = kindFamily, lit.Text()
			case col == "resource" && op == "=" && lit.Kind() == reldb.KindString:
				c.kind, c.famSpec = kindFamily, "name="+lit.Text()
			case resultDims[col].dict != "" && op == "=" && lit.Kind() == reldb.KindString:
				c.kind, c.dimCol, c.dimVal = kindDim, col, lit.Text()
			case (col == "value" || col == "id") &&
				(lit.Kind() == reldb.KindInt || lit.Kind() == reldb.KindFloat):
				c.kind = kindNum
				c.num = numPred{col: col, op: op, f: lit.Float64()}
			}
		}
		out = append(out, c)
	}
	return out
}

// checkPseudo rejects family/resource pseudo-column references anywhere
// they cannot be answered: outside the WHERE clause, or inside WHERE
// conjuncts that are not simple AND'd equalities.
func checkPseudo(sel *sqldb.SelectStmt, residual []sqldb.Expr) error {
	var bad string
	check := func(e sqldb.Expr) {
		walkColumnRefs(e, func(cr *sqldb.ColumnRef) {
			if cr.Column == "family" || cr.Column == "resource" {
				bad = cr.Column
			}
		})
	}
	for _, item := range sel.Items {
		if !item.Star {
			check(item.Expr)
		}
	}
	for _, ge := range sel.GroupBy {
		check(ge)
	}
	if sel.Having != nil {
		check(sel.Having)
	}
	for _, oi := range sel.OrderBy {
		check(oi.Expr)
	}
	for _, e := range residual {
		check(e)
	}
	if bad != "" {
		return fmt.Errorf("planner: pseudo-column %q is only usable as an AND'd equality in WHERE: %w",
			bad, datastore.ErrBadSpec)
	}
	return nil
}

// scalarSafe reports whether an expression always evaluates without
// error: a resolved column reference or a literal.
func scalarSafe(e sqldb.Expr) bool {
	switch e.(type) {
	case *sqldb.ColumnRef, *sqldb.Literal:
		return true
	}
	return false
}

// boolSafe reports whether a conjunct always evaluates, without error,
// to a boolean or NULL. Pushing predicates down changes which rows the
// residual WHERE is re-evaluated over; that is only sound when the
// residual cannot raise a data-dependent error (e.g. AND over a string)
// that naive evaluation over the larger row set would surface.
func boolSafe(e sqldb.Expr) bool {
	switch x := e.(type) {
	case *sqldb.BinaryExpr:
		switch x.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			return scalarSafe(x.L) && scalarSafe(x.R)
		}
	case *sqldb.IsNullExpr:
		return scalarSafe(x.X)
	case *sqldb.InExpr:
		if !scalarSafe(x.X) {
			return false
		}
		for _, item := range x.List {
			if !scalarSafe(item) {
				return false
			}
		}
		return true
	case *sqldb.BetweenExpr:
		return scalarSafe(x.X) && scalarSafe(x.Lo) && scalarSafe(x.Hi)
	}
	return false
}

// stripConjuncts rebuilds a WHERE tree with the dropped conjuncts
// replaced by TRUE, so residual re-evaluation never sees pushed-down
// predicates (or pseudo-columns absent from the virtual row).
func stripConjuncts(e sqldb.Expr, drop map[sqldb.Expr]bool) sqldb.Expr {
	if drop[e] {
		return &sqldb.Literal{Value: reldb.Bool(true)}
	}
	if be, ok := e.(*sqldb.BinaryExpr); ok && be.Op == "AND" {
		return &sqldb.BinaryExpr{Op: "AND", L: stripConjuncts(be.L, drop), R: stripConjuncts(be.R, drop)}
	}
	return e
}

// --- family evaluation and estimation ---

// buildPRFilter evaluates family specs into a pr-filter through the
// store's cached set layer.
func (p *Planner) buildPRFilter(ctx context.Context, specs []string) (core.PRFilter, error) {
	var prf core.PRFilter
	for _, spec := range specs {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			return prf, fmt.Errorf("planner: family %q: %v: %w", spec, err, datastore.ErrBadSpec)
		}
		fam, err := p.store.ApplyFilterCtx(ctx, rf)
		if err != nil {
			return prf, err
		}
		prf.Families = append(prf.Families, fam)
	}
	return prf, nil
}

// familiesStrategy names the access path family specs use: attr-index
// when any spec carries attribute predicates (those walk the
// resource_attribute (name, value) index), idset-cache otherwise.
func familiesStrategy(specs []string) string {
	for _, spec := range specs {
		if rf, err := query.ParseFilterSpec(spec); err == nil && len(rf.Attrs) > 0 {
			return StrategyAttrIndex
		}
	}
	return StrategyIDSet
}

// estimateFamilies estimates the result rows surviving family specs.
// Attribute predicates use the per-attribute statistics (rows per
// distinct value over the resource population); name selections assume a
// small subtree; base/type selections a broad one. The estimate only has
// to rank access paths, not be exact.
func estimateFamilies(stats datastore.TableStatistics, specs []string) int64 {
	total := stats.TableStat("performance_result").Rows
	resources := stats.TableStat("resource_item").Rows
	est := float64(total)
	for _, spec := range specs {
		rf, err := query.ParseFilterSpec(spec)
		if err != nil {
			continue
		}
		sel := 1.0
		switch {
		case len(rf.Attrs) > 0:
			for _, pred := range rf.Attrs {
				frac := 0.5
				if a, ok := stats.AttributeStat(pred.Attr); ok && a.Distinct > 0 && resources > 0 {
					frac = float64(a.Rows) / float64(a.Distinct) / float64(resources)
				}
				if frac > 1 {
					frac = 1
				}
				sel *= frac
			}
		case rf.Name != "":
			sel = 0.1
		default:
			sel = 0.25
		}
		if e := float64(total) * sel; e < est {
			est = e
		}
	}
	if est < 1 {
		est = 1
	}
	return int64(est)
}

// --- cost-based strategy choice for performance_result ---

// resultAccess is the planner's decision for one performance_result scan.
type resultAccess struct {
	strategy     string
	indexDim     string // kindDim column driving an index scan
	est          int64
	alternatives []string
}

// chooseResultAccess costs the applicable access paths and picks the
// cheapest. Family specs force the set-based path (they are semantics);
// everything else competes on estimated rows visited times per-row cost.
func (p *Planner) chooseResultAccess(stats datastore.TableStatistics, cs []conjunct) resultAccess {
	total := stats.TableStat("performance_result").Rows
	segRows := stats.TableStat("performance_result").SegmentRows
	var families []string
	dims := map[string]string{}
	nums := 0
	for _, c := range cs {
		switch c.kind {
		case kindFamily:
			families = append(families, c.famSpec)
		case kindDim:
			dims[c.dimCol] = c.dimVal
		case kindNum:
			nums++
		}
	}

	// Scan-output estimate: whatever the access path, the pushed
	// predicates thin the stream.
	estOut := float64(total)
	if len(families) > 0 {
		estOut = float64(estimateFamilies(stats, families))
	}
	dimSel := func(col string) float64 {
		d := stats.TableStat(resultDims[col].dict).DistinctKeys
		if d <= 0 {
			return 1
		}
		return 1 / float64(d)
	}
	for col := range dims {
		estOut *= dimSel(col)
	}
	for i := 0; i < nums; i++ {
		estOut /= 3
	}
	if estOut < 1 {
		estOut = 1
	}
	out := resultAccess{est: int64(estOut)}

	if p.Naive {
		out.strategy = StrategyFullScan
		out.est = total
		return out
	}
	if len(families) > 0 {
		out.strategy = familiesStrategy(families)
		setSize := float64(estimateFamilies(stats, families))
		out.alternatives = append(out.alternatives,
			fmt.Sprintf("%s=%.0f", out.strategy, setSize*costPointLookup),
			fmt.Sprintf("%s=%.0f", StrategyFullScan, float64(total)*costScanRow))
		return out
	}

	type option struct {
		strategy string
		dim      string
		cost     float64
	}
	opts := []option{{strategy: StrategyFullScan, cost: float64(total) * costScanRow}}
	if segRows > 0 {
		if _, ok := p.store.ResultSegmentView(); ok {
			tail := float64(total - segRows)
			if tail < 0 {
				tail = 0
			}
			opts = append(opts, option{
				strategy: StrategyZoneMap,
				cost:     float64(segRows)*costSegmentRow + tail*costScanRow,
			})
		}
	}
	for _, dim := range []string{"execution", "metric"} { // the indexed dims
		if _, ok := dims[dim]; !ok {
			continue
		}
		opts = append(opts, option{
			strategy: StrategyIndex,
			dim:      dim,
			cost:     float64(total) * dimSel(dim) * costIndexRow,
		})
	}
	best := opts[0]
	for _, o := range opts[1:] {
		if o.cost < best.cost {
			best = o
		}
	}
	out.strategy, out.indexDim = best.strategy, best.dim
	for _, o := range opts {
		name := o.strategy
		if o.dim != "" {
			name += "(" + o.dim + ")"
		}
		out.alternatives = append(out.alternatives, fmt.Sprintf("%s=%.0f", name, o.cost))
	}
	return out
}

// describeConjunct renders a pushed conjunct for plan output.
func describeConjunct(c conjunct) string {
	switch c.kind {
	case kindFamily:
		return fmt.Sprintf("family=%q", c.famSpec)
	case kindDim:
		return fmt.Sprintf("%s=%q", c.dimCol, c.dimVal)
	case kindNum:
		return fmt.Sprintf("%s%s%g", c.num.col, c.num.op, c.num.f)
	}
	return ""
}
