package planner

import (
	"context"
	"fmt"
	"math"
	"sort"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// rowEmit receives one performance_result row that survived the pushed
// predicates. Every access path emits in ascending row-ID order, so
// planned and naive executions produce identically ordered results.
type rowEmit func(id, execID, metricID, toolID, unitsID int64, value float64)

// planResults plans and executes one SELECT over the virtual
// performance_result table.
func (p *Planner) planResults(ctx context.Context, sel *sqldb.SelectStmt, prof *ExecProfile) (*sqldb.Result, *Plan, error) {
	cs := analyzeResultWhere(sel.Where)

	// Split pushed from residual conjuncts. Family specs are always
	// evaluated through the set layer — they are selection semantics, not
	// an optimization — while naive mode keeps dimension and numeric
	// predicates residual. Dimension and numeric pushdown is also
	// disabled whenever a residual conjunct could raise a data-dependent
	// evaluation error: pushing would shrink the row set the residual
	// runs over and could mask the error naive evaluation reports.
	fullPush := !p.Naive
	for _, c := range cs {
		if c.kind == kindResidual && !boolSafe(c.expr) {
			fullPush = false
			break
		}
	}
	var pushed []conjunct
	var residual []sqldb.Expr
	drop := map[sqldb.Expr]bool{}
	for _, c := range cs {
		if c.kind == kindResidual || (!fullPush && c.kind != kindFamily) {
			residual = append(residual, c.expr)
			continue
		}
		pushed = append(pushed, c)
		drop[c.expr] = true
	}
	if err := checkPseudo(sel, residual); err != nil {
		return nil, nil, err
	}

	stats := p.store.TableStatistics()
	access := p.chooseResultAccess(stats, pushed)
	plan := &Plan{
		Table:        "performance_result",
		Strategy:     access.strategy,
		EstRows:      access.est,
		Residual:     len(residual) > 0,
		Alternatives: access.alternatives,
		Profile:      prof,
	}
	prof.markPlanned()
	for _, c := range pushed {
		plan.Pushed = append(plan.Pushed, describeConjunct(c))
	}
	if sel.Where != nil {
		sel.Where = stripConjuncts(sel.Where, drop)
	}

	vcols := virtualColumns["performance_result"]
	if aggs, groupCols, ok := p.aggPushable(sel, residual); ok {
		if res, done, err := p.execAggregateVec(sel, access, pushed, aggs, groupCols, plan); done || err != nil {
			return res, plan, err
		}
		res, err := p.execAggregate(ctx, sel, access, pushed, aggs, groupCols, plan)
		return res, plan, err
	}
	res, err := p.execRows(ctx, sel, access, pushed, vcols, plan)
	return res, plan, err
}

// aggPushable decides whether the aggregation itself can run below
// materialization: no residual predicates, every GROUP BY key a
// dimension column, every aggregate over value, id, or *, and no other
// column referenced outside aggregate arguments. Queries that fail the
// test fall back to the row path, whose executor reports the same errors
// naive execution would.
func (p *Planner) aggPushable(sel *sqldb.SelectStmt, residual []sqldb.Expr) ([]*sqldb.FuncExpr, []string, bool) {
	if p.Naive || len(residual) > 0 || !sqldb.HasAggregates(sel) {
		return nil, nil, false
	}
	aggs, err := sqldb.SelectAggregates(sel)
	if err != nil {
		return nil, nil, false
	}
	groupSet := map[string]bool{}
	var groupCols []string
	for _, ge := range sel.GroupBy {
		cr, ok := ge.(*sqldb.ColumnRef)
		if !ok || resultDims[cr.Column].dict == "" {
			return nil, nil, false
		}
		if !groupSet[cr.Column] {
			groupSet[cr.Column] = true
			groupCols = append(groupCols, cr.Column)
		}
	}
	for _, fe := range aggs {
		if fe.Star {
			continue
		}
		cr, ok := fe.Arg.(*sqldb.ColumnRef)
		if !ok || (cr.Column != "value" && cr.Column != "id") {
			return nil, nil, false
		}
	}
	// Any non-aggregate column reference must be a group key: the pushed
	// representative row carries only the group dimensions, where a naive
	// group representative carries its whole first row.
	ok := true
	check := func(e sqldb.Expr) { walkNonAggRefs(e, func(cr *sqldb.ColumnRef) { ok = ok && groupSet[cr.Column] }) }
	for _, item := range sel.Items {
		if item.Star {
			return nil, nil, false
		}
		check(item.Expr)
	}
	if sel.Having != nil {
		check(sel.Having)
	}
	for _, oi := range sel.OrderBy {
		check(oi.Expr)
	}
	if !ok {
		return nil, nil, false
	}
	return aggs, groupCols, true
}

// walkNonAggRefs visits column references outside aggregate arguments.
func walkNonAggRefs(e sqldb.Expr, fn func(*sqldb.ColumnRef)) {
	switch x := e.(type) {
	case *sqldb.FuncExpr: // aggregate argument: not a per-row reference
	case *sqldb.ColumnRef:
		fn(x)
	case *sqldb.BinaryExpr:
		walkNonAggRefs(x.L, fn)
		walkNonAggRefs(x.R, fn)
	case *sqldb.UnaryExpr:
		walkNonAggRefs(x.X, fn)
	case *sqldb.InExpr:
		walkNonAggRefs(x.X, fn)
		for _, i := range x.List {
			walkNonAggRefs(i, fn)
		}
	case *sqldb.IsNullExpr:
		walkNonAggRefs(x.X, fn)
	case *sqldb.BetweenExpr:
		walkNonAggRefs(x.X, fn)
		walkNonAggRefs(x.Lo, fn)
		walkNonAggRefs(x.Hi, fn)
	}
}

// execAggregate runs the scan with aggregation pushed below
// materialization: groups accumulate over (id, dims, value) tuples
// straight off the access path and no result row is ever built.
func (p *Planner) execAggregate(ctx context.Context, sel *sqldb.SelectStmt, access resultAccess,
	pushed []conjunct, aggs []*sqldb.FuncExpr, groupCols []string, plan *Plan) (*sqldb.Result, error) {
	plan.Aggregate = true

	type aggGroup struct{ accs []*sqldb.Aggregator }
	groups := map[[4]int64]*aggGroup{}
	var order [][4]int64
	var actual int64
	emit := func(id, e, m, t, u int64, v float64) {
		actual++
		var key [4]int64
		for i, col := range groupCols {
			switch col {
			case "execution":
				key[i] = e
			case "metric":
				key[i] = m
			case "tool":
				key[i] = t
			case "units":
				key[i] = u
			}
		}
		g := groups[key]
		if g == nil {
			g = &aggGroup{accs: make([]*sqldb.Aggregator, len(aggs))}
			for i, fe := range aggs {
				g.accs[i] = sqldb.NewAggregator(fe)
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, fe := range aggs {
			switch {
			case fe.Star:
				g.accs[i].Add(reldb.Null())
			case fe.Arg.(*sqldb.ColumnRef).Column == "id":
				g.accs[i].Add(reldb.Int(id))
			default:
				g.accs[i].Add(reldb.Float(v))
			}
		}
	}
	if err := p.scanResults(ctx, access, pushed, plan.Profile, emit); err != nil {
		return nil, err
	}
	plan.ActualRows = actual

	vcols := virtualColumns["performance_result"]
	colIdx := map[string]int{}
	for i, c := range vcols {
		colIdx[c] = i
	}
	dicts := map[string]map[int64]string{}
	for _, col := range groupCols {
		d, err := p.store.DictNames(resultDims[col].dict)
		if err != nil {
			return nil, err
		}
		dicts[col] = d
	}
	pgs := make([]sqldb.PlannedGroup, 0, len(order))
	for _, key := range order {
		repr := make(reldb.Row, len(vcols))
		for i := range repr {
			repr[i] = reldb.Null()
		}
		for i, col := range groupCols {
			repr[colIdx[col]] = reldb.Str(dicts[col][key[i]])
		}
		pgs = append(pgs, sqldb.PlannedGroup{Repr: repr, Aggs: groups[key].accs})
	}
	return sqldb.FinishGrouped(sel, vcols, pgs)
}

// execRows materializes the surviving rows as virtual
// (id, execution, metric, value, units, tool) tuples and hands them to
// the SQL executor for residual filtering, projection, grouping, and
// ordering.
func (p *Planner) execRows(ctx context.Context, sel *sqldb.SelectStmt, access resultAccess,
	pushed []conjunct, vcols []string, plan *Plan) (*sqldb.Result, error) {
	dicts := map[string]map[int64]string{}
	for _, d := range []string{"execution", "metric", "performance_tool", "units"} {
		m, err := p.store.DictNames(d)
		if err != nil {
			return nil, err
		}
		dicts[d] = m
	}
	var rows []reldb.Row
	emit := func(id, e, m, t, u int64, v float64) {
		rows = append(rows, reldb.Row{
			reldb.Int(id),
			reldb.Str(dicts["execution"][e]),
			reldb.Str(dicts["metric"][m]),
			reldb.Float(v),
			reldb.Str(dicts["units"][u]),
			reldb.Str(dicts["performance_tool"][t]),
		})
	}
	if workers, done := p.scanResultsVec(access, pushed, plan.Profile, emit); done {
		plan.Vectorized = true
		plan.Workers = workers
	} else if err := p.scanResults(ctx, access, pushed, plan.Profile, emit); err != nil {
		return nil, err
	}
	plan.ActualRows = int64(len(rows))
	plan.Materialized = int64(len(rows))
	return sqldb.ExecuteSelect(sel, vcols, rows)
}

// scanResults drives the chosen access path, applies the pushed
// predicates, and emits survivors in ascending row-ID order. Access-path
// actuals (rows visited, blocks scanned/pruned, tail rows) accumulate
// into prof.
func (p *Planner) scanResults(ctx context.Context, access resultAccess, pushed []conjunct, prof *ExecProfile, emit rowEmit) error {
	tab, ok := p.store.Table("performance_result")
	if !ok {
		return fmt.Errorf("datastore: no performance_result table: %w", datastore.ErrNotFound)
	}
	if prof == nil {
		prof = &ExecProfile{} // tolerate direct calls without a profile sink
	}

	f := p.buildResultFilter(pushed)
	nums := f.nums

	var famIDs []int64
	var member map[int64]struct{}
	if len(f.famSpecs) > 0 {
		prf, err := p.buildPRFilter(ctx, f.famSpecs)
		if err != nil {
			return err
		}
		if famIDs, err = p.store.MatchingResultIDsCtx(ctx, prf); err != nil {
			return err
		}
		if access.strategy != StrategyIDSet && access.strategy != StrategyAttrIndex {
			// Naive mode scans everything and checks membership per row.
			member = make(map[int64]struct{}, len(famIDs))
			for _, id := range famIDs {
				member[id] = struct{}{}
			}
		}
	}
	if f.impossible {
		return nil
	}

	pass := func(id, e, m, t, u int64, v float64) bool {
		if !f.pass(id, e, m, t, u, v) {
			return false
		}
		if member != nil {
			if _, ok := member[id]; !ok {
				return false
			}
		}
		return true
	}
	visitRow := func(id int64, row reldb.Row) {
		prof.RowsScanned++
		e, m, t, u := row[1].Int64(), row[2].Int64(), row[3].Int64(), row[4].Int64()
		v := row[5].Float64()
		if pass(id, e, m, t, u, v) {
			emit(id, e, m, t, u, v)
		}
	}

	switch access.strategy {
	case StrategyIDSet, StrategyAttrIndex:
		for _, id := range famIDs { // already sorted ascending
			if row, ok := tab.Get(id); ok {
				visitRow(id, row)
			}
		}
		return nil

	case StrategyIndex:
		d := resultDims[access.indexDim]
		var key int64
		for _, df := range f.dims {
			if df.col == d.physCol {
				key = df.id
			}
		}
		idx := "performance_result_exec"
		if access.indexDim == "metric" {
			idx = "performance_result_metric"
		}
		// Index order is key order, not row order: buffer and sort so the
		// stream stays ID-ascending.
		type pair struct {
			id  int64
			row reldb.Row
		}
		var pairs []pair
		if err := tab.IndexScan(idx, []reldb.Value{reldb.Int(key)}, func(id int64, row reldb.Row) bool {
			pairs = append(pairs, pair{id, append(reldb.Row(nil), row...)})
			return true
		}); err != nil {
			return err
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
		for _, pr := range pairs {
			visitRow(pr.id, pr.row)
		}
		return nil

	case StrategyZoneMap:
		v, ok := p.store.ResultSegmentView()
		if !ok {
			break // view went away (new writes): fall through to full scan
		}
		lo, hi := idBounds(nums)
		if lo > hi {
			return nil
		}
		var scanned, blocks int
		pruned, bytes := v.ScanPKRange(lo, hi, func(b reldb.ColumnBlock) bool {
			ids := b.RowIDs()
			es, ms := b.Int64s(1), b.Int64s(2)
			ts, us := b.Int64s(3), b.Int64s(4)
			vs := b.Float64s(5)
			for i := 0; i < b.Len(); i++ {
				if pass(ids[i], es[i], ms[i], ts[i], us[i], vs[i]) {
					emit(ids[i], es[i], ms[i], ts[i], us[i], vs[i])
				}
			}
			scanned += b.Len()
			blocks++
			return true
		})
		p.store.NoteSegmentScan(scanned, pruned, bytes)
		prof.RowsScanned += int64(scanned)
		prof.SegmentRows += int64(scanned)
		prof.BlocksScanned += blocks
		prof.BlocksPruned += pruned
		// Rows above the segment watermark still live only in the B-tree.
		tlo := v.TailRowID() + 1
		if lo > tlo {
			tlo = lo
		}
		tab.PKRange([]reldb.Value{reldb.Int(tlo)}, nil, func(id int64, row reldb.Row) bool {
			prof.TailRows++
			visitRow(id, row)
			return true
		})
		return nil
	}

	tab.Scan(func(id int64, row reldb.Row) bool {
		visitRow(id, row)
		return true
	})
	return nil
}

// idBounds derives an inclusive primary-key range from pushed id
// predicates, for zone-map pruning.
func idBounds(nums []numPred) (lo, hi int64) {
	lo, hi = 0, math.MaxInt64
	for _, np := range nums {
		if np.col != "id" {
			continue
		}
		switch np.op {
		case "=":
			if b := int64(math.Ceil(np.f)); b > lo {
				lo = b
			}
			if b := int64(math.Floor(np.f)); b < hi {
				hi = b
			}
		case ">":
			if b := int64(math.Floor(np.f)) + 1; b > lo {
				lo = b
			}
		case ">=":
			if b := int64(math.Ceil(np.f)); b > lo {
				lo = b
			}
		case "<":
			if b := int64(math.Ceil(np.f)) - 1; b < hi {
				hi = b
			}
		case "<=":
			if b := int64(math.Floor(np.f)); b < hi {
				hi = b
			}
		}
	}
	return lo, hi
}

// --- dimension virtual tables ---

// dimSpec describes one dimension virtual table: its physical table,
// virtual columns, row builder, and the equality columns an index can
// serve.
type dimSpec struct {
	phys string
	// index returns the index and prefix serving col = lit, if any.
	index func(p *Planner, col string, lit string) (string, []reldb.Value, bool)
	// row builds the virtual row for one physical row.
	row func(p *Planner, dicts map[string]map[int64]string, row reldb.Row) reldb.Row
	// dicts names the dictionaries the row builder needs.
	dicts []string
}

var dimSpecs = map[string]dimSpec{
	"execution": {
		phys:  "execution",
		dicts: []string{"application"},
		index: func(p *Planner, col, lit string) (string, []reldb.Value, bool) {
			if col == "name" {
				return "execution_name", []reldb.Value{reldb.Str(lit)}, true
			}
			return "", nil, false
		},
		row: func(p *Planner, dicts map[string]map[int64]string, row reldb.Row) reldb.Row {
			return reldb.Row{row[1], reldb.Str(dicts["application"][row[2].Int64()])}
		},
	},
	"resource": {
		phys:  "resource_item",
		dicts: []string{"focus_framework", "execution"},
		index: func(p *Planner, col, lit string) (string, []reldb.Value, bool) {
			switch col {
			case "name":
				return "resource_item_name", []reldb.Value{reldb.Str(lit)}, true
			case "base_name":
				return "resource_item_base", []reldb.Value{reldb.Str(lit)}, true
			case "execution":
				if id, ok := p.store.LookupDict("execution", lit); ok {
					return "resource_item_exec", []reldb.Value{reldb.Int(id)}, true
				}
			}
			return "", nil, false
		},
		row: func(p *Planner, dicts map[string]map[int64]string, row reldb.Row) reldb.Row {
			exec := reldb.Null()
			if !row[5].IsNull() {
				exec = reldb.Str(dicts["execution"][row[5].Int64()])
			}
			return reldb.Row{row[1], row[2], reldb.Str(dicts["focus_framework"][row[4].Int64()]), exec}
		},
	},
	"attribute": {
		phys:  "resource_attribute",
		dicts: []string{"resource_item"},
		index: func(p *Planner, col, lit string) (string, []reldb.Value, bool) {
			if col == "name" {
				return "resource_attribute_name", []reldb.Value{reldb.Str(lit)}, true
			}
			return "", nil, false
		},
		row: func(p *Planner, dicts map[string]map[int64]string, row reldb.Row) reldb.Row {
			return reldb.Row{reldb.Str(dicts["resource_item"][row[1].Int64()]), row[2], row[3]}
		},
	},
}

// planDimension plans and executes a SELECT over a dimension virtual
// table (execution, resource, attribute): at most one indexable equality
// is pushed down; everything else stays residual over the materialized
// virtual rows.
func (p *Planner) planDimension(ctx context.Context, sel *sqldb.SelectStmt, prof *ExecProfile) (*sqldb.Result, *Plan, error) {
	spec := dimSpecs[sel.From.Table]
	vcols := virtualColumns[sel.From.Table]
	tab, ok := p.store.Table(spec.phys)
	if !ok {
		return nil, nil, fmt.Errorf("datastore: no %s table: %w", spec.phys, datastore.ErrNotFound)
	}
	stats := p.store.TableStatistics()
	total := stats.TableStat(spec.phys).Rows

	plan := &Plan{Table: sel.From.Table, Strategy: StrategyFullScan, EstRows: total, Profile: prof}
	var idxName string
	var idxPrefix []reldb.Value
	pushSafe := !p.Naive && sel.Where != nil
	if pushSafe {
		// Index pushdown shrinks the row set the WHERE re-runs over; see
		// boolSafe — every conjunct must be unable to error.
		for _, e := range splitConjuncts(sel.Where, nil) {
			if !boolSafe(e) {
				pushSafe = false
				break
			}
		}
	}
	if pushSafe {
		for _, e := range splitConjuncts(sel.Where, nil) {
			col, op, lit, ok := colOpLit(e)
			if !ok || op != "=" || lit.Kind() != reldb.KindString {
				continue
			}
			if name, prefix, ok := spec.index(p, col, lit.Text()); ok {
				idxName, idxPrefix = name, prefix
				plan.Strategy = StrategyIndex
				if sel.From.Table == "attribute" {
					plan.Strategy = StrategyAttrIndex
				}
				plan.Pushed = append(plan.Pushed, fmt.Sprintf("%s=%q", col, lit.Text()))
				plan.EstRows = 1
				if col != "name" || sel.From.Table == "attribute" {
					d := stats.TableStat(spec.phys).DistinctKeys
					if d > 0 {
						plan.EstRows = total / d
					}
				}
				// The pushed conjunct stays in WHERE: index prefix scans are
				// exact, but re-checking one equality per row is cheap and
				// keeps the residual rewrite trivial.
				break
			}
		}
	}

	prof.markPlanned()
	dicts := map[string]map[int64]string{}
	for _, d := range spec.dicts {
		m, err := p.store.DictNames(d)
		if err != nil {
			return nil, nil, err
		}
		dicts[d] = m
	}
	type pair struct {
		id  int64
		row reldb.Row
	}
	var pairs []pair
	if idxName != "" {
		if err := tab.IndexScan(idxName, idxPrefix, func(id int64, row reldb.Row) bool {
			pairs = append(pairs, pair{id, append(reldb.Row(nil), row...)})
			return true
		}); err != nil {
			return nil, nil, err
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	} else {
		tab.Scan(func(id int64, row reldb.Row) bool {
			pairs = append(pairs, pair{id, append(reldb.Row(nil), row...)})
			return true
		})
	}
	rows := make([]reldb.Row, 0, len(pairs))
	for _, pr := range pairs {
		rows = append(rows, spec.row(p, dicts, pr.row))
	}
	prof.RowsScanned = int64(len(pairs))
	plan.ActualRows = int64(len(rows))
	plan.Materialized = int64(len(rows))
	plan.Residual = sel.Where != nil
	res, err := sqldb.ExecuteSelect(sel, vcols, rows)
	if err != nil {
		return nil, nil, err
	}
	_ = ctx
	return res, plan, nil
}
