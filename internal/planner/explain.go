package planner

import (
	"fmt"
	"strings"

	"perftrack/internal/datastore"
)

// PlanWire is the explain payload every v1 endpoint shares: /v1/sql and
// /v1/query attach exactly this shape when a request sets explain, and
// the ptsql/ptquery CLIs render it through the one Format function.
// Profile is attached only on analyze requests (SQLRequest.Analyze,
// ptsql -analyze) — plain explain output stays byte-stable.
type PlanWire struct {
	Plan       string           `json:"plan"`
	Strategy   string           `json:"strategy"`
	EstRows    int64            `json:"est_rows"`
	ActualRows int64            `json:"actual_rows"`
	Profile    *ExecProfileWire `json:"profile,omitempty"`
}

// Wire renders the plan into its wire shape, without the profile.
func (p *Plan) Wire() *PlanWire {
	return &PlanWire{
		Plan:       p.Text(),
		Strategy:   p.Strategy,
		EstRows:    p.EstRows,
		ActualRows: p.ActualRows,
	}
}

// WireAnalyze renders the plan with its execution profile attached —
// the EXPLAIN ANALYZE form.
func (p *Plan) WireAnalyze() *PlanWire {
	w := p.Wire()
	w.Profile = p.ProfileWire()
	return w
}

// Text renders the plan as indented text, one clause per line.
func (p *Plan) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s strategy=%s est_rows=%d actual_rows=%d",
		p.Table, p.Strategy, p.EstRows, p.ActualRows)
	if len(p.Pushed) > 0 {
		fmt.Fprintf(&b, "\n  pushed: %s", strings.Join(p.Pushed, ", "))
	}
	if p.Residual {
		b.WriteString("\n  residual: remaining WHERE re-checked per row")
	}
	if p.Aggregate {
		b.WriteString("\n  aggregate: pushed below materialization (0 rows built)")
	} else {
		fmt.Fprintf(&b, "\n  materialized: %d rows", p.Materialized)
	}
	if p.Vectorized {
		fmt.Fprintf(&b, "\n  vectorized: segment kernels, %d workers", p.Workers)
	}
	if p.CacheHit {
		b.WriteString("\n  cache: result served from plan cache")
	}
	if len(p.Alternatives) > 0 {
		fmt.Fprintf(&b, "\n  cost: %s", strings.Join(p.Alternatives, " "))
	}
	return b.String()
}

// Format renders a wire plan for CLI -explain output. ptquery and ptsql
// share it so both print plans identically.
func Format(w *PlanWire) string {
	if w == nil {
		return ""
	}
	var b strings.Builder
	for _, line := range strings.Split(w.Plan, "\n") {
		b.WriteString("  " + line + "\n")
	}
	if w.Profile != nil {
		for _, line := range strings.Split(w.Profile.Text(), "\n") {
			b.WriteString(line + "\n")
		}
	}
	fmt.Fprintf(&b, "  estimated %d rows, actual %d (strategy %s)\n",
		w.EstRows, w.ActualRows, w.Strategy)
	return b.String()
}

// PRFilterPlan describes one pr-filter evaluation — optionally
// restricted to named executions — in the shared wire shape, so explain
// on /v1/query matches explain on /v1/sql.
func PRFilterPlan(st *datastore.Store, executions, families []string, actual int) *PlanWire {
	stats := st.TableStatistics()
	total := stats.TableStat("performance_result").Rows
	p := Plan{
		Table:      "performance_result",
		Strategy:   StrategyFullScan,
		EstRows:    total,
		ActualRows: int64(actual),
	}
	if len(families) > 0 {
		p.Strategy = familiesStrategy(families)
		p.EstRows = estimateFamilies(stats, families)
		for _, f := range families {
			p.Pushed = append(p.Pushed, fmt.Sprintf("family=%q", f))
		}
	}
	if len(executions) > 0 {
		if p.Strategy == StrategyFullScan {
			p.Strategy = StrategyIndex // execution_id index lookup
		}
		if d := stats.TableStat("execution").DistinctKeys; d > 0 {
			if est := total * int64(len(executions)) / d; est < p.EstRows {
				p.EstRows = est
			}
		}
		if p.EstRows < 1 {
			p.EstRows = 1
		}
		for _, e := range executions {
			p.Pushed = append(p.Pushed, fmt.Sprintf("execution=%q", e))
		}
	}
	return p.Wire()
}
