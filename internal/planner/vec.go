package planner

// Vectorized segment execution. When the planner picks the zone-map
// strategy, the scan can run over the decoded column vectors of the
// immutable segments instead of row-at-a-time emission: selection
// kernels filter fixed-size windows (vecBatch rows) of each block into
// reusable index buffers, aggregation kernels fold the survivors into
// dense per-group accumulator arrays indexed by packed dictionary
// codes, and independent segments fan out across a bounded worker pool.
// Dictionary-code → name resolution is deferred to final group output.
//
// Kernel contract (DESIGN.md §12): every kernel must be byte-identical
// to the naive row-at-a-time path. COUNT/MIN/MAX and integer sums merge
// exactly under any partitioning. Float sums are accumulated per worker
// over a contiguous run of segments and merged in segment order, so a
// result is deterministic for a given worker count; because float
// addition is non-associative, the grouping of partial sums (not their
// order) can differ from the naive left-to-right fold in final ULPs for
// data whose sums are inexact. The differential and fuzz corpora use
// dyadic values, whose sums are exact, so planned==naive stays
// byte-for-byte. Compaction safety comes for free: a SegView pins an
// immutable segment list, and the B-tree tail above its watermark is
// folded in sequentially afterwards.

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// vecBatch is the window size the kernels process per step: selection
// buffers and group-ordinal buffers are reused at this granularity, so
// scans of arbitrarily large segments run in bounded scratch memory.
const vecBatch = 4096

// maxDenseGroups bounds the packed group-key space (the product of the
// per-key-column dictionary sizes) and the total accumulator entries
// across workers. Larger key spaces fall back to the row-at-a-time
// map-based grouping path.
const maxDenseGroups = 1 << 20

// --- pushed-filter resolution (shared with the row-at-a-time path) ---

// vecDim is one pushed dimension equality resolved to its physical
// column index and dictionary ID.
type vecDim struct {
	col int
	id  int64
}

// resultFilter is the pushed predicate set of one performance_result
// scan, resolved against the store's dictionaries.
type resultFilter struct {
	dims       []vecDim
	nums       []numPred
	famSpecs   []string
	impossible bool // a pushed dimension name is unknown: nothing matches
}

// buildResultFilter resolves the pushed conjuncts of a
// performance_result scan.
func (p *Planner) buildResultFilter(pushed []conjunct) resultFilter {
	var f resultFilter
	for _, c := range pushed {
		switch c.kind {
		case kindDim:
			d := resultDims[c.dimCol]
			id, ok := p.store.LookupDict(d.dict, c.dimVal)
			if !ok {
				f.impossible = true
				continue
			}
			f.dims = append(f.dims, vecDim{d.physCol, id})
		case kindNum:
			f.nums = append(f.nums, c.num)
		case kindFamily:
			f.famSpecs = append(f.famSpecs, c.famSpec)
		}
	}
	return f
}

// pass is the scalar form of the filter, shared by the B-tree tail walk
// and the row-at-a-time access paths.
func (f *resultFilter) pass(id, e, m, t, u int64, v float64) bool {
	for _, d := range f.dims {
		got := e
		switch d.col {
		case 2:
			got = m
		case 3:
			got = t
		case 4:
			got = u
		}
		if got != d.id {
			return false
		}
	}
	for _, np := range f.nums {
		x := v
		if np.col == "id" {
			x = float64(id)
		}
		if !np.ok(x) {
			return false
		}
	}
	return true
}

// --- column vectors and selection kernels ---

// blockVecs holds one performance_result block's decoded column slices.
type blockVecs struct {
	ids            []int64
	es, ms, ts, us []int64
	vs             []float64
}

// resultBlockVecs extracts and validates the column vectors of a block.
// ok is false when the block does not look like performance_result
// (schema drift) or any scanned column carries NULLs; callers fall back
// to the row-at-a-time path then.
func resultBlockVecs(b reldb.ColumnBlock) (blockVecs, bool) {
	v := blockVecs{
		ids: b.RowIDs(),
		es:  b.Int64s(1), ms: b.Int64s(2), ts: b.Int64s(3), us: b.Int64s(4),
		vs: b.Float64s(5),
	}
	n := b.Len()
	if len(v.ids) != n || len(v.es) != n || len(v.ms) != n ||
		len(v.ts) != n || len(v.us) != n || len(v.vs) != n {
		return v, false
	}
	for col := 1; col <= 5; col++ {
		if b.Nulls(col) != nil {
			return v, false
		}
	}
	return v, true
}

// dim returns the vector of one physical dimension column.
func (v *blockVecs) dim(phys int) []int64 {
	switch phys {
	case 1:
		return v.es
	case 2:
		return v.ms
	case 3:
		return v.ts
	case 4:
		return v.us
	}
	return nil
}

// selFn filters one window of a block. fill seeds the selection from
// [start, end); refine compacts an existing selection in place. Both
// keep absolute block row indices.
type selFn struct {
	fill   func(sel []int32, start, end int) []int32
	refine func(sel []int32) []int32
}

// eqI64Kernel selects rows whose int64 column equals want.
func eqI64Kernel(vals []int64, want int64) selFn {
	return selFn{
		fill: func(sel []int32, start, end int) []int32 {
			for i := start; i < end; i++ {
				if vals[i] == want {
					sel = append(sel, int32(i))
				}
			}
			return sel
		},
		refine: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if vals[i] == want {
					out = append(out, i)
				}
			}
			return out
		},
	}
}

// cmpKernel selects rows satisfying one pushed numeric predicate; x
// projects a row index to the compared value (the value column, or the
// row ID widened to float64 exactly as the scalar path does).
func cmpKernel(np numPred, x func(i int32) float64) selFn {
	return selFn{
		fill: func(sel []int32, start, end int) []int32 {
			for i := start; i < end; i++ {
				if np.ok(x(int32(i))) {
					sel = append(sel, int32(i))
				}
			}
			return sel
		},
		refine: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if np.ok(x(i)) {
					out = append(out, i)
				}
			}
			return out
		},
	}
}

// kernels compiles the filter into per-column selection kernels over
// this block's vectors.
func (v *blockVecs) kernels(f *resultFilter) []selFn {
	var ks []selFn
	for _, d := range f.dims {
		ks = append(ks, eqI64Kernel(v.dim(d.col), d.id))
	}
	for _, np := range f.nums {
		if np.col == "id" {
			ids := v.ids
			ks = append(ks, cmpKernel(np, func(i int32) float64 { return float64(ids[i]) }))
		} else {
			vs := v.vs
			ks = append(ks, cmpKernel(np, func(i int32) float64 { return vs[i] }))
		}
	}
	return ks
}

// --- worker pool ---

// vecWorkers picks the fan-out width: the explicit Workers override or
// GOMAXPROCS, never more than one worker per block.
func (p *Planner) vecWorkers(blocks int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partitionBlocks splits blocks (given by row count) into at most w
// contiguous [start, end) ranges of roughly equal total rows.
// Contiguity keeps the worker-merge order equal to segment order.
func partitionBlocks(lens []int, w int) [][2]int {
	if len(lens) == 0 || w <= 1 {
		return [][2]int{{0, len(lens)}}
	}
	var total int64
	for _, n := range lens {
		total += int64(n)
	}
	target := (total + int64(w) - 1) / int64(w)
	var parts [][2]int
	start, acc := 0, int64(0)
	for i, n := range lens {
		acc += int64(n)
		if acc >= target && len(parts) < w-1 {
			parts = append(parts, [2]int{start, i + 1})
			start, acc = i+1, 0
		}
	}
	return append(parts, [2]int{start, len(lens)})
}

// blockLens extracts per-block row counts for the partitioner.
func blockLens(blocks []reldb.ColumnBlock) []int {
	lens := make([]int, len(blocks))
	for i, b := range blocks {
		lens[i] = b.Len()
	}
	return lens
}

// --- vectorized aggregation ---

// vecAggSpec classifies one aggregate call for the kernels.
type vecAggSpec struct {
	fe    *sqldb.FuncExpr
	fn    string // COUNT, SUM, AVG, MIN, MAX
	star  bool
	idArg bool // argument is id (int64); otherwise value (float64)
}

// vecAggSpecs classifies the aggregate calls, or ok=false when any of
// them cannot run on the vectorized path (DISTINCT needs per-group seen
// sets and stays row-at-a-time).
func vecAggSpecs(aggs []*sqldb.FuncExpr) ([]vecAggSpec, bool) {
	specs := make([]vecAggSpec, 0, len(aggs))
	for _, fe := range aggs {
		if fe.Distinct {
			return nil, false
		}
		switch fe.Name {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
		default:
			return nil, false
		}
		sp := vecAggSpec{fe: fe, fn: fe.Name, star: fe.Star}
		if !fe.Star {
			cr, ok := fe.Arg.(*sqldb.ColumnRef)
			if !ok {
				return nil, false
			}
			switch cr.Column {
			case "id":
				sp.idArg = true
			case "value":
			default:
				return nil, false
			}
		}
		specs = append(specs, sp)
	}
	return specs, true
}

// vecAccum is one worker's dense accumulator set, indexed by packed
// group ordinal. rowCount doubles as the COUNT state and the
// group-membership sentinel (0 = unseen); firstOrd records the global
// scan ordinal of the group's first row so output order matches the
// naive first-appearance order.
type vecAccum struct {
	rowCount []int64
	firstOrd []int64
	aggs     []vecAggAcc
}

// vecAggAcc holds only the arrays one aggregate actually needs.
type vecAggAcc struct {
	sumF       []float64
	sumI       []int64
	minF, maxF []float64
	minI, maxI []int64
}

func newVecAccum(n int, specs []vecAggSpec) *vecAccum {
	a := &vecAccum{
		rowCount: make([]int64, n),
		firstOrd: make([]int64, n),
		aggs:     make([]vecAggAcc, len(specs)),
	}
	for i, sp := range specs {
		if sp.star {
			continue // rowCount is the whole state
		}
		acc := &a.aggs[i]
		switch sp.fn {
		case "SUM":
			if sp.idArg {
				acc.sumI = make([]int64, n)
			} else {
				acc.sumF = make([]float64, n)
			}
		case "AVG":
			acc.sumF = make([]float64, n) // ints fold in as float64, like aggState
		case "MIN", "MAX":
			if sp.idArg {
				acc.minI = make([]int64, n)
				acc.maxI = make([]int64, n)
				for g := range acc.minI {
					acc.minI[g] = math.MaxInt64
					acc.maxI[g] = math.MinInt64
				}
			} else {
				acc.minF = make([]float64, n)
				acc.maxF = make([]float64, n)
				for g := range acc.minF {
					acc.minF[g] = math.Inf(1)
					acc.maxF[g] = math.Inf(-1)
				}
			}
		}
	}
	return a
}

// addRow folds one scalar row (the B-tree tail path) into the
// accumulators.
func (acc *vecAccum) addRow(g int32, ord, id int64, v float64, specs []vecAggSpec) {
	if acc.rowCount[g] == 0 {
		acc.firstOrd[g] = ord
	}
	acc.rowCount[g]++
	for ai := range specs {
		a := &acc.aggs[ai]
		if a.sumF != nil {
			if specs[ai].idArg {
				a.sumF[g] += float64(id)
			} else {
				a.sumF[g] += v
			}
		}
		if a.sumI != nil {
			a.sumI[g] += id
		}
		if a.minF != nil {
			if v < a.minF[g] {
				a.minF[g] = v
			}
			if v > a.maxF[g] {
				a.maxF[g] = v
			}
		}
		if a.minI != nil {
			if id < a.minI[g] {
				a.minI[g] = id
			}
			if id > a.maxI[g] {
				a.maxI[g] = id
			}
		}
	}
}

// merge folds src (a later contiguous run of segments) into dst. Sums
// add in merge order; extrema keep the earlier-seen value on ties,
// matching the naive first-seen rule.
func (dst *vecAccum) merge(src *vecAccum, specs []vecAggSpec) {
	for g := range dst.rowCount {
		if src.rowCount[g] == 0 {
			continue
		}
		first := dst.rowCount[g] == 0
		if first {
			dst.firstOrd[g] = src.firstOrd[g]
		}
		dst.rowCount[g] += src.rowCount[g]
		for ai := range specs {
			da, sa := &dst.aggs[ai], &src.aggs[ai]
			if da.sumF != nil {
				da.sumF[g] += sa.sumF[g]
			}
			if da.sumI != nil {
				da.sumI[g] += sa.sumI[g]
			}
			if da.minF != nil {
				if first || sa.minF[g] < da.minF[g] {
					da.minF[g] = sa.minF[g]
				}
				if first || sa.maxF[g] > da.maxF[g] {
					da.maxF[g] = sa.maxF[g]
				}
			}
			if da.minI != nil {
				if first || sa.minI[g] < da.minI[g] {
					da.minI[g] = sa.minI[g]
				}
				if first || sa.maxI[g] > da.maxI[g] {
					da.maxI[g] = sa.maxI[g]
				}
			}
		}
	}
}

// finish reconstructs one aggregate's finished accumulator for group g
// from the merged parts, reproducing aggState's observable results
// exactly (see NewFinishedAggregator).
func (sp *vecAggSpec) finish(acc *vecAccum, ai int, g int32) *sqldb.Aggregator {
	a := &acc.aggs[ai]
	count := acc.rowCount[g]
	var sum float64
	var sumInt int64
	if a.sumF != nil {
		sum = a.sumF[g]
	}
	if a.sumI != nil {
		sumInt = a.sumI[g]
	}
	allInt := sp.star || sp.idArg || count == 0
	min, max := reldb.Null(), reldb.Null()
	if count > 0 && !sp.star {
		if a.minF != nil {
			min, max = reldb.Float(a.minF[g]), reldb.Float(a.maxF[g])
		}
		if a.minI != nil {
			min, max = reldb.Int(a.minI[g]), reldb.Int(a.maxI[g])
		}
	}
	return sqldb.NewFinishedAggregator(sp.fe, count, sum, sumInt, allInt, min, max)
}

// vecWorker is one scan worker's reusable scratch state.
type vecWorker struct {
	acc  *vecAccum
	sel  []int32
	gbuf []int32
}

// scanBlock streams one block through the selection and aggregation
// kernels, window by window. base is the block's global scan ordinal.
func (w *vecWorker) scanBlock(b reldb.ColumnBlock, base int64, f *resultFilter,
	keyCols []int, mult []int64, specs []vecAggSpec) {
	bv, _ := resultBlockVecs(b) // pre-validated by the caller
	ks := bv.kernels(f)
	keys := make([][]int64, len(keyCols))
	for ki, phys := range keyCols {
		keys[ki] = bv.dim(phys)
	}
	n := b.Len()
	for start := 0; start < n; start += vecBatch {
		end := start + vecBatch
		if end > n {
			end = n
		}
		var sel []int32
		if len(ks) > 0 {
			sel = ks[0].fill(w.sel[:0], start, end)
			for _, k := range ks[1:] {
				sel = k.refine(sel)
			}
			w.sel = sel
			if len(sel) == 0 {
				continue
			}
		}
		w.window(&bv, base, start, end, sel, keys, mult, specs)
	}
}

// window folds one selected window into the accumulators. sel==nil
// means every row in [start, end).
func (w *vecWorker) window(bv *blockVecs, base int64, start, end int, sel []int32,
	keys [][]int64, mult []int64, specs []vecAggSpec) {
	acc := w.acc
	m := end - start
	if sel != nil {
		m = len(sel)
	}

	// Packed group ordinal per selected row.
	g := w.gbuf[:0]
	if len(keys) == 0 {
		for j := 0; j < m; j++ {
			g = append(g, 0)
		}
	} else {
		k0 := keys[0]
		if sel != nil {
			for _, i := range sel {
				g = append(g, int32(k0[i]))
			}
		} else {
			for i := start; i < end; i++ {
				g = append(g, int32(k0[i]))
			}
		}
		for ki := 1; ki < len(keys); ki++ {
			kk, mu := keys[ki], int32(mult[ki])
			if sel != nil {
				for j, i := range sel {
					g[j] += int32(kk[i]) * mu
				}
			} else {
				for j, i := 0, start; i < end; j, i = j+1, i+1 {
					g[j] += int32(kk[i]) * mu
				}
			}
		}
	}
	w.gbuf = g

	// Membership and first appearance.
	if sel != nil {
		for j, i := range sel {
			gg := g[j]
			if acc.rowCount[gg] == 0 {
				acc.firstOrd[gg] = base + int64(i)
			}
			acc.rowCount[gg]++
		}
	} else {
		for j := 0; j < m; j++ {
			gg := g[j]
			if acc.rowCount[gg] == 0 {
				acc.firstOrd[gg] = base + int64(start+j)
			}
			acc.rowCount[gg]++
		}
	}

	// Aggregation kernels: one tight pass per aggregate.
	for ai := range specs {
		a := &acc.aggs[ai]
		if a.sumF != nil {
			if specs[ai].idArg {
				ids := bv.ids
				if sel != nil {
					for j, i := range sel {
						a.sumF[g[j]] += float64(ids[i])
					}
				} else {
					for j, i := 0, start; i < end; j, i = j+1, i+1 {
						a.sumF[g[j]] += float64(ids[i])
					}
				}
			} else {
				vs := bv.vs
				if sel != nil {
					for j, i := range sel {
						a.sumF[g[j]] += vs[i]
					}
				} else {
					for j, i := 0, start; i < end; j, i = j+1, i+1 {
						a.sumF[g[j]] += vs[i]
					}
				}
			}
		}
		if a.sumI != nil {
			ids := bv.ids
			if sel != nil {
				for j, i := range sel {
					a.sumI[g[j]] += ids[i]
				}
			} else {
				for j, i := 0, start; i < end; j, i = j+1, i+1 {
					a.sumI[g[j]] += ids[i]
				}
			}
		}
		if a.minF != nil {
			vs := bv.vs
			if sel != nil {
				for j, i := range sel {
					gg, v := g[j], vs[i]
					if v < a.minF[gg] {
						a.minF[gg] = v
					}
					if v > a.maxF[gg] {
						a.maxF[gg] = v
					}
				}
			} else {
				for j, i := 0, start; i < end; j, i = j+1, i+1 {
					gg, v := g[j], vs[i]
					if v < a.minF[gg] {
						a.minF[gg] = v
					}
					if v > a.maxF[gg] {
						a.maxF[gg] = v
					}
				}
			}
		}
		if a.minI != nil {
			ids := bv.ids
			if sel != nil {
				for j, i := range sel {
					gg, id := g[j], ids[i]
					if id < a.minI[gg] {
						a.minI[gg] = id
					}
					if id > a.maxI[gg] {
						a.maxI[gg] = id
					}
				}
			} else {
				for j, i := 0, start; i < end; j, i = j+1, i+1 {
					gg, id := g[j], ids[i]
					if id < a.minI[gg] {
						a.minI[gg] = id
					}
					if id > a.maxI[gg] {
						a.maxI[gg] = id
					}
				}
			}
		}
	}
}

// vecTailRow is one buffered B-tree tail survivor.
type vecTailRow struct {
	id, e, m, t, u int64
	v              float64
}

func (tr *vecTailRow) dim(phys int) int64 {
	switch phys {
	case 1:
		return tr.e
	case 2:
		return tr.m
	case 3:
		return tr.t
	case 4:
		return tr.u
	}
	return 0
}

// execAggregateVec runs a pushed aggregation through the vectorized
// segment path. done=false means the query cannot run here (wrong
// strategy, DISTINCT aggregates, families, nulls, oversized key space,
// vanished view) and the caller must fall back to the row-at-a-time
// path; results are byte-identical either way.
func (p *Planner) execAggregateVec(sel *sqldb.SelectStmt, access resultAccess,
	pushed []conjunct, aggs []*sqldb.FuncExpr, groupCols []string, plan *Plan) (*sqldb.Result, bool, error) {
	if p.NoVector || access.strategy != StrategyZoneMap {
		return nil, false, nil
	}
	specs, ok := vecAggSpecs(aggs)
	if !ok {
		return nil, false, nil
	}
	f := p.buildResultFilter(pushed)
	if len(f.famSpecs) > 0 {
		return nil, false, nil
	}
	v, ok := p.store.ResultSegmentView()
	if !ok {
		return nil, false, nil
	}
	tab, ok := p.store.Table("performance_result")
	if !ok {
		return nil, false, nil
	}
	keyCols := make([]int, len(groupCols))
	for i, col := range groupCols {
		keyCols[i] = resultDims[col].physCol
	}

	lo, hi := idBounds(f.nums)
	live := !f.impossible && lo <= hi
	var blocks []reldb.ColumnBlock
	var prunedN int
	var scanBytes int64
	var scanned int
	if live {
		blocks, prunedN, scanBytes = v.BlocksPKRange(lo, hi)
		for _, b := range blocks {
			if _, ok := resultBlockVecs(b); !ok {
				return nil, false, nil
			}
			scanned += b.Len()
		}
	}

	// Buffer the B-tree tail (rows above the flushed watermark) first,
	// so the dense key space covers dictionary IDs the segments have not
	// seen yet.
	var tail []vecTailRow
	var tailVisited int64
	if live {
		tlo := v.TailRowID() + 1
		if lo > tlo {
			tlo = lo
		}
		tab.PKRange([]reldb.Value{reldb.Int(tlo)}, nil, func(id int64, row reldb.Row) bool {
			tailVisited++
			e, m, t, u := row[1].Int64(), row[2].Int64(), row[3].Int64(), row[4].Int64()
			vv := row[5].Float64()
			if f.pass(id, e, m, t, u, vv) {
				tail = append(tail, vecTailRow{id, e, m, t, u, vv})
			}
			return true
		})
	}

	// Dense key space: each key column sized by the maximum dictionary
	// ID any surviving block's zone map or tail row carries.
	caps := make([]int64, len(keyCols))
	mult := make([]int64, len(keyCols))
	dense := int64(1)
	for ki, phys := range keyCols {
		var maxID int64
		for _, b := range blocks {
			mn, mx, ok := b.ZoneInt64(phys)
			if !ok || mn < 0 {
				return nil, false, nil
			}
			if mx > maxID {
				maxID = mx
			}
		}
		for i := range tail {
			d := tail[i].dim(phys)
			if d < 0 {
				return nil, false, nil
			}
			if d > maxID {
				maxID = d
			}
		}
		caps[ki] = maxID + 1
		mult[ki] = dense
		if dense > maxDenseGroups/caps[ki] {
			return nil, false, nil
		}
		dense *= caps[ki]
	}

	// Fan out contiguous segment runs across the worker pool, keeping
	// the total accumulator footprint bounded.
	w := p.vecWorkers(len(blocks))
	for w > 1 && dense*int64(w) > maxDenseGroups {
		w--
	}
	lens := blockLens(blocks)
	parts := partitionBlocks(lens, w)
	bases := make([]int64, len(blocks))
	var total int64
	for i, b := range blocks {
		bases[i] = total
		total += int64(b.Len())
	}
	prof := plan.Profile
	if prof == nil {
		prof = &ExecProfile{}
	}
	prof.RowsScanned += int64(scanned) + tailVisited
	prof.SegmentRows += int64(scanned)
	prof.TailRows += tailVisited
	prof.BlocksScanned += len(blocks)
	prof.BlocksPruned += prunedN
	prof.WorkerRows = partRows(lens, parts)
	kernelStart := time.Now()
	accs := make([]*vecAccum, len(parts))
	var wg sync.WaitGroup
	for pi, pr := range parts {
		accs[pi] = newVecAccum(int(dense), specs)
		wk := &vecWorker{acc: accs[pi], sel: make([]int32, 0, vecBatch), gbuf: make([]int32, 0, vecBatch)}
		run := func(pr [2]int, wk *vecWorker) {
			for bi := pr[0]; bi < pr[1]; bi++ {
				wk.scanBlock(blocks[bi], bases[bi], &f, keyCols, mult, specs)
			}
		}
		if len(parts) == 1 {
			run(pr, wk)
			continue
		}
		wg.Add(1)
		go func(pr [2]int, wk *vecWorker) {
			defer wg.Done()
			run(pr, wk)
		}(pr, wk)
	}
	wg.Wait()
	prof.KernelNanos += time.Since(kernelStart).Nanoseconds()
	mergeStart := time.Now()
	acc := accs[0]
	for _, src := range accs[1:] {
		acc.merge(src, specs)
	}

	// Sequential tail fold above the segment watermark.
	for si := range tail {
		tr := &tail[si]
		g := int32(0)
		for ki := range keyCols {
			g += int32(tr.dim(keyCols[ki])) * int32(mult[ki])
		}
		acc.addRow(g, total+int64(si), tr.id, tr.v, specs)
	}
	if live {
		p.store.NoteSegmentScan(scanned, prunedN, scanBytes)
	}

	plan.Aggregate = true
	plan.Vectorized = true
	plan.Workers = len(parts)

	// Groups in global first-appearance order; dictionary codes resolve
	// to names only here.
	type groupOut struct {
		g   int32
		ord int64
	}
	var gs []groupOut
	var actual int64
	for g, rc := range acc.rowCount {
		if rc > 0 {
			gs = append(gs, groupOut{int32(g), acc.firstOrd[g]})
			actual += rc
		}
	}
	sort.Slice(gs, func(a, b int) bool { return gs[a].ord < gs[b].ord })
	plan.ActualRows = actual

	vcols := virtualColumns["performance_result"]
	colIdx := map[string]int{}
	for i, c := range vcols {
		colIdx[c] = i
	}
	dicts := map[string]map[int64]string{}
	for _, col := range groupCols {
		d, err := p.store.DictNames(resultDims[col].dict)
		if err != nil {
			return nil, true, err
		}
		dicts[col] = d
	}
	pgs := make([]sqldb.PlannedGroup, 0, len(gs))
	for _, out := range gs {
		repr := make(reldb.Row, len(vcols))
		for i := range repr {
			repr[i] = reldb.Null()
		}
		rem := int64(out.g)
		for ki, col := range groupCols {
			code := rem % caps[ki]
			rem /= caps[ki]
			repr[colIdx[col]] = reldb.Str(dicts[col][code])
		}
		ga := make([]*sqldb.Aggregator, len(specs))
		for ai := range specs {
			ga[ai] = specs[ai].finish(acc, ai, out.g)
		}
		pgs = append(pgs, sqldb.PlannedGroup{Repr: repr, Aggs: ga})
	}
	prof.MergeNanos += time.Since(mergeStart).Nanoseconds()
	res, err := sqldb.FinishGrouped(sel, vcols, pgs)
	return res, true, err
}

// partRows sums per-block row counts into per-worker-part totals — the
// utilization numbers analyze output reports.
func partRows(lens []int, parts [][2]int) []int64 {
	out := make([]int64, len(parts))
	for pi, pr := range parts {
		for bi := pr[0]; bi < pr[1]; bi++ {
			out[pi] += int64(lens[bi])
		}
	}
	return out
}

// --- vectorized row scan ---

// scanResultsVec drives a zone-map row scan through the vectorized
// kernels: workers filter contiguous segment runs into compact tuple
// buffers in parallel, then the survivors are emitted sequentially in
// segment order (= ascending row-ID order) followed by the B-tree tail,
// so downstream materialization sees exactly the stream the
// row-at-a-time path produces. done=false falls back.
func (p *Planner) scanResultsVec(access resultAccess, pushed []conjunct, prof *ExecProfile, emit rowEmit) (int, bool) {
	if p.NoVector || access.strategy != StrategyZoneMap {
		return 0, false
	}
	if prof == nil {
		prof = &ExecProfile{}
	}
	f := p.buildResultFilter(pushed)
	if len(f.famSpecs) > 0 {
		return 0, false
	}
	v, ok := p.store.ResultSegmentView()
	if !ok {
		return 0, false
	}
	tab, ok := p.store.Table("performance_result")
	if !ok {
		return 0, false
	}
	if f.impossible {
		return 1, true
	}
	lo, hi := idBounds(f.nums)
	if lo > hi {
		return 1, true
	}
	blocks, prunedN, scanBytes := v.BlocksPKRange(lo, hi)
	var scanned int
	for _, b := range blocks {
		if _, ok := resultBlockVecs(b); !ok {
			return 0, false
		}
		scanned += b.Len()
	}

	lens := blockLens(blocks)
	parts := partitionBlocks(lens, p.vecWorkers(len(blocks)))
	prof.SegmentRows += int64(scanned)
	prof.BlocksScanned += len(blocks)
	prof.BlocksPruned += prunedN
	prof.WorkerRows = partRows(lens, parts)
	kernelStart := time.Now()
	outs := make([][]vecTailRow, len(parts))
	var wg sync.WaitGroup
	for pi, pr := range parts {
		collect := func(pi int, pr [2]int) {
			var out []vecTailRow
			sel := make([]int32, 0, vecBatch)
			for bi := pr[0]; bi < pr[1]; bi++ {
				b := blocks[bi]
				bv, _ := resultBlockVecs(b)
				ks := bv.kernels(&f)
				n := b.Len()
				for start := 0; start < n; start += vecBatch {
					end := start + vecBatch
					if end > n {
						end = n
					}
					if len(ks) == 0 {
						for i := start; i < end; i++ {
							out = append(out, vecTailRow{bv.ids[i], bv.es[i], bv.ms[i], bv.ts[i], bv.us[i], bv.vs[i]})
						}
						continue
					}
					s := ks[0].fill(sel[:0], start, end)
					for _, k := range ks[1:] {
						s = k.refine(s)
					}
					sel = s
					for _, i := range s {
						out = append(out, vecTailRow{bv.ids[i], bv.es[i], bv.ms[i], bv.ts[i], bv.us[i], bv.vs[i]})
					}
				}
			}
			outs[pi] = out
		}
		if len(parts) == 1 {
			collect(pi, pr)
			continue
		}
		wg.Add(1)
		go func(pi int, pr [2]int) {
			defer wg.Done()
			collect(pi, pr)
		}(pi, pr)
	}
	wg.Wait()
	prof.KernelNanos += time.Since(kernelStart).Nanoseconds()
	mergeStart := time.Now()
	for _, out := range outs {
		for i := range out {
			r := &out[i]
			emit(r.id, r.e, r.m, r.t, r.u, r.v)
		}
	}
	prof.MergeNanos += time.Since(mergeStart).Nanoseconds()
	p.store.NoteSegmentScan(scanned, prunedN, scanBytes)
	prof.RowsScanned += int64(scanned)

	tlo := v.TailRowID() + 1
	if lo > tlo {
		tlo = lo
	}
	tab.PKRange([]reldb.Value{reldb.Int(tlo)}, nil, func(id int64, row reldb.Row) bool {
		prof.RowsScanned++
		prof.TailRows++
		e, m, t, u := row[1].Int64(), row[2].Int64(), row[3].Int64(), row[4].Int64()
		vv := row[5].Float64()
		if f.pass(id, e, m, t, u, vv) {
			emit(id, e, m, t, u, vv)
		}
		return true
	})
	return len(parts), true
}
