package planner

import (
	"context"
	"testing"

	"perftrack/internal/reldb"
)

// FuzzSQLPlanner feeds arbitrary SQL through parse → plan → execute and
// holds two invariants: the planner never panics, and whenever a query
// runs at all, the cost-based execution returns exactly what the naive
// (no pushdown, full-scan) execution returns.
func FuzzSQLPlanner(f *testing.F) {
	st := seedStore(f, reldb.NewMem(), 64)
	planned := New(st)
	naive := New(st)
	naive.Naive = true
	for _, q := range differentialQueries {
		f.Add(q)
	}
	f.Add("SELECT count(*) FROM performance_result WHERE family = 'attr=clock<=3'")
	f.Add("SELECT tool, units, sum(id) FROM performance_result GROUP BY tool, units")
	f.Fuzz(func(t *testing.T, q string) {
		pres, _, perr := planned.Query(context.Background(), q)
		nres, _, nerr := naive.Query(context.Background(), q)
		if (perr != nil) != (nerr != nil) {
			t.Fatalf("%q: planned err = %v, naive err = %v", q, perr, nerr)
		}
		if perr != nil {
			return
		}
		if got, want := renderResult(pres), renderResult(nres); got != want {
			t.Fatalf("%q: planned and naive diverge:\n%s\nvs\n%s", q, got, want)
		}
	})
}
