package planner

import (
	"context"
	"testing"

	"perftrack/internal/reldb"
)

// FuzzSQLPlanner feeds arbitrary SQL through parse → plan → execute and
// holds two invariants: the planner never panics, and whenever a query
// runs at all, the cost-based execution returns exactly what the naive
// (no pushdown, full-scan) execution returns. The check runs over two
// stores holding the same corpus: a mem engine (full-scan and index
// paths) and a segment engine with compacted segments plus a B-tree
// tail, where zone-map scans execute through the vectorized kernels —
// so every fuzzed query also differential-tests the vectorized path.
func FuzzSQLPlanner(f *testing.F) {
	st := seedStore(f, reldb.NewMem(), 64)
	planned := New(st)
	naive := New(st)
	naive.Naive = true
	segSt, _ := seedSegmentStore(f, f.TempDir(), 48, 2, 16)
	segPlanned := New(segSt)
	segPlanned.Workers = 2
	segNaive := New(segSt)
	segNaive.Naive = true
	for _, q := range differentialQueries {
		f.Add(q)
	}
	f.Add("SELECT count(*) FROM performance_result WHERE family = 'attr=clock<=3'")
	f.Add("SELECT tool, units, sum(id) FROM performance_result GROUP BY tool, units")
	// Vectorized-path seeds: every kernel (count/sum/min/max/avg over
	// value and id), dictionary group-by shapes, selection kernels, and
	// the id-bounds fast path.
	f.Add("SELECT metric, min(value), max(value), sum(id), avg(id) FROM performance_result GROUP BY metric")
	f.Add("SELECT execution, metric, count(*) FROM performance_result GROUP BY execution, metric ORDER BY execution, metric")
	f.Add("SELECT sum(value) FROM performance_result WHERE value > 4 AND id <= 40")
	f.Add("SELECT id, value FROM performance_result WHERE metric = 'metric-3' AND value >= 2 ORDER BY id")
	f.Add("SELECT units, avg(value) FROM performance_result WHERE execution = 'exec-b' GROUP BY units")
	f.Fuzz(func(t *testing.T, q string) {
		check := func(label string, p, n *Planner) {
			pres, _, perr := p.Query(context.Background(), q)
			nres, _, nerr := n.Query(context.Background(), q)
			if (perr != nil) != (nerr != nil) {
				t.Fatalf("%s %q: planned err = %v, naive err = %v", label, q, perr, nerr)
			}
			if perr != nil {
				return
			}
			if got, want := renderResult(pres), renderResult(nres); got != want {
				t.Fatalf("%s %q: planned and naive diverge:\n%s\nvs\n%s", label, q, got, want)
			}
		}
		check("mem", planned, naive)
		check("segment", segPlanned, segNaive)
	})
}
