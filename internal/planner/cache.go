package planner

// ResultCache is a byte-bounded LRU over finished SELECT results, keyed
// by (query text, store generation). The store bumps its generation on
// every mutation, so a key can never serve stale data: entries written
// under an older generation simply stop matching and age out through
// normal LRU eviction. Hits return the cached *sqldb.Result pointer —
// results are immutable once built — with a copy of the plan marked
// CacheHit.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// DefaultCacheBytes bounds a cache built with size 0.
const DefaultCacheBytes = 32 << 20

// cacheEntryOverhead is the approximate bookkeeping cost charged per
// entry on top of its row bytes, so many tiny results still respect the
// byte bound.
const cacheEntryOverhead = 256

// ResultCache caches planner query results. The zero value is not
// usable; build with NewResultCache.
type ResultCache struct {
	mu      sync.Mutex
	max     int64
	cur     int64
	lru     *list.List // front = most recent; values are *cacheEntry
	entries map[cacheKey]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheKey struct {
	sql string
	gen uint64
}

type cacheEntry struct {
	key   cacheKey
	res   *sqldb.Result
	plan  Plan
	bytes int64
}

// NewResultCache builds a cache bounded to maxBytes of (approximate)
// result payload; maxBytes <= 0 uses DefaultCacheBytes.
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &ResultCache{
		max:     maxBytes,
		lru:     list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// ResultCacheStats is a point-in-time counter snapshot for /v1/stats and
// the metrics bridge.
type ResultCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.cur
	c.mu.Unlock()
	return ResultCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.max,
	}
}

// get returns the cached result for (sql, gen), if any, and a CacheHit
// copy of its plan.
func (c *ResultCache) get(sql string, gen uint64) (*sqldb.Result, *Plan, bool) {
	key := cacheKey{sql, gen}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	c.hits.Add(1)
	plan := e.plan // copy
	plan.CacheHit = true
	return e.res, &plan, true
}

// put stores a finished result under (sql, gen), evicting from the LRU
// tail to stay under the byte bound. Results larger than the whole
// bound are not cached.
func (c *ResultCache) put(sql string, gen uint64, res *sqldb.Result, plan *Plan) {
	bytes := resultBytes(res) + cacheEntryOverhead
	if bytes > c.max {
		return
	}
	key := cacheKey{sql, gen}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok { // racing fill: keep the first
		c.lru.MoveToFront(el)
		return
	}
	for c.cur+bytes > c.max {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		te := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.entries, te.key)
		c.cur -= te.bytes
		c.evictions.Add(1)
	}
	e := &cacheEntry{key: key, res: res, plan: *plan, bytes: bytes}
	c.entries[key] = c.lru.PushFront(e)
	c.cur += bytes
}

// resultBytes approximates a result's resident size: column headers plus
// per-value payloads.
func resultBytes(res *sqldb.Result) int64 {
	var n int64
	for _, c := range res.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range res.Rows {
		n += 24 // slice header
		for _, v := range row {
			n += 24 // value struct
			if v.Kind() == reldb.KindString {
				n += int64(len(v.Text()))
			}
		}
	}
	return n
}
