package planner

import (
	"context"
	"fmt"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// seedSegmentStore seeds a segment-engine store in batches, compacting
// after each, so the view holds batches independent segments plus a
// B-tree tail of extra uncompacted rows.
func seedSegmentStore(t testing.TB, dir string, n, batches, tail int) (*datastore.Store, *reldb.FileEngine) {
	t.Helper()
	eng, err := reldb.Open(reldb.KindSegment, dir)
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	fe := eng.(*reldb.FileEngine)
	st, err := datastore.Open(eng)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	recs := testRecords(n + tail)
	head := len(recs) - (n + tail) // dimension records
	b := st.NewBatch()
	for _, rec := range recs[:head] {
		b.Stage(rec)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatalf("commit dims: %v", err)
	}
	per := n / batches
	for i := 0; i < batches; i++ {
		lo, hi := head+i*per, head+(i+1)*per
		if i == batches-1 {
			hi = head + n
		}
		b := st.NewBatch()
		for _, rec := range recs[lo:hi] {
			b.Stage(rec)
		}
		if _, err := b.Commit(); err != nil {
			t.Fatalf("commit batch %d: %v", i, err)
		}
		if err := fe.CompactSegments(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	if tail > 0 {
		b := st.NewBatch()
		for _, rec := range recs[head+n:] {
			b.Stage(rec)
		}
		if _, err := b.Commit(); err != nil {
			t.Fatalf("commit tail: %v", err)
		}
	}
	return st, fe
}

// TestVectorizedMatchesNaive runs the full differential suite over a
// multi-segment store with a B-tree tail, at several worker counts: the
// vectorized kernels must stay byte-identical to naive execution.
func TestVectorizedMatchesNaive(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 360, 3, 40)
	naive := New(st)
	naive.Naive = true
	for _, workers := range []int{1, 2, 4} {
		planned := New(st)
		planned.Workers = workers
		for _, q := range differentialQueries {
			pres, _, perr := planned.Query(context.Background(), q)
			nres, _, nerr := naive.Query(context.Background(), q)
			if (perr != nil) != (nerr != nil) {
				t.Fatalf("w=%d %s: planned err %v, naive err %v", workers, q, perr, nerr)
			}
			if perr != nil {
				continue
			}
			if got, want := renderResult(pres), renderResult(nres); got != want {
				t.Errorf("w=%d %s:\nplanned: %s\nnaive:   %s", workers, q, got, want)
			}
		}
	}
}

// TestVectorizedAggregate pins that a grouped aggregate over segments
// actually takes the vectorized path and reports its fan-out.
func TestVectorizedAggregate(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 400, 4, 0)
	p := New(st)
	p.Workers = 4
	q := "SELECT metric, count(*), sum(value), min(value), max(value), avg(value) " +
		"FROM performance_result GROUP BY metric ORDER BY metric"
	res, plan, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plan.Strategy != StrategyZoneMap || !plan.Vectorized {
		t.Fatalf("strategy=%q vectorized=%v, want zone-map vectorized (plan: %s)",
			plan.Strategy, plan.Vectorized, plan.Text())
	}
	if plan.Workers < 2 {
		t.Fatalf("workers = %d, want parallel fan-out across segments", plan.Workers)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	naive := New(st)
	naive.Naive = true
	nres, _, err := naive.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if renderResult(res) != renderResult(nres) {
		t.Fatalf("vectorized aggregate diverges:\n%s\nvs\n%s", renderResult(res), renderResult(nres))
	}
}

// TestVectorizedRowScan pins the vectorized row-materialization path:
// filtered row scans over segments run through the kernels and stay
// byte-identical, including the selection kernels.
func TestVectorizedRowScan(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 400, 4, 24)
	p := New(st)
	q := "SELECT id, metric, value FROM performance_result WHERE metric = 'metric-2' AND value >= 8 ORDER BY id"
	res, plan, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plan.Strategy != StrategyZoneMap || !plan.Vectorized {
		t.Fatalf("strategy=%q vectorized=%v, want vectorized zone-map (plan: %s)",
			plan.Strategy, plan.Vectorized, plan.Text())
	}
	naive := New(st)
	naive.Naive = true
	nres, _, err := naive.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if renderResult(res) != renderResult(nres) {
		t.Fatalf("vectorized rows diverge:\n%s\nvs\n%s", renderResult(res), renderResult(nres))
	}
}

// TestVectorizedFallbacks pins the gates: DISTINCT aggregates fall back
// from the pushed-aggregate kernels to vectorized row materialization
// (Aggregate false), family predicates leave the vectorized path
// entirely, and both still match naive.
func TestVectorizedFallbacks(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 200, 2, 0)
	p := New(st)
	naive := New(st)
	naive.Naive = true
	distinctQ := "SELECT metric, count(DISTINCT execution) FROM performance_result GROUP BY metric ORDER BY metric"
	familyQ := "SELECT count(*) FROM performance_result WHERE family = '" + fastAttrFamily + "'"
	for _, q := range []string{distinctQ, familyQ} {
		res, plan, err := p.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if q == distinctQ && plan.Aggregate {
			t.Fatalf("%s: DISTINCT aggregate pushed below materialization (plan: %s)", q, plan.Text())
		}
		if q == familyQ && plan.Vectorized {
			t.Fatalf("%s: family scan vectorized, want set path (plan: %s)", q, plan.Text())
		}
		nres, _, err := naive.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s naive: %v", q, err)
		}
		if renderResult(res) != renderResult(nres) {
			t.Fatalf("%s diverges:\n%s\nvs\n%s", q, renderResult(res), renderResult(nres))
		}
	}
	// NoVector ablation: zone-map scans still correct row-at-a-time.
	p.NoVector = true
	q := "SELECT metric, avg(value) FROM performance_result GROUP BY metric ORDER BY metric"
	res, plan, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("novector: %v", err)
	}
	if plan.Vectorized {
		t.Fatalf("NoVector plan still vectorized (plan: %s)", plan.Text())
	}
	nres, _, err := naive.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("novector naive: %v", err)
	}
	if renderResult(res) != renderResult(nres) {
		t.Fatalf("novector diverges")
	}
}

// TestPartitionBlocks pins the contiguous partitioner invariants:
// every block covered exactly once, in order, by at most w parts.
func TestPartitionBlocks(t *testing.T) {
	for _, lens := range [][]int{
		{}, {10}, {5, 5, 5}, {100, 1, 1, 1}, {1, 1, 1, 100}, {7, 3, 9, 2, 8, 4, 6},
	} {
		for _, w := range []int{1, 2, 3, 7, 12} {
			parts := partitionBlocks(lens, w)
			if len(parts) > w && w >= 1 {
				t.Fatalf("lens=%v w=%d: %d parts", lens, w, len(parts))
			}
			next := 0
			for _, pr := range parts {
				if pr[0] != next || pr[1] < pr[0] {
					t.Fatalf("lens=%v w=%d: non-contiguous parts %v", lens, w, parts)
				}
				next = pr[1]
			}
			if next != len(lens) {
				t.Fatalf("lens=%v w=%d: parts %v do not cover all blocks", lens, w, parts)
			}
		}
	}
}

// TestVectorizedTailOnly pins correctness when every row still lives in
// the B-tree tail above the segment watermark (e.g. right after new
// writes re-enable the view).
func TestVectorizedTailOnly(t *testing.T) {
	st, _ := seedSegmentStore(t, t.TempDir(), 64, 1, 64)
	p := New(st)
	naive := New(st)
	naive.Naive = true
	for _, q := range []string{
		"SELECT execution, count(*), avg(value) FROM performance_result GROUP BY execution",
		fmt.Sprintf("SELECT count(*) FROM performance_result WHERE id > %d", 64),
	} {
		res, _, err := p.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		nres, _, err := naive.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s naive: %v", q, err)
		}
		if renderResult(res) != renderResult(nres) {
			t.Fatalf("%s diverges:\n%s\nvs\n%s", q, renderResult(res), renderResult(nres))
		}
	}
}
