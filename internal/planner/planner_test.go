package planner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// testRecords builds a corpus with two executions, eight processors (one
// carrying a rare attribute value), four metrics, and n results.
func testRecords(n int) []ptdf.Record {
	recs := []ptdf.Record{
		ptdf.ApplicationRec{Name: "app"},
		ptdf.ExecutionRec{Name: "exec-a", App: "app"},
		ptdf.ExecutionRec{Name: "exec-b", App: "app"},
		ptdf.ResourceRec{Name: "/app", Type: "application"},
	}
	for p := 0; p < 8; p++ {
		name := core.ResourceName(fmt.Sprintf("/SG/SM/batch/n0/p%d", p))
		recs = append(recs, ptdf.ResourceRec{Name: name, Type: "grid/machine/partition/node/processor"})
		clock := "slow"
		if p == 0 {
			clock = "fast"
		}
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: name, Attr: "clock", Value: clock, AttrType: "string",
		})
	}
	for i := 0; i < n; i++ {
		exec := "exec-a"
		if i%2 == 1 {
			exec = "exec-b"
		}
		recs = append(recs, ptdf.PerfResultRec{
			Exec: exec,
			Sets: []ptdf.ResourceSet{{
				Names: []core.ResourceName{"/app", core.ResourceName(fmt.Sprintf("/SG/SM/batch/n0/p%d", i%8))},
				Type:  core.FocusPrimary,
			}},
			Tool: "tool", Metric: fmt.Sprintf("metric-%d", i%4),
			Value: float64(i) * 0.5, Units: "seconds",
		})
	}
	return recs
}

func seedStore(t testing.TB, eng reldb.Engine, n int) *datastore.Store {
	t.Helper()
	s, err := datastore.Open(eng)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	b := s.NewBatch()
	for _, rec := range testRecords(n) {
		b.Stage(rec)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return s
}

func renderResult(res *sqldb.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	for _, row := range res.Rows {
		b.WriteString("\n")
		b.WriteString(string(reldb.EncodeKey(nil, row...)))
	}
	return b.String()
}

// fastAttrFamily selects processor p0 — the only one with clock=fast —
// through an attribute predicate.
const fastAttrFamily = "type=grid/machine/partition/node/processor;attr=clock=fast"

var differentialQueries = []string{
	"SELECT id, execution, metric, value FROM performance_result WHERE metric = 'metric-1' AND value > 10 ORDER BY id LIMIT 20",
	"SELECT execution, count(*), avg(value) FROM performance_result GROUP BY execution",
	"SELECT metric, min(value), max(value) FROM performance_result WHERE execution = 'exec-a' GROUP BY metric ORDER BY metric",
	"SELECT count(*) FROM performance_result WHERE family = '" + fastAttrFamily + "'",
	"SELECT avg(value) FROM performance_result WHERE family = '" + fastAttrFamily + "' AND metric = 'metric-0'",
	"SELECT * FROM performance_result WHERE id <= 10",
	"SELECT count(*) FROM performance_result WHERE execution = 'no-such-exec'",
	"SELECT DISTINCT units FROM performance_result",
	"SELECT metric, avg(value) FROM performance_result WHERE value < 100 GROUP BY metric HAVING count(*) > 0 ORDER BY metric",
	"SELECT metric, count(DISTINCT execution) FROM performance_result GROUP BY metric ORDER BY metric",
	"SELECT value + 1 FROM performance_result WHERE 40 <= id AND id < 44",
	"SELECT name, application FROM execution ORDER BY name",
	"SELECT name, type FROM resource WHERE base_name = 'p1'",
	"SELECT name, execution FROM resource WHERE name = '/app'",
	"SELECT resource, name, value FROM attribute WHERE name = 'clock' ORDER BY resource",
	// Raw-executor fallbacks: physical columns and tables.
	"SELECT count(*) FROM metric",
	"SELECT execution_id, count(*) FROM performance_result GROUP BY execution_id ORDER BY execution_id",
}

// TestPlannedMatchesNaive is the differential oracle: every query must
// produce byte-identical results with the cost-based machinery on and
// off.
func TestPlannedMatchesNaive(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 400)
	planned := New(st)
	naive := New(st)
	naive.Naive = true
	for _, q := range differentialQueries {
		pres, _, perr := planned.Query(context.Background(), q)
		nres, _, nerr := naive.Query(context.Background(), q)
		if (perr != nil) != (nerr != nil) {
			t.Fatalf("%s: planned err %v, naive err %v", q, perr, nerr)
		}
		if perr != nil {
			continue
		}
		if got, want := renderResult(pres), renderResult(nres); got != want {
			t.Errorf("%s:\nplanned: %s\nnaive:   %s", q, got, want)
		}
	}
}

// TestAttrIndexStrategy checks the acceptance criterion: a selective
// attribute predicate routes through the attribute-index path.
func TestAttrIndexStrategy(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 400)
	p := New(st)
	res, plan, err := p.Query(context.Background(),
		"SELECT count(*) FROM performance_result WHERE family = '"+fastAttrFamily+"'")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plan.Strategy != StrategyAttrIndex {
		t.Fatalf("strategy = %q, want %q (plan: %s)", plan.Strategy, StrategyAttrIndex, plan.Text())
	}
	// p0 owns every 8th result.
	if got := res.Rows[0][0].Int64(); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
	if plan.ActualRows != 50 {
		t.Fatalf("actual_rows = %d, want 50", plan.ActualRows)
	}
	if plan.EstRows < 1 || plan.EstRows >= 400 {
		t.Fatalf("est_rows = %d, want selective estimate in [1, 400)", plan.EstRows)
	}
}

// TestAggregatePushdown checks that grouped aggregation over dimension
// keys runs without materializing result rows.
func TestAggregatePushdown(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 400)
	p := New(st)
	res, plan, err := p.Query(context.Background(),
		"SELECT metric, avg(value) FROM performance_result GROUP BY metric ORDER BY metric")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !plan.Aggregate || plan.Materialized != 0 {
		t.Fatalf("aggregate=%v materialized=%d, want pushed aggregation with 0 rows built (plan: %s)",
			plan.Aggregate, plan.Materialized, plan.Text())
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}

	// A selective dimension equality should drive the index path.
	_, plan, err = p.Query(context.Background(),
		"SELECT avg(value) FROM performance_result WHERE metric = 'metric-2' GROUP BY metric")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plan.Strategy != StrategyIndex {
		t.Fatalf("strategy = %q, want %q (plan: %s)", plan.Strategy, StrategyIndex, plan.Text())
	}
	if plan.ActualRows != 100 {
		t.Fatalf("actual_rows = %d, want 100", plan.ActualRows)
	}
}

// TestZoneMapStrategy checks that on a segment engine with flushed
// columnar segments, unselective scans choose zone-map pruning and still
// match naive results.
func TestZoneMapStrategy(t *testing.T) {
	eng, err := reldb.Open(reldb.KindSegment, t.TempDir())
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	st := seedStore(t, eng, 400)
	if err := eng.(*reldb.FileEngine).CompactSegments(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	p := New(st)
	q := "SELECT metric, sum(value) FROM performance_result WHERE value >= 0 GROUP BY metric ORDER BY metric"
	res, plan, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if plan.Strategy != StrategyZoneMap {
		t.Fatalf("strategy = %q, want %q (plan: %s)", plan.Strategy, StrategyZoneMap, plan.Text())
	}
	naive := New(st)
	naive.Naive = true
	nres, _, err := naive.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if renderResult(res) != renderResult(nres) {
		t.Fatalf("zone-map result diverges from naive:\n%s\nvs\n%s", renderResult(res), renderResult(nres))
	}
	tel := st.Telemetry()
	if tel.SegmentScans == 0 {
		t.Fatalf("segment scan not recorded in telemetry")
	}
}

// TestPlannerErrors checks error mapping: parse errors and pseudo-column
// misuse surface as bad-spec errors.
func TestPlannerErrors(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 16)
	p := New(st)
	for _, q := range []string{
		"SELEC nope",
		"SELECT family FROM performance_result",
		"SELECT * FROM performance_result WHERE family = 'type=' OR metric = 'm'",
		"CREATE TABLE x (id INTEGER PRIMARY KEY)",
	} {
		if _, _, err := p.Query(context.Background(), q); !errors.Is(err, datastore.ErrBadSpec) {
			t.Errorf("%s: err = %v, want ErrBadSpec", q, err)
		}
	}
}

// TestLargeAggregateNeverMaterializes is the 100k-row acceptance check:
// SELECT avg(value) ... GROUP BY metric over a 100k-row store builds no
// result rows and reads none through the materializer.
func TestLargeAggregateNeverMaterializes(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row corpus; skipped in -short")
	}
	st := seedStore(t, reldb.NewMem(), 100_000)
	before := st.Telemetry().ResultsRead
	p := New(st)
	res, plan, err := p.Query(context.Background(),
		"SELECT metric, avg(value) FROM performance_result GROUP BY metric ORDER BY metric")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !plan.Aggregate || plan.Materialized != 0 {
		t.Fatalf("materialized %d rows (aggregate=%v), want 0 (plan: %s)",
			plan.Materialized, plan.Aggregate, plan.Text())
	}
	if plan.ActualRows != 100_000 {
		t.Fatalf("actual_rows = %d, want 100000", plan.ActualRows)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	if after := st.Telemetry().ResultsRead; after != before {
		t.Fatalf("materializer read %d results during pushed aggregation", after-before)
	}

	// The selective attribute predicate on the same store picks the
	// attribute-index path.
	_, plan, err = p.Query(context.Background(),
		"SELECT avg(value) FROM performance_result WHERE family = '"+fastAttrFamily+"'")
	if err != nil {
		t.Fatalf("attr query: %v", err)
	}
	if plan.Strategy != StrategyAttrIndex {
		t.Fatalf("strategy = %q, want %q (plan: %s)", plan.Strategy, StrategyAttrIndex, plan.Text())
	}
}
