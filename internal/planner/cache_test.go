package planner

import (
	"context"
	"fmt"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// TestResultCacheHitAndInvalidation pins the cache contract: a repeated
// query returns byte-identical rows from cache, and every store
// generation bump invalidates all entries.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 200)
	p := New(st)
	p.Cache = NewResultCache(0)
	q := "SELECT metric, count(*), avg(value) FROM performance_result GROUP BY metric ORDER BY metric"

	res1, plan1, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if plan1.CacheHit {
		t.Fatalf("first execution reported a cache hit")
	}
	res2, plan2, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query 2: %v", err)
	}
	if !plan2.CacheHit {
		t.Fatalf("repeat execution missed the cache (plan: %s)", plan2.Text())
	}
	if renderResult(res1) != renderResult(res2) {
		t.Fatalf("cache hit returned different bytes:\n%s\nvs\n%s", renderResult(res1), renderResult(res2))
	}
	if s := p.Cache.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}

	// Any mutation bumps the generation: the same text must re-execute
	// and observe the new rows.
	genBefore := st.Generation()
	b := st.NewBatch()
	b.Stage(ptdf.PerfResultRec{
		Exec: "exec-a",
		Sets: []ptdf.ResourceSet{{Names: []core.ResourceName{"/app"}, Type: core.FocusPrimary}},
		Tool: "tool", Metric: "metric-0", Value: 1e6, Units: "seconds",
	})
	if _, err := b.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if st.Generation() == genBefore {
		t.Fatalf("commit did not bump the generation")
	}
	res3, plan3, err := p.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query 3: %v", err)
	}
	if plan3.CacheHit {
		t.Fatalf("post-mutation query served from cache (plan: %s)", plan3.Text())
	}
	if renderResult(res3) == renderResult(res1) {
		t.Fatalf("post-mutation result identical to pre-mutation result; invalidation failed")
	}
	// Naive mode must bypass the cache entirely.
	naive := New(st)
	naive.Naive = true
	naive.Cache = p.Cache
	nres, _, err := naive.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if renderResult(nres) != renderResult(res3) {
		t.Fatalf("cached result diverges from naive after invalidation")
	}
}

// TestResultCacheEviction pins the byte bound: a cache too small for the
// working set evicts from the LRU tail and never exceeds its budget.
func TestResultCacheEviction(t *testing.T) {
	st := seedStore(t, reldb.NewMem(), 400)
	p := New(st)
	p.Cache = NewResultCache(16 << 10)
	for i := 0; i < 16; i++ {
		q := fmt.Sprintf("SELECT id, metric, value FROM performance_result WHERE id <= %d ORDER BY id", 40+i)
		if _, _, err := p.Query(context.Background(), q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	s := p.Cache.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a 16KiB bound: %+v", s)
	}
	if s.Bytes > s.MaxBytes {
		t.Fatalf("cache over budget: %+v", s)
	}
	// Oversized results are passed through uncached.
	tiny := NewResultCache(64)
	p.Cache = tiny
	q := "SELECT id, metric, value FROM performance_result ORDER BY id"
	if _, _, err := p.Query(context.Background(), q); err != nil {
		t.Fatalf("oversized query: %v", err)
	}
	if s := tiny.Stats(); s.Entries != 0 {
		t.Fatalf("oversized result cached: %+v", s)
	}
}
