package planner

// EXPLAIN ANALYZE-grade execution profiles. Every planner execution
// carries an ExecProfile recording what the chosen access path actually
// did — rows visited, segment blocks scanned vs. zone-map-pruned,
// B-tree tail rows, kernel vs. merge wall time, per-worker row loads —
// alongside the coarse plan/exec timing split. Collection is a handful
// of counter increments and ~6 time.Now calls per query, so it is
// always on (the A/B overhead bound in EXPERIMENTS.md holds it under
// noise); the profile only reaches the wire when a caller asks for it
// (SQLRequest.Analyze, ptsql -analyze) or through the server's
// slow-query ring.

import (
	"fmt"
	"strings"
	"time"
)

// ExecProfile records the per-operator actuals of one query execution.
// It is written only by the sequential coordinator of the execution
// (workers report through precomputed partition sizes and wall-clock
// windows), so no field needs atomics. A cache hit returns the profile
// of the execution that populated the entry.
type ExecProfile struct {
	start time.Time

	PlanNanos int64 // WHERE analysis, statistics, access-path choice
	ExecNanos int64 // scan, aggregation, materialization, projection

	RowsScanned  int64 // rows the access path visited (pre-residual)
	RowsReturned int64 // rows in the finished result set

	SegmentRows   int64 // rows decoded from columnar segment blocks
	TailRows      int64 // rows visited in the B-tree tail above the watermark
	BlocksScanned int   // segment blocks visited
	BlocksPruned  int   // segment blocks skipped by zone maps

	KernelNanos int64   // wall time of the (parallel) block-kernel fan-out
	MergeNanos  int64   // accumulator merge + ordered emission
	WorkerRows  []int64 // segment rows assigned per worker part
}

// newExecProfile starts the clock for one execution.
func newExecProfile() *ExecProfile { return &ExecProfile{start: time.Now()} }

// markPlanned closes the planning window: everything before this call
// counts as PlanNanos, everything after as ExecNanos.
func (ep *ExecProfile) markPlanned() {
	if ep == nil {
		return
	}
	ep.PlanNanos = time.Since(ep.start).Nanoseconds()
}

// finish closes the execution window and records the result cardinality.
func (ep *ExecProfile) finish(rows int) {
	if ep == nil {
		return
	}
	ep.RowsReturned = int64(rows)
	ep.ExecNanos = time.Since(ep.start).Nanoseconds() - ep.PlanNanos
}

// cardinalityError is the planner's estimation error for this
// execution: |est-actual| / max(actual, 1). 0 is a perfect estimate; 1
// means off by the actual cardinality itself.
func cardinalityError(est, actual int64) float64 {
	diff := est - actual
	if diff < 0 {
		diff = -diff
	}
	den := actual
	if den < 1 {
		den = 1
	}
	return float64(diff) / float64(den)
}

// ExecProfileWire is the JSON form of an execution profile, attached to
// PlanWire when a request asks for analyze output. Fields are
// append-only, like every v1 wire shape.
type ExecProfileWire struct {
	PlanNanos        int64   `json:"plan_nanos"`
	ExecNanos        int64   `json:"exec_nanos"`
	RowsScanned      int64   `json:"rows_scanned"`
	RowsReturned     int64   `json:"rows_returned"`
	SegmentRows      int64   `json:"segment_rows"`
	TailRows         int64   `json:"tail_rows"`
	BlocksScanned    int     `json:"blocks_scanned"`
	BlocksPruned     int     `json:"blocks_pruned"`
	KernelNanos      int64   `json:"kernel_nanos"`
	MergeNanos       int64   `json:"merge_nanos"`
	WorkerRows       []int64 `json:"worker_rows,omitempty"`
	CacheHit         bool    `json:"cache_hit"`
	CardinalityError float64 `json:"cardinality_error"`
}

// ProfileWire renders the plan's profile (nil when the execution
// carried none). The server's slow-query capture uses it directly; the
// analyze wire form attaches it via WireAnalyze.
func (p *Plan) ProfileWire() *ExecProfileWire {
	ep := p.Profile
	if ep == nil {
		return nil
	}
	return &ExecProfileWire{
		PlanNanos:        ep.PlanNanos,
		ExecNanos:        ep.ExecNanos,
		RowsScanned:      ep.RowsScanned,
		RowsReturned:     ep.RowsReturned,
		SegmentRows:      ep.SegmentRows,
		TailRows:         ep.TailRows,
		BlocksScanned:    ep.BlocksScanned,
		BlocksPruned:     ep.BlocksPruned,
		KernelNanos:      ep.KernelNanos,
		MergeNanos:       ep.MergeNanos,
		WorkerRows:       append([]int64(nil), ep.WorkerRows...),
		CacheHit:         p.CacheHit,
		CardinalityError: cardinalityError(p.EstRows, p.ActualRows),
	}
}

// fmtNanos renders a nanosecond duration compactly for analyze output.
func fmtNanos(n int64) string {
	return time.Duration(n).Round(time.Microsecond).String()
}

// Text renders the profile as indented analyze lines, matching the
// Plan.Text style.
func (w *ExecProfileWire) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  profile: plan %s, exec %s", fmtNanos(w.PlanNanos), fmtNanos(w.ExecNanos))
	if w.KernelNanos > 0 || w.MergeNanos > 0 {
		fmt.Fprintf(&b, " (kernels %s, merge %s)", fmtNanos(w.KernelNanos), fmtNanos(w.MergeNanos))
	}
	fmt.Fprintf(&b, "\n  scanned: %d rows", w.RowsScanned)
	if w.BlocksScanned > 0 || w.BlocksPruned > 0 {
		fmt.Fprintf(&b, " (%d segment rows in %d blocks, %d blocks pruned, %d tail rows)",
			w.SegmentRows, w.BlocksScanned, w.BlocksPruned, w.TailRows)
	}
	fmt.Fprintf(&b, "\n  returned: %d rows, cardinality error %.2f", w.RowsReturned, w.CardinalityError)
	if len(w.WorkerRows) > 0 {
		fmt.Fprintf(&b, "\n  workers: %d parts, rows per part %v", len(w.WorkerRows), w.WorkerRows)
	}
	if w.CacheHit {
		b.WriteString("\n  profile is from the execution that filled the cache entry")
	}
	return b.String()
}
