package shell

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// sessionStore builds a small study for driving the interactive surface.
func sessionStore(t *testing.T) *datastore.Store {
	t.Helper()
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	s.AddResource("/irs", "application", "")
	s.AddResource("/GF/Frost/batch/n1/p0", "grid/machine/partition/node/processor", "")
	s.SetResourceAttribute("/GF/Frost", "vendor", "IBM")
	s.AddExecution("e1", "irs")
	s.AddResource("/e1", "execution", "e1")
	s.SetResourceAttribute("/e1", "nprocs", "4")
	for i, v := range []float64{10, 20, 30} {
		metric := "wall time"
		if i == 2 {
			metric = "cpu time"
		}
		if _, err := s.AddPerfResult(&core.PerformanceResult{
			Execution: "e1", Metric: metric, Value: v, Units: "seconds", Tool: "test",
			Contexts: []core.Context{core.NewContext("/irs", "/GF/Frost", "/e1")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// run executes a scripted session and returns the combined output.
func run(t *testing.T, store *datastore.Store, script string) string {
	t.Helper()
	var out bytes.Buffer
	sess := New(store, &out)
	if err := sess.Run(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSessionBrowsing(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "types\nresources grid/machine\nchildren /GF/Frost\nshow /GF/Frost\n")
	for _, want := range []string{
		"grid/machine/partition/node/processor", // types
		"/GF/Frost",                             // resources
		"/GF/Frost/batch",                       // children
		"vendor = IBM",                          // show
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSessionFilterWorkflowFigure3(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "family name=/GF/Frost;rel=D\nfamily type=application\nfamilies\n")
	if !strings.Contains(out, "whole filter now matches 3") {
		t.Errorf("live counts missing:\n%s", out)
	}
	if !strings.Contains(out, "whole pr-filter: 3 results") {
		t.Errorf("families summary missing:\n%s", out)
	}
}

func TestSessionTwoStepTableFigure4(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, strings.Join([]string{
		"family type=application",
		"fetch",
		"free",
		"addcol execution.nprocs",
		"metric wall time",
		"sort value desc",
		"table",
	}, "\n"))
	if !strings.Contains(out, "retrieved 3 results") {
		t.Errorf("fetch missing:\n%s", out)
	}
	if !strings.Contains(out, "hid 1 rows") {
		t.Errorf("metric filter missing:\n%s", out)
	}
	// Sorted descending: 20 before 10.
	i20 := strings.Index(out, "20")
	i10 := strings.LastIndex(out, "10")
	if i20 < 0 || i10 < 0 || i20 > i10 {
		t.Errorf("sort order wrong:\n%s", out)
	}
	if !strings.Contains(out, "execution.nprocs") {
		t.Errorf("added column missing:\n%s", out)
	}
}

func TestSessionChartFigure5(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "family type=application\nfetch\nchart metric max\n")
	if !strings.Contains(out, "#") || !strings.Contains(out, "wall time") {
		t.Errorf("chart missing:\n%s", out)
	}
}

func TestSessionExportAndSQL(t *testing.T) {
	s := sessionStore(t)
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	out := run(t, s, "family type=application\nfetch\nexport "+csvPath+
		"\nsql SELECT COUNT(*) FROM performance_result\n")
	if !strings.Contains(out, "wrote "+csvPath) {
		t.Errorf("export missing:\n%s", out)
	}
	if !strings.Contains(out, "3") {
		t.Errorf("sql output missing:\n%s", out)
	}
}

func TestSessionDetailAndStats(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "detail e1\nstats\n")
	if !strings.Contains(out, "e1 (irs): 3 results") {
		t.Errorf("detail missing:\n%s", out)
	}
	if !strings.Contains(out, "executions 1") {
		t.Errorf("stats missing:\n%s", out)
	}
}

func TestSessionErrorsAreReportedNotFatal(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, strings.Join([]string{
		"bogus",
		"table",       // before fetch
		"free",        // before fetch
		"addcol x",    // before fetch
		"sort x",      // before fetch
		"chart x",     // before fetch
		"resources",   // missing arg
		"children /x", // unknown resource
		"family rel=Z",
		"stats", // still works after errors
	}, "\n"))
	if got := strings.Count(out, "error:"); got != 9 {
		t.Errorf("expected 9 error lines, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "executions 1") {
		t.Errorf("session died after errors:\n%s", out)
	}
}

func TestSessionClearAndQuit(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "family type=application\nclear\nfamilies\nquit\nnever-reached\n")
	if !strings.Contains(out, "cleared") {
		t.Errorf("clear missing:\n%s", out)
	}
	if !strings.Contains(out, "whole pr-filter: 3 results") {
		t.Errorf("empty filter should match all:\n%s", out)
	}
	if strings.Contains(out, "never-reached") || strings.Contains(out, "unknown command \"never-reached\"") {
		t.Errorf("quit did not stop the session:\n%s", out)
	}
}

func TestSessionImportRoundTrip(t *testing.T) {
	s := sessionStore(t)
	csvPath := filepath.Join(t.TempDir(), "rt.csv")
	run(t, s, "family type=application\nfetch\nexport "+csvPath+"\n")
	// Import into a fresh session: the detached table sorts and charts but
	// refuses free-resource analysis.
	out := run(t, s, "import "+csvPath+"\nsort value desc\ntable\nfree\n")
	if !strings.Contains(out, "imported 3 rows") {
		t.Errorf("import missing:\n%s", out)
	}
	if !strings.Contains(out, "wall time") {
		t.Errorf("table after import:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "detached") {
		t.Errorf("free on detached table should error:\n%s", out)
	}
	out = run(t, s, "import /nonexistent.csv\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("missing-file import should error:\n%s", out)
	}
}

func TestSessionCompare(t *testing.T) {
	s := sessionStore(t)
	// A second execution with a slower wall time for the bottleneck list.
	s.AddExecution("e2", "irs")
	if _, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "e2", Metric: "wall time", Value: 50, Units: "seconds", Tool: "test",
		Contexts: []core.Context{core.NewContext("/irs", "/GF/Frost")},
	}); err != nil {
		t.Fatal(err)
	}
	out := run(t, s, "compare e1 e2\ncompare e1 nosuch\ncompare onearg\n")
	if !strings.Contains(out, "e1 vs e2:") || !strings.Contains(out, "geomean ratio") {
		t.Errorf("compare output missing:\n%s", out)
	}
	if !strings.Contains(out, "top bottlenecks in B:") {
		t.Errorf("bottlenecks missing:\n%s", out)
	}
	if strings.Count(out, "error:") != 2 {
		t.Errorf("error handling:\n%s", out)
	}
}

func TestSessionHistogramSparkline(t *testing.T) {
	s := sessionStore(t)
	id, err := s.AddHistogramResult(&core.PerformanceResult{
		Execution: "e1", Metric: "cpu_inclusive", Tool: "Paradyn", Units: "units/second",
		Contexts: []core.Context{core.NewContext("/irs")},
	}, 0.2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, s, "hist "+strconvItoa(id)+"\nhist 999\nhist notanumber\n")
	if !strings.Contains(out, "cpu_inclusive (Paradyn), 4 bins x 0.2s") {
		t.Errorf("hist header missing:\n%s", out)
	}
	if !strings.Contains(out, "▁") || !strings.Contains(out, "█") {
		t.Errorf("sparkline missing:\n%s", out)
	}
	if strings.Count(out, "error:") != 2 {
		t.Errorf("error handling:\n%s", out)
	}
}

func strconvItoa(v int64) string {
	return fmt.Sprintf("%d", v)
}

func TestSessionHelp(t *testing.T) {
	s := sessionStore(t)
	out := run(t, s, "help\n")
	for _, want := range []string{"family SPEC", "fetch", "chart", "export"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}
