// Package shell implements the interactive PerfTrack session behind
// cmd/ptgui — the terminal analog of the GUI in §3.2 (Figures 3–5). A
// Session reads commands from a reader and writes results to a writer,
// so the full interactive surface is testable without a terminal.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perftrack/internal/chart"
	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/query"
)

// Session holds the state of one interactive analysis session: the
// pr-filter under construction (Figure 3) and the retrieved result table
// (Figure 4).
type Session struct {
	store    *datastore.Store
	families []core.Family
	specs    []string
	tbl      *query.Table
	out      *bufio.Writer
}

// New creates a session writing to out.
func New(store *datastore.Store, out io.Writer) *Session {
	return &Session{store: store, out: bufio.NewWriter(out)}
}

// Run reads commands from in until EOF or "quit", echoing a prompt to the
// output when prompt is true.
func (s *Session) Run(in io.Reader, prompt bool) error {
	sc := bufio.NewScanner(in)
	for {
		if prompt {
			fmt.Fprint(s.out, "perftrack> ")
			s.out.Flush()
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := s.Dispatch(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
		s.out.Flush()
	}
	return s.out.Flush()
}

// Dispatch executes one command line.
func (s *Session) Dispatch(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	rest := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	switch cmd {
	case "help":
		s.help()
	case "types":
		for _, t := range s.store.Types().All() {
			fmt.Fprintln(s.out, t)
		}
	case "resources":
		if len(args) != 1 {
			return fmt.Errorf("usage: resources TYPE")
		}
		names, err := s.store.ResourcesOfType(core.TypePath(args[0]))
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(s.out, n)
		}
	case "children":
		if len(args) != 1 {
			return fmt.Errorf("usage: children NAME")
		}
		kids, err := s.store.Children(core.ResourceName(args[0]))
		if err != nil {
			return err
		}
		for _, k := range kids {
			fmt.Fprintln(s.out, k)
		}
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("usage: show NAME")
		}
		res, err := s.store.ResourceByName(core.ResourceName(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s (%s)\n", res.Name, res.Type)
		for _, a := range res.AttributeNames() {
			fmt.Fprintf(s.out, "  %s = %s\n", a, res.Attributes[a])
		}
		for _, c := range res.Constraints {
			fmt.Fprintf(s.out, "  constraint -> %s\n", c)
		}
	case "detail":
		if len(args) != 1 {
			return fmt.Errorf("usage: detail EXECUTION")
		}
		d, err := s.store.ExecutionDetail(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s (%s): %d results, %d metrics, tools %s\n",
			d.Name, d.Application, d.Results, len(d.Metrics), strings.Join(d.Tools, ","))
	case "family":
		return s.addFamily(rest)
	case "families":
		for i, spec := range s.specs {
			n, err := s.store.CountFamilyMatches(s.families[i])
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "%d: %q (%d resources, %d results alone)\n",
				i, spec, s.families[i].Size(), n)
		}
		n, err := s.store.CountMatches(core.PRFilter{Families: s.families})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "whole pr-filter: %d results\n", n)
	case "clear":
		s.families, s.specs, s.tbl = nil, nil, nil
		fmt.Fprintln(s.out, "cleared")
	case "fetch":
		tbl, err := query.Retrieve(s.store, core.PRFilter{Families: s.families})
		if err != nil {
			return err
		}
		s.tbl = tbl
		fmt.Fprintf(s.out, "retrieved %d results\n", len(tbl.Rows))
	case "free":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		free, err := s.tbl.FreeResources()
		if err != nil {
			return err
		}
		for _, c := range free {
			fmt.Fprintf(s.out, "%-40s %4d distinct  attrs: %s\n",
				c.Type, c.Distinct, strings.Join(c.Attributes, ", "))
		}
	case "addcol":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: addcol TYPE or addcol TYPE.ATTR")
		}
		if i := strings.LastIndexByte(args[0], '.'); i > 0 && !strings.Contains(args[0][i:], "/") {
			return s.tbl.AddAttributeColumn(core.TypePath(args[0][:i]), args[0][i+1:])
		}
		return s.tbl.AddColumn(core.TypePath(args[0]), false)
	case "sort":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		if len(args) < 1 {
			return fmt.Errorf("usage: sort COLUMN [desc]")
		}
		s.tbl.SortBy(args[0], len(args) > 1 && args[1] == "desc")
		fmt.Fprintln(s.out, "sorted")
	case "metric":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		removed := s.tbl.FilterMetric(rest)
		fmt.Fprintf(s.out, "hid %d rows\n", removed)
	case "table":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		s.printTable(25)
	case "chart":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		if len(args) < 1 {
			return fmt.Errorf("usage: chart COLUMN [min|max|avg|sum|count]")
		}
		reducer := "avg"
		if len(args) > 1 {
			reducer = args[1]
		}
		keys, vals, err := s.tbl.GroupBy(args[0], reducer)
		if err != nil {
			return err
		}
		c := &chart.BarChart{
			Title:      fmt.Sprintf("%s(value) by %s", reducer, args[0]),
			Categories: keys,
			Series:     []chart.Series{{Name: reducer, Values: vals}},
		}
		out, err := c.RenderASCII(50)
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, out)
	case "export":
		if s.tbl == nil {
			return fmt.Errorf("fetch first")
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: export FILE.csv")
		}
		f, err := os.Create(args[0])
		if err != nil {
			return err
		}
		err = s.tbl.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "wrote %s\n", args[0])
	case "import":
		if len(args) != 1 {
			return fmt.Errorf("usage: import FILE.csv")
		}
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		tbl, err := query.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		s.tbl = tbl
		fmt.Fprintf(s.out, "imported %d rows (detached: sort/filter/chart only)\n", len(tbl.Rows))
	case "compare":
		if len(args) != 2 {
			return fmt.Errorf("usage: compare EXEC_A EXEC_B")
		}
		cmp, err := compare.Executions(s.store, args[0], args[1])
		if err != nil {
			return err
		}
		sum := cmp.Summarize()
		fmt.Fprintf(s.out, "%s vs %s: %d pairs, geomean ratio %.4f, only-A %d, only-B %d\n",
			args[0], args[1], sum.Paired, sum.GeoMeanRatio, sum.OnlyA, sum.OnlyB)
		for i, f := range cmp.DiagnoseBottlenecks("", 5) {
			if i == 0 {
				fmt.Fprintln(s.out, "top bottlenecks in B:")
			}
			label := ""
			for _, r := range f.Pair.Context {
				if r.Depth() > 1 {
					label = string(r.BaseName())
				}
			}
			fmt.Fprintf(s.out, "  %-32s %-24s +%.4f (%.1f%%)\n",
				label, f.Pair.Metric, f.Delta, f.Contribution*100)
		}
	case "hist":
		if len(args) != 1 {
			return fmt.Errorf("usage: hist RESULT_ID")
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad result id %q", args[0])
		}
		bw, bins, ok, err := s.store.HistogramOf(id)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("result %d is a scalar, not a histogram", id)
		}
		pr, err := s.store.ResultByID(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s (%s), %d bins x %gs, mean %g %s\n",
			pr.Metric, pr.Tool, len(bins), bw, pr.Value, pr.Units)
		fmt.Fprintln(s.out, chart.Sparkline(bins))
	case "stats":
		st := s.store.Stats()
		fmt.Fprintf(s.out, "executions %d, resources %d, results %d, metrics %d\n",
			st.Executions, st.Resources, st.Results, st.Metrics)
	case "sql":
		res, err := s.store.SQL().Query(rest)
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, res.FormatTable())
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

func (s *Session) addFamily(spec string) error {
	rf, err := query.ParseFilterSpec(spec)
	if err != nil {
		return err
	}
	fam, err := s.store.ApplyFilter(rf)
	if err != nil {
		return err
	}
	s.families = append(s.families, fam)
	s.specs = append(s.specs, spec)
	n, err := s.store.CountFamilyMatches(fam)
	if err != nil {
		return err
	}
	total, err := s.store.CountMatches(core.PRFilter{Families: s.families})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "family added: %d resources, %d results alone; whole filter now matches %d\n",
		fam.Size(), n, total)
	return nil
}

func (s *Session) printTable(limit int) {
	cols := s.tbl.Columns()
	fmt.Fprintln(s.out, strings.Join(cols, "\t"))
	for i, row := range s.tbl.Rows {
		if i >= limit {
			fmt.Fprintf(s.out, "... %d more rows\n", len(s.tbl.Rows)-limit)
			break
		}
		cells := make([]string, len(cols))
		for j, c := range cols {
			cells[j] = s.tbl.Cell(row, c)
		}
		fmt.Fprintln(s.out, strings.Join(cells, "\t"))
	}
}

func (s *Session) help() {
	fmt.Fprint(s.out, `commands:
  types                       list resource types
  resources TYPE              list resources of a type
  children NAME               list child resources (lazy fetch, as in the GUI)
  show NAME                   show a resource's attributes and constraints
  detail EXECUTION            execution summary report
  family SPEC                 add a resource family (type=T; name=N; base=B; rel=N|D|A|B; attr=a<op>v)
  families                    show families with live match counts (Figure 3)
  clear                       drop the current filter and table
  fetch                       retrieve matching results (Figure 4, step 1)
  free                        list free-resource column candidates (step 2)
  addcol TYPE | TYPE.ATTR     add a display column
  sort COLUMN [desc]          sort the table
  metric NAME                 keep only rows with this metric
  table                       print the table
  chart COLUMN [reducer]      ASCII bar chart (Figure 5)
  export FILE.csv             export for spreadsheets
  import FILE.csv             read an exported table back in
  compare EXEC_A EXEC_B       §6 comparison operators + bottleneck diagnosis
  hist RESULT_ID              sparkline of a histogram-valued result
  sql QUERY                   raw SQL against the store
  stats                       store statistics
  quit
`)
}
