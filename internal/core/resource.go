package core

import (
	"fmt"
	"sort"
)

// Resource is any named element of an application or its compile-time or
// runtime environment (§2.1): machine nodes, processes, functions,
// compilers, and so on.
type Resource struct {
	Name ResourceName
	Type TypePath

	// Attributes are string-valued characteristics (vendor, clock MHz, …).
	Attributes map[string]string

	// Constraints are resource-valued attributes — one resource attributed
	// to another, such as the node a process ran on. They are stored in a
	// separate resource_constraint table in the prototype schema.
	Constraints []ResourceName
}

// NewResource builds a resource with no attributes.
func NewResource(name ResourceName, typ TypePath) *Resource {
	return &Resource{Name: name, Type: typ, Attributes: make(map[string]string)}
}

// SetAttribute records a string attribute.
func (r *Resource) SetAttribute(name, value string) {
	if r.Attributes == nil {
		r.Attributes = make(map[string]string)
	}
	r.Attributes[name] = value
}

// AddConstraint records a resource-valued attribute.
func (r *Resource) AddConstraint(other ResourceName) {
	r.Constraints = append(r.Constraints, other)
}

// AttributeNames returns the attribute names, sorted.
func (r *Resource) AttributeNames() []string {
	out := make([]string, 0, len(r.Attributes))
	for k := range r.Attributes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the resource for debugging.
func (r *Resource) String() string {
	return fmt.Sprintf("%s (%s)", r.Name, r.Type)
}

// FocusType classifies a performance-result context (the "focus" in the
// internal schema): primary, parent, child, sender, or receiver.
type FocusType int

// Focus types from the schema in Figure 1.
const (
	FocusPrimary FocusType = iota
	FocusParent
	FocusChild
	FocusSender
	FocusReceiver
)

var focusNames = [...]string{"primary", "parent", "child", "sender", "receiver"}

// String returns the schema name of the focus type.
func (f FocusType) String() string {
	if f < 0 || int(f) >= len(focusNames) {
		return fmt.Sprintf("FocusType(%d)", int(f))
	}
	return focusNames[f]
}

// ParseFocusType parses a schema focus-type name.
func ParseFocusType(s string) (FocusType, error) {
	for i, n := range focusNames {
		if n == s {
			return FocusType(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown focus type %q", s)
}

// Context is a set of resources describing everything known about a
// performance measurement (§2.1): the part(s) of the code or environment
// included in the measurement.
type Context struct {
	Type      FocusType
	Resources []ResourceName
}

// NewContext builds a primary context over the given resources.
func NewContext(resources ...ResourceName) Context {
	return Context{Type: FocusPrimary, Resources: resources}
}

// Contains reports whether the context includes the resource.
func (c Context) Contains(name ResourceName) bool {
	for _, r := range c.Resources {
		if r == name {
			return true
		}
	}
	return false
}

// PerformanceResult is a measured or calculated value plus descriptive
// metadata (§2.2): a metric and one or more contexts. The prototype
// stores scalar values only, as does this implementation.
type PerformanceResult struct {
	Execution string  // execution (run) this result belongs to
	Metric    string  // measurable characteristic, e.g. "CPU time"
	Value     float64 // scalar value
	Units     string  // e.g. "seconds"
	Tool      string  // performance tool that produced the value

	// Contexts holds one or more resource sets. Multiple contexts describe
	// measurements spanning same-typed resources (e.g. message transit
	// between a sender and a receiver process, or mpiP caller/callee).
	Contexts []Context
}

// PrimaryContext returns the first primary context, or an empty context.
func (pr *PerformanceResult) PrimaryContext() Context {
	for _, c := range pr.Contexts {
		if c.Type == FocusPrimary {
			return c
		}
	}
	return Context{}
}

// AllResources returns the union of resources across all contexts, sorted
// and deduplicated.
func (pr *PerformanceResult) AllResources() []ResourceName {
	seen := make(map[ResourceName]bool)
	var out []ResourceName
	for _, c := range pr.Contexts {
		for _, r := range c.Resources {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: a metric, at least one context,
// and at least one resource per context.
func (pr *PerformanceResult) Validate() error {
	if pr.Metric == "" {
		return fmt.Errorf("core: performance result has no metric")
	}
	if len(pr.Contexts) == 0 {
		return fmt.Errorf("core: performance result has no context")
	}
	for i, c := range pr.Contexts {
		if len(c.Resources) == 0 {
			return fmt.Errorf("core: context %d has no resources", i)
		}
		for _, r := range c.Resources {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("core: context %d: %w", i, err)
			}
		}
	}
	return nil
}
