package core_test

import (
	"fmt"

	"perftrack/internal/core"
)

// The paper's §2.2 example: a resource filter on a node name with the
// descendant flag yields all of the node's processors.
func ExampleResourceFilter_Apply() {
	universe := []*core.Resource{
		core.NewResource("/SingleMachineFrost", "grid"),
		core.NewResource("/SingleMachineFrost/Frost", "grid/machine"),
		core.NewResource("/SingleMachineFrost/Frost/batch", "grid/machine/partition"),
		core.NewResource("/SingleMachineFrost/Frost/batch/node1", "grid/machine/partition/node"),
		core.NewResource("/SingleMachineFrost/Frost/batch/node1/p0", "grid/machine/partition/node/processor"),
		core.NewResource("/SingleMachineFrost/Frost/batch/node1/p1", "grid/machine/partition/node/processor"),
	}
	filter := core.ResourceFilter{
		Name:    "/SingleMachineFrost/Frost/batch/node1",
		Include: core.IncludeDescendants,
	}
	family := filter.Apply(universe)
	for _, name := range family.Members() {
		fmt.Println(name)
	}
	// Output:
	// /SingleMachineFrost/Frost/batch/node1
	// /SingleMachineFrost/Frost/batch/node1/p0
	// /SingleMachineFrost/Frost/batch/node1/p1
}

// PRF matches C ⇔ ∀ R ∈ PRF: ∃ r ∈ C such that r ∈ R — the match rule
// from §2.2.
func ExamplePRFilter_Matches() {
	result := &core.PerformanceResult{
		Execution: "irs-001",
		Metric:    "wall time",
		Value:     98.5,
		Contexts: []core.Context{
			core.NewContext("/irs", "/MCRGrid/MCR"),
		},
	}
	filter := core.PRFilter{Families: []core.Family{
		core.NewFamily("/irs"),         // the application family
		core.NewFamily("/MCRGrid/MCR"), // the machine family
	}}
	fmt.Println(filter.Matches(result))

	filter.Families = append(filter.Families, core.NewFamily("/GhostGrid/Ghost"))
	fmt.Println(filter.Matches(result))
	// Output:
	// true
	// false
}

// Full resource names encode their ancestry.
func ExampleResourceName_Ancestors() {
	name := core.ResourceName("/SingleMachineFrost/Frost/batch/frost121/p0")
	for _, a := range name.Ancestors() {
		fmt.Println(a)
	}
	// Output:
	// /SingleMachineFrost
	// /SingleMachineFrost/Frost
	// /SingleMachineFrost/Frost/batch
	// /SingleMachineFrost/Frost/batch/frost121
}
