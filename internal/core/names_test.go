package core

import (
	"testing"
	"testing/quick"
)

func TestTypePathBasics(t *testing.T) {
	tp := TypePath("grid/machine/partition/node/processor")
	if tp.Depth() != 5 {
		t.Errorf("Depth = %d", tp.Depth())
	}
	if tp.Leaf() != "processor" || tp.Root() != "grid" {
		t.Errorf("Leaf/Root = %q/%q", tp.Leaf(), tp.Root())
	}
	if tp.Parent() != "grid/machine/partition/node" {
		t.Errorf("Parent = %q", tp.Parent())
	}
	if TypePath("grid").Parent() != "" {
		t.Error("top-level parent should be empty")
	}
	if got := TypePath("time").Child("interval"); got != "time/interval" {
		t.Errorf("Child = %q", got)
	}
	if got := TypePath("").Child("app"); got != "app" {
		t.Errorf("Child of empty = %q", got)
	}
}

func TestTypePathAncestry(t *testing.T) {
	if !TypePath("grid").IsAncestorOf("grid/machine") {
		t.Error("grid should be ancestor of grid/machine")
	}
	if TypePath("grid").IsAncestorOf("grid") {
		t.Error("a type is not its own ancestor")
	}
	if TypePath("grid").IsAncestorOf("gridlock/machine") {
		t.Error("prefix confusion: grid vs gridlock")
	}
}

func TestTypePathValidate(t *testing.T) {
	good := []TypePath{"grid", "grid/machine", "a/b/c/d/e"}
	for _, tp := range good {
		if err := tp.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", tp, err)
		}
	}
	bad := []TypePath{"", "/grid", "grid/", "grid//machine"}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("Validate(%q) should fail", tp)
		}
	}
}

func TestResourceNameBasics(t *testing.T) {
	n := ResourceName("/SingleMachineFrost/Frost/batch/frost121/p0")
	if n.Depth() != 5 {
		t.Errorf("Depth = %d", n.Depth())
	}
	if n.BaseName() != "p0" {
		t.Errorf("BaseName = %q", n.BaseName())
	}
	if n.Parent() != "/SingleMachineFrost/Frost/batch/frost121" {
		t.Errorf("Parent = %q", n.Parent())
	}
	if ResourceName("/Linpack").Parent() != "" {
		t.Error("top-level parent should be empty")
	}
	if got := ResourceName("/a").Child("b"); got != "/a/b" {
		t.Errorf("Child = %q", got)
	}
}

func TestResourceNameAncestors(t *testing.T) {
	n := ResourceName("/a/b/c")
	anc := n.Ancestors()
	if len(anc) != 2 || anc[0] != "/a" || anc[1] != "/a/b" {
		t.Errorf("Ancestors = %v", anc)
	}
	if len(ResourceName("/a").Ancestors()) != 0 {
		t.Error("top-level resource has no ancestors")
	}
}

func TestResourceNameAncestryPrefixSafety(t *testing.T) {
	if ResourceName("/a/b").IsAncestorOf("/a/bc/d") {
		t.Error("/a/b should not be ancestor of /a/bc/d")
	}
	if !ResourceName("/a/b").IsAncestorOf("/a/b/c/d") {
		t.Error("/a/b should be ancestor of /a/b/c/d")
	}
	if ResourceName("/a/b").IsAncestorOf("/a/b") {
		t.Error("a resource is not its own ancestor")
	}
}

func TestResourceNameValidate(t *testing.T) {
	good := []ResourceName{"/a", "/a/b", "/SingleMachineFrost/Frost/batch/frost121/p0"}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", n, err)
		}
	}
	bad := []ResourceName{"", "a", "a/b", "/a/", "/a//b",
		// Reserved by the PTdf resource-set grammar.
		"/a(b", "/a)b", "/a,b", "/a:b"}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("Validate(%q) should fail", n)
		}
	}
}

func TestChildParentInverseProperty(t *testing.T) {
	f := func(base string) bool {
		if base == "" || containsSlash(base) {
			return true
		}
		n := ResourceName("/root").Child(base)
		return n.Parent() == "/root" && n.BaseName() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAncestorsConsistentWithIsAncestorProperty(t *testing.T) {
	n := ResourceName("/g/m/p/n/c")
	for _, a := range n.Ancestors() {
		if !a.IsAncestorOf(n) {
			t.Errorf("%q in Ancestors but IsAncestorOf false", a)
		}
	}
}

func containsSlash(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return true
		}
	}
	return false
}
