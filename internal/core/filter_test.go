package core

import (
	"testing"
	"testing/quick"
)

// testUniverse builds a small Frost-like resource universe.
func testUniverse() []*Resource {
	mk := func(name ResourceName, typ TypePath, attrs map[string]string) *Resource {
		r := NewResource(name, typ)
		for k, v := range attrs {
			r.SetAttribute(k, v)
		}
		return r
	}
	return []*Resource{
		mk("/SingleMachineFrost", "grid", nil),
		mk("/SingleMachineFrost/Frost", "grid/machine", map[string]string{"vendor": "IBM"}),
		mk("/SingleMachineFrost/Frost/batch", "grid/machine/partition", nil),
		mk("/SingleMachineFrost/Frost/batch/node1", "grid/machine/partition/node", nil),
		mk("/SingleMachineFrost/Frost/batch/node1/p0", "grid/machine/partition/node/processor",
			map[string]string{"clock MHz": "375", "processor type": "Power3"}),
		mk("/SingleMachineFrost/Frost/batch/node1/p1", "grid/machine/partition/node/processor",
			map[string]string{"clock MHz": "375"}),
		mk("/SingleMachineMCR", "grid", nil),
		mk("/SingleMachineMCR/MCR", "grid/machine", map[string]string{"vendor": "LNXI"}),
		mk("/SingleMachineMCR/MCR/batch", "grid/machine/partition", nil),
		mk("/SingleMachineMCR/MCR/batch/n5/p0", "grid/machine/partition/node/processor",
			map[string]string{"clock MHz": "2400"}),
		mk("/SingleMachineMCR/MCR/batch/n5", "grid/machine/partition/node", nil),
		mk("/irs", "application", nil),
	}
}

func TestFilterByType(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Type: "grid/machine"}
	fam := f.Apply(u)
	if fam.Size() != 2 {
		t.Errorf("machines = %v", fam.Members())
	}
	if !fam.Contains("/SingleMachineFrost/Frost") || !fam.Contains("/SingleMachineMCR/MCR") {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestFilterByFullName(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Name: "/SingleMachineFrost/Frost/batch"}
	fam := f.Apply(u)
	if fam.Size() != 1 || !fam.Contains("/SingleMachineFrost/Frost/batch") {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestFilterByBaseName(t *testing.T) {
	// The paper's shorthand: "batch" refers to the batch partition of any
	// machine.
	u := testUniverse()
	f := ResourceFilter{BaseName: "batch"}
	fam := f.Apply(u)
	if fam.Size() != 2 {
		t.Errorf("batch partitions = %v", fam.Members())
	}
}

func TestFilterByAttributes(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Attrs: []AttrPredicate{{Attr: "clock MHz", Cmp: CmpGt, Value: "1000"}}}
	fam := f.Apply(u)
	if fam.Size() != 1 || !fam.Contains("/SingleMachineMCR/MCR/batch/n5/p0") {
		t.Errorf("fast processors = %v", fam.Members())
	}
	// Numeric comparison, not lexical: "375" < "1000" numerically.
	f = ResourceFilter{Attrs: []AttrPredicate{{Attr: "clock MHz", Cmp: CmpLt, Value: "1000"}}}
	if fam := f.Apply(u); fam.Size() != 2 {
		t.Errorf("slow processors = %v", fam.Members())
	}
}

func TestFilterAttributesConjunction(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Attrs: []AttrPredicate{
		{Attr: "clock MHz", Cmp: CmpEq, Value: "375"},
		{Attr: "processor type", Cmp: CmpEq, Value: "Power3"},
	}}
	fam := f.Apply(u)
	if fam.Size() != 1 || !fam.Contains("/SingleMachineFrost/Frost/batch/node1/p0") {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestFilterTypeAndAttributes(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Type: "grid/machine", Attrs: []AttrPredicate{{Attr: "vendor", Cmp: CmpEq, Value: "IBM"}}}
	fam := f.Apply(u)
	if fam.Size() != 1 || !fam.Contains("/SingleMachineFrost/Frost") {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestFilterDescendants(t *testing.T) {
	// §2.2's example: name + descendant flag yields all processors of the
	// node.
	u := testUniverse()
	f := ResourceFilter{Name: "/SingleMachineFrost/Frost/batch/node1", Include: IncludeDescendants}
	fam := f.Apply(u)
	if fam.Size() != 3 {
		t.Errorf("members = %v", fam.Members())
	}
	for _, want := range []ResourceName{
		"/SingleMachineFrost/Frost/batch/node1",
		"/SingleMachineFrost/Frost/batch/node1/p0",
		"/SingleMachineFrost/Frost/batch/node1/p1",
	} {
		if !fam.Contains(want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFilterAncestors(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Name: "/SingleMachineFrost/Frost/batch/node1/p0", Include: IncludeAncestors}
	fam := f.Apply(u)
	if fam.Size() != 5 {
		t.Errorf("members = %v", fam.Members())
	}
	if !fam.Contains("/SingleMachineFrost") {
		t.Error("root ancestor missing")
	}
}

func TestFilterBoth(t *testing.T) {
	u := testUniverse()
	f := ResourceFilter{Name: "/SingleMachineFrost/Frost/batch/node1", Include: IncludeBoth}
	fam := f.Apply(u)
	if fam.Size() != 6 {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestFilterDefaultChoosesDRelativesExplicitly(t *testing.T) {
	// GUI default D: choosing "Frost" includes its partitions, nodes, and
	// processors.
	u := testUniverse()
	f := ResourceFilter{Name: "/SingleMachineFrost/Frost", Include: IncludeDescendants}
	fam := f.Apply(u)
	if fam.Size() != 5 {
		t.Errorf("members = %v", fam.Members())
	}
}

func TestPRFilterMatchRule(t *testing.T) {
	// PRF matches C ⇔ ∀ R ∈ PRF ∃ r ∈ C: r ∈ R
	frost := NewFamily("/SingleMachineFrost/Frost", "/SingleMachineFrost/Frost/batch")
	app := NewFamily("/irs")
	prf := PRFilter{Families: []Family{frost, app}}

	if !prf.MatchesResources([]ResourceName{"/irs", "/SingleMachineFrost/Frost"}) {
		t.Error("both families represented: should match")
	}
	if prf.MatchesResources([]ResourceName{"/irs"}) {
		t.Error("frost family unrepresented: should not match")
	}
	if prf.MatchesResources(nil) {
		t.Error("empty context should not match a nonempty filter")
	}
	empty := PRFilter{}
	if !empty.MatchesResources(nil) {
		t.Error("empty filter matches everything")
	}
}

func TestPRFilterFilterResults(t *testing.T) {
	mkpr := func(metric string, res ...ResourceName) *PerformanceResult {
		return &PerformanceResult{
			Execution: "e1", Metric: metric, Value: 1,
			Contexts: []Context{NewContext(res...)},
		}
	}
	prs := []*PerformanceResult{
		mkpr("time", "/irs", "/SingleMachineFrost/Frost"),
		mkpr("time", "/irs", "/SingleMachineMCR/MCR"),
		mkpr("flops", "/smg", "/SingleMachineFrost/Frost"),
	}
	prf := PRFilter{Families: []Family{
		NewFamily("/irs"),
		NewFamily("/SingleMachineFrost/Frost"),
	}}
	got := prf.Filter(prs)
	if len(got) != 1 || got[0] != prs[0] {
		t.Errorf("filtered = %d results", len(got))
	}
}

func TestPRFilterMultiContextResult(t *testing.T) {
	// A result with sender and receiver contexts matches if any context
	// resource falls in each family.
	pr := &PerformanceResult{
		Execution: "e1", Metric: "transit", Value: 0.5,
		Contexts: []Context{
			{Type: FocusSender, Resources: []ResourceName{"/e1/p0"}},
			{Type: FocusReceiver, Resources: []ResourceName{"/e1/p1"}},
		},
	}
	prf := PRFilter{Families: []Family{NewFamily("/e1/p1")}}
	if !prf.Matches(pr) {
		t.Error("receiver context should satisfy the filter")
	}
}

func TestPRFilterMonotonicityProperty(t *testing.T) {
	// Adding a family to a pr-filter can only shrink the match set, and
	// adding a resource to a family can only grow it.
	mkpr := func(res ...ResourceName) *PerformanceResult {
		return &PerformanceResult{
			Execution: "e", Metric: "m", Value: 1,
			Contexts: []Context{NewContext(res...)},
		}
	}
	pool := []ResourceName{"/a", "/b", "/c", "/d"}
	var prs []*PerformanceResult
	for i := 0; i < len(pool); i++ {
		for j := i; j < len(pool); j++ {
			prs = append(prs, mkpr(pool[i], pool[j]))
		}
	}
	f := func(m1, m2, extra uint8) bool {
		fam1 := NewFamily()
		fam2 := NewFamily()
		for i, r := range pool {
			if m1&(1<<i) != 0 {
				fam1.Add(r)
			}
			if m2&(1<<i) != 0 {
				fam2.Add(r)
			}
		}
		one := PRFilter{Families: []Family{fam1}}
		two := PRFilter{Families: []Family{fam1, fam2}}
		n1 := len(one.Filter(prs))
		n2 := len(two.Filter(prs))
		if n2 > n1 {
			return false // adding a family grew the match set
		}
		// Growing fam1 never shrinks the single-family match count.
		fam1Grown := NewFamily(fam1.Members()...)
		fam1Grown.Add(pool[int(extra)%len(pool)])
		n3 := len(PRFilter{Families: []Family{fam1Grown}}.Filter(prs))
		return n3 >= n1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrPredicateComparators(t *testing.T) {
	cases := []struct {
		p    AttrPredicate
		got  string
		want bool
	}{
		{AttrPredicate{"a", CmpEq, "x"}, "x", true},
		{AttrPredicate{"a", CmpNe, "x"}, "y", true},
		{AttrPredicate{"a", CmpLt, "10"}, "9", true},   // numeric
		{AttrPredicate{"a", CmpLt, "10"}, "11", false}, // numeric, not lexical
		{AttrPredicate{"a", CmpGe, "2.5"}, "2.5", true},
		{AttrPredicate{"a", CmpContains, "gcc"}, "gcc-3.3.3", true},
		{AttrPredicate{"a", CmpContains, "icc"}, "gcc-3.3.3", false},
		{AttrPredicate{"a", CmpLt, "b"}, "a", true}, // lexical fallback
		{AttrPredicate{"a", Comparator("bogus"), "x"}, "x", false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.got); got != c.want {
			t.Errorf("%v.Eval(%q) = %v, want %v", c.p, c.got, got, c.want)
		}
	}
}

func TestClusionParseAndString(t *testing.T) {
	for _, s := range []string{"N", "D", "A", "B"} {
		c, err := ParseClusion(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != s {
			t.Errorf("round trip %q -> %q", s, c.String())
		}
	}
	if _, err := ParseClusion("Z"); err == nil {
		t.Error("bad clusion accepted")
	}
	if c, _ := ParseClusion("d"); c != IncludeDescendants {
		t.Error("lower-case clusion should parse")
	}
}

func TestFocusTypeParseAndString(t *testing.T) {
	for _, f := range []FocusType{FocusPrimary, FocusParent, FocusChild, FocusSender, FocusReceiver} {
		got, err := ParseFocusType(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: got %v, %v", f, got, err)
		}
	}
	if _, err := ParseFocusType("bogus"); err == nil {
		t.Error("bad focus type accepted")
	}
}

func TestPerformanceResultValidate(t *testing.T) {
	good := &PerformanceResult{
		Metric: "time", Contexts: []Context{NewContext("/a")},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	bad := []*PerformanceResult{
		{Contexts: []Context{NewContext("/a")}},               // no metric
		{Metric: "t"},                                         // no context
		{Metric: "t", Contexts: []Context{{}}},                // empty context
		{Metric: "t", Contexts: []Context{NewContext("rel")}}, // bad name
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("bad result %d accepted", i)
		}
	}
}

func TestPerformanceResultAllResources(t *testing.T) {
	pr := &PerformanceResult{
		Metric: "t",
		Contexts: []Context{
			{Type: FocusSender, Resources: []ResourceName{"/b", "/a"}},
			{Type: FocusReceiver, Resources: []ResourceName{"/a", "/c"}},
		},
	}
	all := pr.AllResources()
	if len(all) != 3 || all[0] != "/a" || all[1] != "/b" || all[2] != "/c" {
		t.Errorf("AllResources = %v", all)
	}
}

func TestPrimaryContext(t *testing.T) {
	pr := &PerformanceResult{
		Metric: "t",
		Contexts: []Context{
			{Type: FocusSender, Resources: []ResourceName{"/s"}},
			{Type: FocusPrimary, Resources: []ResourceName{"/p"}},
		},
	}
	if got := pr.PrimaryContext(); len(got.Resources) != 1 || got.Resources[0] != "/p" {
		t.Errorf("PrimaryContext = %v", got)
	}
	none := &PerformanceResult{Metric: "t", Contexts: []Context{{Type: FocusSender, Resources: []ResourceName{"/s"}}}}
	if got := none.PrimaryContext(); len(got.Resources) != 0 {
		t.Errorf("missing primary should be empty, got %v", got)
	}
}

func TestFamilySignatureCanonical(t *testing.T) {
	a := NewFamily("/x", "/y", "/z")
	b := NewFamily("/z", "/x")
	b.Add("/y")
	if a.Signature() != b.Signature() {
		t.Error("same member set, different signatures")
	}
	c := NewFamily("/x", "/y")
	if a.Signature() == c.Signature() {
		t.Error("different member sets, equal signatures")
	}
	if NewFamily().Signature() == c.Signature() {
		t.Error("empty family collides with non-empty")
	}
}

func TestPRFilterSignatureOrderAndDuplicates(t *testing.T) {
	a := NewFamily("/x", "/y")
	b := NewFamily("/z")
	fwd := PRFilter{Families: []Family{a, b}}
	rev := PRFilter{Families: []Family{b, a}}
	dup := PRFilter{Families: []Family{a, b, a}}
	if fwd.Signature() != rev.Signature() {
		t.Error("family order changed the signature")
	}
	if fwd.Signature() != dup.Signature() {
		t.Error("duplicate family changed the signature")
	}
	only := PRFilter{Families: []Family{a}}
	if fwd.Signature() == only.Signature() {
		t.Error("dropping a family kept the signature")
	}
	if (PRFilter{}).Signature() == only.Signature() {
		t.Error("empty filter collides")
	}
}
