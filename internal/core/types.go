package core

import (
	"fmt"
	"sort"
)

// Base resource types from Figure 2 of the paper: five hierarchies plus
// the non-hierarchical types. PerfTrack loads these through the same type
// extension interface that users call to add their own hierarchies.
var baseHierarchies = []TypePath{
	"build", "build/module", "build/module/function", "build/module/function/codeBlock",
	"grid", "grid/machine", "grid/machine/partition", "grid/machine/partition/node",
	"grid/machine/partition/node/processor",
	"environment", "environment/module", "environment/module/function",
	"environment/module/function/codeBlock",
	"execution", "execution/process", "execution/process/thread",
	"time", "time/interval",
}

var baseFlatTypes = []TypePath{
	"application", "compiler", "preprocessor", "inputDeck",
	"submission", "operatingSystem", "metric", "performanceTool",
}

// BaseTypes returns the full set of base resource types, hierarchical
// levels first, then flat types.
func BaseTypes() []TypePath {
	out := make([]TypePath, 0, len(baseHierarchies)+len(baseFlatTypes))
	out = append(out, baseHierarchies...)
	out = append(out, baseFlatTypes...)
	return out
}

// TypeSystem is the extensible registry of resource types (§2.1). Users
// may add new top-level hierarchies or new levels within existing ones;
// every registered type except a root must have its parent registered
// first.
type TypeSystem struct {
	types map[TypePath]bool
}

// NewTypeSystem returns an empty type system.
func NewTypeSystem() *TypeSystem {
	return &TypeSystem{types: make(map[TypePath]bool)}
}

// NewBaseTypeSystem returns a type system preloaded with the Figure 2
// base types.
func NewBaseTypeSystem() *TypeSystem {
	ts := NewTypeSystem()
	for _, t := range BaseTypes() {
		if err := ts.Add(t); err != nil {
			panic(fmt.Sprintf("core: base types are inconsistent: %v", err))
		}
	}
	return ts
}

// Add registers a type path. The parent path must already exist unless
// the path is a single level (a new hierarchy root). Adding an existing
// type is a no-op.
func (ts *TypeSystem) Add(t TypePath) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if ts.types[t] {
		return nil
	}
	if p := t.Parent(); p != "" && !ts.types[p] {
		return fmt.Errorf("core: cannot add type %q: parent %q not registered", t, p)
	}
	ts.types[t] = true
	return nil
}

// Has reports whether the type path is registered.
func (ts *TypeSystem) Has(t TypePath) bool { return ts.types[t] }

// All returns every registered type path, sorted.
func (ts *TypeSystem) All() []TypePath {
	out := make([]TypePath, 0, len(ts.types))
	for t := range ts.types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots returns the registered top-level types, sorted.
func (ts *TypeSystem) Roots() []TypePath {
	var out []TypePath
	for t := range ts.types {
		if t.Parent() == "" {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the registered direct children of a type, sorted.
func (ts *TypeSystem) Children(t TypePath) []TypePath {
	var out []TypePath
	for c := range ts.types {
		if c.Parent() == t {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckResource verifies that a resource name is consistent with its type:
// both must validate, the type must be registered, and the depths must
// agree (each name component corresponds to one type level).
func (ts *TypeSystem) CheckResource(name ResourceName, typ TypePath) error {
	if err := name.Validate(); err != nil {
		return err
	}
	if err := typ.Validate(); err != nil {
		return err
	}
	if !ts.Has(typ) {
		return fmt.Errorf("core: resource %q has unregistered type %q", name, typ)
	}
	if name.Depth() != typ.Depth() {
		return fmt.Errorf("core: resource %q (depth %d) does not match type %q (depth %d)",
			name, name.Depth(), typ, typ.Depth())
	}
	return nil
}
