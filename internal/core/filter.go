package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Clusion is the ancestor/descendant flag on a resource filter (§2.2),
// shown in the GUI's "Relatives" column as D, A, B, or N. It extends the
// resulting resource family with relatives of each member resource.
type Clusion int

// Clusion values.
const (
	IncludeNeither     Clusion = iota // N
	IncludeDescendants                // D — the GUI default
	IncludeAncestors                  // A
	IncludeBoth                       // B
)

// String returns the GUI letter for the flag.
func (c Clusion) String() string {
	switch c {
	case IncludeNeither:
		return "N"
	case IncludeDescendants:
		return "D"
	case IncludeAncestors:
		return "A"
	case IncludeBoth:
		return "B"
	default:
		return "?"
	}
}

// ParseClusion parses a GUI relatives letter.
func ParseClusion(s string) (Clusion, error) {
	switch strings.ToUpper(s) {
	case "N":
		return IncludeNeither, nil
	case "D":
		return IncludeDescendants, nil
	case "A":
		return IncludeAncestors, nil
	case "B":
		return IncludeBoth, nil
	}
	return 0, fmt.Errorf("core: unknown relatives flag %q", s)
}

// Comparator is a comparison operator in an attribute predicate.
type Comparator string

// Attribute comparators. String attributes compare lexically unless both
// operands parse as numbers, in which case they compare numerically.
const (
	CmpEq       Comparator = "="
	CmpNe       Comparator = "!="
	CmpLt       Comparator = "<"
	CmpLe       Comparator = "<="
	CmpGt       Comparator = ">"
	CmpGe       Comparator = ">="
	CmpContains Comparator = "contains"
)

// AttrPredicate is one attribute-value-comparator tuple in a resource
// filter.
type AttrPredicate struct {
	Attr  string
	Cmp   Comparator
	Value string
}

// Eval applies the predicate to an attribute value.
func (p AttrPredicate) Eval(got string) bool {
	if p.Cmp == CmpContains {
		return strings.Contains(got, p.Value)
	}
	var c int
	if gf, err1 := strconv.ParseFloat(got, 64); err1 == nil {
		if wf, err2 := strconv.ParseFloat(p.Value, 64); err2 == nil {
			switch {
			case gf < wf:
				c = -1
			case gf > wf:
				c = 1
			}
			return cmpResult(p.Cmp, c)
		}
	}
	c = strings.Compare(got, p.Value)
	return cmpResult(p.Cmp, c)
}

func cmpResult(cmp Comparator, c int) bool {
	switch cmp {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// ResourceFilter selects a set of resources (§2.2). Exactly one of the
// three selection modes should be set: a resource type, a resource name
// (full path, or a base name matched against the final component), or a
// list of attribute predicates (all must hold). The Include flag extends
// the result with ancestors and/or descendants of each selected resource.
type ResourceFilter struct {
	Type     TypePath
	Name     ResourceName // full name if it begins with '/', else a base name
	BaseName string       // explicit base-name match, e.g. "batch"
	Attrs    []AttrPredicate
	Include  Clusion
}

// Matches reports whether the filter's selection criteria (before
// relatives expansion) select the resource.
func (rf ResourceFilter) Matches(r *Resource) bool {
	switch {
	case rf.Name != "":
		if r.Name != rf.Name {
			return false
		}
	case rf.BaseName != "":
		if r.Name.BaseName() != rf.BaseName {
			return false
		}
	case rf.Type != "":
		if r.Type != rf.Type {
			return false
		}
	}
	for _, p := range rf.Attrs {
		got, ok := r.Attributes[p.Attr]
		if !ok || !p.Eval(got) {
			return false
		}
	}
	return true
}

// Family is a resource family: a set of resources, all drawn from the
// same type hierarchy, produced by applying a resource filter.
type Family struct {
	members map[ResourceName]bool
}

// NewFamily builds a family from the given resource names.
func NewFamily(names ...ResourceName) Family {
	f := Family{members: make(map[ResourceName]bool, len(names))}
	for _, n := range names {
		f.members[n] = true
	}
	return f
}

// Add inserts a resource into the family.
func (f Family) Add(n ResourceName) { f.members[n] = true }

// Contains reports family membership.
func (f Family) Contains(n ResourceName) bool { return f.members[n] }

// Size returns the number of member resources.
func (f Family) Size() int { return len(f.members) }

// Members returns the member names, sorted.
func (f Family) Members() []ResourceName {
	out := make([]ResourceName, 0, len(f.members))
	for n := range f.members {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Signature returns a canonical identity for the family's member set:
// two families have equal signatures iff they contain the same resources,
// regardless of insertion order. Query layers use it as a cache key.
func (f Family) Signature() string {
	h := sha256.New()
	for _, n := range f.Members() {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Apply evaluates a resource filter over a resource universe, including
// relatives per the filter's Include flag, and returns the family.
func (rf ResourceFilter) Apply(universe []*Resource) Family {
	fam := NewFamily()
	// First pass: direct matches.
	var matched []ResourceName
	for _, r := range universe {
		if rf.Matches(r) {
			fam.Add(r.Name)
			matched = append(matched, r.Name)
		}
	}
	if rf.Include == IncludeNeither || len(matched) == 0 {
		return fam
	}
	wantAnc := rf.Include == IncludeAncestors || rf.Include == IncludeBoth
	wantDesc := rf.Include == IncludeDescendants || rf.Include == IncludeBoth
	if wantAnc {
		for _, m := range matched {
			for _, a := range m.Ancestors() {
				fam.Add(a)
			}
		}
	}
	if wantDesc {
		for _, r := range universe {
			for _, m := range matched {
				if m.IsAncestorOf(r.Name) {
					fam.Add(r.Name)
					break
				}
			}
		}
	}
	return fam
}

// PRFilter is a set of resource families used to find performance results
// of interest (§2.2).
type PRFilter struct {
	Families []Family
}

// Signature returns a canonical identity for the pr-filter: family order
// and duplicate families do not affect it, mirroring the match rule's
// semantics (intersection is commutative and idempotent).
func (prf PRFilter) Signature() string {
	sigs := make([]string, 0, len(prf.Families))
	for _, fam := range prf.Families {
		sigs = append(sigs, fam.Signature())
	}
	sort.Strings(sigs)
	out := sigs[:0]
	for _, sig := range sigs {
		if len(out) == 0 || sig != out[len(out)-1] {
			out = append(out, sig)
		}
	}
	return strings.Join(out, "+")
}

// MatchesResources implements the paper's match rule against the union of
// a result's context resources:
//
//	PRF matches C ⇔ ∀ R ∈ PRF: ∃ r ∈ C such that r ∈ R.
func (prf PRFilter) MatchesResources(ctx []ResourceName) bool {
	for _, fam := range prf.Families {
		found := false
		for _, r := range ctx {
			if fam.Contains(r) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Matches applies the filter to a performance result, using the union of
// resources across its contexts.
func (prf PRFilter) Matches(pr *PerformanceResult) bool {
	return prf.MatchesResources(pr.AllResources())
}

// Filter returns the subset of performance results matching the filter.
func (prf PRFilter) Filter(prs []*PerformanceResult) []*PerformanceResult {
	var out []*PerformanceResult
	for _, pr := range prs {
		if prf.Matches(pr) {
			out = append(out, pr)
		}
	}
	return out
}
