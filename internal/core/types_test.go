package core

import "testing"

func TestBaseTypesComplete(t *testing.T) {
	ts := NewBaseTypeSystem()
	// Figure 2: five hierarchies.
	for _, leaf := range []TypePath{
		"build/module/function/codeBlock",
		"grid/machine/partition/node/processor",
		"environment/module/function/codeBlock",
		"execution/process/thread",
		"time/interval",
	} {
		if !ts.Has(leaf) {
			t.Errorf("base type %q missing", leaf)
		}
	}
	// Eight non-hierarchical types (incl. performanceTool).
	for _, flat := range []TypePath{
		"application", "compiler", "preprocessor", "inputDeck",
		"submission", "operatingSystem", "metric", "performanceTool",
	} {
		if !ts.Has(flat) {
			t.Errorf("flat type %q missing", flat)
		}
	}
}

func TestTypeSystemAddRequiresParent(t *testing.T) {
	ts := NewTypeSystem()
	if err := ts.Add("a/b"); err == nil {
		t.Error("adding child without parent should fail")
	}
	if err := ts.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add("a/b"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add("a/b"); err != nil {
		t.Errorf("re-adding should be a no-op, got %v", err)
	}
}

func TestTypeSystemExtension(t *testing.T) {
	// §3.1: extend Time with a sub-interval level; add a new hierarchy.
	ts := NewBaseTypeSystem()
	if err := ts.Add("time/interval/calculationPhase"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add("syncObject"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add("syncObject/communicator"); err != nil {
		t.Fatal(err)
	}
	if !ts.Has("syncObject/communicator") {
		t.Error("extension not registered")
	}
}

func TestTypeSystemRootsAndChildren(t *testing.T) {
	ts := NewBaseTypeSystem()
	roots := ts.Roots()
	if len(roots) != 13 { // 5 hierarchies + 8 flat types
		t.Errorf("Roots = %d entries: %v", len(roots), roots)
	}
	kids := ts.Children("grid")
	if len(kids) != 1 || kids[0] != "grid/machine" {
		t.Errorf("Children(grid) = %v", kids)
	}
	if len(ts.Children("application")) != 0 {
		t.Error("flat type should have no children")
	}
}

func TestCheckResource(t *testing.T) {
	ts := NewBaseTypeSystem()
	ok := []struct {
		n ResourceName
		p TypePath
	}{
		{"/Linpack", "application"},
		{"/SingleMachineFrost/Frost/batch/frost121/p0", "grid/machine/partition/node/processor"},
		{"/irs/Irs.c/main", "build/module/function"},
	}
	for _, c := range ok {
		if err := ts.CheckResource(c.n, c.p); err != nil {
			t.Errorf("CheckResource(%q, %q): %v", c.n, c.p, err)
		}
	}
	bad := []struct {
		n ResourceName
		p TypePath
	}{
		{"/Linpack", "grid/machine"}, // depth mismatch
		{"/a/b", "nosuchtype/x"},     // unregistered type
		{"relative", "application"},  // bad name
		{"/Linpack", ""},             // bad type
	}
	for _, c := range bad {
		if err := ts.CheckResource(c.n, c.p); err == nil {
			t.Errorf("CheckResource(%q, %q) should fail", c.n, c.p)
		}
	}
}

func TestTypeSystemValidatesNewTypes(t *testing.T) {
	ts := NewTypeSystem()
	for _, bad := range []TypePath{"", "/x", "x/"} {
		if err := ts.Add(bad); err == nil {
			t.Errorf("Add(%q) should fail", bad)
		}
	}
}
