// Package core defines the PerfTrack data model from Section 2 of the
// paper: resources with hierarchical, extensible types; attributes and
// resource constraints; metrics; performance results with one or more
// contexts; and pr-filters built from resource families, with the match
// rule
//
//	PRF matches C  ⇔  ∀ R ∈ PRF: ∃ r ∈ C such that r ∈ R.
//
// The model is storage-independent; package datastore maps it onto the
// relational schema of Figure 1.
package core

import (
	"fmt"
	"strings"
)

// TypePath is a hierarchical resource type written like a Unix path
// without a leading slash, e.g. "grid/machine/partition/node/processor".
// Non-hierarchical types are single-level paths, e.g. "application".
type TypePath string

// Segments splits the type path into its levels.
func (t TypePath) Segments() []string {
	if t == "" {
		return nil
	}
	return strings.Split(string(t), "/")
}

// Depth is the number of levels in the type path.
func (t TypePath) Depth() int { return len(t.Segments()) }

// Leaf is the final (most specific) type level.
func (t TypePath) Leaf() string {
	segs := t.Segments()
	if len(segs) == 0 {
		return ""
	}
	return segs[len(segs)-1]
}

// Root is the first (most general) type level, e.g. "grid".
func (t TypePath) Root() string {
	segs := t.Segments()
	if len(segs) == 0 {
		return ""
	}
	return segs[0]
}

// Parent is the type path with the final level removed; it is "" for a
// top-level type.
func (t TypePath) Parent() TypePath {
	i := strings.LastIndexByte(string(t), '/')
	if i < 0 {
		return ""
	}
	return t[:i]
}

// Child extends the type path by one level.
func (t TypePath) Child(level string) TypePath {
	if t == "" {
		return TypePath(level)
	}
	return TypePath(string(t) + "/" + level)
}

// IsAncestorOf reports whether t is a proper prefix hierarchy of other.
func (t TypePath) IsAncestorOf(other TypePath) bool {
	return t != other && strings.HasPrefix(string(other), string(t)+"/")
}

// Validate checks that the type path is well formed: nonempty levels, no
// leading or trailing slash.
func (t TypePath) Validate() error {
	if t == "" {
		return fmt.Errorf("core: empty type path")
	}
	if strings.HasPrefix(string(t), "/") || strings.HasSuffix(string(t), "/") {
		return fmt.Errorf("core: type path %q must not begin or end with '/'", t)
	}
	for _, seg := range t.Segments() {
		if seg == "" {
			return fmt.Errorf("core: type path %q has an empty level", t)
		}
	}
	return nil
}

// ResourceName is a full resource name: a Unix-style absolute path naming
// a resource and all its ancestors, e.g.
// "/SingleMachineFrost/Frost/batch/frost121/p0". Full resource names are
// unique within a data store.
type ResourceName string

// Segments splits the name into its levels (without the leading slash).
func (n ResourceName) Segments() []string {
	s := strings.TrimPrefix(string(n), "/")
	if s == "" {
		return nil
	}
	return strings.Split(s, "/")
}

// Depth is the number of levels in the resource name.
func (n ResourceName) Depth() int { return len(n.Segments()) }

// BaseName is the final path component: the paper's shorthand "base name"
// (e.g. "batch" for any machine's batch partition).
func (n ResourceName) BaseName() string {
	segs := n.Segments()
	if len(segs) == 0 {
		return ""
	}
	return segs[len(segs)-1]
}

// Parent is the name with the final component removed; it is "" for a
// top-level resource.
func (n ResourceName) Parent() ResourceName {
	i := strings.LastIndexByte(string(n), '/')
	if i <= 0 {
		return ""
	}
	return n[:i]
}

// Child extends the resource name by one component.
func (n ResourceName) Child(base string) ResourceName {
	return ResourceName(string(n) + "/" + base)
}

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n ResourceName) IsAncestorOf(other ResourceName) bool {
	return n != other && strings.HasPrefix(string(other), string(n)+"/")
}

// Ancestors lists every proper ancestor of the name, nearest last; a
// top-level resource has none.
func (n ResourceName) Ancestors() []ResourceName {
	var out []ResourceName
	for p := n.Parent(); p != ""; p = p.Parent() {
		out = append(out, p)
	}
	// Reverse for root-first order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Validate checks that the name is a well-formed absolute path. The
// characters '(', ')', ',' and ':' are reserved by PTdf's resource-set
// syntax and may not appear in names.
func (n ResourceName) Validate() error {
	if n == "" {
		return fmt.Errorf("core: empty resource name")
	}
	if !strings.HasPrefix(string(n), "/") {
		return fmt.Errorf("core: resource name %q must begin with '/'", n)
	}
	if strings.HasSuffix(string(n), "/") {
		return fmt.Errorf("core: resource name %q must not end with '/'", n)
	}
	if strings.ContainsAny(string(n), "(),:") {
		return fmt.Errorf("core: resource name %q contains a character reserved by PTdf resource-set syntax", n)
	}
	for _, seg := range n.Segments() {
		if seg == "" {
			return fmt.Errorf("core: resource name %q has an empty component", n)
		}
	}
	return nil
}
