package reldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
)

// Columnar segment files. A segment is an immutable, PK-sorted,
// column-major flush of one table's recent rows, written by the
// background compactor of the "segment" storage engine. On-disk layout:
//
//	8 bytes   magic "PTSEG001"
//	body      row-ID block, then one block per column
//	footer    payload (below)
//	uint32    footer length (little endian)
//	uint32    CRC-32 (IEEE) of the footer payload
//	8 bytes   magic again (torn-tail sentinel)
//
// The footer carries the table name, row count, and a per-column
// directory: kind, encoding, body offset/length, null bitmap flag, and a
// zone map (min/max) for numeric columns. A CRC over the whole body is
// stored in the footer, so a segment is either verifiably intact or
// rejected as a unit — there is no partial recovery, because the WAL
// remains the source of truth for everything a segment holds until the
// next checkpoint truncates it.
//
// Column encodings:
//
//	int64   delta-encoded from the previous value, zig-zag varints
//	float64 raw little-endian bits, 8 bytes per row
//	string  dictionary: unique values once, then a varint code per row
//	bool    bitmap, 1 bit per row
//
// NULLs are a presence bitmap per column (only written when a column
// actually contains NULLs) with zero placeholders in the value stream.

const segMagic = "PTSEG001"

// ErrCorruptSegment reports a segment file that failed structural or
// checksum validation (including a torn tail from a crashed write).
var ErrCorruptSegment = errors.New("reldb: corrupt segment file")

const (
	segEncInt    byte = 1
	segEncFloat  byte = 2
	segEncString byte = 3
	segEncBool   byte = 4
)

// colVec is one decoded, memory-resident column. String columns keep
// both representations: the expanded strs slice for row-at-a-time reads
// and the dictionary form (codes + words) so vectorized kernels can
// filter and group on small integer codes, deferring code→string
// resolution to final output.
type colVec struct {
	kind   Kind
	ints   []int64
	floats []float64
	strs   []string
	codes  []uint32 // per-row dictionary code (string columns)
	words  []string // code → string (string columns)
	bools  []bool
	nulls  []bool // true = NULL; nil when the column has no NULLs
}

// zoneMap is the per-column min/max summary used to skip segments whose
// value range cannot intersect a scan predicate.
type zoneMap struct {
	valid      bool
	minI, maxI int64
	minF, maxF float64
}

// segment is a decoded in-memory segment: the columns stay resident so
// scans are pure slice iteration, bounded by memory bandwidth.
type segment struct {
	table    string
	file     string // on-disk path ("" for not-yet-written)
	rows     int
	sizeOn   int64 // encoded (on-disk) size in bytes
	rowIDs   []int64
	cols     []colVec
	zones    []zoneMap
	minRowID int64
	maxRowID int64
	minPK    int64 // first primary-key column zone (int PKs only)
	maxPK    int64
}

// decodedBytes approximates the resident bytes a full scan of the
// segment touches, for the scan-bytes histogram.
func (s *segment) decodedBytes() int64 {
	n := int64(len(s.rowIDs) * 8)
	for i := range s.cols {
		c := &s.cols[i]
		n += int64(len(c.ints)*8 + len(c.floats)*8 + len(c.bools))
		for _, v := range c.strs {
			n += int64(len(v)) + 16
		}
		n += int64(len(c.nulls))
	}
	return n
}

// buildSegment sorts (ids, rows) by encoded primary key and lays the
// batch out column-major. rows must all match schema; ids[i] is the row
// ID of rows[i].
func buildSegment(t *Table, ids []int64, rows []Row) (*segment, error) {
	if len(ids) == 0 || len(ids) != len(rows) {
		return nil, fmt.Errorf("reldb: buildSegment: bad batch (%d ids, %d rows)", len(ids), len(rows))
	}
	order := make([]int, len(ids))
	keys := make([][]byte, len(ids))
	for i := range ids {
		order[i] = i
		keys[i] = t.pkKey(rows[i])
	}
	sort.Slice(order, func(a, b int) bool {
		return string(keys[order[a]]) < string(keys[order[b]])
	})
	schema := t.schema
	seg := &segment{
		table:    schema.Name,
		rows:     len(ids),
		rowIDs:   make([]int64, len(ids)),
		cols:     make([]colVec, len(schema.Columns)),
		zones:    make([]zoneMap, len(schema.Columns)),
		minRowID: math.MaxInt64,
		maxRowID: math.MinInt64,
	}
	for ci, col := range schema.Columns {
		cv := &seg.cols[ci]
		cv.kind = col.Type
		switch col.Type {
		case KindInt:
			cv.ints = make([]int64, len(ids))
		case KindFloat:
			cv.floats = make([]float64, len(ids))
		case KindString:
			cv.strs = make([]string, len(ids))
		case KindBool:
			cv.bools = make([]bool, len(ids))
		default:
			return nil, fmt.Errorf("reldb: buildSegment: column %q has unsupported kind %v", col.Name, col.Type)
		}
	}
	for out, in := range order {
		id, row := ids[in], rows[in]
		seg.rowIDs[out] = id
		if id < seg.minRowID {
			seg.minRowID = id
		}
		if id > seg.maxRowID {
			seg.maxRowID = id
		}
		for ci := range schema.Columns {
			cv := &seg.cols[ci]
			v := row[ci]
			if v.IsNull() {
				if cv.nulls == nil {
					cv.nulls = make([]bool, len(ids))
				}
				cv.nulls[out] = true
				continue
			}
			z := &seg.zones[ci]
			switch cv.kind {
			case KindInt:
				n := v.Int64()
				cv.ints[out] = n
				if !z.valid || n < z.minI {
					z.minI = n
				}
				if !z.valid || n > z.maxI {
					z.maxI = n
				}
				z.valid = true
			case KindFloat:
				f := v.Float64()
				cv.floats[out] = f
				if !z.valid || f < z.minF {
					z.minF = f
				}
				if !z.valid || f > z.maxF {
					z.maxF = f
				}
				z.valid = true
			case KindString:
				cv.strs[out] = v.Text()
			case KindBool:
				cv.bools[out] = v.Truth()
			}
		}
	}
	for ci := range seg.cols {
		if cv := &seg.cols[ci]; cv.kind == KindString {
			cv.buildDict()
		}
	}
	if len(t.pkCols) > 0 && schema.Columns[t.pkCols[0]].Type == KindInt {
		z := seg.zones[t.pkCols[0]]
		seg.minPK, seg.maxPK = z.minI, z.maxI
	}
	return seg, nil
}

// buildDict derives the dictionary form (codes + words) of a string
// column from its expanded values, in first-appearance order — the same
// order encodeColumn assigns on-disk codes, so a segment round-trips to
// identical codes.
func (c *colVec) buildDict() {
	dict := make(map[string]uint32)
	c.codes = make([]uint32, len(c.strs))
	c.words = c.words[:0]
	for i, s := range c.strs {
		code, ok := dict[s]
		if !ok {
			code = uint32(len(c.words))
			dict[s] = code
			c.words = append(c.words, s)
		}
		c.codes[i] = code
	}
}

// row reconstructs row i as a Row (recovery path).
func (s *segment) row(i int) Row {
	row := make(Row, len(s.cols))
	for ci := range s.cols {
		c := &s.cols[ci]
		if c.nulls != nil && c.nulls[i] {
			row[ci] = Null()
			continue
		}
		switch c.kind {
		case KindInt:
			row[ci] = Int(c.ints[i])
		case KindFloat:
			row[ci] = Float(c.floats[i])
		case KindString:
			row[ci] = Str(c.strs[i])
		case KindBool:
			row[ci] = Bool(c.bools[i])
		}
	}
	return row
}

// --- encoding ---

func encodeInt64Block(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = putVarint(dst, v-prev)
		prev = v
	}
	return dst
}

func encodeBitmap(dst []byte, bits []bool) []byte {
	cur := byte(0)
	for i, b := range bits {
		if b {
			cur |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(bits)&7 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

func encodeColumn(dst []byte, c *colVec) []byte {
	switch c.kind {
	case KindInt:
		dst = encodeInt64Block(dst, c.ints)
	case KindFloat:
		var buf [8]byte
		for _, f := range c.floats {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			dst = append(dst, buf[:]...)
		}
	case KindString:
		if c.codes == nil {
			c.buildDict()
		}
		dst = putUvarint(dst, uint64(len(c.words)))
		for _, w := range c.words {
			dst = putString(dst, w)
		}
		for _, code := range c.codes {
			dst = putUvarint(dst, uint64(code))
		}
	case KindBool:
		dst = encodeBitmap(dst, c.bools)
	}
	return dst
}

// encodeSegment serializes the segment to its on-disk byte image.
func encodeSegment(s *segment) []byte {
	buf := append([]byte(nil), segMagic...)
	type extent struct{ off, n uint64 }
	bodyStart := len(buf)

	rowIDExt := extent{off: uint64(len(buf) - bodyStart)}
	buf = encodeInt64Block(buf, s.rowIDs)
	rowIDExt.n = uint64(len(buf)-bodyStart) - rowIDExt.off

	colExt := make([]extent, len(s.cols))
	for ci := range s.cols {
		c := &s.cols[ci]
		colExt[ci].off = uint64(len(buf) - bodyStart)
		if c.nulls != nil {
			buf = append(buf, 1)
			buf = encodeBitmap(buf, c.nulls)
		} else {
			buf = append(buf, 0)
		}
		buf = encodeColumn(buf, c)
		colExt[ci].n = uint64(len(buf)-bodyStart) - colExt[ci].off
	}
	bodyCRC := crc32.ChecksumIEEE(buf[bodyStart:])

	footer := putString(nil, s.table)
	footer = putUvarint(footer, uint64(s.rows))
	footer = putVarint(footer, s.minRowID)
	footer = putVarint(footer, s.maxRowID)
	footer = putVarint(footer, s.minPK)
	footer = putVarint(footer, s.maxPK)
	footer = putUvarint(footer, rowIDExt.off)
	footer = putUvarint(footer, rowIDExt.n)
	footer = putUvarint(footer, uint64(len(s.cols)))
	for ci := range s.cols {
		c := &s.cols[ci]
		footer = append(footer, byte(c.kind))
		footer = putUvarint(footer, colExt[ci].off)
		footer = putUvarint(footer, colExt[ci].n)
		z := s.zones[ci]
		if z.valid {
			footer = append(footer, 1)
			footer = putVarint(footer, z.minI)
			footer = putVarint(footer, z.maxI)
			var fb [16]byte
			binary.LittleEndian.PutUint64(fb[0:8], math.Float64bits(z.minF))
			binary.LittleEndian.PutUint64(fb[8:16], math.Float64bits(z.maxF))
			footer = append(footer, fb[:]...)
		} else {
			footer = append(footer, 0)
		}
	}
	footer = putUvarint(footer, uint64(bodyCRC))

	buf = append(buf, footer...)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tail[4:8], crc32.ChecksumIEEE(footer))
	buf = append(buf, tail[:]...)
	buf = append(buf, segMagic...)
	return buf
}

// --- decoding ---

func decodeInt64Block(data []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, k := binary.Varint(data)
		if k <= 0 {
			return nil, ErrCorruptSegment
		}
		data = data[k:]
		prev += d
		out[i] = prev
	}
	if len(data) != 0 {
		return nil, ErrCorruptSegment
	}
	return out, nil
}

func decodeBitmap(data []byte, n int) ([]bool, []byte, error) {
	nb := (n + 7) / 8
	if len(data) < nb {
		return nil, nil, ErrCorruptSegment
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = data[i>>3]&(1<<(uint(i)&7)) != 0
	}
	return out, data[nb:], nil
}

func decodeColumn(kind Kind, data []byte, n int) (colVec, error) {
	cv := colVec{kind: kind}
	if len(data) == 0 {
		return cv, ErrCorruptSegment
	}
	hasNulls := data[0]
	data = data[1:]
	if hasNulls > 1 {
		return cv, ErrCorruptSegment
	}
	if hasNulls == 1 {
		var err error
		cv.nulls, data, err = decodeBitmap(data, n)
		if err != nil {
			return cv, err
		}
	}
	switch kind {
	case KindInt:
		ints, err := decodeInt64Block(data, n)
		if err != nil {
			return cv, err
		}
		cv.ints = ints
	case KindFloat:
		if len(data) != n*8 {
			return cv, ErrCorruptSegment
		}
		cv.floats = make([]float64, n)
		for i := 0; i < n; i++ {
			cv.floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
	case KindString:
		p := &payloadReader{buf: data}
		nd, err := p.uvarint()
		if err != nil || nd > uint64(n) {
			return cv, ErrCorruptSegment
		}
		words := make([]string, nd)
		for i := range words {
			if words[i], err = p.str(); err != nil {
				return cv, ErrCorruptSegment
			}
		}
		cv.strs = make([]string, n)
		cv.codes = make([]uint32, n)
		cv.words = words
		for i := 0; i < n; i++ {
			code, err := p.uvarint()
			if err != nil || code >= uint64(len(words)) {
				return cv, ErrCorruptSegment
			}
			cv.strs[i] = words[code]
			cv.codes[i] = uint32(code)
		}
		if !p.empty() {
			return cv, ErrCorruptSegment
		}
	case KindBool:
		bools, rest, err := decodeBitmap(data, n)
		if err != nil || len(rest) != 0 {
			return cv, ErrCorruptSegment
		}
		cv.bools = bools
	default:
		return cv, ErrCorruptSegment
	}
	return cv, nil
}

// decodeSegment parses and validates a full segment image.
func decodeSegment(buf []byte) (*segment, error) {
	const magicLen = 8
	minLen := 2*magicLen + 8
	if len(buf) < minLen ||
		string(buf[:magicLen]) != segMagic ||
		string(buf[len(buf)-magicLen:]) != segMagic {
		return nil, ErrCorruptSegment
	}
	tail := buf[len(buf)-magicLen-8 : len(buf)-magicLen]
	footerLen := int(binary.LittleEndian.Uint32(tail[0:4]))
	footerCRC := binary.LittleEndian.Uint32(tail[4:8])
	footerEnd := len(buf) - magicLen - 8
	if footerLen <= 0 || footerEnd-footerLen < magicLen {
		return nil, ErrCorruptSegment
	}
	footer := buf[footerEnd-footerLen : footerEnd]
	if crc32.ChecksumIEEE(footer) != footerCRC {
		return nil, ErrCorruptSegment
	}
	body := buf[magicLen : footerEnd-footerLen]

	p := &payloadReader{buf: footer}
	s := &segment{sizeOn: int64(len(buf))}
	var err error
	if s.table, err = p.str(); err != nil {
		return nil, ErrCorruptSegment
	}
	rows, err := p.uvarint()
	if err != nil || rows == 0 || rows > 1<<30 {
		return nil, ErrCorruptSegment
	}
	s.rows = int(rows)
	if s.minRowID, err = p.varint(); err != nil {
		return nil, ErrCorruptSegment
	}
	if s.maxRowID, err = p.varint(); err != nil {
		return nil, ErrCorruptSegment
	}
	if s.minPK, err = p.varint(); err != nil {
		return nil, ErrCorruptSegment
	}
	if s.maxPK, err = p.varint(); err != nil {
		return nil, ErrCorruptSegment
	}
	rowIDOff, err := p.uvarint()
	if err != nil {
		return nil, ErrCorruptSegment
	}
	rowIDLen, err := p.uvarint()
	if err != nil {
		return nil, ErrCorruptSegment
	}
	ncols, err := p.uvarint()
	if err != nil || ncols == 0 || ncols > 1<<16 {
		return nil, ErrCorruptSegment
	}
	type colMeta struct {
		kind   Kind
		off, n uint64
	}
	metas := make([]colMeta, ncols)
	s.cols = make([]colVec, ncols)
	s.zones = make([]zoneMap, ncols)
	for ci := range metas {
		kb, err := p.byteVal()
		if err != nil {
			return nil, ErrCorruptSegment
		}
		metas[ci].kind = Kind(kb)
		if metas[ci].off, err = p.uvarint(); err != nil {
			return nil, ErrCorruptSegment
		}
		if metas[ci].n, err = p.uvarint(); err != nil {
			return nil, ErrCorruptSegment
		}
		zb, err := p.byteVal()
		if err != nil || zb > 1 {
			return nil, ErrCorruptSegment
		}
		if zb == 1 {
			z := &s.zones[ci]
			z.valid = true
			if z.minI, err = p.varint(); err != nil {
				return nil, ErrCorruptSegment
			}
			if z.maxI, err = p.varint(); err != nil {
				return nil, ErrCorruptSegment
			}
			if len(p.buf) < 16 {
				return nil, ErrCorruptSegment
			}
			z.minF = math.Float64frombits(binary.LittleEndian.Uint64(p.buf[0:8]))
			z.maxF = math.Float64frombits(binary.LittleEndian.Uint64(p.buf[8:16]))
			p.buf = p.buf[16:]
		}
	}
	bodyCRC, err := p.uvarint()
	if err != nil || !p.empty() {
		return nil, ErrCorruptSegment
	}
	if crc32.ChecksumIEEE(body) != uint32(bodyCRC) {
		return nil, ErrCorruptSegment
	}

	slice := func(off, n uint64) ([]byte, error) {
		if off > uint64(len(body)) || n > uint64(len(body))-off {
			return nil, ErrCorruptSegment
		}
		return body[off : off+n], nil
	}
	rb, err := slice(rowIDOff, rowIDLen)
	if err != nil {
		return nil, err
	}
	if s.rowIDs, err = decodeInt64Block(rb, s.rows); err != nil {
		return nil, err
	}
	for ci, m := range metas {
		cb, err := slice(m.off, m.n)
		if err != nil {
			return nil, err
		}
		if s.cols[ci], err = decodeColumn(m.kind, cb, s.rows); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// writeSegmentFile encodes the segment and writes it durably to path
// (write temp, fsync, rename). The manifest gates visibility, so a crash
// mid-write leaves only an orphan file that open-time cleanup removes.
func writeSegmentFile(path string, s *segment) error {
	buf := encodeSegment(s)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("reldb: write segment: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	s.file = path
	s.sizeOn = int64(len(buf))
	return nil
}

// readSegmentFile loads and validates one segment file.
func readSegmentFile(path string) (*segment, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reldb: read segment %s: %w", path, err)
	}
	s, err := decodeSegment(buf)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	s.file = path
	return s, nil
}
