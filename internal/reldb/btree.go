package reldb

import (
	"bytes"
	"sort"
)

// btree is an in-memory B-tree mapping byte-string keys to int64 payloads
// (row IDs). It backs every table index. Keys are unique within a tree;
// non-unique indexes achieve multiplicity by suffixing the row ID onto the
// key with the order-preserving codec.
//
// The degree is fixed: interior and leaf nodes hold at most maxItems
// entries and split at the midpoint when full, giving the usual O(log n)
// point operations and ordered range scans.
const (
	btreeDegree = 32                // minimum children per interior node
	maxItems    = 2*btreeDegree - 1 // maximum items per node
)

type btreeItem struct {
	key []byte
	val int64
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// find returns the position of key in n.items and whether it is present.
func (n *btreeNode) find(key []byte) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool {
		return bytes.Compare(n.items[i].key, key) >= 0
	})
	if i < len(n.items) && bytes.Equal(n.items[i].key, key) {
		return i, true
	}
	return i, false
}

// btree is the tree root plus bookkeeping.
type btree struct {
	root *btreeNode
	size int
}

func newBTree() *btree {
	return &btree{root: &btreeNode{}}
}

// Len reports the number of entries.
func (t *btree) Len() int { return t.size }

// Get returns the payload for key and whether it exists.
func (t *btree) Get(key []byte) (int64, bool) {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Set inserts key with payload val, replacing any existing entry.
// It reports whether a new entry was created.
func (t *btree) Set(key []byte, val int64) bool {
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	created := t.root.insert(key, val)
	if created {
		t.size++
	}
	return created
}

// splitChild splits the full child at index i, lifting its median item.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := maxItems / 2
	median := child.items[mid]

	right := &btreeNode{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}

	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insert(key []byte, val int64) bool {
	i, ok := n.find(key)
	if ok {
		n.items[i].val = val
		return false
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = btreeItem{key: key, val: val}
		return true
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		switch c := bytes.Compare(key, n.items[i].key); {
		case c == 0:
			n.items[i].val = val
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(key, val)
}

// Delete removes key and reports whether it was present.
func (t *btree) Delete(key []byte) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.remove(key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

const minItems = btreeDegree - 1

func (n *btreeNode) remove(key []byte) bool {
	i, ok := n.find(key)
	if n.leaf() {
		if !ok {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if ok {
		// Replace with predecessor from the left subtree, then delete it.
		left := n.children[i]
		if len(left.items) > minItems {
			pred := left.max()
			n.items[i] = pred
			return left.remove(pred.key)
		}
		right := n.children[i+1]
		if len(right.items) > minItems {
			succ := right.min()
			n.items[i] = succ
			return right.remove(succ.key)
		}
		n.mergeChildren(i)
		return n.children[i].remove(key)
	}
	// Descend, ensuring the child can afford a removal.
	if len(n.children[i].items) <= minItems {
		i = n.rebalance(i)
	}
	return n.children[i].remove(key)
}

func (n *btreeNode) max() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *btreeNode) min() btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// rebalance gives child i enough items to tolerate a removal, borrowing
// from a sibling or merging. It returns the index to descend into.
func (n *btreeNode) rebalance(i int) int {
	if i > 0 && len(n.children[i-1].items) > minItems {
		// Rotate right: move separator down, left sibling's max up.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		// Rotate left: move separator down, right sibling's min up.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i == len(n.children)-1 {
		i--
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren merges child i, separator i, and child i+1 into child i.
func (n *btreeNode) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits entries with key in [lo, hi) in order. A nil hi means
// unbounded above; a nil lo starts at the minimum. The visitor returns
// false to stop early.
func (t *btree) Ascend(lo, hi []byte, fn func(key []byte, val int64) bool) {
	t.root.ascend(lo, hi, fn)
}

func (n *btreeNode) ascend(lo, hi []byte, fn func([]byte, int64) bool) bool {
	start := 0
	if lo != nil {
		start = sort.Search(len(n.items), func(i int) bool {
			return bytes.Compare(n.items[i].key, lo) >= 0
		})
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		if hi != nil && bytes.Compare(n.items[i].key, hi) >= 0 {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	return true
}

// prefixUpperBound returns the smallest byte string greater than every
// string with the given prefix, or nil if no such bound exists (prefix is
// all 0xFF). It is used to turn a key prefix into a half-open scan range.
func prefixUpperBound(prefix []byte) []byte {
	hi := bytes.Clone(prefix)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] != 0xFF {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}
