package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Storage engine kinds selectable through Open. The paper's prototype
// swapped DBMS backends (Oracle, PostgreSQL); here the same seam picks
// between the transient in-memory engine, the durable WAL+snapshot
// engine, and the columnar segment engine layered on top of it.
const (
	KindMem     = "mem"
	KindWAL     = "wal"
	KindSegment = "segment"
)

// engineMarkerFile records a durable store's engine kind inside its
// directory, so that auto-detecting opens (OpenFile, or Open with an
// empty kind) never silently read a segment-format store as plain WAL —
// which would drop every segment-resident row.
const engineMarkerFile = "perftrack.engine"

// Open opens a store with the requested engine kind: "mem", "wal",
// "segment", or "" to auto-detect from the directory's marker
// (defaulting to "wal" for new and legacy stores). Opening an existing
// durable store with a conflicting explicit kind is an error, except
// that a plain WAL store may be upgraded in place to "segment" (all of
// its rows live in the snapshot and WAL, so nothing is lost).
func Open(kind, dir string) (Engine, error) {
	switch kind {
	case KindMem:
		return NewMem(), nil
	case "", KindWAL, KindSegment:
	default:
		return nil, fmt.Errorf("reldb: unknown storage engine %q (want %s, %s, or %s)",
			kind, KindMem, KindWAL, KindSegment)
	}
	if dir == "" {
		return nil, fmt.Errorf("reldb: storage engine %q requires a directory", kind)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: open %s: %w", dir, err)
	}
	marker, err := readEngineMarker(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case marker == "" && kind == "":
		kind = KindWAL
	case kind == "":
		kind = marker
	case marker != "" && kind != marker:
		if marker == KindWAL && kind == KindSegment {
			break // in-place upgrade
		}
		return nil, fmt.Errorf("reldb: %s is a %q-format store; cannot open as %q", dir, marker, kind)
	}
	if kind != marker {
		if err := writeEngineMarker(dir, kind); err != nil {
			return nil, err
		}
	}
	return openFile(dir, kind == KindSegment)
}

// OpenFile opens (or creates) a durable database rooted at dir,
// auto-detecting the engine kind from the directory marker. Directories
// without a marker (including pre-marker stores) open as plain WAL.
func OpenFile(dir string) (*FileEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: open %s: %w", dir, err)
	}
	marker, err := readEngineMarker(dir)
	if err != nil {
		return nil, err
	}
	return openFile(dir, marker == KindSegment)
}

func readEngineMarker(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, engineMarkerFile))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("reldb: read engine marker: %w", err)
	}
	kind := strings.TrimSpace(string(data))
	switch kind {
	case KindWAL, KindSegment:
		return kind, nil
	}
	return "", fmt.Errorf("reldb: %s: unknown engine kind %q in marker", dir, kind)
}

func writeEngineMarker(dir, kind string) error {
	path := filepath.Join(dir, engineMarkerFile)
	if err := os.WriteFile(path, []byte(kind+"\n"), 0o644); err != nil {
		return fmt.Errorf("reldb: write engine marker: %w", err)
	}
	return nil
}

// Kind reports the storage engine kind of the in-memory engine.
func (db *DB) Kind() string { return KindMem }

// Kind reports the storage engine kind of a durable engine.
func (fe *FileEngine) Kind() string {
	if fe.seg != nil {
		return KindSegment
	}
	return KindWAL
}
