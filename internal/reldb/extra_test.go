package reldb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func linkSchema() *Schema {
	return &Schema{
		Name: "link",
		Columns: []Column{
			{Name: "a", Type: KindInt},
			{Name: "b", Type: KindInt},
		},
		PrimaryKey: []string{"a", "b"},
	}
}

func TestPKScanPrefix(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, linkSchema())
	for a := 0; a < 5; a++ {
		for b := 0; b < 10; b++ {
			if _, err := db.Insert("link", Row{Int(int64(a)), Int(int64(b))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, _ := db.Table("link")
	var got []int64
	if err := tab.PKScan([]Value{Int(3)}, func(_ int64, row Row) bool {
		if row[0].Int64() != 3 {
			t.Fatalf("prefix scan leaked a=%d", row[0].Int64())
		}
		got = append(got, row[1].Int64())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("scan found %d rows, want 10", len(got))
	}
	for i, b := range got {
		if b != int64(i) {
			t.Fatalf("order: position %d has b=%d", i, b)
		}
	}
	// Empty prefix visits everything in order.
	count := 0
	if err := tab.PKScan(nil, func(int64, Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("full PK scan = %d", count)
	}
	// Too-long prefix errors.
	if err := tab.PKScan([]Value{Int(1), Int(2), Int(3)}, nil); err == nil {
		t.Error("over-long prefix accepted")
	}
	// Missing prefix yields nothing.
	visited := false
	_ = tab.PKScan([]Value{Int(99)}, func(int64, Row) bool { visited = true; return true })
	if visited {
		t.Error("missing prefix visited rows")
	}
}

func TestPKScanEarlyStop(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, linkSchema())
	for b := 0; b < 10; b++ {
		db.Insert("link", Row{Int(1), Int(int64(b))})
	}
	tab, _ := db.Table("link")
	n := 0
	_ = tab.PKScan([]Value{Int(1)}, func(int64, Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestWALRowRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, useNull bool) bool {
		row := Row{Int(i), Float(fl), Str(s), Bool(b)}
		if useNull {
			row[0] = Null()
		}
		payload := encodeRowPayload(nil, row)
		got, err := decodeRowPayload(&payloadReader{buf: payload})
		if err != nil || len(got) != len(row) {
			return false
		}
		for idx := range row {
			// NaN compares equal under Compare's total order.
			if Compare(got[idx], row[idx]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWALRowRoundTripSpecialFloats(t *testing.T) {
	row := Row{Float(math.NaN()), Float(math.Inf(1)), Float(math.Inf(-1)), Float(0)}
	got, err := decodeRowPayload(&payloadReader{buf: encodeRowPayload(nil, row)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0].Float64()) || !math.IsInf(got[1].Float64(), 1) ||
		!math.IsInf(got[2].Float64(), -1) {
		t.Errorf("special floats = %v", got)
	}
}

// TestIndexConsistencyUnderRandomOps verifies that after a random
// insert/update/delete workload, every secondary-index scan returns
// exactly the rows a full scan filter would.
func TestIndexConsistencyUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewMem()
	schema := &Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "grp", Type: KindInt},
			{Name: "label", Type: KindString, Nullable: true},
		},
		PrimaryKey: []string{"id"},
		Indexes: []IndexSpec{
			{Name: "t_grp", Columns: []string{"grp"}},
			{Name: "t_grp_label", Columns: []string{"grp", "label"}},
		},
	}
	mustCreate(t, db, schema)
	live := map[int64]Row{}
	nextID := int64(1)
	for step := 0; step < 5000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert
			row := Row{Int(nextID), Int(int64(rng.Intn(8))), Str(fmt.Sprintf("L%d", rng.Intn(4)))}
			id, err := db.Insert("t", row)
			if err != nil {
				t.Fatal(err)
			}
			live[id] = row
			nextID++
		case 2: // update random live row
			for id := range live {
				row := Row{live[id][0], Int(int64(rng.Intn(8))), Str(fmt.Sprintf("L%d", rng.Intn(4)))}
				if err := db.Update("t", id, row); err != nil {
					t.Fatal(err)
				}
				live[id] = row
				break
			}
		case 3: // delete random live row
			for id := range live {
				if err := db.Delete("t", id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		}
	}
	tab, _ := db.Table("t")
	for grp := int64(0); grp < 8; grp++ {
		want := 0
		for _, row := range live {
			if row[1].Int64() == grp {
				want++
			}
		}
		got := 0
		if err := tab.IndexScan("t_grp", []Value{Int(grp)}, func(_ int64, row Row) bool {
			if row[1].Int64() != grp {
				t.Fatalf("index leaked grp %d into scan for %d", row[1].Int64(), grp)
			}
			got++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("grp %d: index %d rows, truth %d", grp, got, want)
		}
		// Composite index agrees too.
		for l := 0; l < 4; l++ {
			label := fmt.Sprintf("L%d", l)
			want2 := 0
			for _, row := range live {
				if row[1].Int64() == grp && row[2].Text() == label {
					want2++
				}
			}
			got2 := 0
			if err := tab.IndexScan("t_grp_label", []Value{Int(grp), Str(label)},
				func(int64, Row) bool { got2++; return true }); err != nil {
				t.Fatal(err)
			}
			if got2 != want2 {
				t.Fatalf("grp %d label %s: index %d, truth %d", grp, label, got2, want2)
			}
		}
	}
}

func TestIndexScanUnknownIndex(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tab, _ := db.Table("person")
	if err := tab.IndexScan("nosuch", nil, nil); err == nil {
		t.Error("unknown index accepted")
	}
	if err := tab.IndexRange("nosuch", Null(), Null(), nil); err == nil {
		t.Error("unknown index accepted by IndexRange")
	}
	if err := tab.IndexScan("person_by_name", []Value{Str("a"), Str("b")}, nil); err == nil {
		t.Error("over-long index prefix accepted")
	}
}

func TestDropIndex(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	db.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	if err := db.DropIndex("person", "person_by_name"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	if tab.HasIndex("person_by_name") {
		t.Error("index survives drop")
	}
	if err := tab.IndexScan("person_by_name", nil, nil); err == nil {
		t.Error("scan on dropped index accepted")
	}
	// Schema no longer lists it.
	for _, ix := range tab.Schema().Indexes {
		if ix.Name == "person_by_name" {
			t.Error("schema still lists dropped index")
		}
	}
	if err := db.DropIndex("person", "person_by_name"); err == nil {
		t.Error("double drop accepted")
	}
	if err := db.DropIndex("nosuch", "i"); err == nil {
		t.Error("drop on missing table accepted")
	}
	// Writes after the drop no longer maintain the index; re-creating
	// backfills correctly.
	db.Insert("person", Row{Int(2), Str("b"), Null(), Null()})
	if err := db.CreateIndex("person", IndexSpec{Name: "person_by_name", Columns: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tab.IndexScan("person_by_name", nil, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("recreated index holds %d rows, want 2", count)
	}
}

func TestDropIndexPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	fe.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	if err := fe.DropIndex("person", "person_by_name"); err != nil {
		t.Fatal(err)
	}
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.HasIndex("person_by_name") {
		t.Error("dropped index reappeared after WAL replay")
	}
	// After a checkpoint too.
	if err := fe2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fe2.Close()
	fe3 := openTestEngine(t, dir)
	defer fe3.Close()
	tab3, _ := fe3.Table("person")
	if tab3.HasIndex("person_by_name") {
		t.Error("dropped index reappeared after snapshot reload")
	}
}

func TestFileEngineLargeRowSurvives(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	if _, err := fe.Insert("person", Row{Int(1), Str(string(big)), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	fe.Close()
	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	row, _, ok := tab.GetByPK(Int(1))
	if !ok || len(row[1].Text()) != len(big) {
		t.Errorf("large row lost: ok=%v len=%d", ok, len(row[1].Text()))
	}
}
