package reldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.Int64() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(3.5); v.Kind() != KindFloat || v.Float64() != 3.5 {
		t.Errorf("Float(3.5) = %v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.Text() != "abc" {
		t.Errorf("Str = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.Truth() {
		t.Errorf("Bool = %v", v)
	}
	if v := Null(); !v.IsNull() || v.Kind() != KindNull {
		t.Errorf("Null = %v", v)
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueIntWidensToFloat(t *testing.T) {
	if got := Int(7).Float64(); got != 7.0 {
		t.Errorf("Int(7).Float64() = %v, want 7", got)
	}
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("same"), Str("same"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(false), 1},
		{Bool(true), Bool(true), 0},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNullSortsFirst(t *testing.T) {
	for _, v := range []Value{Int(0), Float(-1e300), Str(""), Bool(false)} {
		if Compare(Null(), v) != -1 {
			t.Errorf("NULL should sort before %v", v)
		}
		if Compare(v, Null()) != 1 {
			t.Errorf("%v should sort after NULL", v)
		}
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("2 < 2.5 across kinds")
	}
	if Compare(Float(2.5), Int(2)) != 1 {
		t.Error("2.5 > 2 across kinds")
	}
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("3 == 3.0 across kinds")
	}
}

func TestCompareNaNOrdering(t *testing.T) {
	nan := Float(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN == NaN for total order")
	}
	if Compare(nan, Float(-math.MaxFloat64)) != -1 {
		t.Error("NaN sorts before all floats")
	}
	if Compare(Float(0), nan) != 1 {
		t.Error("floats sort after NaN")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(Str(a), Str(b)) == -Compare(Str(b), Str(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		va, vb, vc := Float(a), Float(b), Float(c)
		vals := []Value{va, vb, vc}
		// Sort by Compare, then check pairwise order is consistent.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Compare(vals[j], vals[i]) < 0 {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		return Compare(vals[0], vals[1]) <= 0 && Compare(vals[1], vals[2]) <= 0 &&
			Compare(vals[0], vals[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].Int64() != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Str("hello"), "hello"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "REAL",
		KindString: "TEXT", KindBool: "BOOLEAN",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
