package reldb

import (
	"fmt"
	"sort"
	"sync"
)

// mutOp enumerates logical mutations, as recorded in the write-ahead log
// and in transaction undo logs.
type mutOp uint8

const (
	opCreateTable mutOp = iota + 1
	opDropTable
	opInsert
	opUpdate
	opDelete
	opCreateIndex
	opDropIndex
)

// mutation is one logical change to the database.
type mutation struct {
	op     mutOp
	table  string
	id     int64
	row    Row     // opInsert/opUpdate: new image
	old    Row     // opUpdate/opDelete: previous image (for undo; not logged)
	schema *Schema // opCreateTable
	index  IndexSpec
}

// mutationLogger receives each applied mutation; the file engine uses it
// to append to the WAL. It is invoked with the DB write lock held.
type mutationLogger interface {
	logMutation(m *mutation) error
}

// DB is the shared in-memory core of both storage engines: a set of tables
// guarded by one readers-writer lock. Mutations optionally stream to a
// mutationLogger for durability.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	logger mutationLogger
}

// NewMem creates an in-memory database engine. It corresponds to running
// the PerfTrack store on a transient backend.
func NewMem() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates a table from the schema.
func (db *DB) CreateTable(schema *Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createTableLocked(schema, true)
}

func (db *DB) createTableLocked(schema *Schema, log bool) error {
	if _, exists := db.tables[schema.Name]; exists {
		return fmt.Errorf("reldb: table %q already exists", schema.Name)
	}
	schema = schema.Clone()
	t, err := newTable(db, schema)
	if err != nil {
		return err
	}
	if log && db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opCreateTable, schema: schema}); err != nil {
			return err
		}
	}
	db.tables[schema.Name] = t
	return nil
}

// DropTable removes a table and its data.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; !exists {
		return fmt.Errorf("reldb: no table %q", name)
	}
	if db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opDropTable, table: name}); err != nil {
			return err
		}
	}
	delete(db.tables, name)
	return nil
}

// CreateIndex adds a secondary index to an existing table and backfills it.
func (db *DB) CreateIndex(table string, spec IndexSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, exists := db.tables[table]
	if !exists {
		return fmt.Errorf("reldb: no table %q", table)
	}
	if db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opCreateIndex, table: table, index: spec}); err != nil {
			return err
		}
	}
	if err := t.addIndex(spec); err != nil {
		return err
	}
	t.schema.Indexes = append(t.schema.Indexes, spec)
	return nil
}

// DropIndex removes a secondary index from a table.
func (db *DB) DropIndex(table, index string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, exists := db.tables[table]
	if !exists {
		return fmt.Errorf("reldb: no table %q", table)
	}
	if _, exists := t.indexes[index]; !exists {
		return fmt.Errorf("reldb: table %q has no index %q", table, index)
	}
	if db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opDropIndex, table: table,
			index: IndexSpec{Name: index}}); err != nil {
			return err
		}
	}
	delete(t.indexes, index)
	for i, spec := range t.schema.Indexes {
		if spec.Name == index {
			t.schema.Indexes = append(t.schema.Indexes[:i], t.schema.Indexes[i+1:]...)
			break
		}
	}
	return nil
}

// Table returns a handle for the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Insert adds a row to the named table, returning its row ID. A NULL value
// in a single-column integer primary key receives an auto-assigned ID.
func (db *DB) Insert(table string, row Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(table, row, true)
}

func (db *DB) insertLocked(table string, row Row, log bool) (int64, error) {
	t, exists := db.tables[table]
	if !exists {
		return 0, fmt.Errorf("reldb: no table %q", table)
	}
	id, err := t.insertLocked(row)
	if err != nil {
		return 0, err
	}
	if log && db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opInsert, table: table, id: id, row: t.rows[id]}); err != nil {
			_, _ = t.deleteLocked(id)
			return 0, err
		}
	}
	return id, nil
}

// Update replaces the row with the given ID.
func (db *DB) Update(table string, id int64, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, err := db.updateLocked(table, id, row, true)
	return err
}

func (db *DB) updateLocked(table string, id int64, row Row, log bool) (Row, error) {
	t, exists := db.tables[table]
	if !exists {
		return nil, fmt.Errorf("reldb: no table %q", table)
	}
	old, err := t.updateLocked(id, row)
	if err != nil {
		return nil, err
	}
	if log && db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opUpdate, table: table, id: id, row: t.rows[id]}); err != nil {
			_, _ = t.updateLocked(id, old)
			return nil, err
		}
	}
	return old, nil
}

// Delete removes the row with the given ID.
func (db *DB) Delete(table string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, err := db.deleteLocked(table, id, true)
	return err
}

func (db *DB) deleteLocked(table string, id int64, log bool) (Row, error) {
	t, exists := db.tables[table]
	if !exists {
		return nil, fmt.Errorf("reldb: no table %q", table)
	}
	old, err := t.deleteLocked(id)
	if err != nil {
		return nil, err
	}
	if log && db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opDelete, table: table, id: id}); err != nil {
			_, _ = t.insertLocked(old)
			return nil, err
		}
	}
	return old, nil
}

// checkForeignKeys verifies every foreign key of schema against the
// current table set. Called with the write lock held.
func (db *DB) checkForeignKeys(schema *Schema, row Row) error {
	for _, fk := range schema.ForeignKeys {
		v := row[schema.ColumnIndex(fk.Column)]
		if v.IsNull() {
			continue
		}
		ref, ok := db.tables[fk.RefTable]
		if !ok {
			return fmt.Errorf("reldb: table %q: foreign key references missing table %q",
				schema.Name, fk.RefTable)
		}
		if !ref.containsValueLocked(fk.RefColumn, v) {
			return fmt.Errorf("reldb: table %q: foreign key %s=%s has no match in %s.%s",
				schema.Name, fk.Column, v, fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}

// containsValueLocked reports whether any row has the given value in the
// named column, using the primary key or an index when possible.
func (t *Table) containsValueLocked(column string, v Value) bool {
	// Fast path: column is the whole primary key.
	if len(t.pkCols) == 1 && t.schema.Columns[t.pkCols[0]].Name == column {
		_, ok := t.primary.Get(EncodeKey(nil, v))
		return ok
	}
	// Indexed path.
	for _, ix := range t.indexes {
		if t.schema.Columns[ix.cols[0]].Name == column {
			lo := EncodeKey(nil, v)
			hi := prefixUpperBound(lo)
			found := false
			ix.tree.Ascend(lo, hi, func([]byte, int64) bool {
				found = true
				return false
			})
			return found
		}
	}
	// Fallback scan.
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return false
	}
	for _, row := range t.rows {
		if Equal(row[ci], v) {
			return true
		}
	}
	return false
}

// Stats summarizes the database contents and storage footprint. The
// file-backed engines additionally fill the on-disk fields.
type Stats struct {
	Kind       string                `json:"kind"` // storage engine kind: mem, wal, segment
	Tables     int                   `json:"tables"`
	Rows       int64                 `json:"rows"`
	DataBytes  int64                 `json:"data_bytes"`  // row payload bytes resident in memory
	IndexBytes int64                 `json:"index_bytes"` // primary + secondary B-tree key bytes
	PerTable   map[string]TableStats `json:"per_table"`

	WALBytes      int64 `json:"wal_bytes,omitempty"` // durable engines only
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	SegmentBytes  int64 `json:"segment_bytes,omitempty"` // segment engine only
	DiskBytes     int64 `json:"disk_bytes,omitempty"`    // WAL + snapshot + segments
}

// TableStats summarizes one table: row/byte footprint in the B-tree
// representation plus, on the segment engine, columnar residency.
type TableStats struct {
	Rows       int64 `json:"rows"`
	DataBytes  int64 `json:"data_bytes"`
	IndexBytes int64 `json:"index_bytes"`
	Indexes    int   `json:"indexes"`

	Segments     int   `json:"segments,omitempty"`
	SegmentRows  int64 `json:"segment_rows,omitempty"`
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
}

// Stats returns current row counts and approximate data volume.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Kind: KindMem, PerTable: make(map[string]TableStats, len(db.tables))}
	for name, t := range db.tables {
		ts := TableStats{
			Rows:       int64(len(t.rows)),
			DataBytes:  t.dataBytes,
			IndexBytes: t.indexBytesLocked(),
			Indexes:    len(t.indexes),
		}
		s.Tables++
		s.Rows += ts.Rows
		s.DataBytes += ts.DataBytes
		s.IndexBytes += ts.IndexBytes
		s.PerTable[name] = ts
	}
	return s
}

// Close releases the engine. The in-memory engine has nothing to release.
func (db *DB) Close() error { return nil }
