package reldb

// Engine is the storage-engine interface shared by the in-memory engine
// (*DB) and the durable file engine (*FileEngine). PerfTrack's data store
// is written against this interface, mirroring the original prototype's
// ability to run on either Oracle or PostgreSQL.
type Engine interface {
	CreateTable(schema *Schema) error
	CreateIndex(table string, spec IndexSpec) error
	DropIndex(table, index string) error
	DropTable(name string) error
	Table(name string) (*Table, bool)
	TableNames() []string
	Insert(table string, row Row) (int64, error)
	Update(table string, id int64, row Row) error
	Delete(table string, id int64) error
	Begin() *Tx
	Stats() Stats
	Kind() string
	Close() error
}

var (
	_ Engine = (*DB)(nil)
	_ Engine = (*FileEngine)(nil)
)
