// Package reldb implements an embedded relational database engine used as
// the data-store substrate for PerfTrack. It provides typed schemas, tables
// with primary keys, secondary and unique indexes, foreign-key checking,
// transactions with rollback, and two interchangeable storage engines: a
// pure in-memory engine and a durable file engine with a write-ahead log
// and snapshot checkpoints. The PerfTrack paper ran on Oracle or
// PostgreSQL; reldb's two engines stand in for that two-backend
// portability in an offline, dependency-free build.
package reldb

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types a column may hold.
type Kind uint8

// Column value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed datum. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload; it is 0 unless Kind is KindInt.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the float payload. Integer values are widened so that
// numeric columns can be aggregated uniformly.
func (v Value) Float64() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Text returns the string payload; it is "" unless Kind is KindString.
func (v Value) Text() string { return v.s }

// Truth returns the boolean payload; it is false unless Kind is KindBool.
func (v Value) Truth() bool { return v.b }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// numericKinds reports whether both values are numeric (int or float).
func numericKinds(a, b Value) bool {
	return (a.kind == KindInt || a.kind == KindFloat) &&
		(b.kind == KindInt || b.kind == KindFloat)
}

// Compare orders two values. NULL sorts before everything; mixed numeric
// kinds compare numerically; otherwise kinds must match and compare by
// payload. Cross-kind non-numeric comparisons order by kind so that sorting
// heterogeneous data is total and deterministic.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKinds(a, b) && a.kind != b.kind {
		af, bf := a.Float64(), b.Float64()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
	case KindFloat:
		// Order NaN first so comparison is total.
		an, bn := math.IsNaN(a.f), math.IsNaN(b.f)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
	}
	return 0
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is an ordered tuple of values matching a table schema.
type Row []Value

// Clone returns a copy of the row that shares no storage with the original.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// String renders the row for debugging.
func (r Row) String() string {
	out := "("
	for i, v := range r {
		if i > 0 {
			out += ", "
		}
		out += v.String()
	}
	return out + ")"
}
