package reldb

import (
	"errors"
	"fmt"
)

// ErrTxDone is returned by operations on a committed or rolled-back
// transaction.
var ErrTxDone = errors.New("reldb: transaction already finished")

// Tx is a database transaction. Changes are applied to the database
// immediately (so the transaction reads its own writes through the normal
// table handles) and recorded in an undo log; Rollback applies the
// inverse operations in reverse order. Durability follows the logical
// logging discipline: undo operations are themselves logged as
// compensation records, so a WAL replay reconstructs the post-rollback
// state. reldb serializes writers, so transactions are serializable by
// construction.
type Tx struct {
	db   *DB
	undo []mutation
	done bool
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db}
}

// Insert adds a row within the transaction.
func (tx *Tx) Insert(table string, row Row) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	id, err := tx.db.Insert(table, row)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, mutation{op: opInsert, table: table, id: id})
	return id, nil
}

// Update replaces a row within the transaction.
func (tx *Tx) Update(table string, id int64, row Row) error {
	if tx.done {
		return ErrTxDone
	}
	tx.db.mu.Lock()
	old, err := tx.db.updateLocked(table, id, row, true)
	tx.db.mu.Unlock()
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, mutation{op: opUpdate, table: table, id: id, old: old})
	return nil
}

// Delete removes a row within the transaction.
func (tx *Tx) Delete(table string, id int64) error {
	if tx.done {
		return ErrTxDone
	}
	tx.db.mu.Lock()
	old, err := tx.db.deleteLocked(table, id, true)
	tx.db.mu.Unlock()
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, mutation{op: opDelete, table: table, id: id, old: old})
	return nil
}

// Commit finalizes the transaction.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.undo = nil
	return nil
}

// Rollback undoes every operation performed in the transaction, in
// reverse order.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	var firstErr error
	for i := len(tx.undo) - 1; i >= 0; i-- {
		m := tx.undo[i]
		var err error
		switch m.op {
		case opInsert:
			_, err = tx.db.deleteLocked(m.table, m.id, true)
		case opUpdate:
			_, err = tx.db.updateLocked(m.table, m.id, m.old, true)
		case opDelete:
			err = tx.db.reinsertLocked(m.table, m.id, m.old)
		default:
			err = fmt.Errorf("reldb: cannot undo op %d", m.op)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	tx.undo = nil
	return firstErr
}

// reinsertLocked restores a deleted row under its original row ID.
func (db *DB) reinsertLocked(table string, id int64, row Row) error {
	t, exists := db.tables[table]
	if !exists {
		return fmt.Errorf("reldb: no table %q", table)
	}
	if _, exists := t.rows[id]; exists {
		return fmt.Errorf("reldb: table %q: row %d already present", table, id)
	}
	row = row.Clone()
	pk := t.pkKey(row)
	if _, exists := t.primary.Get(pk); exists {
		return fmt.Errorf("reldb: table %q: duplicate primary key %s", table, row)
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, id); err != nil {
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(row, id)
			}
			return err
		}
	}
	t.rows[id] = row
	t.primary.Set(pk, id)
	t.dataBytes += rowBytes(row)
	t.pkBytes += int64(len(pk)) + 8
	if id >= t.nextID {
		t.nextID = id + 1
	}
	if db.logger != nil {
		if err := db.logger.logMutation(&mutation{op: opInsert, table: table, id: id, row: row}); err != nil {
			return err
		}
	}
	return nil
}
