package reldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func personSchema() *Schema {
	return &Schema{
		Name: "person",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "name", Type: KindString},
			{Name: "age", Type: KindInt, Nullable: true},
			{Name: "score", Type: KindFloat, Nullable: true},
		},
		PrimaryKey: []string{"id"},
		Indexes: []IndexSpec{
			{Name: "person_by_name", Columns: []string{"name"}},
		},
	}
}

func mustCreate(t *testing.T, db Engine, s *Schema) {
	t.Helper()
	if err := db.CreateTable(s); err != nil {
		t.Fatalf("CreateTable(%s): %v", s.Name, err)
	}
}

func TestSchemaValidate(t *testing.T) {
	good := personSchema()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []*Schema{
		{},          // no name
		{Name: "t"}, // no columns
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}, {Name: "a", Type: KindInt}}, PrimaryKey: []string{"a"}},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}}},                            // no PK
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}}, PrimaryKey: []string{"b"}}, // missing PK col
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt, Nullable: true}}, PrimaryKey: []string{"a"}},
		{Name: "t", Columns: []Column{{Name: "a", Type: Kind(99)}}, PrimaryKey: []string{"a"}},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}}, PrimaryKey: []string{"a"},
			Indexes: []IndexSpec{{Name: "i", Columns: []string{"zzz"}}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}}, PrimaryKey: []string{"a"},
			ForeignKeys: []ForeignKey{{Column: "zzz", RefTable: "x", RefColumn: "y"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestInsertAndGetByPK(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id, err := db.Insert("person", Row{Int(1), Str("ada"), Int(36), Float(9.5)})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	row, gotID, ok := tab.GetByPK(Int(1))
	if !ok || gotID != id {
		t.Fatalf("GetByPK: ok=%v id=%d", ok, gotID)
	}
	if row[1].Text() != "ada" || row[2].Int64() != 36 {
		t.Errorf("row = %v", row)
	}
}

func TestInsertAutoID(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id1, err := db.Insert("person", Row{Null(), Str("a"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := db.Insert("person", Row{Null(), Str("b"), Null(), Null()})
	if id2 <= id1 {
		t.Errorf("auto IDs not increasing: %d then %d", id1, id2)
	}
	tab, _ := db.Table("person")
	row, _, ok := tab.GetByPK(Int(id1))
	if !ok || row[0].Int64() != id1 {
		t.Errorf("auto ID not stored in PK column: %v", row)
	}
}

func TestInsertExplicitIDAdvancesSequence(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	if _, err := db.Insert("person", Row{Int(100), Str("x"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert("person", Row{Null(), Str("y"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 100 {
		t.Errorf("auto ID %d should exceed explicit 100", id)
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	if _, err := db.Insert("person", Row{Int(1), Str("a"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("person", Row{Int(1), Str("b"), Null(), Null()}); err == nil {
		t.Error("duplicate PK accepted")
	}
}

func TestInsertTypeErrors(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	cases := []Row{
		{Int(1), Int(5), Null(), Null()},       // wrong kind for name
		{Int(1), Str("a"), Str("old"), Null()}, // wrong kind for age
		{Int(1), Str("a")},                     // wrong arity
		{Int(1), Null(), Null(), Null()},       // NULL in NOT NULL column
	}
	for i, r := range cases {
		if _, err := db.Insert("person", r); err == nil {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
}

func TestIntLiteralAcceptedInFloatColumn(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	if _, err := db.Insert("person", Row{Int(1), Str("a"), Null(), Int(7)}); err != nil {
		t.Fatalf("int into float column: %v", err)
	}
	tab, _ := db.Table("person")
	row, _, _ := tab.GetByPK(Int(1))
	if row[3].Kind() != KindFloat || row[3].Float64() != 7 {
		t.Errorf("score = %v", row[3])
	}
}

func TestUpdate(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id, _ := db.Insert("person", Row{Int(1), Str("a"), Int(10), Null()})
	if err := db.Update("person", id, Row{Int(1), Str("b"), Int(11), Null()}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	row, _, _ := tab.GetByPK(Int(1))
	if row[1].Text() != "b" || row[2].Int64() != 11 {
		t.Errorf("row after update = %v", row)
	}
	// Index must follow the update.
	var names []string
	_ = tab.IndexScan("person_by_name", []Value{Str("a")}, func(_ int64, r Row) bool {
		names = append(names, r[1].Text())
		return true
	})
	if len(names) != 0 {
		t.Errorf("old index entry survives: %v", names)
	}
	_ = tab.IndexScan("person_by_name", []Value{Str("b")}, func(_ int64, r Row) bool {
		names = append(names, r[1].Text())
		return true
	})
	if len(names) != 1 {
		t.Errorf("new index entry missing: %v", names)
	}
}

func TestUpdatePKChange(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id, _ := db.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	db.Insert("person", Row{Int(2), Str("b"), Null(), Null()})
	// Changing PK to an occupied value must fail.
	if err := db.Update("person", id, Row{Int(2), Str("a"), Null(), Null()}); err == nil {
		t.Error("PK collision on update accepted")
	}
	// Changing PK to a free value must work.
	if err := db.Update("person", id, Row{Int(3), Str("a"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	if _, _, ok := tab.GetByPK(Int(1)); ok {
		t.Error("old PK still resolves")
	}
	if _, _, ok := tab.GetByPK(Int(3)); !ok {
		t.Error("new PK does not resolve")
	}
}

func TestDelete(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id, _ := db.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	if err := db.Delete("person", id); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	if tab.Len() != 0 {
		t.Error("row survives delete")
	}
	if err := db.Delete("person", id); err == nil {
		t.Error("double delete accepted")
	}
	// Index entry must be gone.
	count := 0
	_ = tab.IndexScan("person_by_name", []Value{Str("a")}, func(int64, Row) bool {
		count++
		return true
	})
	if count != 0 {
		t.Error("index entry survives delete")
	}
}

func TestScanOrderedByPK(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	for _, id := range []int64{5, 3, 9, 1, 7} {
		db.Insert("person", Row{Int(id), Str(fmt.Sprintf("p%d", id)), Null(), Null()})
	}
	tab, _ := db.Table("person")
	var got []int64
	tab.Scan(func(_ int64, r Row) bool {
		got = append(got, r[0].Int64())
		return true
	})
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestIndexScanNonUnique(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	for i := 0; i < 10; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		db.Insert("person", Row{Int(int64(i)), Str(name), Null(), Null()})
	}
	tab, _ := db.Table("person")
	count := 0
	if err := tab.IndexScan("person_by_name", []Value{Str("even")}, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("found %d even rows, want 5", count)
	}
}

func TestIndexScanEmptyPrefixVisitsAll(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	for i := 0; i < 4; i++ {
		db.Insert("person", Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i)), Null(), Null()})
	}
	tab, _ := db.Table("person")
	count := 0
	if err := tab.IndexScan("person_by_name", nil, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("visited %d, want 4", count)
	}
}

func TestIndexRange(t *testing.T) {
	db := NewMem()
	schema := &Schema{
		Name: "m",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "v", Type: KindFloat},
		},
		PrimaryKey: []string{"id"},
		Indexes:    []IndexSpec{{Name: "m_by_v", Columns: []string{"v"}}},
	}
	mustCreate(t, db, schema)
	for i := 0; i < 100; i++ {
		db.Insert("m", Row{Int(int64(i)), Float(float64(i) / 10)})
	}
	tab, _ := db.Table("m")
	count := 0
	if err := tab.IndexRange("m_by_v", Float(2.0), Float(5.0), func(_ int64, r Row) bool {
		if v := r[1].Float64(); v < 2.0 || v >= 5.0 {
			t.Errorf("value %v outside range", v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Errorf("range visited %d, want 30", count)
	}
}

func TestUniqueIndexViolation(t *testing.T) {
	db := NewMem()
	schema := &Schema{
		Name: "u",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "email", Type: KindString},
		},
		PrimaryKey: []string{"id"},
		Indexes:    []IndexSpec{{Name: "u_email", Columns: []string{"email"}, Unique: true}},
	}
	mustCreate(t, db, schema)
	if _, err := db.Insert("u", Row{Int(1), Str("a@x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("u", Row{Int(2), Str("a@x")}); err == nil {
		t.Error("unique index violation accepted")
	}
	// The failed insert must not leave the row behind.
	tab, _ := db.Table("u")
	if tab.Len() != 1 {
		t.Errorf("Len = %d after failed insert, want 1", tab.Len())
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	pet := &Schema{
		Name: "pet",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "owner", Type: KindInt, Nullable: true},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []ForeignKey{{Column: "owner", RefTable: "person", RefColumn: "id"}},
	}
	mustCreate(t, db, pet)
	db.Insert("person", Row{Int(1), Str("ada"), Null(), Null()})

	if _, err := db.Insert("pet", Row{Int(1), Int(1)}); err != nil {
		t.Fatalf("valid FK rejected: %v", err)
	}
	if _, err := db.Insert("pet", Row{Int(2), Int(99)}); err == nil {
		t.Error("dangling FK accepted")
	}
	// NULL FK is allowed for nullable columns.
	if _, err := db.Insert("pet", Row{Int(3), Null()}); err != nil {
		t.Errorf("NULL FK rejected: %v", err)
	}
}

func TestCreateIndexBackfills(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	for i := 0; i < 20; i++ {
		db.Insert("person", Row{Int(int64(i)), Str("x"), Int(int64(i % 3)), Null()})
	}
	if err := db.CreateIndex("person", IndexSpec{Name: "person_by_age", Columns: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	count := 0
	if err := tab.IndexScan("person_by_age", []Value{Int(1)}, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Errorf("backfilled index found %d, want 7", count)
	}
}

func TestIndexOnColumns(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tab, _ := db.Table("person")
	if got := tab.IndexOnColumns("name"); got != "person_by_name" {
		t.Errorf("IndexOnColumns(name) = %q", got)
	}
	if got := tab.IndexOnColumns("age"); got != "" {
		t.Errorf("IndexOnColumns(age) = %q, want none", got)
	}
}

func TestDropTable(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	if err := db.DropTable("person"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("person"); ok {
		t.Error("table survives drop")
	}
	if err := db.DropTable("person"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := NewMem()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustCreate(t, db, &Schema{
			Name:       name,
			Columns:    []Column{{Name: "id", Type: KindInt}},
			PrimaryKey: []string{"id"},
		})
	}
	got := strings.Join(db.TableNames(), ",")
	if got != "alpha,mid,zeta" {
		t.Errorf("TableNames = %s", got)
	}
}

func TestStats(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	db.Insert("person", Row{Int(1), Str("abc"), Int(3), Float(1)})
	s := db.Stats()
	if s.Tables != 1 || s.Rows != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.DataBytes <= 0 {
		t.Error("DataBytes should be positive")
	}
	ts := s.PerTable["person"]
	if ts.Rows != 1 || ts.Indexes != 1 {
		t.Errorf("per-table stats = %+v", ts)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	for i := 0; i < 100; i++ {
		db.Insert("person", Row{Int(int64(i)), Str("x"), Null(), Null()})
	}
	tab, _ := db.Table("person")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				tab.Scan(func(int64, Row) bool { n++; return true })
				if n < 100 {
					t.Errorf("scan saw %d rows, want >= 100", n)
					return
				}
			}
		}()
	}
	for i := 100; i < 300; i++ {
		if _, err := db.Insert("person", Row{Int(int64(i)), Str("y"), Null(), Null()}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if tab.Len() != 300 {
		t.Errorf("final Len = %d, want 300", tab.Len())
	}
}

func TestTxCommit(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tx := db.Begin()
	id, err := tx.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	if _, ok := tab.Get(id); !ok {
		t.Error("committed row missing")
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Errorf("second commit = %v, want ErrTxDone", err)
	}
}

func TestTxRollbackInsert(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tx := db.Begin()
	tx.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	tx.Insert("person", Row{Int(2), Str("b"), Null(), Null()})
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	if tab.Len() != 0 {
		t.Errorf("rows survive rollback: %d", tab.Len())
	}
}

func TestTxRollbackUpdateAndDelete(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	id1, _ := db.Insert("person", Row{Int(1), Str("a"), Int(10), Null()})
	id2, _ := db.Insert("person", Row{Int(2), Str("b"), Int(20), Null()})

	tx := db.Begin()
	if err := tx.Update("person", id1, Row{Int(1), Str("changed"), Int(11), Null()}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("person", id2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("person")
	row, _ := tab.Get(id1)
	if row[1].Text() != "a" || row[2].Int64() != 10 {
		t.Errorf("update not undone: %v", row)
	}
	row2, ok := tab.Get(id2)
	if !ok || row2[1].Text() != "b" {
		t.Errorf("delete not undone: %v ok=%v", row2, ok)
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tx := db.Begin()
	id, _ := tx.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	tab, _ := db.Table("person")
	if _, ok := tab.Get(id); !ok {
		t.Error("transaction cannot read its own write")
	}
	tx.Rollback()
}

func TestTxOperationsAfterDone(t *testing.T) {
	db := NewMem()
	mustCreate(t, db, personSchema())
	tx := db.Begin()
	tx.Commit()
	if _, err := tx.Insert("person", Row{Int(1), Str("a"), Null(), Null()}); err != ErrTxDone {
		t.Errorf("Insert after commit = %v", err)
	}
	if err := tx.Update("person", 1, nil); err != ErrTxDone {
		t.Errorf("Update after commit = %v", err)
	}
	if err := tx.Delete("person", 1); err != ErrTxDone {
		t.Errorf("Delete after commit = %v", err)
	}
	if err := tx.Rollback(); err != ErrTxDone {
		t.Errorf("Rollback after commit = %v", err)
	}
}

func TestSchemaDDLRendersKeysAndIndexes(t *testing.T) {
	s := personSchema()
	s.ForeignKeys = []ForeignKey{{Column: "age", RefTable: "ages", RefColumn: "id"}}
	ddl := s.DDL()
	for _, want := range []string{
		"CREATE TABLE person",
		"id INTEGER NOT NULL",
		"PRIMARY KEY (id)",
		"FOREIGN KEY (age) REFERENCES ages (id)",
		"CREATE INDEX person_by_name ON person (name)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}
