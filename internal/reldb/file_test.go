package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestEngine(t *testing.T, dir string) *FileEngine {
	t.Helper()
	fe, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return fe
}

func TestFileEngineBasicPersistence(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	for i := 0; i < 50; i++ {
		if _, err := fe.Insert("person", Row{Int(int64(i)), Str(fmt.Sprintf("p%d", i)), Int(int64(i * 2)), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, ok := fe2.Table("person")
	if !ok {
		t.Fatal("table missing after reopen")
	}
	if tab.Len() != 50 {
		t.Fatalf("Len = %d after reopen, want 50", tab.Len())
	}
	row, _, ok := tab.GetByPK(Int(25))
	if !ok || row[1].Text() != "p25" {
		t.Errorf("row 25 = %v ok=%v", row, ok)
	}
	// Secondary index must be rebuilt too.
	count := 0
	if err := tab.IndexScan("person_by_name", []Value{Str("p7")}, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("index after reopen found %d, want 1", count)
	}
}

func TestFileEngineUpdateDeletePersist(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	id1, _ := fe.Insert("person", Row{Int(1), Str("a"), Null(), Null()})
	id2, _ := fe.Insert("person", Row{Int(2), Str("b"), Null(), Null()})
	if err := fe.Update("person", id1, Row{Int(1), Str("a2"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	if err := fe.Delete("person", id2); err != nil {
		t.Fatal(err)
	}
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	row, _, _ := tab.GetByPK(Int(1))
	if row[1].Text() != "a2" {
		t.Errorf("update lost: %v", row)
	}
}

func TestFileEngineCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	for i := 0; i < 100; i++ {
		fe.Insert("person", Row{Int(int64(i)), Str("x"), Null(), Null()})
	}
	if err := fe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL must be empty after checkpoint.
	info, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Errorf("WAL size after checkpoint = %d, want 0", info.Size())
	}
	// Writes after the checkpoint land in the WAL and survive reopen.
	fe.Insert("person", Row{Int(1000), Str("post"), Null(), Null()})
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.Len() != 101 {
		t.Fatalf("Len = %d, want 101", tab.Len())
	}
	if _, _, ok := tab.GetByPK(Int(1000)); !ok {
		t.Error("post-checkpoint row missing")
	}
}

func TestFileEngineAutoIDSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	id1, _ := fe.Insert("person", Row{Null(), Str("a"), Null(), Null()})
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	id2, err := fe2.Insert("person", Row{Null(), Str("b"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id1 {
		t.Errorf("auto ID reused after reopen: %d then %d", id1, id2)
	}
}

func TestFileEngineTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	for i := 0; i < 10; i++ {
		fe.Insert("person", Row{Int(int64(i)), Str("x"), Null(), Null()})
	}
	fe.Close()

	// Corrupt the WAL by appending a torn record.
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0x12, 0x34}) // bogus header + partial payload
	f.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.Len() != 10 {
		t.Fatalf("Len = %d after torn-tail recovery, want 10", tab.Len())
	}
	// The engine must still accept writes after recovery.
	if _, err := fe2.Insert("person", Row{Int(100), Str("new"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
}

func TestFileEngineCorruptMiddleDetected(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	fe.Insert("person", Row{Int(1), Str("abcdefghij"), Null(), Null()})
	fe.Insert("person", Row{Int(2), Str("klmnopqrst"), Null(), Null()})
	fe.Close()

	// Flip a byte in the middle of the WAL (inside the first insert record,
	// past the CREATE TABLE record).
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	os.WriteFile(walPath, data, 0o644)

	// Recovery treats the corruption as a torn tail: everything after the
	// last valid record is dropped, but the open must succeed.
	fe2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("recovery failed outright: %v", err)
	}
	defer fe2.Close()
	tab, ok := fe2.Table("person")
	if ok && tab.Len() > 2 {
		t.Errorf("corrupt recovery produced %d rows", tab.Len())
	}
}

func TestFileEngineCheckpointSurvivesWALLoss(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	for i := 0; i < 30; i++ {
		fe.Insert("person", Row{Int(int64(i)), Str("x"), Null(), Null()})
	}
	fe.Checkpoint()
	fe.Close()
	// Simulate losing the (empty) WAL entirely.
	os.Remove(filepath.Join(dir, walFile))

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.Len() != 30 {
		t.Fatalf("Len = %d from snapshot alone, want 30", tab.Len())
	}
}

func TestFileEngineMaybeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	defer fe.Close()
	fe.AutoCheckpoint = 10
	mustCreate(t, fe, personSchema())
	for i := 0; i < 20; i++ {
		fe.Insert("person", Row{Int(int64(i)), Str("x"), Null(), Null()})
		if err := fe.MaybeCheckpoint(); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatalf("snapshot not created by auto-checkpoint: %v", err)
	}
	if info.Size() == 0 {
		t.Error("snapshot is empty")
	}
}

func TestFileEngineDiskSize(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	defer fe.Close()
	mustCreate(t, fe, personSchema())
	size0, err := fe.DiskSize()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fe.Insert("person", Row{Int(int64(i)), Str("some payload string"), Null(), Null()})
	}
	size1, err := fe.DiskSize()
	if err != nil {
		t.Fatal(err)
	}
	if size1 <= size0 {
		t.Errorf("DiskSize did not grow: %d -> %d", size0, size1)
	}
}

func TestFileEngineSyncMode(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	defer fe.Close()
	fe.SetSync(true)
	mustCreate(t, fe, personSchema())
	if _, err := fe.Insert("person", Row{Int(1), Str("x"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
}

func TestFileEngineTxRollbackPersists(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	fe.Insert("person", Row{Int(1), Str("keep"), Null(), Null()})
	tx := fe.Begin()
	tx.Insert("person", Row{Int(2), Str("discard"), Null(), Null()})
	tx.Rollback()
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after replaying rollback, want 1", tab.Len())
	}
	if _, _, ok := tab.GetByPK(Int(2)); ok {
		t.Error("rolled-back row reappeared after recovery")
	}
}

func TestFileEngineCreateIndexPersists(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	fe.Insert("person", Row{Int(1), Str("a"), Int(30), Null()})
	if err := fe.CreateIndex("person", IndexSpec{Name: "person_by_age", Columns: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	tab, _ := fe2.Table("person")
	if !tab.HasIndex("person_by_age") {
		t.Fatal("index lost after reopen")
	}
	count := 0
	if err := tab.IndexScan("person_by_age", []Value{Int(30)}, func(int64, Row) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("index scan found %d, want 1", count)
	}
}

func TestFileEngineDropTablePersists(t *testing.T) {
	dir := t.TempDir()
	fe := openTestEngine(t, dir)
	mustCreate(t, fe, personSchema())
	if err := fe.DropTable("person"); err != nil {
		t.Fatal(err)
	}
	fe.Close()

	fe2 := openTestEngine(t, dir)
	defer fe2.Close()
	if _, ok := fe2.Table("person"); ok {
		t.Error("dropped table reappeared")
	}
}

func TestWALMutationRoundTrip(t *testing.T) {
	muts := []*mutation{
		{op: opCreateTable, schema: personSchema()},
		{op: opDropTable, table: "person"},
		{op: opCreateIndex, table: "person", index: IndexSpec{Name: "i", Columns: []string{"name"}, Unique: true}},
		{op: opInsert, table: "person", id: 7, row: Row{Int(7), Str("x"), Null(), Float(1.5)}},
		{op: opUpdate, table: "person", id: 7, row: Row{Int(7), Str("y"), Int(3), Null()}},
		{op: opDelete, table: "person", id: 7},
	}
	for _, m := range muts {
		payload := encodeMutationPayload(m)
		got, err := decodeMutationPayload(payload)
		if err != nil {
			t.Fatalf("decode op %d: %v", m.op, err)
		}
		if got.op != m.op || got.table != m.table || got.id != m.id {
			t.Errorf("round trip op %d: got %+v", m.op, got)
		}
		if m.row != nil {
			if len(got.row) != len(m.row) {
				t.Fatalf("row arity mismatch for op %d", m.op)
			}
			for i := range m.row {
				if Compare(got.row[i], m.row[i]) != 0 {
					t.Errorf("op %d row[%d]: got %v want %v", m.op, i, got.row[i], m.row[i])
				}
			}
		}
		if m.schema != nil && got.schema.Name != m.schema.Name {
			t.Errorf("schema name mismatch")
		}
		if m.op == opCreateIndex && (got.index.Name != m.index.Name || !got.index.Unique) {
			t.Errorf("index spec mismatch: %+v", got.index)
		}
	}
}

func TestDecodeMutationMalformed(t *testing.T) {
	if _, err := decodeMutationPayload(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := decodeMutationPayload([]byte{0x63}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := decodeMutationPayload([]byte{byte(opInsert), 0x05}); err == nil {
		t.Error("truncated insert accepted")
	}
}
