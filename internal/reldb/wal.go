package reldb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Write-ahead log and snapshot record codec. Every record is framed as
//
//	uint32 payload length (little endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload bytes
//
// so that a torn tail write is detected and discarded on recovery. Payloads
// use a compact binary encoding: varints for integers and lengths,
// length-prefixed strings, one tag byte per value kind.

// ErrCorruptLog reports a WAL or snapshot record that failed its checksum
// or could not be decoded.
var ErrCorruptLog = errors.New("reldb: corrupt log record")

type recordWriter struct {
	w   *bufio.Writer
	buf []byte
}

func newRecordWriter(w io.Writer) *recordWriter {
	return &recordWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (rw *recordWriter) writeRecord(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := rw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := rw.w.Write(payload)
	return err
}

func (rw *recordWriter) flush() error { return rw.w.Flush() }

type recordReader struct {
	r *bufio.Reader
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// readRecord returns the next payload. io.EOF marks a clean end; a partial
// or corrupt trailing record returns ErrCorruptLog so the caller can
// truncate there.
func (rr *recordReader) readRecord() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrCorruptLog
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		return nil, ErrCorruptLog
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return nil, ErrCorruptLog
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrCorruptLog
	}
	return payload, nil
}

// --- payload encoding helpers ---

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func putVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

type payloadReader struct {
	buf []byte
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf)
	if n <= 0 {
		return 0, ErrCorruptLog
	}
	p.buf = p.buf[n:]
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf)
	if n <= 0 {
		return 0, ErrCorruptLog
	}
	p.buf = p.buf[n:]
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(p.buf)) < n {
		return "", ErrCorruptLog
	}
	s := string(p.buf[:n])
	p.buf = p.buf[n:]
	return s, nil
}

func (p *payloadReader) byteVal() (byte, error) {
	if len(p.buf) == 0 {
		return 0, ErrCorruptLog
	}
	b := p.buf[0]
	p.buf = p.buf[1:]
	return b, nil
}

func (p *payloadReader) empty() bool { return len(p.buf) == 0 }

// --- value / row encoding ---

func encodeRowPayload(dst []byte, row Row) []byte {
	dst = putUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case KindNull:
		case KindInt:
			dst = putVarint(dst, v.Int64())
		case KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float64()))
			dst = append(dst, buf[:]...)
		case KindString:
			dst = putString(dst, v.Text())
		case KindBool:
			if v.Truth() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

func decodeRowPayload(p *payloadReader) (Row, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, ErrCorruptLog
	}
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		tag, err := p.byteVal()
		if err != nil {
			return nil, err
		}
		switch Kind(tag) {
		case KindNull:
			row = append(row, Null())
		case KindInt:
			v, err := p.varint()
			if err != nil {
				return nil, err
			}
			row = append(row, Int(v))
		case KindFloat:
			if len(p.buf) < 8 {
				return nil, ErrCorruptLog
			}
			bits := binary.LittleEndian.Uint64(p.buf[:8])
			p.buf = p.buf[8:]
			row = append(row, Float(math.Float64frombits(bits)))
		case KindString:
			s, err := p.str()
			if err != nil {
				return nil, err
			}
			row = append(row, Str(s))
		case KindBool:
			b, err := p.byteVal()
			if err != nil {
				return nil, err
			}
			row = append(row, Bool(b != 0))
		default:
			return nil, ErrCorruptLog
		}
	}
	return row, nil
}

// --- schema encoding ---

func encodeSchemaPayload(dst []byte, s *Schema) []byte {
	dst = putString(dst, s.Name)
	dst = putUvarint(dst, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		dst = putString(dst, c.Name)
		dst = append(dst, byte(c.Type))
		if c.Nullable {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = putUvarint(dst, uint64(len(s.PrimaryKey)))
	for _, pk := range s.PrimaryKey {
		dst = putString(dst, pk)
	}
	dst = putUvarint(dst, uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		dst = putString(dst, fk.Column)
		dst = putString(dst, fk.RefTable)
		dst = putString(dst, fk.RefColumn)
	}
	dst = putUvarint(dst, uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		dst = encodeIndexSpec(dst, ix)
	}
	return dst
}

func encodeIndexSpec(dst []byte, ix IndexSpec) []byte {
	dst = putString(dst, ix.Name)
	if ix.Unique {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = putUvarint(dst, uint64(len(ix.Columns)))
	for _, c := range ix.Columns {
		dst = putString(dst, c)
	}
	return dst
}

func decodeIndexSpec(p *payloadReader) (IndexSpec, error) {
	var ix IndexSpec
	var err error
	if ix.Name, err = p.str(); err != nil {
		return ix, err
	}
	u, err := p.byteVal()
	if err != nil {
		return ix, err
	}
	ix.Unique = u != 0
	n, err := p.uvarint()
	if err != nil {
		return ix, err
	}
	for i := uint64(0); i < n; i++ {
		c, err := p.str()
		if err != nil {
			return ix, err
		}
		ix.Columns = append(ix.Columns, c)
	}
	return ix, nil
}

func decodeSchemaPayload(p *payloadReader) (*Schema, error) {
	s := &Schema{}
	var err error
	if s.Name, err = p.str(); err != nil {
		return nil, err
	}
	ncols, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ncols; i++ {
		var c Column
		if c.Name, err = p.str(); err != nil {
			return nil, err
		}
		t, err := p.byteVal()
		if err != nil {
			return nil, err
		}
		c.Type = Kind(t)
		nb, err := p.byteVal()
		if err != nil {
			return nil, err
		}
		c.Nullable = nb != 0
		s.Columns = append(s.Columns, c)
	}
	npk, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < npk; i++ {
		pk, err := p.str()
		if err != nil {
			return nil, err
		}
		s.PrimaryKey = append(s.PrimaryKey, pk)
	}
	nfk, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nfk; i++ {
		var fk ForeignKey
		if fk.Column, err = p.str(); err != nil {
			return nil, err
		}
		if fk.RefTable, err = p.str(); err != nil {
			return nil, err
		}
		if fk.RefColumn, err = p.str(); err != nil {
			return nil, err
		}
		s.ForeignKeys = append(s.ForeignKeys, fk)
	}
	nix, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nix; i++ {
		ix, err := decodeIndexSpec(p)
		if err != nil {
			return nil, err
		}
		s.Indexes = append(s.Indexes, ix)
	}
	return s, nil
}

// --- mutation encoding ---

func encodeMutationPayload(m *mutation) []byte {
	dst := []byte{byte(m.op)}
	switch m.op {
	case opCreateTable:
		dst = encodeSchemaPayload(dst, m.schema)
	case opDropTable:
		dst = putString(dst, m.table)
	case opCreateIndex, opDropIndex:
		dst = putString(dst, m.table)
		dst = encodeIndexSpec(dst, m.index)
	case opInsert, opUpdate:
		dst = putString(dst, m.table)
		dst = putVarint(dst, m.id)
		dst = encodeRowPayload(dst, m.row)
	case opDelete:
		dst = putString(dst, m.table)
		dst = putVarint(dst, m.id)
	}
	return dst
}

func decodeMutationPayload(payload []byte) (*mutation, error) {
	p := &payloadReader{buf: payload}
	tag, err := p.byteVal()
	if err != nil {
		return nil, err
	}
	m := &mutation{op: mutOp(tag)}
	switch m.op {
	case opCreateTable:
		if m.schema, err = decodeSchemaPayload(p); err != nil {
			return nil, err
		}
	case opDropTable:
		if m.table, err = p.str(); err != nil {
			return nil, err
		}
	case opCreateIndex, opDropIndex:
		if m.table, err = p.str(); err != nil {
			return nil, err
		}
		if m.index, err = decodeIndexSpec(p); err != nil {
			return nil, err
		}
	case opInsert, opUpdate:
		if m.table, err = p.str(); err != nil {
			return nil, err
		}
		if m.id, err = p.varint(); err != nil {
			return nil, err
		}
		if m.row, err = decodeRowPayload(p); err != nil {
			return nil, err
		}
	case opDelete:
		if m.table, err = p.str(); err != nil {
			return nil, err
		}
		if m.id, err = p.varint(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrCorruptLog, tag)
	}
	return m, nil
}
