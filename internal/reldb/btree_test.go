package reldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeSetGet(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if !bt.Set(key, int64(i)) {
			t.Fatalf("Set(%s) should create", key)
		}
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := bt.Get(key)
		if !ok || v != int64(i) {
			t.Fatalf("Get(%s) = %d,%v", key, v, ok)
		}
	}
	if _, ok := bt.Get([]byte("absent")); ok {
		t.Error("Get(absent) should miss")
	}
}

func TestBTreeReplace(t *testing.T) {
	bt := newBTree()
	bt.Set([]byte("k"), 1)
	if bt.Set([]byte("k"), 2) {
		t.Error("replacing should not report creation")
	}
	if v, _ := bt.Get([]byte("k")); v != 2 {
		t.Errorf("Get = %d, want 2", v)
	}
	if bt.Len() != 1 {
		t.Errorf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree()
	const n = 2000
	for i := 0; i < n; i++ {
		bt.Set([]byte(fmt.Sprintf("%06d", i)), int64(i))
	}
	// Delete every other key.
	for i := 0; i < n; i += 2 {
		if !bt.Delete([]byte(fmt.Sprintf("%06d", i))) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if bt.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", bt.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := bt.Get([]byte(fmt.Sprintf("%06d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if bt.Delete([]byte("absent")) {
		t.Error("Delete(absent) should report false")
	}
}

func TestBTreeAscendFullOrder(t *testing.T) {
	bt := newBTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		bt.Set([]byte(fmt.Sprintf("%05d", i)), int64(i))
	}
	var got []int64
	bt.Ascend(nil, nil, func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 500 {
		t.Fatalf("visited %d, want 500", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("position %d has %d", i, v)
		}
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.Set([]byte(fmt.Sprintf("%03d", i)), int64(i))
	}
	var got []int64
	bt.Ascend([]byte("010"), []byte("020"), func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan got %v", got)
	}
}

func TestBTreeAscendEarlyStop(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.Set([]byte(fmt.Sprintf("%03d", i)), int64(i))
	}
	count := 0
	bt.Ascend(nil, nil, func(_ []byte, _ int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d, want 5", count)
	}
}

func TestBTreeEmptyOperations(t *testing.T) {
	bt := newBTree()
	if bt.Len() != 0 {
		t.Error("empty Len != 0")
	}
	if _, ok := bt.Get([]byte("x")); ok {
		t.Error("Get on empty should miss")
	}
	if bt.Delete([]byte("x")) {
		t.Error("Delete on empty should report false")
	}
	visited := false
	bt.Ascend(nil, nil, func([]byte, int64) bool { visited = true; return true })
	if visited {
		t.Error("Ascend on empty should not visit")
	}
}

// TestBTreeRandomizedAgainstMap runs a long random sequence of operations,
// comparing the tree against a reference map and checking sorted iteration
// after every few hundred steps.
func TestBTreeRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bt := newBTree()
	ref := make(map[string]int64)
	keyPool := make([]string, 300)
	for i := range keyPool {
		keyPool[i] = fmt.Sprintf("k%08x", rng.Uint32()%5000)
	}
	for step := 0; step < 20000; step++ {
		key := keyPool[rng.Intn(len(keyPool))]
		switch rng.Intn(3) {
		case 0, 1: // insert/replace
			val := rng.Int63()
			created := bt.Set([]byte(key), val)
			_, existed := ref[key]
			if created == existed {
				t.Fatalf("step %d: Set created=%v but existed=%v", step, created, existed)
			}
			ref[key] = val
		case 2: // delete
			deleted := bt.Delete([]byte(key))
			_, existed := ref[key]
			if deleted != existed {
				t.Fatalf("step %d: Delete=%v but existed=%v", step, deleted, existed)
			}
			delete(ref, key)
		}
		if bt.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d ref=%d", step, bt.Len(), len(ref))
		}
		if step%500 == 0 {
			checkTreeMatchesRef(t, bt, ref)
		}
	}
	checkTreeMatchesRef(t, bt, ref)
}

func checkTreeMatchesRef(t *testing.T, bt *btree, ref map[string]int64) {
	t.Helper()
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	bt.Ascend(nil, nil, func(key []byte, val int64) bool {
		if i >= len(keys) {
			t.Fatalf("tree has extra key %q", key)
		}
		if string(key) != keys[i] {
			t.Fatalf("position %d: tree %q, ref %q", i, key, keys[i])
		}
		if val != ref[keys[i]] {
			t.Fatalf("key %q: tree val %d, ref %d", key, val, ref[keys[i]])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("tree visited %d keys, ref has %d", i, len(keys))
	}
	// Structural invariants.
	checkNodeInvariants(t, bt.root, true)
}

// checkNodeInvariants verifies B-tree shape: item counts within bounds,
// keys sorted within nodes, child subtrees bracketed by separators.
func checkNodeInvariants(t *testing.T, n *btreeNode, isRoot bool) (min, max []byte) {
	t.Helper()
	if !isRoot && len(n.items) < minItems {
		t.Fatalf("non-root node has %d items, min %d", len(n.items), minItems)
	}
	if len(n.items) > maxItems {
		t.Fatalf("node has %d items, max %d", len(n.items), maxItems)
	}
	for i := 1; i < len(n.items); i++ {
		if bytes.Compare(n.items[i-1].key, n.items[i].key) >= 0 {
			t.Fatalf("node items out of order")
		}
	}
	if n.leaf() {
		if len(n.items) == 0 {
			return nil, nil
		}
		return n.items[0].key, n.items[len(n.items)-1].key
	}
	if len(n.children) != len(n.items)+1 {
		t.Fatalf("node has %d children for %d items", len(n.children), len(n.items))
	}
	var first, last []byte
	for i, child := range n.children {
		cmin, cmax := checkNodeInvariants(t, child, false)
		if i > 0 && cmin != nil && bytes.Compare(cmin, n.items[i-1].key) <= 0 {
			t.Fatalf("child %d min %q <= separator %q", i, cmin, n.items[i-1].key)
		}
		if i < len(n.items) && cmax != nil && bytes.Compare(cmax, n.items[i].key) >= 0 {
			t.Fatalf("child %d max %q >= separator %q", i, cmax, n.items[i].key)
		}
		if i == 0 {
			first = cmin
		}
		if i == len(n.children)-1 {
			last = cmax
		}
	}
	return first, last
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt := newBTree()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%010d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Set(keys[i], int64(i))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	bt := newBTree()
	const n = 100000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%010d", i))
		bt.Set(keys[i], int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Get(keys[i%n])
	}
}
