package reldb

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// FileEngine is the durable storage engine: an in-memory DB whose
// mutations stream to a write-ahead log, with periodic full snapshots.
// Opening a directory loads the latest snapshot and replays the WAL,
// discarding a torn trailing record. It stands in for the persistent DBMS
// backends (Oracle, PostgreSQL) of the original PerfTrack prototype.
type FileEngine struct {
	*DB
	dir        string
	wal        *os.File
	walW       *recordWriter
	walCount   int64     // records since last checkpoint
	syncWAL    bool      // fsync the WAL after every flush
	batchDepth int       // >0: defer flush/sync to EndWALBatch
	seg        *segState // non-nil on the "segment" engine

	// AutoCheckpoint, when > 0, triggers a snapshot after that many WAL
	// records. Zero disables automatic checkpoints.
	AutoCheckpoint int64
}

const (
	snapshotFile = "perftrack.snap"
	walFile      = "perftrack.wal"
)

// snapshot record tags
const (
	snapTagSchema byte = 1
	snapTagRow    byte = 2
)

// openFile opens (or creates) a durable database rooted at dir, with or
// without the columnar segment extension. Recovery order is snapshot,
// then segments (skipping rows the snapshot already holds), then WAL
// replay (replacing divergent rows: the log is truth).
func openFile(dir string, segmented bool) (*FileEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: open %s: %w", dir, err)
	}
	fe := &FileEngine{DB: NewMem(), dir: dir}
	if segmented {
		fe.seg = newSegState(fe)
	}
	if err := fe.loadSnapshot(); err != nil {
		return nil, err
	}
	if fe.seg != nil {
		if err := fe.seg.load(); err != nil {
			return nil, err
		}
	}
	if err := fe.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(fe.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reldb: open WAL: %w", err)
	}
	fe.wal = wal
	fe.walW = newRecordWriter(wal)
	fe.DB.logger = fe
	if fe.seg != nil {
		fe.seg.initAfterRecovery()
		// Resync the manifest with post-replay state (a replayed DROP
		// TABLE may have retired segments) before orphan cleanup, so the
		// manifest never references a deleted file.
		if err := fe.seg.writeManifest(); err != nil {
			return nil, err
		}
		fe.seg.cleanOrphans()
		fe.seg.started = true
		go fe.seg.run()
	}
	return fe, nil
}

// SetSync controls whether the WAL is fsynced after every logged mutation
// batch. Synchronous mode is durable against power loss but much slower;
// it is off by default, matching a DBMS with commit batching.
func (fe *FileEngine) SetSync(sync bool) { fe.syncWAL = sync }

func (fe *FileEngine) snapPath() string { return filepath.Join(fe.dir, snapshotFile) }
func (fe *FileEngine) walPath() string  { return filepath.Join(fe.dir, walFile) }

// logMutation appends one mutation to the WAL. Called with the DB write
// lock held. In the default asynchronous mode records accumulate in the
// writer's buffer and reach the file in batches (flushed on checkpoint,
// close, and size queries); synchronous mode flushes and fsyncs per
// mutation, trading load throughput for crash durability — the usual
// DBMS commit-batching trade-off.
func (fe *FileEngine) logMutation(m *mutation) error {
	if err := fe.walW.writeRecord(encodeMutationPayload(m)); err != nil {
		return err
	}
	if fe.syncWAL && fe.batchDepth == 0 {
		if err := fe.walW.flush(); err != nil {
			return err
		}
		if err := fe.wal.Sync(); err != nil {
			return err
		}
	}
	fe.walCount++
	if fe.seg != nil {
		fe.seg.note(m)
		if fe.batchDepth == 0 {
			fe.seg.maybeNotify()
		}
	}
	return nil
}

// BeginWALBatch suspends per-mutation WAL flushing until the matching
// EndWALBatch, which flushes (and, in synchronous mode, fsyncs) exactly
// once. The datastore's batch commit wraps each multi-record commit in a
// BeginWALBatch/EndWALBatch pair so a thousand-record document costs one
// flush instead of a thousand — the DBMS group-commit discipline. Calls
// nest; only the outermost EndWALBatch performs the flush.
func (fe *FileEngine) BeginWALBatch() {
	fe.mu.Lock()
	fe.batchDepth++
	fe.mu.Unlock()
}

// EndWALBatch closes a BeginWALBatch window, performing the single
// deferred WAL flush for everything logged inside it.
func (fe *FileEngine) EndWALBatch() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.batchDepth > 0 {
		fe.batchDepth--
	}
	if fe.batchDepth > 0 {
		return nil
	}
	if err := fe.walW.flush(); err != nil {
		return err
	}
	if fe.seg != nil {
		fe.seg.maybeNotify()
	}
	if fe.syncWAL {
		return fe.wal.Sync()
	}
	return nil
}

// apply reproduces a logged mutation during recovery (no re-logging).
func (fe *FileEngine) apply(m *mutation) error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	switch m.op {
	case opCreateTable:
		return fe.createTableLocked(m.schema, false)
	case opDropTable:
		delete(fe.tables, m.table)
		if fe.seg != nil {
			fe.seg.resetTable(m.table)
		}
		return nil
	case opCreateIndex:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		if err := t.addIndex(m.index); err != nil {
			return err
		}
		t.schema.Indexes = append(t.schema.Indexes, m.index)
		return nil
	case opDropIndex:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		delete(t.indexes, m.index.Name)
		for i, spec := range t.schema.Indexes {
			if spec.Name == m.index.Name {
				t.schema.Indexes = append(t.schema.Indexes[:i], t.schema.Indexes[i+1:]...)
				break
			}
		}
		return nil
	case opInsert:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		if existing, dup := t.rows[m.id]; dup {
			// The row was preloaded from the snapshot or a segment (the
			// WAL survived a checkpoint crash window or a compaction).
			// Equal images are an idempotent no-op; on divergence the
			// log wins, and any segment copy is now stale.
			if rowsEqual(existing, m.row) {
				return nil
			}
			if _, err := t.updateLocked(m.id, m.row); err != nil {
				return err
			}
			if fe.seg != nil {
				fe.seg.markDirtyBelow(m.table, m.id)
			}
			return nil
		}
		return t.insertAtLocked(m.id, m.row)
	case opUpdate:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		if _, exists := t.rows[m.id]; !exists {
			// Snapshot newer than this record and the row was later
			// deleted-and-recreated; restore the update image so the
			// remaining log replays onto the right state.
			return t.insertAtLocked(m.id, m.row)
		}
		if _, err := fe.updateLocked(m.table, m.id, m.row, false); err != nil {
			return err
		}
		if fe.seg != nil {
			fe.seg.markDirtyBelow(m.table, m.id)
		}
		return nil
	case opDelete:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		if _, exists := t.rows[m.id]; !exists {
			return nil // snapshot already reflects the delete
		}
		if _, err := fe.deleteLocked(m.table, m.id, false); err != nil {
			return err
		}
		if fe.seg != nil {
			fe.seg.markDirtyBelow(m.table, m.id)
		}
		return nil
	default:
		return fmt.Errorf("%w: op %d", ErrCorruptLog, m.op)
	}
}

// rowsEqual reports bit-exact row equality (NaN-aware for floats). The
// replay path uses it to recognize an idempotent re-insert of a row that
// was preloaded from the snapshot or a segment.
func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.Kind() != vb.Kind() {
			return false
		}
		switch va.Kind() {
		case KindInt:
			if va.Int64() != vb.Int64() {
				return false
			}
		case KindFloat:
			if math.Float64bits(va.Float64()) != math.Float64bits(vb.Float64()) {
				return false
			}
		case KindString:
			if va.Text() != vb.Text() {
				return false
			}
		case KindBool:
			if va.Truth() != vb.Truth() {
				return false
			}
		}
	}
	return true
}

// insertAtLocked inserts a row under a specific row ID (recovery path).
func (t *Table) insertAtLocked(id int64, row Row) error {
	if _, exists := t.rows[id]; exists {
		return fmt.Errorf("reldb: recovery: table %q: row %d already present", t.schema.Name, id)
	}
	row = row.Clone()
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := t.pkKey(row)
	if _, exists := t.primary.Get(pk); exists {
		return fmt.Errorf("reldb: recovery: table %q: duplicate primary key %s", t.schema.Name, row)
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, id); err != nil {
			return err
		}
	}
	t.rows[id] = row
	t.primary.Set(pk, id)
	t.dataBytes += rowBytes(row)
	t.pkBytes += int64(len(pk)) + 8
	if id >= t.nextID {
		t.nextID = id + 1
	}
	return nil
}

func (fe *FileEngine) loadSnapshot() error {
	f, err := os.Open(fe.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: open snapshot: %w", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	var current string
	for {
		payload, err := rr.readRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reldb: snapshot %s: %w", fe.snapPath(), err)
		}
		p := &payloadReader{buf: payload}
		tag, err := p.byteVal()
		if err != nil {
			return err
		}
		switch tag {
		case snapTagSchema:
			schema, err := decodeSchemaPayload(p)
			if err != nil {
				return err
			}
			fe.mu.Lock()
			err = fe.createTableLocked(schema, false)
			fe.mu.Unlock()
			if err != nil {
				return err
			}
			current = schema.Name
		case snapTagRow:
			id, err := p.varint()
			if err != nil {
				return err
			}
			row, err := decodeRowPayload(p)
			if err != nil {
				return err
			}
			fe.mu.Lock()
			t, ok := fe.tables[current]
			if !ok {
				fe.mu.Unlock()
				return fmt.Errorf("reldb: snapshot row before schema")
			}
			err = t.insertAtLocked(id, row)
			fe.mu.Unlock()
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: snapshot tag %d", ErrCorruptLog, tag)
		}
	}
}

func (fe *FileEngine) replayWAL() error {
	f, err := os.Open(fe.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: open WAL: %w", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	var good int64 // bytes of fully-valid records
	for {
		payload, err := rr.readRecord()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorruptLog) {
			// Torn tail: truncate the WAL to the last valid record.
			if terr := os.Truncate(fe.walPath(), good); terr != nil {
				return fmt.Errorf("reldb: truncate torn WAL: %w", terr)
			}
			break
		}
		if err != nil {
			return err
		}
		m, err := decodeMutationPayload(payload)
		if err != nil {
			return err
		}
		if err := fe.apply(m); err != nil {
			return err
		}
		good += int64(len(payload)) + 8
	}
	return nil
}

// Checkpoint writes a snapshot atomically and truncates the WAL. On the
// plain WAL engine the snapshot holds every row. On the segment engine
// the hot tables' segment-resident rows are omitted — they are already
// durable in fsynced segment files referenced by the manifest — so the
// checkpoint costs O(non-hot tables + unflushed tail) instead of a full
// rewrite of the result tables. Dirty or unordered hot tables are reset
// here: their segments are dropped and the snapshot holds them in full.
func (fe *FileEngine) Checkpoint() error {
	if fe.seg != nil {
		// Drain the tails first so the snapshot's hot-table share is
		// only whatever arrived since this compaction.
		if err := fe.seg.compact(1); err != nil && !errors.Is(err, errCompactBusy) {
			return err
		}
		fe.seg.compactMu.Lock()
		defer fe.seg.compactMu.Unlock()
	}
	fe.mu.Lock()
	defer fe.mu.Unlock()
	var dropped []string
	if fe.seg != nil {
		dropped = fe.seg.resetStaleLocked()
	}
	tmp := fe.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("reldb: checkpoint: %w", err)
	}
	rw := newRecordWriter(f)
	names := make([]string, 0, len(fe.tables))
	for name := range fe.tables {
		names = append(names, name)
	}
	// Stable order for reproducible snapshots.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		t := fe.tables[name]
		payload := append([]byte{snapTagSchema}, encodeSchemaPayload(nil, t.schema)...)
		if err := rw.writeRecord(payload); err != nil {
			f.Close()
			return err
		}
		// Segment-resident rows (ID at or below the watermark) are
		// durable in their segment files; only the tail goes into the
		// snapshot.
		var skipBelow int64
		if fe.seg != nil {
			if sg := fe.seg.tables[name]; sg != nil {
				skipBelow = sg.watermark.Load()
			}
		}
		var werr error
		t.primary.Ascend(nil, nil, func(_ []byte, id int64) bool {
			if skipBelow > 0 && id <= skipBelow {
				return true
			}
			p := []byte{snapTagRow}
			p = putVarint(p, id)
			p = encodeRowPayload(p, t.rows[id])
			if err := rw.writeRecord(p); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			f.Close()
			return werr
		}
	}
	if err := rw.flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, fe.snapPath()); err != nil {
		return err
	}
	// The manifest must reflect the surviving segments before the WAL —
	// their other source of truth — is discarded.
	if fe.seg != nil {
		if err := fe.seg.writeManifest(); err != nil {
			return err
		}
	}
	// Truncate the WAL: its effects are captured by the snapshot and
	// the manifest-referenced segments.
	if err := fe.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := fe.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	fe.walW = newRecordWriter(fe.wal)
	fe.walCount = 0
	for _, path := range dropped {
		os.Remove(path) // best effort; open-time cleanup catches leftovers
	}
	return nil
}

// maybeCheckpoint runs a checkpoint if the auto-checkpoint threshold has
// been crossed. Callers invoke it between batches, not per row.
func (fe *FileEngine) MaybeCheckpoint() error {
	if fe.AutoCheckpoint > 0 && fe.walCount >= fe.AutoCheckpoint {
		return fe.Checkpoint()
	}
	return nil
}

// DiskSize reports the total bytes on disk (snapshot + WAL + segment
// files), flushing buffered WAL records first so the figure is accurate.
func (fe *FileEngine) DiskSize() (int64, error) {
	fe.mu.Lock()
	err := fe.walW.flush()
	fe.mu.Unlock()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, path := range []string{fe.snapPath(), fe.walPath()} {
		info, err := os.Stat(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	if fe.seg != nil {
		total += fe.seg.segmentBytes()
	}
	return total, nil
}

// Stats extends the in-memory statistics with on-disk footprint: WAL,
// snapshot, and per-table segment residency.
func (fe *FileEngine) Stats() Stats {
	s := fe.DB.Stats()
	s.Kind = fe.Kind()
	fe.mu.Lock()
	_ = fe.walW.flush()
	fe.mu.Unlock()
	if info, err := os.Stat(fe.walPath()); err == nil {
		s.WALBytes = info.Size()
	}
	if info, err := os.Stat(fe.snapPath()); err == nil {
		s.SnapshotBytes = info.Size()
	}
	if fe.seg != nil {
		fe.seg.mu.RLock()
		for name, sg := range fe.seg.tables {
			if len(sg.segs) == 0 {
				continue
			}
			ts := s.PerTable[name]
			ts.Segments = len(sg.segs)
			ts.SegmentRows = sg.segRows
			ts.SegmentBytes = sg.segBytes
			s.PerTable[name] = ts
			s.SegmentBytes += sg.segBytes
		}
		fe.seg.mu.RUnlock()
	}
	s.DiskBytes = s.WALBytes + s.SnapshotBytes + s.SegmentBytes
	return s
}

// Close stops the compactor, flushes the WAL, and releases file handles.
func (fe *FileEngine) Close() error {
	if fe.seg != nil {
		fe.seg.shutdown()
	}
	if fe.walW != nil {
		if err := fe.walW.flush(); err != nil {
			return err
		}
	}
	if fe.wal != nil {
		if err := fe.wal.Sync(); err != nil {
			return err
		}
		return fe.wal.Close()
	}
	return nil
}
