package reldb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FileEngine is the durable storage engine: an in-memory DB whose
// mutations stream to a write-ahead log, with periodic full snapshots.
// Opening a directory loads the latest snapshot and replays the WAL,
// discarding a torn trailing record. It stands in for the persistent DBMS
// backends (Oracle, PostgreSQL) of the original PerfTrack prototype.
type FileEngine struct {
	*DB
	dir        string
	wal        *os.File
	walW       *recordWriter
	walCount   int64 // records since last checkpoint
	syncWAL    bool  // fsync the WAL after every flush
	batchDepth int   // >0: defer flush/sync to EndWALBatch

	// AutoCheckpoint, when > 0, triggers a snapshot after that many WAL
	// records. Zero disables automatic checkpoints.
	AutoCheckpoint int64
}

const (
	snapshotFile = "perftrack.snap"
	walFile      = "perftrack.wal"
)

// snapshot record tags
const (
	snapTagSchema byte = 1
	snapTagRow    byte = 2
)

// OpenFile opens (or creates) a durable database rooted at dir.
func OpenFile(dir string) (*FileEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: open %s: %w", dir, err)
	}
	fe := &FileEngine{DB: NewMem(), dir: dir}
	if err := fe.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := fe.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(fe.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reldb: open WAL: %w", err)
	}
	fe.wal = wal
	fe.walW = newRecordWriter(wal)
	fe.DB.logger = fe
	return fe, nil
}

// SetSync controls whether the WAL is fsynced after every logged mutation
// batch. Synchronous mode is durable against power loss but much slower;
// it is off by default, matching a DBMS with commit batching.
func (fe *FileEngine) SetSync(sync bool) { fe.syncWAL = sync }

func (fe *FileEngine) snapPath() string { return filepath.Join(fe.dir, snapshotFile) }
func (fe *FileEngine) walPath() string  { return filepath.Join(fe.dir, walFile) }

// logMutation appends one mutation to the WAL. Called with the DB write
// lock held. In the default asynchronous mode records accumulate in the
// writer's buffer and reach the file in batches (flushed on checkpoint,
// close, and size queries); synchronous mode flushes and fsyncs per
// mutation, trading load throughput for crash durability — the usual
// DBMS commit-batching trade-off.
func (fe *FileEngine) logMutation(m *mutation) error {
	if err := fe.walW.writeRecord(encodeMutationPayload(m)); err != nil {
		return err
	}
	if fe.syncWAL && fe.batchDepth == 0 {
		if err := fe.walW.flush(); err != nil {
			return err
		}
		if err := fe.wal.Sync(); err != nil {
			return err
		}
	}
	fe.walCount++
	return nil
}

// BeginWALBatch suspends per-mutation WAL flushing until the matching
// EndWALBatch, which flushes (and, in synchronous mode, fsyncs) exactly
// once. The datastore's batch commit wraps each multi-record commit in a
// BeginWALBatch/EndWALBatch pair so a thousand-record document costs one
// flush instead of a thousand — the DBMS group-commit discipline. Calls
// nest; only the outermost EndWALBatch performs the flush.
func (fe *FileEngine) BeginWALBatch() {
	fe.mu.Lock()
	fe.batchDepth++
	fe.mu.Unlock()
}

// EndWALBatch closes a BeginWALBatch window, performing the single
// deferred WAL flush for everything logged inside it.
func (fe *FileEngine) EndWALBatch() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.batchDepth > 0 {
		fe.batchDepth--
	}
	if fe.batchDepth > 0 {
		return nil
	}
	if err := fe.walW.flush(); err != nil {
		return err
	}
	if fe.syncWAL {
		return fe.wal.Sync()
	}
	return nil
}

// apply reproduces a logged mutation during recovery (no re-logging).
func (fe *FileEngine) apply(m *mutation) error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	switch m.op {
	case opCreateTable:
		return fe.createTableLocked(m.schema, false)
	case opDropTable:
		delete(fe.tables, m.table)
		return nil
	case opCreateIndex:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		if err := t.addIndex(m.index); err != nil {
			return err
		}
		t.schema.Indexes = append(t.schema.Indexes, m.index)
		return nil
	case opDropIndex:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		delete(t.indexes, m.index.Name)
		for i, spec := range t.schema.Indexes {
			if spec.Name == m.index.Name {
				t.schema.Indexes = append(t.schema.Indexes[:i], t.schema.Indexes[i+1:]...)
				break
			}
		}
		return nil
	case opInsert:
		t, ok := fe.tables[m.table]
		if !ok {
			return fmt.Errorf("reldb: recovery: no table %q", m.table)
		}
		return t.insertAtLocked(m.id, m.row)
	case opUpdate:
		_, err := fe.updateLocked(m.table, m.id, m.row, false)
		return err
	case opDelete:
		_, err := fe.deleteLocked(m.table, m.id, false)
		return err
	default:
		return fmt.Errorf("%w: op %d", ErrCorruptLog, m.op)
	}
}

// insertAtLocked inserts a row under a specific row ID (recovery path).
func (t *Table) insertAtLocked(id int64, row Row) error {
	if _, exists := t.rows[id]; exists {
		return fmt.Errorf("reldb: recovery: table %q: row %d already present", t.schema.Name, id)
	}
	row = row.Clone()
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := t.pkKey(row)
	if _, exists := t.primary.Get(pk); exists {
		return fmt.Errorf("reldb: recovery: table %q: duplicate primary key %s", t.schema.Name, row)
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, id); err != nil {
			return err
		}
	}
	t.rows[id] = row
	t.primary.Set(pk, id)
	t.dataBytes += rowBytes(row)
	if id >= t.nextID {
		t.nextID = id + 1
	}
	return nil
}

func (fe *FileEngine) loadSnapshot() error {
	f, err := os.Open(fe.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: open snapshot: %w", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	var current string
	for {
		payload, err := rr.readRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reldb: snapshot %s: %w", fe.snapPath(), err)
		}
		p := &payloadReader{buf: payload}
		tag, err := p.byteVal()
		if err != nil {
			return err
		}
		switch tag {
		case snapTagSchema:
			schema, err := decodeSchemaPayload(p)
			if err != nil {
				return err
			}
			fe.mu.Lock()
			err = fe.createTableLocked(schema, false)
			fe.mu.Unlock()
			if err != nil {
				return err
			}
			current = schema.Name
		case snapTagRow:
			id, err := p.varint()
			if err != nil {
				return err
			}
			row, err := decodeRowPayload(p)
			if err != nil {
				return err
			}
			fe.mu.Lock()
			t, ok := fe.tables[current]
			if !ok {
				fe.mu.Unlock()
				return fmt.Errorf("reldb: snapshot row before schema")
			}
			err = t.insertAtLocked(id, row)
			fe.mu.Unlock()
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: snapshot tag %d", ErrCorruptLog, tag)
		}
	}
}

func (fe *FileEngine) replayWAL() error {
	f, err := os.Open(fe.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: open WAL: %w", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	var good int64 // bytes of fully-valid records
	for {
		payload, err := rr.readRecord()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorruptLog) {
			// Torn tail: truncate the WAL to the last valid record.
			if terr := os.Truncate(fe.walPath(), good); terr != nil {
				return fmt.Errorf("reldb: truncate torn WAL: %w", terr)
			}
			break
		}
		if err != nil {
			return err
		}
		m, err := decodeMutationPayload(payload)
		if err != nil {
			return err
		}
		if err := fe.apply(m); err != nil {
			return err
		}
		good += int64(len(payload)) + 8
	}
	return nil
}

// Checkpoint writes a full snapshot atomically and truncates the WAL.
func (fe *FileEngine) Checkpoint() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	tmp := fe.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("reldb: checkpoint: %w", err)
	}
	rw := newRecordWriter(f)
	names := make([]string, 0, len(fe.tables))
	for name := range fe.tables {
		names = append(names, name)
	}
	// Stable order for reproducible snapshots.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		t := fe.tables[name]
		payload := append([]byte{snapTagSchema}, encodeSchemaPayload(nil, t.schema)...)
		if err := rw.writeRecord(payload); err != nil {
			f.Close()
			return err
		}
		var werr error
		t.primary.Ascend(nil, nil, func(_ []byte, id int64) bool {
			p := []byte{snapTagRow}
			p = putVarint(p, id)
			p = encodeRowPayload(p, t.rows[id])
			if err := rw.writeRecord(p); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			f.Close()
			return werr
		}
	}
	if err := rw.flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, fe.snapPath()); err != nil {
		return err
	}
	// Truncate the WAL: its effects are captured by the snapshot.
	if err := fe.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := fe.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	fe.walW = newRecordWriter(fe.wal)
	fe.walCount = 0
	return nil
}

// maybeCheckpoint runs a checkpoint if the auto-checkpoint threshold has
// been crossed. Callers invoke it between batches, not per row.
func (fe *FileEngine) MaybeCheckpoint() error {
	if fe.AutoCheckpoint > 0 && fe.walCount >= fe.AutoCheckpoint {
		return fe.Checkpoint()
	}
	return nil
}

// DiskSize reports the total bytes on disk (snapshot + WAL), flushing
// buffered WAL records first so the figure is accurate.
func (fe *FileEngine) DiskSize() (int64, error) {
	fe.mu.Lock()
	err := fe.walW.flush()
	fe.mu.Unlock()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, path := range []string{fe.snapPath(), fe.walPath()} {
		info, err := os.Stat(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// Close flushes the WAL and releases file handles.
func (fe *FileEngine) Close() error {
	if fe.walW != nil {
		if err := fe.walW.flush(); err != nil {
			return err
		}
	}
	if fe.wal != nil {
		if err := fe.wal.Sync(); err != nil {
			return err
		}
		return fe.wal.Close()
	}
	return nil
}
